"""Unit 6 tour: serving configurations under a tight performance budget.

The lab's task (paper §3.6): "preparing multiple model serving
configurations that balance cost, latency, disk space and throughput under
tight performance budgets" — model-level optimizations on a server GPU,
the same model on an edge device, then Triton-style system optimizations.

Run:  python examples/serving_optimization.py
"""

from repro.common.tables import format_table
from repro.serving import (
    DEVICE_CATALOG,
    BatchingConfig,
    InferenceEngine,
    LoadProfile,
    TritonServer,
    food11_classifier,
)


def model_level(device_name="a100"):
    device = DEVICE_CATALOG[device_name]
    base = food11_classifier()
    variants = {
        "baseline fp32": base,
        "graph-optimized": base.graph_optimized(),
        "graph + INT8": base.graph_optimized().quantized(),
        "graph + INT8 + prune 0.5": base.graph_optimized().quantized().pruned(0.5),
        "distilled 4x": base.distilled(4),
    }
    rows = []
    for name, model in variants.items():
        eng = InferenceEngine(model, device)
        rows.append([name, model.size_mb, eng.latency_ms(1), eng.throughput_rps(16),
                     model.accuracy])
    print(format_table(
        ["variant", "size MB", "latency@1 ms", "rps@16", "accuracy"],
        rows,
        title=f"Model-level optimizations on {device.name}:",
        float_fmt=",.2f",
    ))
    return variants


def edge_part(variants):
    pi = DEVICE_CATALOG["raspberrypi5"]
    rows = []
    for name, model in variants.items():
        if not pi.supports(model.precision.value):
            rows.append([name, None, None])
            continue
        eng = InferenceEngine(model, pi)
        rows.append([name, eng.latency_ms(1), eng.throughput_rps(1)])
    print(format_table(
        ["variant", "latency@1 ms", "rps@1"],
        rows,
        title="The same models on a Raspberry Pi 5 (CHI@Edge):",
        float_fmt=",.1f",
    ))


def system_level():
    server = TritonServer(DEVICE_CATALOG["a100"], gpus=2)
    model = food11_classifier().graph_optimized().quantized()
    server.load_model(model)
    load = LoadProfile(rate_rps=4000, n_requests=6000, seed=1)
    metrics = server.sweep(model.name, load,
                           batch_sizes=[1, 8, 32], delays_ms=[0.0, 5.0])
    rows = [[m.config_name.split("/", 1)[1], m.p50_ms, m.p99_ms,
             m.throughput_rps, m.mean_batch] for m in metrics]
    print(format_table(
        ["batching config", "p50 ms", "p99 ms", "rps", "mean batch"],
        rows,
        title="System-level (Triton-style) sweep on 2x A100 @ 4000 rps:",
        float_fmt=",.2f",
    ))

    budget = dict(latency_budget_ms=25.0, min_throughput_rps=3500, min_accuracy=0.88)
    winners = [m for m in metrics if m.meets(**budget)]
    print(f"\nconfigs meeting the budget (p95<=25ms, >=3500rps, acc>=0.88): "
          f"{len(winners)}")
    if winners:
        best = min(winners, key=lambda m: m.p99_ms)
        print(f"recommended: {best.config_name} (p99 {best.p99_ms:.1f} ms, "
              f"{best.throughput_rps:,.0f} rps, ${best.hourly_cost_usd:.2f}/h)")


def main() -> None:
    variants = model_level()
    print()
    edge_part(variants)
    print()
    system_level()


if __name__ == "__main__":
    main()
