"""Quickstart: provision on the simulated testbed and estimate its cost.

Mirrors the course's first two labs (paper §3.1–3.2): bring up a VM with a
floating IP on the Chameleon-like testbed, watch the meter, and translate
the usage into commercial-cloud dollars with the paper's matching rule.

Run:  python examples/quickstart.py
"""

from repro.cloud import chameleon
from repro.core import AWS_CATALOG, GCP_CATALOG, RequirementSpec, cheapest_match


def main() -> None:
    # -- 1. a Chameleon-shaped testbed (KVM + bare-metal + edge sites) -----
    testbed = chameleon()
    kvm = testbed.site("kvm@tacc")

    # -- 2. "Hello, Chameleon": network, VM, floating IP --------------------
    net = kvm.network.create_network("demo", "private-net")
    kvm.network.create_subnet(net.id, "192.168.50.0/24")
    server = kvm.compute.create_server(
        "demo", "node1", "m1.medium", network_id=net.id, lab="lab1", user="me"
    )
    fip = kvm.network.allocate_floating_ip("demo", lab="lab1", user="me")
    kvm.compute.associate_floating_ip(server.id, fip.id)
    print(f"provisioned {server.id} ({server.resource_type}) at {server.fixed_ips[0]}, "
          f"public {fip.address}")

    # -- 3. simulated time passes; the student forgets the VM for 3 days ---
    testbed.run_until(72.0)
    kvm.compute.delete_server(server.id)
    kvm.network.release_floating_ip(fip.id)

    # -- 4. the meter knows ---------------------------------------------------
    records = testbed.usage_records()
    vm_hours = sum(r.unit_hours for r in records if r.kind == "server")
    ip_hours = sum(r.unit_hours for r in records if r.kind == "floating_ip")
    print(f"metered: {vm_hours:.1f} instance-hours, {ip_hours:.1f} floating-IP hours")

    # -- 5. the paper's cost rule: cheapest instance meeting the need ------
    need = RequirementSpec(vcpus=2, ram_gib=4)
    for catalog in (AWS_CATALOG, GCP_CATALOG):
        eq = cheapest_match(need, catalog)
        cost = vm_hours * eq.hourly_usd + ip_hours * catalog.ip_hourly_usd
        print(f"{catalog.provider.upper()}: equivalent {eq.name} "
              f"(${eq.hourly_usd}/h) -> ${cost:.2f} for this one forgotten VM")


if __name__ == "__main__":
    main()
