"""The flagship reproduction: simulate the full course, regenerate §5.

Simulates 191 students over the 14-week semester (labs + projects) on the
testbed simulator and prints Table 1, Figures 1–3, and the headline
statistics of *The Cost of Teaching Operational ML*.

Run:  python examples/course_cost_report.py [seed]
"""

import sys

from repro.core import (
    CohortConfig,
    CohortSimulation,
    fig1_duration_data,
    fig2_cost_distribution,
    fig3_project_usage,
    table1,
)
from repro.core.report import headline_summary


def main(seed: int = 42) -> None:
    print(f"simulating one semester (191 students, seed={seed})...")
    sim = CohortSimulation(config=CohortConfig(seed=seed))
    records = sim.run()
    print(f"  {len(records)} usage records\n")

    print(table1(records).render(), "\n")
    print(fig1_duration_data(records).render(), "\n")
    print(fig2_cost_distribution(records).render(), "\n")
    print(fig3_project_usage(records).render(), "\n")

    print("Headlines (paper: 186,692 total hours; ~$250/student; ~$50k/course):")
    for key, value in headline_summary(records).items():
        print(f"  {key:28s} {value:>12,.0f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 42)
