"""GourmetGram end-to-end: the course's running MLOps example.

Walks the Unit 2–7 arc in one script:

1. **IaC** (Unit 3): Terraform-style plan/apply provisions the cluster VMs
   on the simulated testbed; an Ansible-style playbook installs Kubernetes.
2. **Orchestration** (Unit 2): deploy the food classifier behind a
   load-balanced service; GitOps promotes a new image through
   staging -> production.
3. **Lifecycle** (Units 5-7): the continuous loop serves drifting traffic,
   detects drift, retrains through the workflow engine, gates, canaries,
   and promotes in the model registry.

Run:  python examples/gourmetgram_mlops.py
"""

from repro.cloud import chameleon
from repro.iac import (
    Config,
    Host,
    OpenStackProvider,
    Play,
    Playbook,
    PlaybookRunner,
    State,
    Task,
    apply_plan,
    make_plan,
)
from repro.mlops import FoodDatasetGenerator, MLOpsLifecycle
from repro.orchestration.gitops import Application, GitOpsController, GitRepo, Manifest
from repro.orchestration.kubernetes import Cluster, KubeNode


def provision_infrastructure():
    """Unit 3 part 1: Terraform-style provisioning."""
    testbed = chameleon()
    site = testbed.site("kvm@tacc")
    cfg = Config()
    cfg.resource("os_network", "gg_net")
    cfg.resource("os_subnet", "gg_subnet",
                 network_id="${os_network.gg_net.id}", cidr="192.168.77.0/24")
    for i in range(3):
        cfg.resource("os_server", f"gg_node{i}",
                     name=f"gg-node{i}", flavor="m1.medium",
                     network_id="${os_network.gg_net.id}",
                     depends_on=("os_subnet.gg_subnet",))
    state = State()
    plan = make_plan(cfg, state)
    print(f"terraform plan: {plan.summary()}")
    apply_plan(plan, state, OpenStackProvider(site, "gourmetgram", lab="lab3"))
    nodes = [s for s in site.compute.servers.values()]
    print(f"terraform apply: {len(nodes)} VMs up "
          f"({', '.join(s.fixed_ips[0] for s in nodes)})")
    return nodes


def configure_kubernetes(nodes):
    """Unit 3 part 2: Ansible-style configuration."""
    inventory = {s.name: Host(s.name) for s in nodes}
    playbook = Playbook("install-k8s", (
        Play("kubernetes", tuple(inventory), (
            Task("install containerd", "package", {"name": "containerd"}),
            Task("install kubeadm", "package", {"name": "kubeadm"}),
            Task("kubelet config", "copy",
                 {"dest": "/etc/kubernetes/kubelet.yaml", "content": "cgroupDriver: systemd"},
                 notify=("restart kubelet",)),
            Task("start kubelet", "service", {"name": "kubelet", "state": "running"}),
        ), handlers=(Task("restart kubelet", "service",
                          {"name": "kubelet", "state": "restarted"}),)),
    ))
    runner = PlaybookRunner(inventory)
    results = runner.run(playbook)
    changed = sum(1 for r in results if r.changed)
    print(f"ansible: {len(results)} tasks, {changed} changed")
    rerun = runner.run(playbook)
    print(f"ansible re-run: {sum(1 for r in rerun if r.changed)} changed (idempotent)")

    cluster = Cluster("gourmetgram")
    for s in nodes:
        cluster.add_node(KubeNode(s.name, cpu=2.0, mem_gib=4.0))
    return cluster


def deploy_with_gitops(cluster):
    """Unit 3 part 3: Argo-CD-style declarative environments."""
    repo = GitRepo()
    ctrl = GitOpsController(repo)
    ctrl.register(Application("gg-prod", "envs/prod", cluster, auto_sync=True))

    def manifests(version, replicas):
        return [
            Manifest("Deployment", "food-classifier",
                     {"image": f"gourmetgram:{version}", "replicas": replicas,
                      "labels": {"app": "gg"}}),
            Manifest("Service", "gg-svc", {"selector": {"app": "gg"}, "port": 8000}),
        ]

    repo.commit("envs/prod", manifests("v1", replicas=3))
    ctrl.poll()
    print(f"gitops: {len(cluster.ready_pods('food-classifier'))} replicas of v1 serving")
    hits = [cluster.route("gg-svc").name for _ in range(6)]
    print(f"gitops: load balancing across {len(set(hits))} pods")
    repo.commit("envs/prod", manifests("v2", replicas=3))
    ctrl.poll()
    images = {p.template.image for p in cluster.ready_pods("food-classifier")}
    print(f"gitops: rolled to {images.pop()} with zero downtime")


def run_lifecycle():
    """Units 5-7: the continuous retrain loop over drifting data."""
    generator = FoodDatasetGenerator(seed=3, drift_rate=0.6, class_spread=0.8)
    lifecycle = MLOpsLifecycle(generator, seed=3)
    lifecycle.initial_deploy()
    report = lifecycle.run(until=10.0, dt=1.0)

    print("lifecycle timeline:")
    for t, acc in report.accuracy_series():
        marker = ""
        for e in report.events:
            if e.time == t and e.kind in ("drift", "promote", "rollback", "gate_failed"):
                marker += f"  <- {e.kind}"
        print(f"  t={t:4.1f}  accuracy={acc:.3f}{marker}")
    prod = lifecycle.client.registry.production(MLOpsLifecycle.MODEL_NAME)
    print(f"retrains: {report.retrain_count}; production model: v{prod.version} "
          f"(val_acc={prod.metrics['val_accuracy']:.3f})")


def main() -> None:
    print("== 1. provision (Terraform-style IaC) ==")
    nodes = provision_infrastructure()
    print("\n== 2. configure (Ansible-style CaC) ==")
    cluster = configure_kubernetes(nodes)
    print("\n== 3. deploy (Argo-CD-style GitOps) ==")
    deploy_with_gitops(cluster)
    print("\n== 4. operate (drift -> retrain -> canary -> promote) ==")
    run_lifecycle()


if __name__ == "__main__":
    main()
