"""Spot what-if: re-price the course labs on preemptible capacity.

Simulates the lab phase of the semester, then asks the §5 counterfactual
the paper stops short of: what if the commercial-cloud comparison used
spot/preemptible instances — with their deep discount, their preemptions,
and the Young/Daly checkpointing cost of surviving them?  Also shows the
advisor's per-job recommendation and a budget guard compressing the
Fig-2 cost tail.

Run:  python examples/spot_market_whatif.py [seed]
"""

import sys

from repro.core import CohortConfig, CohortSimulation, CostModel, SpotScenario
from repro.core.costmodel import distribution_stats
from repro.core.report import spot_headline_summary, spot_whatif
from repro.spot import (
    BudgetGuard,
    BudgetPolicy,
    SpotAdvisor,
    SpotTypeSpec,
    commercial_rate_fn,
    simulated_price_path,
    young_daly_interval,
)


def main(seed: int = 42) -> None:
    print(f"simulating the lab phase (191 students, seed={seed})...")
    records = CohortSimulation(config=CohortConfig(seed=seed)).run(include_project=False)
    print(f"  {len(records)} usage records\n")

    # -- the what-if table -------------------------------------------------
    scenario = SpotScenario()
    print(spot_whatif(records, scenario=scenario).render(), "\n")

    h = spot_headline_summary(records)
    print("Headlines (labs on spot, time inflation "
          f"{h['time_inflation']:.3f}x):")
    for key in ("aws_lab_per_student", "aws_lab_savings",
                "gcp_lab_per_student", "gcp_lab_savings"):
        print(f"  {key:24s} ${h[key]:>10,.2f}")
    print()

    # -- what a semester of spot prices looks like -------------------------
    spec = SpotTypeSpec()
    path = simulated_price_path(spec, 14 * 7 * 24, seed=seed)
    print(f"simulated spot price (fraction of on-demand, {len(path)} hourly ticks):")
    print(f"  mean {path.mean():.3f}   min {path.min():.3f}   max {path.max():.3f}"
          f"   (long-run discount target {spec.mean_discount})\n")

    # -- the advisor's per-job call ----------------------------------------
    tau = young_daly_interval(30 / 3600, spec.preempt_rate_per_hour)
    print(f"Young/Daly optimal checkpoint interval at {spec.preempt_rate_per_hour}/h: "
          f"{tau:.2f} h")
    for lam in (0.05, 1.0, 60.0):
        advice = SpotAdvisor().advise(
            work_hours=20.0, on_demand_hourly_usd=3.06,  # ~g5.2xlarge
            preempt_rate_per_hour=lam,
        )
        verdict = "use spot" if advice.use_spot else "stay on-demand"
        print(f"  20 h of training at hazard {lam:>5}/h: {verdict:14s} "
              f"(${advice.spot_cost_usd:,.2f} vs ${advice.on_demand_cost_usd:,.2f}, "
              f"inflation {advice.time_inflation:.2f}x)")
    print()

    # -- budget guardrails vs the Fig-2 tail -------------------------------
    model = CostModel()
    base = distribution_stats(model.per_student_costs(records, "aws"),
                              model.expected_cost_per_student("aws"))
    sim = CohortSimulation(config=CohortConfig(seed=seed))
    kvm = sim.testbed.site("kvm@tacc")
    chi = sim.testbed.site("chi@tacc")
    guard = BudgetGuard(
        sim.testbed.loop, kvm.compute, kvm.meter,
        BudgetPolicy(budget_usd=250.0, check_every_hours=2.0, scope="user",
                     max_vm_age_hours=7 * 24.0),
        rate_fn=commercial_rate_fn(model, "aws"),
    ).watch(chi.compute, chi.meter)
    guard.start(until=sim.course.semester_hours)
    guarded = sim.run(include_project=False)
    after = distribution_stats(model.per_student_costs(guarded, "aws"),
                               model.expected_cost_per_student("aws"))
    print("Budget guard ($250/student, 2 h checks, 7-day reaper) vs the cost tail:")
    print(f"  {'':12s} {'mean':>8s} {'p95':>8s} {'max':>8s} {'max/mean':>9s}")
    for label, s in (("no guard", base), ("guarded", after)):
        print(f"  {label:12s} {s['mean']:>8.2f} {s['p95']:>8.2f} {s['max']:>8.2f} "
              f"{s['max'] / s['mean']:>9.2f}")
    print(f"  ({len(guard.events)} guard actions: "
          f"{len([e for e in guard.events if e.action == 'warn'])} warnings, "
          f"{len([e for e in guard.events if e.action == 'stop'])} stops, "
          f"{len([e for e in guard.events if e.action == 'reap'])} reaps)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 42)
