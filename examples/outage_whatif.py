"""Outage what-if: what does an *unreliable* testbed cost the course?

The paper measures a semester on infrastructure that (mostly) stayed up.
This example asks the robustness counterfactual: run the same cohort
under a seeded fault plan — site outages, per-instance hardware
failures, transient API-error bursts — and price what the faults cost:
redo hours re-billed at commercial rates, labs abandoned outright, and
the analytic outage-inflation view of Table 1.

Run:  python examples/outage_whatif.py [seed]
"""

import sys

from repro.core import CohortConfig, OutageScenario
from repro.core.course import COURSE
from repro.core.report import fault_accounting, outage_whatif, records_digest, table1
from repro.faults import FaultPlanConfig, build_fault_calendar, plan_faulted_cohort
from repro.parallel.engine import execute_plan
from repro.parallel.merge import merge_shard_records


def main(seed: int = 42) -> None:
    config = CohortConfig(seed=seed)

    # -- a reliability ladder: none -> realistic -> rough semester ---------
    ladder = [
        ("reliable", FaultPlanConfig()),
        ("realistic", FaultPlanConfig(seed=11, outage_rate_per_week=0.1,
                                      hazard_rate_per_khour=0.5,
                                      burst_rate_per_week=0.5)),
        ("rough", FaultPlanConfig(seed=11, outage_rate_per_week=0.5,
                                  hazard_rate_per_khour=3.0,
                                  burst_rate_per_week=2.0)),
    ]
    print(f"simulating the semester at three reliability levels (seed={seed})...\n")
    print(f"  {'plan':10s} {'events':>7s} {'redo h':>9s} {'lost h':>9s} "
          f"{'AWS redo $':>11s} {'lab total $':>12s} {'digest':>12s}")
    for name, fault_config in ladder:
        plan, ledger = plan_faulted_cohort(COURSE, config, fault_config)
        results = execute_plan(plan, config, workers=2)
        records = merge_shard_records([r.records for r in results])
        report = fault_accounting(ledger)
        totals = table1(records).totals
        print(f"  {name:10s} {report.events:>7d} "
              f"{report.redo_instance_hours:>9,.0f} "
              f"{report.lost_instance_hours:>9,.0f} "
              f"{report.aws_redo_usd:>11,.2f} "
              f"{totals['aws_cost']:>12,.2f} "
              f"{records_digest(records)[:12]:>12s}")
    print()

    # -- detailed accounting for the rough semester ------------------------
    name, fault_config = ladder[-1]
    calendar = build_fault_calendar(fault_config, horizon_hours=COURSE.semester_hours)
    print(f"the {name!r} fault calendar: {len(calendar.outages)} outages, "
          f"{len(calendar.bursts)} API-error bursts across {len(fault_config.sites)} sites\n")
    plan, ledger = plan_faulted_cohort(COURSE, config, fault_config)
    results = execute_plan(plan, config, workers=2)
    records = merge_shard_records([r.records for r in results])
    print(fault_accounting(ledger).render(), "\n")

    # -- the analytic view: interruption rate -> cost inflation ------------
    scenario = OutageScenario.from_fault_plan(
        outage_rate_per_week=fault_config.outage_rate_per_week,
        hazard_rate_per_khour=fault_config.hazard_rate_per_khour,
    )
    print(outage_whatif(records, scenario=scenario).render())


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 42)
