"""Unit 4–5 tour: fitting and scaling a 13B LLM, then tuning it.

Reproduces the lab storyline (paper §3.4–3.5):

1. memory accounting — why full fp32 fine-tuning of a 13B model cannot fit
   one A100-80GB, and how bf16 / gradient checkpointing / LoRA / QLoRA
   progressively make it fit;
2. distributed paradigms — DDP vs FSDP memory and step time on 4 GPUs,
   pipeline bubble vs micro-batches, ring vs naive all-reduce;
3. hyperparameter search — Ray-Tune-style ASHA vs exhaustive training.

Run:  python examples/distributed_training_tour.py
"""

from repro.common.tables import format_table
from repro.scheduling import Tuner
from repro.training import (
    GPU_CATALOG,
    DDPSimulator,
    FSDPSimulator,
    MemoryEstimator,
    MixedPrecisionPlan,
    PipelineSimulator,
    TrainingMode,
    TrainingSimulator,
    llm,
)
from repro.training.collectives import allreduce_cost


def memory_story(model, gpu):
    configs = [
        ("full fp32", TrainingMode.full(), MixedPrecisionPlan.fp32(), False),
        ("full bf16-mixed", TrainingMode.full(), MixedPrecisionPlan.bf16_mixed(), False),
        ("full bf16 + ckpt", TrainingMode.full(), MixedPrecisionPlan.bf16_mixed(), True),
        ("LoRA r16 bf16 + ckpt", TrainingMode.lora(16), MixedPrecisionPlan.bf16_mixed(), True),
        ("QLoRA r16 + ckpt", TrainingMode.qlora(16), MixedPrecisionPlan.bf16_mixed(), True),
    ]
    rows = []
    for name, mode, precision, ckpt in configs:
        est = MemoryEstimator(model, mode=mode, precision=precision,
                              micro_batch=1, grad_checkpointing=ckpt)
        b = est.breakdown()
        rows.append([name, b.weights_gib, b.gradients_gib + b.master_weights_gib,
                     b.optimizer_gib, b.activations_gib, b.total_gib,
                     "yes" if b.fits(gpu) else "NO"])
    print(format_table(
        ["config", "weights GiB", "grads+master", "optimizer", "activations",
         "total GiB", f"fits {gpu.name}?"],
        rows,
        title=f"Memory accounting for {model.name} ({model.n_params_billion:.1f}B params):",
        float_fmt=",.1f",
    ))


def parallelism_story(model, gpu):
    rows = []
    for p in (1, 2, 4, 8):
        ddp = DDPSimulator(model, gpu, p, mode=TrainingMode.lora(16))
        fsdp = FSDPSimulator(model, gpu, p)
        ddp_mem = ddp.memory_per_rank(1, grad_checkpointing=True).total_gib
        fsdp_mem = fsdp.memory_per_rank(1, grad_checkpointing=True).total_gib
        rows.append([p, ddp.step_time(16).total_s, ddp_mem,
                     fsdp.step_time(16).total_s, fsdp_mem,
                     ddp.scaling_efficiency(16)])
    print(format_table(
        ["GPUs", "DDP(LoRA) step s", "DDP GiB/rank", "FSDP(full) step s",
         "FSDP GiB/rank", "DDP scaling eff"],
        rows,
        title=f"Scaling the fine-tune across {gpu.name}s (global batch 16):",
        float_fmt=",.2f",
    ))

    grad_bytes = model.n_params * 2
    rows = [[algo,
             allreduce_cost(algo, grad_bytes, 4,
                            link_bandwidth_gbs=gpu.interconnect_gbs).total_s]
            for algo in ("naive", "ring", "tree")]
    print(format_table(["all-reduce", "seconds (4 ranks)"], rows,
                       title="Gradient all-reduce (13B bf16):", float_fmt=".3f"))

    rows = [[m, PipelineSimulator.bubble_fraction(4, m)] for m in (1, 4, 16, 64)]
    print(format_table(["micro-batches", "pipeline bubble"], rows,
                       title="Pipeline bubble, 4 stages:", float_fmt=".3f"))


def tuning_story():
    sim = TrainingSimulator(seed=0, noise=0.0)
    tuner = Tuner(sim, max_steps=300, seed=0)
    configs = tuner.random({"lr": (1e-6, 1e-1)}, 18)
    full = tuner.fit(configs)
    asha = tuner.fit_asha(configs, reduction_factor=3, min_steps=10)
    print(format_table(
        ["strategy", "best lr", "best loss", "total steps"],
        [["train all to 300 steps", f"{full.best.config['lr']:.2e}",
          full.best.final_loss, full.total_steps],
         ["ASHA successive halving", f"{asha.best.config['lr']:.2e}",
          asha.best.final_loss, asha.total_steps]],
        title="Hyperparameter search over 18 sampled learning rates:",
        float_fmt=".4f",
    ))


def main() -> None:
    model = llm(13)  # the lab's 13B model
    a100 = GPU_CATALOG["A100-80GB"]
    memory_story(model, a100)
    print()
    parallelism_story(model, a100)
    print()
    tuning_story()


if __name__ == "__main__":
    main()
