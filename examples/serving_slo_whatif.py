"""Serving under web-scale load: SLO attainment vs dollars.

A day-in-the-life of the food classifier behind a real front door: seeded
flash-crowd traffic at millions of requests/day drives admission control,
dynamic batching, and a reactive autoscaler; an outage from the fault
calendar strikes the replica fleet mid-run.  The what-if sweep then asks
the course's recurring question — what does the next nine cost? — across
replica ceilings, batch limits, and queue capacities.

Run:  python examples/serving_slo_whatif.py
"""

from repro.faults.plan import build_serving_calendar
from repro.loadgen import (
    AutoscalerConfig,
    SloPolicy,
    TrafficConfig,
    build_report,
    generate_trace,
    simulate_traffic,
    slo_cost_frontier,
)
from repro.serving import DEVICE_CATALOG, InferenceEngine, food11_classifier

# a 90-minute slice offered at 2M requests/day with one flash crowd —
# short enough to run in seconds, hot enough to make the autoscaler and
# the admission policy both earn their keep
TRAFFIC = TrafficConfig(
    seed=0,
    pattern="flash",
    requests_per_day=2e6,
    duration_hours=1.5,
    flash_count=1,
    flash_multiplier=8.0,
    flash_duration_s=600.0,
)
POLICY = SloPolicy(p99_budget_ms=250.0, max_loss_rate=0.01)


def main() -> None:
    trace = generate_trace(TRAFFIC)
    engine = InferenceEngine(food11_classifier(), DEVICE_CATALOG["server-cpu-16c"])
    scaler = AutoscalerConfig(min_replicas=1, max_replicas=8)
    calendar = build_serving_calendar(
        duration_hours=TRAFFIC.duration_hours,
        seed=7,
        outage_rate_per_week=150.0,  # ~one outage on this 90 min slice...
        outage_mean_hours=0.05,      # ...lasting minutes, not hours
        burst_rate_per_week=150.0,
        burst_mean_hours=0.02,
    )

    result = simulate_traffic(
        trace, engine, autoscaler=scaler, calendar=calendar
    )
    print(build_report(result, engine, POLICY).render())

    print()
    frontier = slo_cost_frontier(
        trace,
        engine,
        policy=POLICY,
        replica_ceilings=(2, 8),
        max_batches=(1, 8, 32),
        queue_capacities=(256,),
        autoscaler=scaler,
        calendar=calendar,
    )
    print(frontier.render())

    print()
    best = min(
        frontier.pareto_points,
        key=lambda p: (p.cost_per_million_usd, p.p99_ms),
    )
    print(
        f"cheapest Pareto point: <= {best.max_replicas} replicas, "
        f"batch <= {best.max_batch}, queue {best.queue_capacity} -> "
        f"p99 {best.p99_ms:,.1f} ms at ${best.cost_per_million_usd:,.2f}/M requests"
    )
    print(
        f"determinism: trace {trace.digest()[:12]}.., "
        f"result {result.digest()[:12]}.. (seeded, order-invariant)"
    )


if __name__ == "__main__":
    main()
