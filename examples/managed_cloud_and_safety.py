"""Units 9–10: safeguards and the commercial-cloud transfer demo.

Reproduces the last two course units (paper §3.9–3.10): deploying
GourmetGram on a GCP-like managed platform (managed Kubernetes, serverless
functions, a managed GPU notebook — contrasting their billing semantics
with IaaS), then wrapping the endpoint in the Unit 9 safeguards (content
filters, confidence-floor abstention, red-teaming, a bias audit) and
scoring the whole system with the ML Test Score rubric the Unit 7 lecture
references.

Run:  python examples/managed_cloud_and_safety.py
"""

from repro.cloud.inventory import CHAMELEON_FLAVORS
from repro.cloud.managed import ManagedKubernetes, ManagedNotebook, ServerlessPlatform
from repro.cloud.quota import Quota
from repro.cloud.site import Site, SiteKind
from repro.common import EventLoop
from repro.common.tables import format_table
from repro.mlops.safety import ContentFilter, Guardrail, RedTeamHarness, bias_audit
from repro.monitoring.mltestscore import RUBRIC_ITEMS, MLTestScorecard, TestStatus
from repro.orchestration.kubernetes import Deployment, PodTemplate


def managed_cloud_demo():
    loop = EventLoop()
    site = Site("gcp-like", SiteKind.KVM, loop, quota=Quota.unlimited(),
                flavors=CHAMELEON_FLAVORS)

    # managed Kubernetes: one call, no Kubespray
    gke = ManagedKubernetes(site, "gourmetgram")
    cluster = gke.create_cluster("gg-prod", nodes=3)
    loop.run_until(0.1)
    cluster.apply_deployment(Deployment("food-classifier",
                                        PodTemplate(image="gg:v3"), replicas=3))
    cluster.reconcile_to_convergence()
    print(f"managed k8s: {len(cluster.ready_pods('food-classifier'))} replicas, "
          f"zero playbooks run")

    # serverless thumbnailer: scale-to-zero billing
    faas = ServerlessPlatform(site, "gourmetgram")
    faas.deploy("thumbnail", lambda img: f"thumb({img})", memory_gb=0.5)
    _, cold = faas.invoke("thumbnail", "photo-1", duration_ms=80)
    _, warm = faas.invoke("thumbnail", "photo-2", duration_ms=80)
    for _ in range(5000):
        faas.invoke("thumbnail", "p", duration_ms=80)
    stats = faas.stats("thumbnail")
    print(f"serverless: cold start {cold:.0f} ms, warm {warm:.0f} ms; "
          f"{stats['invocations']:.0f} invocations cost ${stats['cost_usd']:.4f} "
          f"(idle cost: $0)")

    # managed notebook: hourly GPU billing
    nb = ManagedNotebook(site, "gourmetgram")
    nb.start("finetune-nb")
    loop.run_until(2.1)
    hours = nb.stop("finetune-nb")
    print(f"managed notebook: {hours:.1f} h GPU session, ${nb.cost('finetune-nb'):.2f}")
    loop.run_until(24.0)
    print(f"after 24 h: control-plane fee so far ${gke.management_fee('gg-prod'):.2f}")


def make_endpoint():
    def classify(request):
        text = str(request)
        if "pizza" in text:
            return "pizza", 0.95
        if "blurry" in text:
            return "dessert", 0.35
        return "vegetable", 0.85

    return classify


def safety_demo():
    guard = Guardrail(
        make_endpoint(),
        input_filter=ContentFilter.default_gourmetgram(),
        confidence_floor=0.5,
    )
    for request in ("margherita pizza", "blurry night shot",
                    "pizza, reach me at bob@example.com"):
        resp = guard.serve(request)
        verdict = ("blocked: " + resp.reason if resp.blocked
                   else "abstained" if resp.abstained else f"-> {resp.prediction}")
        print(f"  {request!r:45s} {verdict}")

    report = RedTeamHarness(guard).run(RedTeamHarness.default_suite())
    print(f"red team: {report.defended}/{report.total} attacks defended "
          f"({report.defense_rate:.0%})")

    # bias audit across photo-condition slices
    y_true = ["pizza"] * 60
    y_pred = ["pizza"] * 40 + ["pizza"] * 12 + ["salad"] * 8
    slices = ["daylight"] * 40 + ["low-light"] * 20
    audit = bias_audit(y_true, y_pred, slices, min_support=10)
    print(f"bias audit: overall {audit.overall:.2f}; flagged slices: "
          f"{list(audit.flagged) or 'none'}")


def rubric_demo():
    card = MLTestScorecard("gourmetgram")
    automated = {
        "data": 3, "model": 4, "infrastructure": 5, "monitoring": 4,
    }
    for section, n in automated.items():
        for item in RUBRIC_ITEMS[section][:n]:
            card.record(section, item, TestStatus.AUTOMATED)
        for item in RUBRIC_ITEMS[section][n:n + 1]:
            card.record(section, item, TestStatus.MANUAL)
    rows = [[s, v] for s, v in card.summary().items()]
    print(format_table(["section", "score"], rows,
                       title="ML Test Score (Breck et al., paper ref [3]):",
                       float_fmt=".1f"))
    print(f"readiness: {card.readiness}")
    print(f"top gaps: {card.gaps()[:3]}")


def main() -> None:
    print("== Unit 10: GCP-like managed services ==")
    managed_cloud_demo()
    print("\n== Unit 9: safeguards ==")
    safety_demo()
    print("\n== production readiness ==")
    rubric_demo()


if __name__ == "__main__":
    main()
