"""Tests for the Kubernetes-like orchestrator."""

import pytest

from repro.common import ConflictError, SchedulingError, ValidationError
from repro.orchestration.kubernetes import (
    Cluster,
    Deployment,
    KubeNode,
    PodPhase,
    PodTemplate,
    Service,
)
from repro.orchestration.scaling import HorizontalPodAutoscaler


def three_node_cluster() -> Cluster:
    """The Unit 2 cluster: three m1.medium-sized nodes (2 vCPU / 4 GB)."""
    c = Cluster()
    for i in range(3):
        c.add_node(KubeNode(f"node{i}", cpu=2.0, mem_gib=4.0))
    return c


def gg_template(version: str = "v1") -> PodTemplate:
    return PodTemplate(
        image=f"gourmetgram/food-classifier:{version}",
        cpu_request=0.5,
        mem_request_gib=0.5,
        labels=(("app", "gourmetgram"),),
    )


class TestScheduling:
    def test_replicas_created_and_scheduled(self):
        c = three_node_cluster()
        c.apply_deployment(Deployment("gg", gg_template(), replicas=3))
        c.reconcile_to_convergence()
        pods = c.ready_pods("gg")
        assert len(pods) == 3
        assert all(p.node is not None for p in pods)

    def test_pods_spread_across_nodes(self):
        c = three_node_cluster()
        c.apply_deployment(Deployment("gg", gg_template(), replicas=3))
        c.reconcile_to_convergence()
        nodes = {p.node for p in c.ready_pods("gg")}
        assert len(nodes) == 3  # least-allocated placement spreads

    def test_node_capacity_respected(self):
        c = Cluster()
        c.add_node(KubeNode("only", cpu=1.0, mem_gib=10.0))
        c.apply_deployment(Deployment("gg", gg_template(), replicas=4))  # 4*0.5 cpu > 1.0
        c.reconcile_to_convergence()
        running = [p for p in c.pods.values() if p.phase is PodPhase.RUNNING]
        pending = [p for p in c.pods.values() if p.phase is PodPhase.PENDING]
        assert len(running) == 2
        assert len(pending) == 2
        cpu, _ = c.node_allocated("only")
        assert cpu <= 1.0 + 1e-9

    def test_pending_pods_schedule_when_node_added(self):
        c = Cluster()
        c.add_node(KubeNode("a", cpu=1.0, mem_gib=4.0))
        c.apply_deployment(Deployment("gg", gg_template(), replicas=4))
        c.reconcile_to_convergence()
        c.add_node(KubeNode("b", cpu=1.0, mem_gib=4.0))
        c.reconcile_to_convergence()
        assert len(c.ready_pods("gg")) == 4

    def test_drain_reschedules(self):
        c = three_node_cluster()
        c.apply_deployment(Deployment("gg", gg_template(), replicas=3))
        c.reconcile_to_convergence()
        victim = c.ready_pods("gg")[0].node
        c.drain_node(victim)
        c.reconcile_to_convergence()
        pods = c.ready_pods("gg")
        assert len(pods) == 3
        assert all(p.node != victim for p in pods)

    def test_duplicate_node_rejected(self):
        c = three_node_cluster()
        with pytest.raises(ConflictError):
            c.add_node(KubeNode("node0", cpu=1, mem_gib=1))


class TestScalingAndServices:
    def test_scale_up_and_down(self):
        c = three_node_cluster()
        c.apply_deployment(Deployment("gg", gg_template(), replicas=2))
        c.reconcile_to_convergence()
        c.scale("gg", 5)
        c.reconcile_to_convergence()
        assert len(c.ready_pods("gg")) == 5
        c.scale("gg", 1)
        c.reconcile_to_convergence()
        assert len(c.ready_pods("gg")) == 1

    def test_service_round_robin(self):
        c = three_node_cluster()
        c.apply_deployment(Deployment("gg", gg_template(), replicas=3))
        c.apply_service(Service("gg-svc", selector={"app": "gourmetgram"}))
        c.reconcile_to_convergence()
        hits = [c.route("gg-svc").name for _ in range(6)]
        # perfectly balanced: each pod hit exactly twice
        from collections import Counter

        assert set(Counter(hits).values()) == {2}

    def test_service_no_endpoints_raises(self):
        c = three_node_cluster()
        c.apply_service(Service("empty", selector={"app": "ghost"}))
        with pytest.raises(SchedulingError):
            c.route("empty")

    def test_service_selector_matching(self):
        c = three_node_cluster()
        c.apply_deployment(Deployment("gg", gg_template(), replicas=1))
        c.apply_deployment(
            Deployment(
                "other",
                PodTemplate(image="other:v1", labels=(("app", "other"),)),
                replicas=1,
            )
        )
        c.apply_service(Service("gg-svc", selector={"app": "gourmetgram"}))
        c.reconcile_to_convergence()
        for _ in range(4):
            assert c.route("gg-svc").labels["app"] == "gourmetgram"

    def test_delete_deployment_removes_pods(self):
        c = three_node_cluster()
        c.apply_deployment(Deployment("gg", gg_template(), replicas=3))
        c.reconcile_to_convergence()
        c.delete_deployment("gg")
        c.reconcile_to_convergence()
        assert not c.pods


class TestRollingUpdate:
    def test_template_change_replaces_pods(self):
        c = three_node_cluster()
        c.apply_deployment(Deployment("gg", gg_template("v1"), replicas=3))
        c.reconcile_to_convergence()
        c.apply_deployment(Deployment("gg", gg_template("v2"), replicas=3))
        c.reconcile_to_convergence()
        pods = c.ready_pods("gg")
        assert len(pods) == 3
        assert all(p.template.image.endswith(":v2") for p in pods)

    def test_revision_bumped_on_template_change(self):
        c = three_node_cluster()
        c.apply_deployment(Deployment("gg", gg_template("v1"), replicas=1))
        dep = c.apply_deployment(Deployment("gg", gg_template("v2"), replicas=1))
        assert dep.revision == 2

    def test_apply_same_template_keeps_revision(self):
        c = three_node_cluster()
        c.apply_deployment(Deployment("gg", gg_template("v1"), replicas=1))
        dep = c.apply_deployment(Deployment("gg", gg_template("v1"), replicas=3))
        assert dep.revision == 1

    def test_availability_maintained_during_rollout(self):
        """With max_unavailable=0 the service never drops below `replicas` ready pods."""
        c = three_node_cluster()
        c.apply_deployment(
            Deployment("gg", gg_template("v1"), replicas=3, max_surge=1, max_unavailable=0)
        )
        c.reconcile_to_convergence()
        c.apply_deployment(
            Deployment("gg", gg_template("v2"), replicas=3, max_surge=1, max_unavailable=0)
        )
        for _ in range(30):
            changed = c.reconcile()
            ready = len(c.ready_pods("gg"))
            assert ready >= 3, f"availability dipped to {ready} during rollout"
            if not changed:
                break
        assert all(p.template.image.endswith(":v2") for p in c.ready_pods("gg"))

    def test_zero_surge_zero_unavailable_rejected(self):
        with pytest.raises(ValidationError):
            Deployment("gg", gg_template(), replicas=1, max_surge=0, max_unavailable=0)

    def test_old_replicaset_garbage_collected(self):
        c = three_node_cluster()
        c.apply_deployment(Deployment("gg", gg_template("v1"), replicas=2))
        c.reconcile_to_convergence()
        c.apply_deployment(Deployment("gg", gg_template("v2"), replicas=2))
        c.reconcile_to_convergence()
        live_rs = [rs for rs in c.replicasets.values() if rs.deployment == "gg"]
        assert len(live_rs) == 1
        assert live_rs[0].template.image.endswith(":v2")


class TestHPA:
    def test_scales_up_under_load(self):
        c = three_node_cluster()
        c.apply_deployment(Deployment("gg", gg_template(), replicas=2))
        c.reconcile_to_convergence()
        hpa = HorizontalPodAutoscaler("gg", min_replicas=1, max_replicas=8, target=0.7)
        n = hpa.evaluate(c, metrics=[0.95, 0.9])
        assert n == 3  # ceil(2 * 0.925/0.7) = 3
        c.reconcile_to_convergence()
        assert len(c.ready_pods("gg")) == 3

    def test_dead_band_prevents_flapping(self):
        hpa = HorizontalPodAutoscaler("gg", target=0.7, tolerance=0.1)
        assert hpa.desired_replicas(4, [0.72, 0.71]) == 4

    def test_scale_down_requires_streak(self):
        c = three_node_cluster()
        c.apply_deployment(Deployment("gg", gg_template(), replicas=4))
        c.reconcile_to_convergence()
        hpa = HorizontalPodAutoscaler("gg", target=0.7, scale_down_delay=3)
        assert hpa.evaluate(c, [0.1] * 4) == 4  # streak 1
        assert hpa.evaluate(c, [0.1] * 4) == 4  # streak 2
        assert hpa.evaluate(c, [0.1] * 4) == 1  # streak 3 -> scale down

    def test_burst_resets_scale_down_streak(self):
        c = three_node_cluster()
        c.apply_deployment(Deployment("gg", gg_template(), replicas=4))
        c.reconcile_to_convergence()
        hpa = HorizontalPodAutoscaler("gg", target=0.7, scale_down_delay=2)
        hpa.evaluate(c, [0.1] * 4)
        hpa.evaluate(c, [0.7] * 4)  # back to target: streak resets
        assert hpa.evaluate(c, [0.1] * 4) == 4  # streak only 1 again

    def test_clamped_to_max(self):
        hpa = HorizontalPodAutoscaler("gg", min_replicas=1, max_replicas=5, target=0.5)
        assert hpa.desired_replicas(4, [2.0] * 4) == 5

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValidationError):
            HorizontalPodAutoscaler("gg", min_replicas=5, max_replicas=2)
