"""Tests for the CI/CD pipeline and its GitOps integration."""

import pytest

from repro.common import NotFoundError, ValidationError
from repro.orchestration.cicd import CdPromoter, CiPipeline, CodeRepo
from repro.orchestration.containers import Registry
from repro.orchestration.gitops import Application, GitOpsController, GitRepo
from repro.orchestration.kubernetes import Cluster, KubeNode


def lint(workspace):
    return ("\t" not in "".join(workspace.values()), "tabs are forbidden")


def unit_tests(workspace):
    return ("def test_" in workspace.get("tests.py", ""), "no tests found")


@pytest.fixture()
def pipeline():
    return CiPipeline("gourmetgram/food-classifier",
                      stages=[("lint", lint), ("unit tests", unit_tests)])


GOOD = {"app.py": "def serve(): pass", "tests.py": "def test_serve(): pass"}
BAD = {"app.py": "def serve():\tpass", "tests.py": "def test_serve(): pass"}


class TestCodeRepo:
    def test_commit_and_head(self):
        repo = CodeRepo()
        c1 = repo.commit(GOOD, "initial")
        c2 = repo.commit({**GOOD, "app.py": "v2"}, "update")
        assert repo.head() is c2
        assert [c.message for c in repo.log()] == ["initial", "update"]
        assert c1.sha != c2.sha

    def test_identical_workspaces_same_sha(self):
        repo = CodeRepo()
        a = repo.commit(GOOD, "a")
        b = repo.commit(dict(GOOD), "b")
        assert a.sha == b.sha  # content-addressed

    def test_empty_commit_rejected(self):
        with pytest.raises(ValidationError):
            CodeRepo().commit({}, "x")

    def test_empty_head_raises(self):
        with pytest.raises(NotFoundError):
            CodeRepo().head()


class TestCiPipeline:
    def test_green_build_produces_commit_tagged_image(self, pipeline):
        commit = CodeRepo().commit(GOOD, "feat")
        build = pipeline.run(commit)
        assert build.green
        assert build.image.tag == commit.sha
        assert dict(build.image.labels)["message"] == "feat"

    def test_failing_stage_stops_pipeline(self, pipeline):
        commit = CodeRepo().commit(BAD, "oops")
        build = pipeline.run(commit)
        assert not build.green
        assert build.failed_stage() == "lint"
        assert len(build.stages) == 1  # unit tests never ran
        assert build.image is None

    def test_crashing_stage_is_a_failure(self):
        pipe = CiPipeline("img", stages=[("boom", lambda ws: 1 / 0)])
        build = pipe.run(CodeRepo().commit(GOOD, "x"))
        assert not build.green
        assert "ZeroDivisionError" in build.stages[0].detail

    def test_history_recorded(self, pipeline):
        repo = CodeRepo()
        pipeline.run(repo.commit(GOOD, "a"))
        pipeline.run(repo.commit(BAD, "b"))
        assert [b.green for b in pipeline.history] == [True, False]


class TestCdPromoter:
    def setup_method(self):
        self.registry = Registry()
        self.gitops = GitRepo()
        self.promoter = CdPromoter(
            self.registry, self.gitops,
            environments={"envs/staging": {"replicas": 1}, "envs/prod": {"replicas": 3}},
        )
        self.pipeline = CiPipeline("gg", stages=[("lint", lint), ("unit tests", unit_tests)])

    def test_green_build_reaches_registry_and_manifests(self):
        build = self.pipeline.run(CodeRepo().commit(GOOD, "ship it"))
        updated = self.promoter.promote(build)
        assert set(updated) == {"envs/staging", "envs/prod"}
        ref = f"gg:{build.commit.sha}"
        assert ref in self.registry
        staging = self.gitops.read("envs/staging")
        assert staging[0].spec["image"] == ref
        assert self.gitops.read("envs/prod")[0].spec["replicas"] == 3

    def test_red_build_refused(self):
        build = self.pipeline.run(CodeRepo().commit(BAD, "broken"))
        with pytest.raises(ValidationError, match="red build"):
            self.promoter.promote(build)
        assert len(self.registry.tags("gg")) == 0

    def test_staged_promotion(self):
        build = self.pipeline.run(CodeRepo().commit(GOOD, "v1"))
        updated = self.promoter.promote(build, only=["envs/staging"])
        assert updated == ["envs/staging"]
        with pytest.raises(NotFoundError):
            self.gitops.read("envs/prod")

    def test_commit_to_deployment_end_to_end(self):
        """The full loop: commit -> CI -> CD -> GitOps auto-sync -> pods."""
        cluster = Cluster()
        cluster.add_node(KubeNode("n0", cpu=8, mem_gib=16))
        ctrl = GitOpsController(self.gitops)
        ctrl.register(Application("gg-prod", "envs/prod", cluster, auto_sync=True))

        repo = CodeRepo()
        build = self.pipeline.run(repo.commit(GOOD, "v1"))
        self.promoter.promote(build)
        ctrl.poll()
        pods = cluster.ready_pods("food-classifier")
        assert len(pods) == 3
        assert pods[0].template.image == f"gg:{build.commit.sha}"

        # second commit rolls the deployment to the new sha
        build2 = self.pipeline.run(repo.commit({**GOOD, "app.py": "v2"}, "v2"))
        self.promoter.promote(build2)
        ctrl.poll()
        images = {p.template.image for p in cluster.ready_pods("food-classifier")}
        assert images == {f"gg:{build2.commit.sha}"}
