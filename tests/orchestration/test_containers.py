"""Tests for the container runtime and registry."""

import pytest

from repro.common import ConflictError, InvalidStateError, NotFoundError, ValidationError
from repro.orchestration.containers import ContainerImage, ContainerRuntime, ContainerState, Registry


@pytest.fixture()
def registry():
    r = Registry()
    r.push(ContainerImage("gourmetgram/food-classifier", "v1", command="serve.py"))
    r.push(ContainerImage("gourmetgram/food-classifier", "v2", command="serve.py"))
    return r


class TestRegistry:
    def test_push_pull_round_trip(self, registry):
        img = registry.pull("gourmetgram/food-classifier:v1")
        assert img.tag == "v1"

    def test_pull_missing_raises(self, registry):
        with pytest.raises(NotFoundError):
            registry.pull("nope:latest")

    def test_tags_listing(self, registry):
        assert registry.tags("gourmetgram/food-classifier") == ["v1", "v2"]

    def test_repush_overwrites(self, registry):
        registry.push(ContainerImage("gourmetgram/food-classifier", "v1", size_mb=999))
        assert registry.pull("gourmetgram/food-classifier:v1").size_mb == 999

    def test_invalid_image_rejected(self):
        with pytest.raises(ValidationError):
            ContainerImage("", "v1")
        with pytest.raises(ValidationError):
            ContainerImage("x", "v1", size_mb=0)


class TestRuntime:
    def test_run_pulls_automatically(self, registry):
        rt = ContainerRuntime(registry)
        c = rt.run("gourmetgram/food-classifier:v1", ports={8000: 8000})
        assert c.state is ContainerState.RUNNING
        assert rt.port_owner(8000) is c

    def test_port_conflict(self, registry):
        rt = ContainerRuntime(registry)
        rt.run("gourmetgram/food-classifier:v1", ports={8000: 8000})
        with pytest.raises(ConflictError):
            rt.run("gourmetgram/food-classifier:v2", ports={8000: 8000})

    def test_stopped_container_frees_port(self, registry):
        rt = ContainerRuntime(registry)
        c = rt.run("gourmetgram/food-classifier:v1", ports={8000: 8000})
        rt.stop(c.id)
        c2 = rt.run("gourmetgram/food-classifier:v2", ports={8000: 8000})
        assert rt.port_owner(8000) is c2

    def test_env_merges_image_env(self, registry):
        registry.push(ContainerImage("app", "v1", env=(("MODE", "prod"), ("A", "1"))))
        rt = ContainerRuntime(registry)
        c = rt.run("app:v1", env={"A": "2"})
        assert c.env == {"MODE": "prod", "A": "2"}

    def test_cannot_remove_running(self, registry):
        rt = ContainerRuntime(registry)
        c = rt.run("gourmetgram/food-classifier:v1")
        with pytest.raises(ConflictError):
            rt.remove(c.id)
        rt.stop(c.id, exit_code=137)
        rt.remove(c.id)
        with pytest.raises(NotFoundError):
            rt.logs(c.id)

    def test_double_stop_rejected(self, registry):
        rt = ContainerRuntime(registry)
        c = rt.run("gourmetgram/food-classifier:v1")
        rt.stop(c.id)
        with pytest.raises(InvalidStateError):
            rt.stop(c.id)

    def test_exit_code_recorded(self, registry):
        rt = ContainerRuntime(registry)
        c = rt.run("gourmetgram/food-classifier:v1")
        rt.stop(c.id, exit_code=1)
        assert c.exit_code == 1
        assert "exited with code 1" in rt.logs(c.id)[-1]

    def test_running_listing(self, registry):
        rt = ContainerRuntime(registry)
        a = rt.run("gourmetgram/food-classifier:v1")
        b = rt.run("gourmetgram/food-classifier:v2")
        rt.stop(a.id)
        assert [c.id for c in rt.running()] == [b.id]
