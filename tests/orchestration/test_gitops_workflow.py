"""Tests for the GitOps controller and the workflow engine."""

import pytest

from repro.common import ConflictError, NotFoundError, ValidationError
from repro.orchestration.gitops import (
    Application,
    GitOpsController,
    GitRepo,
    Manifest,
    SyncStatus,
)
from repro.orchestration.kubernetes import Cluster, KubeNode
from repro.orchestration.workflow import StepStatus, Workflow, WorkflowEngine


def cluster() -> Cluster:
    c = Cluster()
    c.add_node(KubeNode("n0", cpu=8, mem_gib=16))
    return c


def gg_manifests(version: str, replicas: int = 2) -> list[Manifest]:
    return [
        Manifest("Deployment", "gg", {
            "image": f"gourmetgram:{version}", "replicas": replicas,
            "labels": {"app": "gg"},
        }),
        Manifest("Service", "gg-svc", {"selector": {"app": "gg"}, "port": 8000}),
    ]


class TestGitRepo:
    def test_commit_bumps_head(self):
        repo = GitRepo()
        assert repo.commit("envs/staging", gg_manifests("v1")) == 1
        assert repo.commit("envs/staging", gg_manifests("v2")) == 2

    def test_read_at_revision(self):
        repo = GitRepo()
        repo.commit("p", gg_manifests("v1"))
        repo.commit("p", gg_manifests("v2"))
        assert repo.read("p", revision=1)[0].spec["image"] == "gourmetgram:v1"
        assert repo.read("p")[0].spec["image"] == "gourmetgram:v2"

    def test_read_missing_path(self):
        with pytest.raises(NotFoundError):
            GitRepo().read("ghost")

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValidationError):
            Manifest("CronJob", "x", {})


class TestGitOpsController:
    def test_sync_applies_to_cluster(self):
        repo = GitRepo()
        repo.commit("envs/prod", gg_manifests("v1", replicas=3))
        ctrl = GitOpsController(repo)
        c = cluster()
        ctrl.register(Application("gg-prod", "envs/prod", c))
        ctrl.sync("gg-prod")
        assert len(c.ready_pods("gg")) == 3
        assert ctrl.status("gg-prod") is SyncStatus.SYNCED

    def test_new_commit_marks_out_of_sync(self):
        repo = GitRepo()
        repo.commit("envs/prod", gg_manifests("v1"))
        ctrl = GitOpsController(repo)
        ctrl.register(Application("gg-prod", "envs/prod", cluster()))
        ctrl.sync("gg-prod")
        repo.commit("envs/prod", gg_manifests("v2"))
        assert ctrl.status("gg-prod") is SyncStatus.OUT_OF_SYNC

    def test_commit_elsewhere_stays_synced(self):
        repo = GitRepo()
        repo.commit("envs/prod", gg_manifests("v1"))
        repo.commit("envs/staging", gg_manifests("v1"))
        ctrl = GitOpsController(repo)
        ctrl.register(Application("gg-prod", "envs/prod", cluster()))
        ctrl.sync("gg-prod")
        repo.commit("envs/staging", gg_manifests("v9"))
        assert ctrl.status("gg-prod") is SyncStatus.SYNCED

    def test_unsynced_app_status_unknown(self):
        repo = GitRepo()
        repo.commit("p", gg_manifests("v1"))
        ctrl = GitOpsController(repo)
        ctrl.register(Application("a", "p", cluster()))
        assert ctrl.status("a") is SyncStatus.UNKNOWN

    def test_auto_sync_poll(self):
        repo = GitRepo()
        repo.commit("envs/staging", gg_manifests("v1"))
        ctrl = GitOpsController(repo)
        c = cluster()
        ctrl.register(Application("gg-staging", "envs/staging", c, auto_sync=True))
        assert ctrl.poll() == ["gg-staging"]
        repo.commit("envs/staging", gg_manifests("v2"))
        assert ctrl.poll() == ["gg-staging"]
        assert ctrl.poll() == []  # converged
        images = {p.template.image for p in c.ready_pods("gg")}
        assert images == {"gourmetgram:v2"}

    def test_staging_canary_prod_environments(self):
        """The Unit 3 pattern: three apps, three paths, one cluster each."""
        repo = GitRepo()
        for env in ("staging", "canary", "production"):
            repo.commit(f"envs/{env}", gg_manifests("v1", replicas=1))
        ctrl = GitOpsController(repo)
        clusters = {env: cluster() for env in ("staging", "canary", "production")}
        for env, c in clusters.items():
            ctrl.register(Application(f"gg-{env}", f"envs/{env}", c, auto_sync=True))
        ctrl.poll()
        # promote v2 to staging only
        repo.commit("envs/staging", gg_manifests("v2", replicas=1))
        ctrl.poll()
        assert {p.template.image for p in clusters["staging"].ready_pods("gg")} == {"gourmetgram:v2"}
        assert {p.template.image for p in clusters["production"].ready_pods("gg")} == {"gourmetgram:v1"}


class TestWorkflowEngine:
    def test_linear_pipeline_passes_outputs(self):
        wf = Workflow("ml-pipeline")
        wf.add_step("extract", lambda ctx: [1, 2, 3])
        wf.add_step("train", lambda ctx: sum(ctx["extract"]), dependencies=("extract",))
        wf.add_step("register", lambda ctx: f"model-{ctx['train']}", dependencies=("train",))
        run = WorkflowEngine().run(wf)
        assert run.succeeded
        assert run.output("register") == "model-6"

    def test_params_available(self):
        wf = Workflow("p")
        wf.add_step("s", lambda ctx: ctx["params"]["lr"] * 2)
        run = WorkflowEngine().run(wf, params={"lr": 0.1})
        assert run.output("s") == pytest.approx(0.2)

    def test_failure_skips_dependents(self):
        wf = Workflow("f")
        wf.add_step("a", lambda ctx: 1)
        wf.add_step("boom", lambda ctx: 1 / 0, dependencies=("a",))
        wf.add_step("c", lambda ctx: 2, dependencies=("boom",))
        wf.add_step("d", lambda ctx: 3, dependencies=("a",))
        run = WorkflowEngine().run(wf)
        assert not run.succeeded
        assert run.results["boom"].status is StepStatus.FAILED
        assert "ZeroDivisionError" in run.results["boom"].error
        assert run.results["c"].status is StepStatus.SKIPPED
        assert run.results["d"].status is StepStatus.SUCCEEDED

    def test_retries(self):
        attempts = {"n": 0}

        def flaky(ctx):
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise RuntimeError("transient")
            return "ok"

        wf = Workflow("r")
        wf.add_step("flaky", flaky, retries=3)
        run = WorkflowEngine().run(wf)
        assert run.succeeded
        assert run.results["flaky"].attempts == 3

    def test_retries_exhausted(self):
        wf = Workflow("r")
        wf.add_step("always", lambda ctx: 1 / 0, retries=2)
        run = WorkflowEngine().run(wf)
        assert run.results["always"].status is StepStatus.FAILED
        assert run.results["always"].attempts == 3

    def test_when_guard_skips_step(self):
        """The model-promotion gate: only promote if eval passed."""
        wf = Workflow("promo")
        wf.add_step("evaluate", lambda ctx: {"accuracy": 0.4})
        wf.add_step(
            "promote",
            lambda ctx: "promoted",
            dependencies=("evaluate",),
            when=lambda ctx: ctx["evaluate"]["accuracy"] >= 0.8,
        )
        run = WorkflowEngine().run(wf)
        assert run.results["promote"].status is StepStatus.SKIPPED
        assert run.succeeded  # a skip by guard is not a failure

    def test_cycle_rejected(self):
        wf = Workflow("c")
        wf.add_step("a", lambda ctx: 1, dependencies=("b",))
        wf.add_step("b", lambda ctx: 1, dependencies=("a",))
        with pytest.raises(ValidationError):
            WorkflowEngine().run(wf)

    def test_unknown_dependency_rejected(self):
        wf = Workflow("u")
        wf.add_step("a", lambda ctx: 1, dependencies=("ghost",))
        with pytest.raises(ValidationError):
            WorkflowEngine().run(wf)

    def test_duplicate_step_rejected(self):
        wf = Workflow("d")
        wf.add_step("a", lambda ctx: 1)
        with pytest.raises(ConflictError):
            wf.add_step("a", lambda ctx: 2)

    def test_history_recorded(self):
        engine = WorkflowEngine()
        wf = Workflow("h")
        wf.add_step("s", lambda ctx: 1)
        engine.run(wf)
        engine.run(wf)
        assert len(engine.history) == 2
