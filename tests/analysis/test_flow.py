"""Unit tests for the flow layer: module index, call graph, CFG dataflow."""

import ast
from pathlib import Path

from repro.analysis.engine import ModuleContext, module_name_for
from repro.analysis.flow import build_program
from repro.analysis.flow.cfg import build_cfg, may_reach_exit_open


def program_of(sources: dict[str, str]):
    ctxs = [
        ModuleContext(path=p, module=module_name_for(Path(p)), source=s, tree=ast.parse(s))
        for p, s in sources.items()
    ]
    return build_program(ctxs)


class TestModuleIndex:
    def test_functions_and_methods_indexed(self):
        program = program_of(
            {"repro/a.py": "def f():\n    pass\n\nclass C:\n    def m(self):\n        pass\n"}
        )
        assert "repro.a.f" in program.index.functions
        assert "repro.a.C" in program.index.classes
        assert program.index.classes["repro.a.C"].methods["m"] == "repro.a.C.m"

    def test_reexport_resolution(self):
        program = program_of(
            {
                "repro/pkg/__init__.py": "from repro.pkg.impl import work\n",
                "repro/pkg/impl.py": "def work():\n    pass\n",
            }
        )
        assert program.index.resolve_dotted("repro.pkg.work") == "repro.pkg.impl.work"

    def test_attr_class_from_constructor_assignment(self):
        program = program_of(
            {
                "repro/svc.py": (
                    "class Engine:\n"
                    "    def run(self):\n"
                    "        pass\n"
                    "\n"
                    "class Host:\n"
                    "    def __init__(self):\n"
                    "        self.engine = Engine()\n"
                )
            }
        )
        assert program.index.attr_class("repro.svc.Host", "engine") == "repro.svc.Engine"

    def test_attr_class_from_annotated_param(self):
        program = program_of(
            {
                "repro/svc.py": (
                    "class Engine:\n"
                    "    pass\n"
                    "\n"
                    "class Host:\n"
                    "    def __init__(self, engine: Engine):\n"
                    "        self.engine = engine\n"
                )
            }
        )
        assert program.index.attr_class("repro.svc.Host", "engine") == "repro.svc.Engine"

    def test_annotation_union_and_string_forms(self):
        src = (
            "class Engine:\n"
            "    pass\n"
            "\n"
            "def a(e: 'Engine'):\n"
            "    pass\n"
            "\n"
            "def b(e: Engine | None):\n"
            "    pass\n"
        )
        program = program_of({"repro/svc.py": src})
        ctx = program.index.modules["repro.svc"]
        for fname in ("a", "b"):
            node = program.index.functions[f"repro.svc.{fname}"].node
            assert (
                program.index.annotation_class(ctx, node.args.args[0].annotation)
                == "repro.svc.Engine"
            )

    def test_container_annotations_stay_opaque(self):
        src = "class Engine:\n    pass\n\ndef f(es: list[Engine]):\n    pass\n"
        program = program_of({"repro/svc.py": src})
        ctx = program.index.modules["repro.svc"]
        node = program.index.functions["repro.svc.f"].node
        assert program.index.annotation_class(ctx, node.args.args[0].annotation) is None

    def test_method_lookup_walks_bases(self):
        src = (
            "class Base:\n"
            "    def shared(self):\n"
            "        pass\n"
            "\n"
            "class Child(Base):\n"
            "    pass\n"
        )
        program = program_of({"repro/svc.py": src})
        assert program.index.lookup_method("repro.svc.Child", "shared") == "repro.svc.Base.shared"


class TestCallGraph:
    def test_local_and_imported_call_edges(self):
        program = program_of(
            {
                "repro/a.py": "def helper():\n    pass\n",
                "repro/b.py": (
                    "from repro.a import helper\n"
                    "\n"
                    "def top():\n"
                    "    helper()\n"
                ),
            }
        )
        assert "repro.a.helper" in program.graph.edges["repro.b.top"]

    def test_method_edge_through_typed_attribute(self):
        src = (
            "class Engine:\n"
            "    def run(self):\n"
            "        pass\n"
            "\n"
            "class Host:\n"
            "    def __init__(self):\n"
            "        self.engine = Engine()\n"
            "\n"
            "    def go(self):\n"
            "        self.engine.run()\n"
        )
        program = program_of({"repro/svc.py": src})
        assert "repro.svc.Engine.run" in program.graph.edges["repro.svc.Host.go"]

    def test_constructor_edge_reaches_init(self):
        src = (
            "class Engine:\n"
            "    def __init__(self):\n"
            "        pass\n"
            "\n"
            "def make():\n"
            "    return Engine()\n"
        )
        program = program_of({"repro/svc.py": src})
        assert "repro.svc.Engine.__init__" in program.graph.edges["repro.svc.make"]

    def test_factory_return_annotation_types_the_result(self):
        src = (
            "class Engine:\n"
            "    def run(self):\n"
            "        pass\n"
            "\n"
            "def make() -> Engine:\n"
            "    return Engine()\n"
            "\n"
            "def top():\n"
            "    e = make()\n"
            "    e.run()\n"
        )
        program = program_of({"repro/svc.py": src})
        assert "repro.svc.Engine.run" in program.graph.edges["repro.svc.top"]

    def test_reference_edge_for_callback_argument(self):
        src = (
            "def worker(batch):\n"
            "    pass\n"
            "\n"
            "def submit_all(pool, batches):\n"
            "    for b in batches:\n"
            "        pool.submit(worker, b)\n"
        )
        program = program_of({"repro/svc.py": src})
        assert "repro.svc.worker" in program.graph.edges["repro.svc.submit_all"]

    def test_reachability_and_witness_chain(self):
        program = program_of(
            {
                "repro/a.py": (
                    "def leaf():\n    pass\n\n"
                    "def mid():\n    leaf()\n\n"
                    "def entry():\n    mid()\n\n"
                    "def island():\n    pass\n"
                )
            }
        )
        parents = program.graph.reachable_from(["repro.a.entry"])
        assert "repro.a.leaf" in parents
        assert "repro.a.island" not in parents
        chain = program.graph.witness_chain(parents, "repro.a.leaf")
        assert chain == ["repro.a.entry", "repro.a.mid", "repro.a.leaf"]


def leaked_in(src: str) -> int:
    fn = ast.parse(src).body[0]
    assert isinstance(fn, ast.FunctionDef)
    cfg = build_cfg(fn)

    def is_open(c: ast.Call) -> bool:
        return isinstance(c.func, ast.Attribute) and c.func.attr == "open_span"

    def is_close(c: ast.Call) -> bool:
        return isinstance(c.func, ast.Attribute) and c.func.attr == "close_span"

    return len(may_reach_exit_open(cfg, is_open, is_close))


class TestCFGDataflow:
    def test_straight_line_pairing_is_clean(self):
        assert leaked_in("def f(m):\n    m.open_span()\n    m.close_span()\n") == 0

    def test_early_return_leaks(self):
        src = (
            "def f(m, ok):\n"
            "    m.open_span()\n"
            "    if not ok:\n"
            "        return None\n"
            "    m.close_span()\n"
        )
        assert leaked_in(src) == 1

    def test_raise_between_open_and_close_leaks(self):
        src = (
            "def f(m, ok):\n"
            "    m.open_span()\n"
            "    if not ok:\n"
            "        raise ValueError()\n"
            "    m.close_span()\n"
        )
        assert leaked_in(src) == 1

    def test_try_finally_covers_exception_and_return(self):
        src = (
            "def f(m, ok):\n"
            "    m.open_span()\n"
            "    try:\n"
            "        if not ok:\n"
            "            raise ValueError()\n"
            "        return 1\n"
            "    finally:\n"
            "        m.close_span()\n"
        )
        assert leaked_in(src) == 0

    def test_statement_in_try_may_raise_to_exit(self):
        src = (
            "def f(m, rid):\n"
            "    m.open_span()\n"
            "    try:\n"
            "        v = int(rid)\n"
            "    except ValueError:\n"
            "        pass\n"
            "    m.close_span()\n"
            "    return v\n"
        )
        # int(rid) can raise something ValueError does not catch -> leak path
        assert leaked_in(src) == 1

    def test_catch_all_handler_keeps_it_clean(self):
        src = (
            "def f(m, rid):\n"
            "    m.open_span()\n"
            "    try:\n"
            "        v = int(rid)\n"
            "    except Exception:\n"
            "        v = 0\n"
            "    m.close_span()\n"
            "    return v\n"
        )
        assert leaked_in(src) == 0

    def test_while_true_break_after_close_is_clean(self):
        src = (
            "def f(m, items):\n"
            "    m.open_span()\n"
            "    while True:\n"
            "        if items:\n"
            "            m.close_span()\n"
            "            break\n"
        )
        assert leaked_in(src) == 0

    def test_close_in_nested_def_does_not_count(self):
        src = (
            "def f(m):\n"
            "    m.open_span()\n"
            "    def later():\n"
            "        m.close_span()\n"
            "    return later\n"
        )
        assert leaked_in(src) == 1
