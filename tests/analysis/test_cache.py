"""Tests for the incremental analysis cache (sha256 file keys + program digest)."""

from pathlib import Path

from repro.analysis.cache import AnalysisCache, program_digest, source_sha
from repro.analysis.engine import SuppressedFinding, analyze_paths
from repro.analysis.findings import Finding, Severity

RULES_KEY = "DET001,DET002"

DIRTY = "import numpy as np\n\n\ndef f():\n    return np.random.rand()\n"
CLEAN = "def g():\n    return 42\n"


def a_finding(path: str = "x.py") -> Finding:
    return Finding(file=path, line=3, rule_id="DET001", severity=Severity.ERROR, message="m")


class TestRoundTrip:
    def test_file_entry_round_trips_through_disk(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = AnalysisCache(path=path, rules_key=RULES_KEY)
        waived = SuppressedFinding(finding=a_finding(), reason="because")
        cache.store_file("x.py", DIRTY, [a_finding()], [waived])
        cache.save()

        loaded = AnalysisCache.load(path, RULES_KEY)
        hit = loaded.lookup_file("x.py", DIRTY)
        assert hit is not None
        active, suppressed = hit
        assert active == [a_finding()]
        assert suppressed[0].reason == "because"

    def test_program_entry_round_trips_through_disk(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = AnalysisCache(path=path, rules_key=RULES_KEY)
        sources = {"a.py": CLEAN, "b.py": DIRTY}
        cache.store_program(sources, [a_finding("b.py")], [])
        cache.save()

        loaded = AnalysisCache.load(path, RULES_KEY)
        hit = loaded.lookup_program(sources)
        assert hit is not None
        assert hit[0] == [a_finding("b.py")]

    def test_save_is_a_noop_when_nothing_changed(self, tmp_path):
        path = tmp_path / "cache.json"
        AnalysisCache(path=path, rules_key=RULES_KEY).save()
        assert not path.exists()


class TestInvalidation:
    def test_changed_source_misses(self, tmp_path):
        cache = AnalysisCache(path=tmp_path / "c.json", rules_key=RULES_KEY)
        cache.store_file("x.py", CLEAN, [], [])
        assert cache.lookup_file("x.py", CLEAN) == ([], [])
        assert cache.lookup_file("x.py", CLEAN + "# edited\n") is None

    def test_any_changed_file_invalidates_the_program_entry(self, tmp_path):
        cache = AnalysisCache(path=tmp_path / "c.json", rules_key=RULES_KEY)
        sources = {"a.py": CLEAN, "b.py": DIRTY}
        cache.store_program(sources, [], [])
        assert cache.lookup_program(sources) is not None
        assert cache.lookup_program({**sources, "a.py": CLEAN + "#\n"}) is None
        assert cache.lookup_program({"a.py": CLEAN}) is None  # file removed

    def test_rules_key_mismatch_starts_cold(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = AnalysisCache(path=path, rules_key=RULES_KEY)
        cache.store_file("x.py", CLEAN, [], [])
        cache.save()
        other = AnalysisCache.load(path, "RES001")
        assert other.lookup_file("x.py", CLEAN) is None

    def test_corrupt_cache_degrades_to_empty(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json")
        loaded = AnalysisCache.load(path, RULES_KEY)
        assert loaded.files == {}
        path.write_text('{"version": 999, "rules_key": "%s"}' % RULES_KEY)
        assert AnalysisCache.load(path, RULES_KEY).files == {}

    def test_prune_missing_drops_departed_files(self, tmp_path):
        cache = AnalysisCache(path=tmp_path / "c.json", rules_key=RULES_KEY)
        cache.store_file("keep.py", CLEAN, [], [])
        cache.store_file("gone.py", CLEAN, [], [])
        cache.dirty = False
        cache.prune_missing({"keep.py"})
        assert "gone.py" not in cache.files
        assert "keep.py" in cache.files
        assert cache.dirty


class TestDigest:
    def test_program_digest_is_order_independent(self):
        d1 = program_digest({"a.py": CLEAN, "b.py": DIRTY})
        d2 = program_digest({"b.py": DIRTY, "a.py": CLEAN})
        assert d1 == d2
        assert d1 != program_digest({"a.py": CLEAN, "b.py": DIRTY + "#\n"})

    def test_source_sha_tracks_content(self):
        assert source_sha(CLEAN) == source_sha(CLEAN)
        assert source_sha(CLEAN) != source_sha(DIRTY)


class TestEngineIntegration:
    def test_unchanged_files_are_not_reanalyzed(self, tmp_path):
        tree = tmp_path / "proj"
        tree.mkdir()
        (tree / "dirty.py").write_text(DIRTY)
        (tree / "clean.py").write_text(CLEAN)

        cache = AnalysisCache(path=tmp_path / "cache.json", rules_key="all")
        first = analyze_paths([tree], cache=cache)
        assert first.files_checked == 2
        assert first.files_reanalyzed == 2
        cache.save()

        warm = AnalysisCache.load(tmp_path / "cache.json", "all")
        second = analyze_paths([tree], cache=warm)
        assert second.files_checked == 2
        assert second.files_reanalyzed == 0
        # cached findings are identical to fresh ones
        assert [f.rule_id for f in second.findings] == [f.rule_id for f in first.findings]

        (tree / "clean.py").write_text(CLEAN + "# touched\n")
        third = analyze_paths([tree], cache=warm)
        assert third.files_reanalyzed == 1

    def test_whole_program_entry_survives_reload(self, tmp_path):
        tree = tmp_path / "proj" / "repro"
        tree.mkdir(parents=True)
        (tree / "mergex.py").write_text(
            "import numpy as np\n\n\ndef seeded():\n    return np.random.default_rng(7)\n"
        )
        cache = AnalysisCache(path=tmp_path / "cache.json", rules_key="SEED001")
        first = analyze_paths(
            [tmp_path / "proj"], whole_program=True, rules=["SEED001"], cache=cache
        )
        assert [f.rule_id for f in first.findings] == ["SEED001"]
        cache.save()

        warm = AnalysisCache.load(Path(tmp_path / "cache.json"), "SEED001")
        second = analyze_paths(
            [tmp_path / "proj"], whole_program=True, rules=["SEED001"], cache=warm
        )
        assert second.files_reanalyzed == 0
        assert [f.rule_id for f in second.findings] == ["SEED001"]
