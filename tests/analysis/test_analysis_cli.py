"""CLI behaviour: exit codes, formats, baseline workflow, --stats."""

import json

import pytest

from repro.analysis.cli import main

BAD = "import time\nt = time.time()\n"
CLEAN = "x = 1\n"


@pytest.fixture()
def tree(tmp_path, monkeypatch):
    """A scratch tree with one violation, cwd-pinned so default baseline paths resolve."""
    src = tmp_path / "code"
    src.mkdir()
    (src / "bad.py").write_text(BAD)
    (src / "clean.py").write_text(CLEAN)
    monkeypatch.chdir(tmp_path)
    return src


def test_clean_tree_exits_zero(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "ok.py").write_text(CLEAN)
    assert main(["ok.py"]) == 0
    assert "0 new findings" in capsys.readouterr().out


def test_findings_exit_one_with_text_report(tree, capsys):
    assert main(["code"]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out
    assert "bad.py:2" in out


def test_json_format(tree, capsys):
    assert main(["code", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 2
    assert payload["findings"][0]["rule_id"] == "DET001"
    assert payload["findings"][0]["line"] == 2


def test_write_baseline_then_gate_passes(tree, capsys):
    assert main(["code", "--write-baseline", "--baseline", "base.json"]) == 0
    assert main(["code", "--baseline", "base.json"]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out


def test_new_finding_on_top_of_baseline_fails(tree, capsys):
    assert main(["code", "--write-baseline", "--baseline", "base.json"]) == 0
    (tree / "worse.py").write_text(BAD)
    assert main(["code", "--baseline", "base.json"]) == 1


def test_stats_mode(tree, capsys):
    assert main(["code", "--stats"]) == 1
    out = capsys.readouterr().out
    assert "per-rule counts" in out
    assert "DET001" in out and "RES002" in out


def test_select_subset(tree, capsys):
    assert main(["code", "--select", "DET003"]) == 0


def test_unknown_rule_is_usage_error(tree, capsys):
    assert main(["code", "--select", "NOPE999"]) == 2


def test_missing_path_is_usage_error(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["does-not-exist"]) == 2


def test_github_format_emits_workflow_annotations(tree, capsys):
    assert main(["code", "--format", "github"]) == 1
    out = capsys.readouterr().out
    assert "::error file=" in out
    assert "line=2" in out
    assert "title=DET001" in out


def test_min_severity_demotes_warnings_to_advisory(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "warn.py").write_text("for x in {1, 2}:\n    pass\n")
    assert main(["warn.py"]) == 1  # DET003 warning gates by default
    assert main(["warn.py", "--min-severity", "error"]) == 0
    out = capsys.readouterr().out
    assert "(advisory)" in out
    assert "1 advisory" in out


def test_min_severity_advisory_in_github_format(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "warn.py").write_text("for x in {1, 2}:\n    pass\n")
    assert main(["warn.py", "--min-severity", "error", "--format", "github"]) == 0
    out = capsys.readouterr().out
    assert "::warning file=" in out


def test_prune_baseline_reports_and_removes_stale_entries(tree, capsys):
    assert main(["code", "--write-baseline", "--baseline", "base.json"]) == 0
    (tree / "bad.py").write_text(CLEAN)  # the baselined finding is fixed
    assert main(["code", "--baseline", "base.json", "--prune-baseline"]) == 0
    out = capsys.readouterr().out
    assert "stale baseline" in out
    # a second prune finds nothing left to remove
    assert main(["code", "--baseline", "base.json", "--prune-baseline"]) == 0
    assert "no stale entries" in capsys.readouterr().out


def test_whole_program_flag_runs_flow_rules(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    pkg = tmp_path / "repro"
    pkg.mkdir()
    (pkg / "mergex.py").write_text(
        "import numpy as np\n\n\ndef seeded():\n    return np.random.default_rng(7)\n"
    )
    assert main(["repro", "--select", "SEED001"]) == 1  # auto-enables whole-program
    out = capsys.readouterr().out
    assert "SEED001" in out


def test_graph_dump(tree, capsys):
    assert main(["code", "--graph"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "entry_points" in payload
    assert "edges" in payload
    assert payload["modules"] == ["bad", "clean"]


def test_cache_reports_unchanged_files(tree, capsys):
    assert main(["code", "--cache", "cache.json", "--write-baseline", "--baseline", "b.json"]) == 0
    assert main(["code", "--cache", "cache.json", "--baseline", "b.json"]) == 0
    out = capsys.readouterr().out
    assert "from cache" in out
