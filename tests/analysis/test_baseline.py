"""Baseline semantics: snippet matching, entry consumption, line-drift resilience."""

import pytest

from repro.analysis import Baseline, Finding, Severity
from repro.common.errors import ValidationError


def finding(file="a.py", line=3, rule_id="DET001", message="m"):
    return Finding(file=file, line=line, rule_id=rule_id, severity=Severity.ERROR, message=message)


SOURCE = "import time\n\nt = time.time()\n"


def test_roundtrip(tmp_path):
    base = Baseline.from_findings([finding()], {"a.py": SOURCE})
    path = tmp_path / "baseline.json"
    base.save(path)
    loaded = Baseline.load(path)
    assert loaded.entries == base.entries


def test_missing_file_is_empty_baseline(tmp_path):
    assert len(Baseline.load(tmp_path / "nope.json")) == 0


def test_malformed_baseline_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("not json")
    with pytest.raises(ValidationError):
        Baseline.load(path)
    path.write_text('{"findings": [{"file": "a.py"}]}')
    with pytest.raises(ValidationError):
        Baseline.load(path)


def test_partition_matches_on_snippet_not_line_number():
    base = Baseline.from_findings([finding(line=3)], {"a.py": SOURCE})
    # two comment lines added above: the finding moved to line 5
    drifted_source = "# one\n# two\nimport time\n\nt = time.time()\n"
    moved = finding(line=5)
    new, old = base.partition([moved], {"a.py": drifted_source})
    assert new == []
    assert old == [moved]


def test_partition_consumes_entries():
    """One baseline entry cannot absolve two identical findings."""
    src = "import time\nt = time.time()\nt = time.time()\n"
    first, second = finding(line=2, message="x"), finding(line=3, message="x")
    base = Baseline.from_findings([first], {"a.py": src})
    new, old = base.partition([first, second], {"a.py": src})
    assert old == [first]
    assert new == [second]


def test_different_rule_same_line_not_matched():
    base = Baseline.from_findings([finding(rule_id="DET001")], {"a.py": SOURCE})
    other = finding(rule_id="DET003")
    new, old = base.partition([other], {"a.py": SOURCE})
    assert new == [other]
    assert old == []
