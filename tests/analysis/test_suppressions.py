"""Inline ``# repro: noqa`` parsing and enforcement of the mandatory reason."""

from pathlib import Path

from repro.analysis import analyze_source
from repro.analysis.suppressions import parse_suppressions

FIXTURES = Path(__file__).parent / "fixtures"


def test_parse_single_rule():
    sups = parse_suppressions("x = 1  # repro: noqa DET001 (calibration uses wall time)\n")
    assert sups[1].rule_ids == frozenset({"DET001"})
    assert sups[1].reason == "calibration uses wall time"


def test_parse_multiple_rules_one_comment():
    sups = parse_suppressions("y = 2  # repro: noqa DET001, DET003 (both accepted here)\n")
    assert sups[1].rule_ids == frozenset({"DET001", "DET003"})


def test_reason_is_mandatory():
    assert parse_suppressions("z = 3  # repro: noqa DET001\n") == {}
    assert parse_suppressions("z = 3  # repro: noqa DET001 ()\n") == {}


def test_plain_ruff_noqa_is_not_ours():
    assert parse_suppressions("w = 4  # noqa: E501\n") == {}


def test_suppression_only_covers_named_rule():
    source = "import time\nt = time.time()  # repro: noqa DET003 (wrong rule named)\n"
    findings, suppressed = analyze_source(source, module="m")
    assert [f.rule_id for f in findings] == ["DET001"]
    assert suppressed == []


def test_fixture_waived_and_unwaived():
    source = (FIXTURES / "suppressed.py").read_text()
    findings, suppressed = analyze_source(source, path="suppressed.py", module="fixture")
    # the reasoned noqa waives its line; the reason-less one does not
    assert len(suppressed) == 1
    assert suppressed[0].finding.rule_id == "DET001"
    assert suppressed[0].reason == "fixture exercises the suppression parser"
    assert [f.rule_id for f in findings] == ["DET001"]
