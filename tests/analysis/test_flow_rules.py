"""Fixture-corpus tests for the whole-program rule pack (DESIGN §10)."""

from pathlib import Path

from repro.analysis.engine import analyze_paths, analyze_program

FIXTURES = Path(__file__).parent / "fixtures" / "flow"
REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def run_rule(case: str, rule_id: str):
    result = analyze_paths([FIXTURES / case], whole_program=True, rules=[rule_id])
    return result


class TestPUR001:
    def test_fires_on_reachable_impurity(self):
        result = run_rule("pur001_pos", "PUR001")
        assert len(result.findings) == 2
        assert all(f.rule_id == "PUR001" for f in result.findings)
        messages = " | ".join(f.message for f in result.findings)
        assert "default_rng" in messages
        assert "module global" in messages
        # every finding carries a witness chain back to the entry point
        assert all("_execute_batch" in f.message for f in result.findings)

    def test_quiet_when_rng_flows_in_and_impure_code_is_unreachable(self):
        result = run_rule("pur001_neg", "PUR001")
        assert result.findings == []


class TestColumnarEntryPoint:
    """The columnar kernel is a shard-execution entry point (DESIGN §11):
    ``repro.columnar.kernels.emit_records`` must be transitively pure, and
    ``repro.columnar.planner`` is plan-time (may root the seed tree)."""

    def test_fires_on_rng_and_wall_clock_reachable_from_emit_records(self):
        result = run_rule("columnar_pos", "PUR001")
        assert len(result.findings) == 2
        assert all(f.rule_id == "PUR001" for f in result.findings)
        messages = " | ".join(f.message for f in result.findings)
        assert "default_rng" in messages
        assert all("emit_records" in f.message for f in result.findings)

    def test_quiet_on_pure_kernels_and_plan_time_planner(self):
        result = analyze_paths(
            [FIXTURES / "columnar_neg"],
            whole_program=True,
            rules=["PUR001", "SEED001"],
        )
        assert result.findings == []


class TestResilienceEntryPoint:
    """The closed-loop runtime lives inside ``simulate_traffic``'s purity
    boundary (DESIGN §12): its hooks must consume plan-time draws, never
    make their own, while ``repro.resilience.clients`` is registered
    plan-time (may root the seed tree)."""

    def test_fires_on_rng_and_clock_in_runtime_hooks(self):
        result = run_rule("resilience_pos", "PUR001")
        assert len(result.findings) == 2
        assert all(f.rule_id == "PUR001" for f in result.findings)
        messages = " | ".join(f.message for f in result.findings)
        assert "default_rng" in messages
        assert all("simulate_traffic" in f.message for f in result.findings)

    def test_quiet_on_pure_runtime_and_plan_time_clients(self):
        result = analyze_paths(
            [FIXTURES / "resilience_neg"],
            whole_program=True,
            rules=["PUR001", "SEED001"],
        )
        assert result.findings == []


class TestSweepEntryPoint:
    """The phase-map sweep's execute half is a shard entry point (DESIGN
    §13): ``repro.resilience.sweep._simulate_point`` must be transitively
    pure — a driver that re-jitters retries or stamps the clock per point
    would make the phase map worker-count-dependent."""

    def test_fires_on_rng_and_clock_in_naive_point_runner(self):
        result = run_rule("sweep_pos", "PUR001")
        assert len(result.findings) == 2
        assert all(f.rule_id == "PUR001" for f in result.findings)
        messages = " | ".join(f.message for f in result.findings)
        assert "default_rng" in messages
        assert all("_simulate_point" in f.message for f in result.findings)

    def test_quiet_on_plan_execute_split(self):
        result = analyze_paths(
            [FIXTURES / "sweep_neg"],
            whole_program=True,
            rules=["PUR001", "SEED001"],
        )
        assert result.findings == []


class TestSEED001:
    def test_fires_on_literal_and_module_constant_seeds(self):
        result = run_rule("seed001_pos", "SEED001")
        assert len(result.findings) == 3
        assert all(f.rule_id == "SEED001" for f in result.findings)
        lines = sorted(f.line for f in result.findings)
        assert len(set(lines)) == 3

    def test_quiet_on_parameter_spawn_and_plan_time_seeds(self):
        result = run_rule("seed001_neg", "SEED001")
        assert result.findings == []


class TestRES004:
    def test_fires_on_early_return_and_exception_leak_paths(self):
        result = run_rule("res004_pos", "RES004")
        assert len(result.findings) == 2
        assert all(f.rule_id == "RES004" for f in result.findings)
        assert all("without closing this span" in f.message for f in result.findings)

    def test_quiet_when_every_path_closes(self):
        result = run_rule("res004_neg", "RES004")
        assert result.findings == []


class TestDET004:
    def test_fires_on_unordered_flow_into_digest_and_json(self):
        result = run_rule("det004_pos", "DET004")
        assert len(result.findings) == 2
        assert all(f.rule_id == "DET004" for f in result.findings)
        messages = " | ".join(f.message for f in result.findings)
        assert "digest" in messages or "update" in messages
        assert "json" in messages

    def test_quiet_when_sorted_at_the_source(self):
        result = run_rule("det004_neg", "DET004")
        assert result.findings == []


def _real_sources() -> dict[str, str]:
    return {
        str(p.relative_to(REPO_SRC.parent)): p.read_text()
        for p in sorted(REPO_SRC.rglob("*.py"))
        if "__pycache__" not in p.parts
    }


class TestPlantedViolation:
    """The acceptance test: a deliberately planted PUR001 violation in the
    real codebase — RNG construction inside a shard-reachable helper — must
    be caught by the analyzer."""

    def test_planted_rng_in_shard_path_is_caught(self):
        sources = _real_sources()
        target = "src/repro/core/cohort.py"
        assert target in sources
        sources[target] += (
            "\n\n"
            "def _planted_rng_helper():\n"
            "    return np.random.default_rng(1234)\n"
            "\n\n"
            "def execute_shard(shard, testbed, *, semester_hours, config):\n"
            "    _planted_rng_helper()\n"
        )
        active, _waived = analyze_program(sources, rules=["PUR001"])
        planted = [f for f in active if "_planted_rng_helper" in f.message]
        assert planted, [f.message for f in active]
        assert planted[0].rule_id == "PUR001"
        assert planted[0].file == target
        assert "execute_shard" in planted[0].message

    def test_unplanted_repo_is_clean(self):
        active, _waived = analyze_program(_real_sources(), rules=["PUR001"])
        assert active == []


class TestSuppression:
    def test_inline_noqa_waives_a_whole_program_finding(self, tmp_path):
        pkg = tmp_path / "repro"
        pkg.mkdir()
        (pkg / "mergex.py").write_text(
            "import numpy as np\n"
            "\n"
            "def seeded():\n"
            "    return np.random.default_rng(7)"
            "  # repro: noqa SEED001 (fixture: frozen replay seed)\n"
        )
        result = analyze_paths([tmp_path], whole_program=True, rules=["SEED001"])
        assert result.findings == []
        assert len(result.suppressed) == 1
        assert result.suppressed[0].finding.rule_id == "SEED001"
        assert "frozen replay seed" in result.suppressed[0].reason
