"""The acceptance gate, enforced from inside the tier-1 suite: the analyzer
exits clean on the whole repo (src + benchmarks + examples), so a PR that
introduces a determinism or hygiene hazard fails tests even if it forgets
to run the linter.
"""

from pathlib import Path

from repro.analysis import Baseline, analyze_paths

REPO = Path(__file__).resolve().parents[2]


def test_repo_has_no_new_findings():
    baseline = Baseline.load(REPO / "analysis-baseline.json")
    result = analyze_paths(
        [REPO / "src", REPO / "benchmarks", REPO / "examples"], baseline=baseline
    )
    assert result.files_checked > 100
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.ok, f"new analysis findings:\n{rendered}"


def test_repo_passes_the_whole_program_pass():
    """The flow pack (PUR001/SEED001/RES004/DET004) over the real call
    graph: shard execution is provably pure, every Generator's seed flows
    in, spans close on all CFG paths, no unordered flow reaches a sink."""
    baseline = Baseline.load(REPO / "analysis-baseline.json")
    result = analyze_paths(
        [REPO / "src", REPO / "benchmarks", REPO / "examples"],
        baseline=baseline,
        whole_program=True,
    )
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.ok, f"new analysis findings:\n{rendered}"
    assert result.stale_baseline == [], "baseline entries no finding consumes"


def test_every_inline_suppression_carries_a_reason():
    """analyze_paths only honours reasoned suppressions; make sure the ones
    in tree are the ones we expect (prevents suppression sprawl)."""
    result = analyze_paths(
        [REPO / "src", REPO / "benchmarks", REPO / "examples"], whole_program=True
    )
    assert all(s.reason for s in result.suppressed)
    # today: eight accepted hazards — the standing object-storage span,
    # the wall-clock timers in the parallel/columnar CLIs and the speedup/
    # journal/columnar/sweep benches (all report real elapsed seconds,
    # outside any simulated state), and the metering span rotation that
    # deliberately leaves the replacement span open until the resource's
    # own terminal path closes it
    files = sorted({s.finding.file for s in result.suppressed})
    assert files == [
        str(REPO / "benchmarks" / "bench_checkpoint.py"),
        str(REPO / "benchmarks" / "bench_columnar_cohort.py"),
        str(REPO / "benchmarks" / "bench_parallel_cohort.py"),
        str(REPO / "benchmarks" / "bench_resilience_sweep.py"),
        str(REPO / "src" / "repro" / "cloud" / "metering.py"),
        str(REPO / "src" / "repro" / "cloud" / "storage.py"),
        str(REPO / "src" / "repro" / "columnar" / "__main__.py"),
        str(REPO / "src" / "repro" / "parallel" / "__main__.py"),
    ]
