"""The analyzer's own correctness: every seeded positive is caught, every
seeded negative is clean.

Each fixture file under ``fixtures/`` seeds known violations (``*_pos``) or
known-legitimate look-alikes (``*_neg``) for one rule.  The positives table
pins the exact line numbers, so a rule that drifts to a different node
anchor fails loudly.
"""

from pathlib import Path

import pytest

from repro.analysis import analyze_source

FIXTURES = Path(__file__).parent / "fixtures"

# fixture -> (module name to analyze under, rule id, expected finding lines)
POSITIVES = {
    "det001_pos.py": ("fixture", "DET001", [12, 13, 14, 15, 16, 17]),
    "det002_pos.py": ("fixture", "DET002", [8, 9, 10, 11, 12]),
    "det003_pos.py": ("fixture", "DET003", [5, 7, 8, 9]),
    "err001_pos.py": ("fixture", "ERR001", [7, 11, 15]),
    "err002_pos.py": ("fixture", "ERR002", [9, 18]),
    "par001_pos.py": ("fixture", "PAR001", [3, 4, 5, 6, 7, 13]),
    "res001_pos.py": ("repro.cloud.fake", "RES001", [9]),
    "res002_pos.py": ("repro.cloud.fake", "RES002", [9]),
    "res003_pos.py": ("repro.faults.store", "RES003", [7, 12, 13, 18, 22]),
}

NEGATIVES = {
    "det001_neg.py": "fixture",
    "det002_neg.py": "fixture",
    "det003_neg.py": "fixture",
    "err001_neg.py": "fixture",
    "err002_neg.py": "fixture",
    "par001_neg.py": "fixture",
    "res001_neg.py": "repro.cloud.fake",
    "res002_neg.py": "repro.cloud.fake",
    "res003_neg.py": "repro.faults.store",
}


def run_fixture(name: str, module: str):
    source = (FIXTURES / name).read_text()
    return analyze_source(source, path=name, module=module)


@pytest.mark.parametrize("name", sorted(POSITIVES))
def test_positives_all_caught(name):
    module, rule_id, lines = POSITIVES[name]
    findings, suppressed = run_fixture(name, module)
    assert [f.rule_id for f in findings] == [rule_id] * len(lines)
    assert [f.line for f in findings] == lines
    assert suppressed == []


@pytest.mark.parametrize("name", sorted(NEGATIVES))
def test_negatives_all_clean(name):
    findings, suppressed = run_fixture(name, NEGATIVES[name])
    assert findings == []
    assert suppressed == []


def test_res_rules_scoped_to_cloud_and_spot():
    """The same leaky source is clean outside the repro.cloud/spot scope."""
    source = (FIXTURES / "res001_pos.py").read_text()
    findings, _ = analyze_source(source, path="res001_pos.py", module="repro.serving.engine")
    assert findings == []


def test_res003_exempt_inside_repro_checkpoint():
    """The same bare writes are sanctioned inside the crash-safety package."""
    source = (FIXTURES / "res003_pos.py").read_text()
    for module in ("repro.checkpoint", "repro.checkpoint.journal"):
        findings, _ = analyze_source(source, path="res003_pos.py", module=module)
        assert findings == []
    findings, _ = analyze_source(source, path="res003_pos.py", module="repro.checkpointing")
    assert {f.rule_id for f in findings} == {"RES003"}


def test_res003_fires_everywhere_not_just_cloud_scope():
    """Unlike RES001/2, RES003 guards every module outside repro.checkpoint."""
    source = (FIXTURES / "res003_pos.py").read_text()
    findings, _ = analyze_source(source, path="res003_pos.py", module="fixture")
    assert {f.rule_id for f in findings} == {"RES003"}


def test_par001_allowed_inside_repro_parallel():
    """The same fan-out source is clean inside the sanctioned engine package."""
    source = (FIXTURES / "par001_pos.py").read_text()
    for module in ("repro.parallel", "repro.parallel.engine"):
        findings, _ = analyze_source(source, path="par001_pos.py", module=module)
        assert findings == []
    findings, _ = analyze_source(source, path="par001_pos.py", module="repro.parallelism")
    assert {f.rule_id for f in findings} == {"PAR001"}


def test_err002_allowed_inside_retry_module():
    """The same unbounded shape is clean inside the sanctioned policy module."""
    source = (FIXTURES / "err002_pos.py").read_text()
    findings, _ = analyze_source(source, path="err002_pos.py", module="repro.common.retry")
    assert findings == []
    findings, _ = analyze_source(source, path="err002_pos.py", module="repro.common.retrying")
    assert {f.rule_id for f in findings} == {"ERR002"}


def test_det001_allowed_inside_clock_module():
    source = "import time\n\nWALL = time.time()\n"
    findings, _ = analyze_source(source, module="repro.common.clock")
    assert findings == []
    findings, _ = analyze_source(source, module="repro.common.ids")
    assert [f.rule_id for f in findings] == ["DET001"]


def test_naive_loadgen_arrival_generator_is_caught():
    """The wall-clock + unseeded-RNG arrival generator every serving
    tutorial starts with trips both determinism rules — the lint-level
    enforcement of `repro.loadgen`'s request-trace digest contract."""
    findings, suppressed = run_fixture("loadgen_arrivals_pos.py", "fixture")
    assert [(f.rule_id, f.line) for f in findings] == [
        ("DET001", 16),
        ("DET002", 17),
    ]
    assert suppressed == []


def test_seeded_loadgen_arrival_generator_is_clean():
    """The real generator resolves all randomness from the config seed."""
    from pathlib import Path

    source = (
        Path(__file__).parent.parent.parent
        / "src"
        / "repro"
        / "loadgen"
        / "arrivals.py"
    ).read_text()
    findings, suppressed = analyze_source(
        source, path="arrivals.py", module="repro.loadgen.arrivals"
    )
    assert findings == []
    assert suppressed == []


def test_rule_selection_runs_subset():
    source = (FIXTURES / "det001_pos.py").read_text()
    findings, _ = analyze_source(source, module="fixture", rules=["DET003"])
    assert findings == []


def test_syntax_error_becomes_finding():
    findings, _ = analyze_source("def broken(:\n", path="broken.py")
    assert len(findings) == 1
    assert findings[0].rule_id == "SYNTAX"
