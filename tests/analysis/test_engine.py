"""Engine plumbing: import resolution, module naming, path walking, stats."""

import ast
from pathlib import Path

from repro.analysis import analyze_paths, analyze_source
from repro.analysis.engine import ModuleContext, module_name_for


def ctx_for(source: str) -> ModuleContext:
    return ModuleContext(path="x.py", module="x", source=source, tree=ast.parse(source))


class TestQualifiedNames:
    def test_plain_import(self):
        ctx = ctx_for("import time\ntime.time()\n")
        call = ctx.tree.body[1].value
        assert ctx.qualified_name(call.func) == "time.time"

    def test_aliased_import(self):
        ctx = ctx_for("import numpy as np\nnp.random.rand()\n")
        call = ctx.tree.body[1].value
        assert ctx.qualified_name(call.func) == "numpy.random.rand"

    def test_from_import_with_alias(self):
        ctx = ctx_for("from time import time as now\nnow()\n")
        call = ctx.tree.body[1].value
        assert ctx.qualified_name(call.func) == "time.time"

    def test_local_names_resolve_to_none(self):
        ctx = ctx_for("rng = object()\nrng.random()\n")
        call = ctx.tree.body[1].value
        assert ctx.qualified_name(call.func) is None

    def test_self_attribute_resolves_to_none(self):
        ctx = ctx_for("import time\n\nclass C:\n    def m(self):\n        self.time.time()\n")
        call = ctx.tree.body[1].body[0].body[0].value
        assert ctx.qualified_name(call.func) is None


class TestModuleNames:
    def test_src_layout(self):
        assert module_name_for(Path("src/repro/cloud/compute.py")) == "repro.cloud.compute"

    def test_package_init(self):
        assert module_name_for(Path("src/repro/cloud/__init__.py")) == "repro.cloud"

    def test_loose_script(self):
        assert module_name_for(Path("benchmarks/bench_table1_lab_costs.py")) == (
            "bench_table1_lab_costs"
        )


class TestAnalyzePaths:
    def test_walks_directories_and_skips_pycache(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "ok.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "bad.py").write_text("import time\nt = time.time()\n")
        cache = tmp_path / "pkg" / "__pycache__"
        cache.mkdir()
        (cache / "stale.py").write_text("import time\nt = time.time()\n")
        result = analyze_paths([tmp_path])
        assert result.files_checked == 2
        assert [f.rule_id for f in result.findings] == ["DET001"]

    def test_stats_buckets(self, tmp_path):
        (tmp_path / "a.py").write_text(
            "import time\n"
            "t = time.time()\n"
            "u = time.time()  # repro: noqa DET001 (seeded waiver)\n"
        )
        result = analyze_paths([tmp_path])
        stats = result.stats()
        assert stats["DET001"] == {"new": 1, "suppressed": 1, "baselined": 0}

    def test_deterministic_ordering(self, tmp_path):
        for name in ("b.py", "a.py"):
            (tmp_path / name).write_text("import time\nt = time.time()\n")
        result = analyze_paths([tmp_path])
        assert [f.file for f in result.findings] == sorted(f.file for f in result.findings)


def test_analyze_source_default_module_from_path():
    findings, _ = analyze_source("import time\nt = time.time()\n", path="src/repro/common/clock.py")
    assert findings == []  # resolved module is the exempt repro.common.clock
