"""Seeded negatives for ERR001: re-raise, DLQ routing, logging, narrow catch."""

import logging

log = logging.getLogger(__name__)


def good(fn, dead_letters):
    try:
        fn()
    except Exception:
        raise
    try:
        fn()
    except Exception as exc:
        dead_letters.append(str(exc))
    try:
        fn()
    except Exception:
        log.warning("fn failed; falling back")
    try:
        fn()
    except ValueError:
        pass  # narrow catches may legitimately drop
