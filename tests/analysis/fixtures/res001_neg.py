"""Seeded negatives for RES001: close_span in scope, a _terminate path, module-level pairing."""


class CleanService:
    def __init__(self, meter):
        self._meter = meter

    def create(self, rid):
        self._meter.open_span(rid, kind="server", resource_type="m1.medium", project="p")

    def delete(self, rid):
        self._meter.close_span(rid)


class TerminatingService:
    def __init__(self, meter):
        self._meter = meter

    def create(self, rid):
        self._meter.open_span(rid, kind="server", resource_type="m1.medium", project="p")

    def _terminate(self, rid):
        pass  # the unified terminal path owns the close


def open_at_module_level(meter, rid):
    meter.open_span(rid, kind="volume", resource_type="ssd", project="p")


def close_at_module_level(meter, rid):
    meter.close_span(rid)
