"""Seeded positives for DET001: every statement below reads wall-clock or entropy."""

import os
import random
import time
import uuid
from datetime import datetime
from time import time as now


def stamp():
    t = time.time()
    u = uuid.uuid4()
    e = os.urandom(8)
    d = datetime.now()
    r = random.random()
    n = now()
    return t, u, e, d, r, n
