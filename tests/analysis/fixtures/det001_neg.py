"""Seeded negatives for DET001: explicit-state randomness and simulated time."""

import random


def ok(clock):
    rng = random.Random(7)  # an explicit, seedable instance is fine
    t = clock.now  # SimClock reads, not wall clock

    def time():  # a local name that shadows the module is not an import
        return 0.0

    return rng.random(), t, time()
