"""Seeded positives for DET002: unseeded or legacy-global numpy randomness."""

import numpy as np
from numpy.random import default_rng


def bad():
    a = np.random.default_rng()
    b = np.random.default_rng(None)
    c = np.random.rand(3)
    np.random.seed(0)
    d = default_rng()
    return a, b, c, d
