"""Seeded positives for PAR001: ad-hoc process fan-out outside repro.parallel."""

import multiprocessing
import multiprocessing.pool
from concurrent import futures
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import Pool

import os


def fan_out(tasks):
    child = os.fork()
    with Pool() as pool:
        return child, pool.map(len, tasks), futures, multiprocessing, ProcessPoolExecutor
