"""Seeded positive for RES001: a cloud service that opens spans it can never close."""


class LeakyService:
    def __init__(self, meter):
        self._meter = meter

    def create(self, rid):
        self._meter.open_span(rid, kind="server", resource_type="m1.medium", project="p")
