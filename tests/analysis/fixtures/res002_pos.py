"""Seeded positive for RES002: quota charged with no release path in scope."""


class GreedyService:
    def __init__(self, quota):
        self._quota = quota

    def create(self):
        self._quota.reserve(instances=1, cores=4)
