"""Seeded positives for ERR002: retry loops that never give up.

Handlers catch *specific* exception classes and keep the error, so ERR001
stays quiet — the problem here is the missing bound, not the breadth.
"""


def spin_on_continue(fetch):
    while True:
        try:
            return fetch()
        except OSError as exc:
            last = exc  # noqa: F841 - kept, but the loop never ends
            continue


def spin_on_trailing_pass(fetch):
    while 1:
        try:
            return fetch()
        except ConnectionError:
            pass
