"""Suppression fixture: one waived finding (with reason), one not (reason missing)."""

import time


def waived():
    return time.time()  # repro: noqa DET001 (fixture exercises the suppression parser)


def not_waived():
    return time.time()  # repro: noqa DET001
