"""Fixture: shard execution transitively reaches impure operations."""

import numpy as np

_CACHE = {}


def _jitter():
    rng = np.random.default_rng(7)
    return rng.random()


def _remember(key, value):
    _CACHE[key] = value


def _helper(batch):
    _remember(len(batch), batch)
    return _jitter() + 1.0


def _execute_batch(batch):
    return [_helper(batch) for _ in batch]
