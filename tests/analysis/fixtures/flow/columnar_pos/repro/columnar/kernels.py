"""Fixture: the columnar kernel transitively re-resolves randomness.

The exact bug class PUR001 guards the columnar engine against: a kernel
helper "re-jitters" a column at emission time instead of consuming the
planner's resolved draws, which would diverge from the object path the
moment worker chunking changes.
"""

import time

import numpy as np


def _rejitter(start):
    rng = np.random.default_rng(1234)
    return start + rng.random(len(start))


def _stamp(columns):
    columns["emitted_at"] = time.time()
    return columns


def emit_records(tables, schema, semester_hours):
    start = _rejitter(tables["start"])
    return _stamp({"start": start, "end": start + 1.0})
