"""Fixture: pure shard execution; RNG lives in an unreachable helper."""

import numpy as np


def _helper(rng):
    return float(rng.random())


def _execute_batch(batch, rng):
    return [_helper(rng) for _ in batch]


def _chaos_tool(seed):
    # constructs RNG, but nothing on the shard-execution path calls it
    return np.random.default_rng(seed)
