"""Fixture: the resilience discipline done right.

``repro.resilience.clients`` is a plan-time module (it roots its own
seed tree — SEED001-exempt by registration), and the runtime the
simulation drives is a pure state machine over plan-time arrays.
"""

import numpy as np


class ClosedLoopRuntime:
    def __init__(self, jitter_u):
        self.jitter_u = jitter_u
        self.retries = 0

    def on_failure(self, idx, now_s, code):
        u = float(self.jitter_u[idx])
        self.retries += 1
        return now_s + u


def plan_resilience(n):
    # plan-time modules may root the SeedSequence tree from literals
    base = np.random.default_rng(np.random.SeedSequence(11))
    return base.random(n)
