"""Fixture: pure closed-loop simulation — hooks consume plan-time draws."""

from repro.resilience.clients import ClosedLoopRuntime


def simulate_traffic(trace, jitter_u):
    runtime = ClosedLoopRuntime(jitter_u)
    total = 0.0
    for idx in range(4):
        total += runtime.on_failure(idx, float(idx), 1)
    return total
