"""Fixture: literal- and module-constant-seeded generators (findings)."""

import numpy as np

_DEFAULT_SEED = 99


def from_literal():
    return np.random.default_rng(1234)


def from_module_constant():
    return np.random.default_rng(_DEFAULT_SEED)


def from_wrapped_literal():
    return np.random.default_rng(np.random.SeedSequence(42))
