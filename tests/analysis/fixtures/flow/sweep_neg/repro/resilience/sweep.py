"""Fixture: the sweep's plan/execute split done right.

``_plan_point`` resolves every draw through the plan-time clients module
before the purity boundary; ``_simulate_point`` — the registered shard
entry point — is a pure fold over the planned arrays.
"""

from repro.resilience.clients import plan_resilience


def _plan_point(spec):
    return plan_resilience(8)


def _simulate_point(spec, trace, engine, calendar, model):
    verdict = 0.0
    for idx in range(4):
        verdict += float(model[idx])
    return verdict


def _run_point(spec):
    model = _plan_point(spec)
    return _simulate_point(spec, None, None, None, model)
