"""Fixture: plan-time module rooting the sweep's seed tree (SEED001-exempt)."""

import numpy as np


def plan_resilience(n):
    # plan-time modules may root the SeedSequence tree from literals
    base = np.random.default_rng(np.random.SeedSequence(23))
    return base.random(n)
