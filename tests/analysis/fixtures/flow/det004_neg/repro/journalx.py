"""Fixture: the same flows with a total order imposed at the source."""

import hashlib
import json


def digest_members(members):
    h = hashlib.sha256()
    for name in sorted({m.lower() for m in members}):
        h.update(name.encode())
    return h.hexdigest()


def report_rows(table):
    rows = []
    for key in sorted(table.keys()):
        rows.append(key)
    return json.dumps(rows)


def harmless_set_loop(members):
    # unordered iteration that never reaches a sink is DET003's advisory
    total = 0
    for m in {x for x in members}:
        total += 1
    return total
