"""Fixture: a naive sweep driver that re-draws randomness at sim time.

The bug class the `_simulate_point` registration guards against: a sweep
written as one monolithic per-point runner that "re-jitters" the retry
schedule (and stamps the wall clock) inside the execute half instead of
resolving every draw in `_plan_point`.  The phase map would silently
depend on worker count and evaluation order — PUR001 must surface both
effects with a witness chain through ``_simulate_point``.
"""

import time

import numpy as np


def _classify_with_jitter(spec, now_s):
    rng = np.random.default_rng(spec)
    slack = rng.random()
    if time.time() > 0:
        return now_s + slack
    return now_s


def _simulate_point(spec, trace, engine, calendar, model):
    verdict = 0.0
    for idx in range(4):
        verdict += _classify_with_jitter(spec, float(idx))
    return verdict
