"""Fixture: unordered iteration flowing into digest/serialized output."""

import hashlib
import json


def digest_members(members):
    h = hashlib.sha256()
    for name in {m.lower() for m in members}:
        h.update(name.encode())
    return h.hexdigest()


def report_rows(table):
    rows = []
    for key in table.keys():
        rows.append(key)
    return json.dumps(rows)
