"""Fixture: spans opened but not closed on every control-flow path."""


class Meter:
    def open_span(self, rid):
        pass

    def close_span(self, rid):
        pass


class Service:
    def __init__(self):
        self.meter = Meter()

    def create_early_return(self, rid, ok):
        self.meter.open_span(rid)
        if not ok:
            return None  # leaks: this path never closes
        self.meter.close_span(rid)
        return rid

    def create_raise(self, rid, ok):
        self.meter.open_span(rid)
        if not ok:
            raise ValueError(rid)  # leaks along the exception edge
        self.meter.close_span(rid)
        return rid
