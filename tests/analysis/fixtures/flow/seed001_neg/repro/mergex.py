"""Fixture: generators whose seeds flow in from the caller (clean)."""

import numpy as np


def from_param(seed):
    return np.random.default_rng(seed)


def from_spawn(ss):
    child = ss.spawn(1)[0]
    return np.random.default_rng(child)


def from_config(config):
    return np.random.default_rng(config.seed)


class Sim:
    def __init__(self, seed):
        self._seed = seed

    def rng(self):
        return np.random.default_rng(self._seed)
