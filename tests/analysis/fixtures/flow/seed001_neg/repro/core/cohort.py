"""Fixture: a plan-time module may root the seed tree from config."""

import numpy as np


def plan(config_seed=2024):
    root = np.random.SeedSequence(2024)
    streams = root.spawn(3)
    return np.random.default_rng(streams[0])
