"""Fixture: a closed-loop runtime that re-draws randomness at sim time.

The exact bug class PUR001 guards the resilience layer against: a
runtime hook "re-jitters" a retry schedule (and stamps the wall clock)
when a failure is booked, instead of consuming the plan-time draws on
the model — the replayed storm would diverge the moment evaluation
order changes.
"""

import time

import numpy as np


class ClosedLoopRuntime:
    def __init__(self, model):
        self.model = model
        self.retries = 0

    def on_failure(self, idx, now_s, code):
        rng = np.random.default_rng(idx)
        jitter = rng.random()
        self.retries += 1
        if time.time() > 0:
            return now_s + jitter
        return None
