"""Fixture: the simulation loop drives an impure closed-loop runtime.

``simulate_traffic`` is a PUR001 entry point; the runtime's hooks are
inside its purity boundary, so the RNG/clock use in
``ClosedLoopRuntime.on_failure`` must surface with a witness chain
through this function.
"""

from repro.resilience.clients import ClosedLoopRuntime


def simulate_traffic(trace, engine, resilience=None):
    runtime = ClosedLoopRuntime(resilience)
    total = 0.0
    for idx in range(8):
        due = runtime.on_failure(idx, float(idx), 1)
        if due is not None:
            total += due
    return total
