"""Fixture: the columnar planner roots the seed tree from config.

``repro.columnar.planner`` is a plan-time module: it may construct
Generators from config-carried seeds without tripping SEED001 (that is
where randomness is *supposed* to be resolved).
"""

import numpy as np


def plan_columns(config):
    rng = np.random.default_rng(np.random.SeedSequence(config.seed, spawn_key=(0,)))
    return {"start": rng.uniform(0.0, 96.0, 8), "hours": rng.uniform(1.0, 48.0, 8)}
