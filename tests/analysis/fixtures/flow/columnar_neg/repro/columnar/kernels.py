"""Fixture: pure columnar kernel — closed forms over planner-resolved columns.

Mirrors the real ``repro.columnar.kernels``: all randomness was resolved
at plan time, emission is arithmetic on arrays.  The planner module may
root its own Generator (plan-time module, exempt from SEED001), and that
must not trip the kernel's purity check because emission never calls it.
"""

import numpy as np


def _cap(end, horizon):
    return np.minimum(end, horizon - 1e-6)


def emit_records(tables, schema, semester_hours):
    start = np.asarray(tables["start"])
    end = _cap(start + np.asarray(tables["hours"]), semester_hours)
    return {"start": start, "end": end, "quantity": np.ones(len(start))}
