"""Fixture: spans closed on every path, including exception edges."""


class Meter:
    def open_span(self, rid):
        pass

    def close_span(self, rid):
        pass


class Service:
    def __init__(self):
        self.meter = Meter()

    def create_finally(self, rid, ok):
        self.meter.open_span(rid)
        try:
            if not ok:
                raise ValueError(rid)
            return rid
        finally:
            self.meter.close_span(rid)

    def create_both_branches(self, rid, ok):
        self.meter.open_span(rid)
        if ok:
            self.meter.close_span(rid)
            return True
        self.meter.close_span(rid)
        return False

    def create_handler(self, rid):
        self.meter.open_span(rid)
        try:
            value = int(rid)
        except Exception:
            self.meter.close_span(rid)
            raise
        self.meter.close_span(rid)
        return value
