"""Look-alike persistence writes RES003 must stay quiet on."""

import os


def publish_manifest(manifest_path, payload):
    tmp = manifest_path + ".tmp"
    with open(tmp, "w") as fh:
        fh.write(payload)
    os.replace(tmp, manifest_path)


def read_journal(journal_path):
    with open(journal_path) as fh:
        return fh.read()


def write_report(report_path, payload):
    with open(report_path, "w") as fh:
        fh.write(payload)


def walk_tree(root):
    return list(os.walk(root))


def retire_segment(segment_path, new_path):
    os.remove(segment_path)
    os.rename(segment_path, new_path)
