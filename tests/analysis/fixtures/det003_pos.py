"""Seeded positives for DET003: hash-ordered iteration in four contexts."""


def bad(items, other):
    for x in set(items):
        print(x)
    listed = [y for y in {1, 2, 3}]
    built = {k: 1 for k in set(items) | set(other)}
    merged = list(z for z in set(items).union(other))
    return listed, built, merged
