"""Seeded positive: the arrival generator `repro.loadgen` must never be.

This is the naive load generator most serving tutorials start with — it
anchors the trace to the wall clock (DET001) and draws inter-arrival
gaps from an unseeded RNG (DET002).  Either one breaks the request-trace
digest contract: two runs of the "same" scenario would offer different
traffic, so no latency or cost number would ever reproduce.
"""

import time

import numpy as np


def naive_arrivals(rate_rps: float, n: int):
    start = time.time()
    rng = np.random.default_rng()
    gaps = rng.exponential(1.0 / rate_rps, size=n)
    return start + np.cumsum(gaps)
