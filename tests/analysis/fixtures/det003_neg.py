"""Seeded negatives for DET003: sorted-at-source, order-free uses, list iteration."""


def good(items, other):
    for x in sorted(set(items)):
        print(x)
    keys = sorted(set(items) | set(other))
    total = len(set(items))  # aggregation, not iteration
    if "a" in set(items):  # membership test, not iteration
        total += 1
    for y in [1, 2, 3]:
        print(y)
    return keys, total
