"""Seeded RES003 violations: non-atomic writes to recovery-state paths."""

import os


def save_manifest(manifest_path, payload):
    with open(manifest_path, "w") as fh:
        fh.write(payload)


def rotate_journal(journal_path):
    os.remove(journal_path)
    with open(journal_path, mode="wb") as fh:
        fh.write(b"")


def drop_segment(segment):
    segment.unlink()


def append_wal(wal_path):
    with open(wal_path, "a") as fh:
        fh.write("")
