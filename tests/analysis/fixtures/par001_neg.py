"""Seeded negatives for PAR001: look-alikes that are not process fan-out."""

import threading  # threads share the event loop; a different rule's problem
from concurrent import walk  # not concurrent.futures

from repro.parallel import run_parallel  # the sanctioned door is fine to use


def multiprocessing():  # a local name shadowing the module is not an import
    return None


def ok(records):
    fork = getattr(records, "fork", None)  # attribute named fork, not os.fork
    return run_parallel, threading.Lock(), walk, multiprocessing(), fork
