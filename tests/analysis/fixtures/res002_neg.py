"""Seeded negative for RES002: reserve paired with release in the same scope."""


class FairService:
    def __init__(self, quota):
        self._quota = quota

    def create(self):
        self._quota.reserve(instances=1, cores=4)

    def delete(self):
        self._quota.release(instances=1, cores=4)
