"""Seeded negatives for ERR002: retry shapes with a bound or a backoff."""


def bounded_by_for(fetch, attempts):
    for _ in range(attempts):
        try:
            return fetch()
        except OSError:
            continue
    return None


def bounded_by_raise(fetch, policy):
    retries = 0
    while True:
        try:
            return fetch()
        except OSError:
            retries += 1
            if not policy.allows_retry(retries - 1):
                raise
            continue


def waits_between_attempts(fetch, clock, policy):
    retries = 0
    while True:
        try:
            return fetch()
        except OSError:
            retries += 1
            clock.sleep(policy.backoff_hours(retries))
            continue


def escapes_on_error(fetch):
    while True:
        try:
            return fetch()
        except OSError:
            break
    return None


def event_pump(queue):
    # while True without an except-continue is orchestration, not a retry
    while True:
        item = queue.pop()
        if item is None:
            return
