"""Seeded positives for ERR001: broad handlers that drop the error on the floor."""


def bad(fn):
    try:
        fn()
    except Exception:
        pass
    try:
        fn()
    except:
        return None
    try:
        fn()
    except (ValueError, Exception) as exc:
        return 0
    return 1
