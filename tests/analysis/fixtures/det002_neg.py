"""Seeded negatives for DET002: seeded generators and explicit bit-generator state."""

import numpy as np


def good(seed):
    rng = np.random.default_rng(seed)
    gen = np.random.Generator(np.random.PCG64(seed))
    seq = np.random.SeedSequence(seed)
    return rng.normal(), gen.random(), seq.spawn(2)
