"""Property tests for the columnar engine's shard structure.

The engine's output must be a pure function of (course, config) — never
of how work was chunked, bucketed, fanned out, or spilled.  Hypothesis
drives the structural knobs through adversarial values (singleton
batches, one bucket, hundreds of mostly-empty buckets, odd worker
counts) and every variation must reproduce the reference digest bit for
bit.  The billing integral is held to *exact* equality with the
record-level fsum, and a null fault plan must be a byte-exact no-op
through the object-planner conversion path.
"""

import dataclasses
import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.columnar import plan_columns, run_columnar
from repro.columnar.planner import columns_from_plan
from repro.core import records_digest, scaled_course
from repro.core.cohort import CohortConfig, CohortSimulation, plan_cohort
from repro.faults.plan import FaultPlanConfig, FaultSweep, build_fault_calendar
from repro.parallel import total_unit_hours

#: 48-student cohort: big enough to populate every activity family.
SMALL = scaled_course(0.25)
#: 1-student cohort: the smallest legal cohort (1 student, 1 group).
ONE = scaled_course(1.0 / 191.0)
SEED = 42

_SLOW = settings(
    deadline=None, max_examples=12, suppress_health_check=[HealthCheck.too_slow]
)


@pytest.fixture(scope="module")
def reference():
    """Reference digest for the SMALL cohort, default engine knobs."""
    return run_columnar(SMALL, CohortConfig(seed=SEED)).digest


@_SLOW
@given(
    n_buckets=st.integers(min_value=1, max_value=257),
    chunk_rows=st.sampled_from((1, 2, 17, 1_000, 2_000_000)),
)
def test_merge_shard_boundaries_never_leak(reference, n_buckets, chunk_rows):
    """Digest is invariant under bucket count and emission chunking —
    including singleton batches and buckets that stay empty."""
    run = run_columnar(
        SMALL, CohortConfig(seed=SEED), n_buckets=n_buckets, chunk_rows=chunk_rows
    )
    assert run.digest == reference


@settings(deadline=None, max_examples=4, suppress_health_check=[HealthCheck.too_slow])
@given(workers=st.integers(min_value=1, max_value=4))
def test_draw_fanout_boundaries_never_leak(reference, workers):
    """Digest is invariant under the planner's worker fan-out: student
    draws are seeded per student, so range splits cannot matter."""
    run = run_columnar(SMALL, CohortConfig(seed=SEED), workers=workers)
    assert run.digest == reference


@_SLOW
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_buckets=st.sampled_from((1, 3, 64)),
)
def test_unit_hours_conserved_exactly(seed, n_buckets):
    """The streamed per-bucket total equals the record-level fsum with
    zero tolerance, for arbitrary seeds and bucketings."""
    run = run_columnar(
        ONE, CohortConfig(seed=seed), n_buckets=n_buckets, collect_records=True
    )
    assert run.unit_hours == total_unit_hours(run.record_list)
    assert math.isfinite(run.unit_hours) and run.unit_hours >= 0.0


def test_singleton_cohort_matches_serial():
    """The 1-student, 1-group edge: every family near-empty, digest holds."""
    serial = CohortSimulation(ONE, CohortConfig(seed=SEED)).run()
    run = run_columnar(ONE, CohortConfig(seed=SEED))
    assert run.digest == records_digest(serial)
    assert run.students == 1 and run.groups == 1


def test_empty_families_are_well_formed():
    """labs-only zeroes the project families; emission and merge must
    handle zero-length arrays without special-casing."""
    run = run_columnar(ONE, CohortConfig(seed=SEED), include_project=False)
    serial = CohortSimulation(ONE, CohortConfig(seed=SEED)).run(include_project=False)
    assert run.digest == records_digest(serial)


def test_spill_path_is_digest_invariant(tmp_path, reference):
    """Spilling buckets to scratch files (tiny threshold forces it) must
    round-trip every column bit-exactly."""
    run = run_columnar(
        SMALL, CohortConfig(seed=SEED), spill_dir=tmp_path, n_buckets=8
    )
    assert run.digest == reference
    assert not list(tmp_path.glob("*.npz"))  # scratch files consumed


def test_null_fault_plan_is_byte_exact_noop():
    """A null fault calendar routes planning through the object planner
    and the shard converter — and must still reproduce the native digest."""
    config = CohortConfig(seed=SEED)
    calendar = build_fault_calendar(
        FaultPlanConfig(), horizon_hours=SMALL.semester_hours
    )
    assert calendar.empty
    native = run_columnar(SMALL, config)
    faulted = run_columnar(SMALL, config, faults=FaultSweep(calendar))
    assert faulted.digest == native.digest


def test_converter_matches_native_planner_arrays():
    """``columns_from_plan`` over the object planner's shards produces the
    same activity tables as the native columnar planner, array for array
    — the structural identity underneath the digest equality."""
    config = CohortConfig(seed=SEED)
    native = plan_columns(SMALL, config)
    converted = columns_from_plan(plan_cohort(SMALL, config), SMALL)
    for f in dataclasses.fields(native.tables):
        a = getattr(native.tables, f.name)
        b = getattr(converted.tables, f.name)
        np.testing.assert_array_equal(a, b, err_msg=f.name)
