"""The columnar headline contract, held to sha256: ``run_columnar`` is
digest-identical to the serial object path ``CohortSimulation.run()``
across every (seed, cohort size, worker count) in the sweep — and
identical not just in the records but in the paper artifacts (Table 1,
Fig 2) rendered from them.

This is the differential harness the columnar engine is *proven* by:
any divergence in RNG replay, admission sweeps, emission closed forms,
or the canonical merge changes at least one record field, and the key
coverage of ``canonical_sort_key`` guarantees a changed field changes
the digest.
"""

import pytest

from repro.columnar import run_columnar
from repro.core import (
    CohortSimulation,
    fig2_cost_distribution,
    records_digest,
    scaled_course,
    table1,
)
from repro.core.cohort import CohortConfig
from repro.core.course import COURSE

SEEDS = (42, 7, 1337)
WORKERS = (1, 2, 4)
#: size name -> course; "one" is the degenerate single-student cohort,
#: "x4" is 764 students (above the paper scale the object path serves).
SIZES = {
    "one": scaled_course(1.0 / 191.0),
    "paper": COURSE,
    "x4": scaled_course(4.0),
}


@pytest.fixture(scope="module")
def serial_digests():
    """Serial reference digests for every (size, seed), computed once."""
    out = {}
    for size, course in SIZES.items():
        for seed in SEEDS:
            records = CohortSimulation(course, CohortConfig(seed=seed)).run()
            out[(size, seed)] = records_digest(records)
    return out


@pytest.fixture(scope="module")
def serial_full():
    """The paper's 191-student cohort, serial reference records."""
    return CohortSimulation().run()


@pytest.mark.parametrize("workers", WORKERS)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("size", sorted(SIZES))
def test_columnar_digest_matches_serial(serial_digests, size, seed, workers):
    run = run_columnar(SIZES[size], CohortConfig(seed=seed), workers=workers)
    assert run.digest == serial_digests[(size, seed)]


def test_columnar_records_equal_not_just_digest(serial_full):
    """Record-by-record equality at paper scale — guards against a digest
    collision ever masking a divergence in the sweep above."""
    run = run_columnar(COURSE, CohortConfig(), collect_records=True)
    assert run.record_list == serial_full


def test_labs_only_matches_serial():
    serial = CohortSimulation(COURSE, CohortConfig()).run(include_project=False)
    run = run_columnar(COURSE, CohortConfig(), include_project=False)
    assert run.digest == records_digest(serial)


def test_paper_artifacts_identical_from_columnar_records(serial_full):
    """Table 1 and Fig 2 rendered from columnar records are byte-identical
    to the serial renders — the artifact level the paper is judged at."""
    run = run_columnar(COURSE, CohortConfig(), collect_records=True)

    t_serial, t_columnar = table1(serial_full), table1(run.record_list)
    assert t_columnar.render() == t_serial.render()
    assert t_columnar.totals == t_serial.totals

    f_serial = fig2_cost_distribution(serial_full)
    f_columnar = fig2_cost_distribution(run.record_list)
    assert f_columnar.render() == f_serial.render()
    assert f_columnar.aws == f_serial.aws
    assert f_columnar.gcp == f_serial.gcp


def test_unit_hours_match_serial_exactly(serial_full):
    """The streamed fsum total equals the object path's fsum total with
    zero tolerance — both are correctly-rounded sums of the same multiset."""
    from repro.parallel import total_unit_hours

    run = run_columnar(COURSE, CohortConfig())
    assert run.unit_hours == total_unit_hours(serial_full)


def test_different_seed_changes_columnar_output():
    """Anti-vacuity guard: the digest must actually see the seed."""
    a = run_columnar(SIZES["one"], CohortConfig(seed=SEEDS[0]))
    b = run_columnar(SIZES["one"], CohortConfig(seed=SEEDS[1]))
    assert a.digest != b.digest


def test_cli_verify_exits_clean():
    """``--verify`` is the executable form of this file's contract."""
    from repro.columnar.__main__ import main

    assert main(["--verify", "--scale", str(0.25)]) == 0
