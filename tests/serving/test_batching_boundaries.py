"""Boundary behaviour of the dynamic batcher.

The ISSUE-driven edge cases: an empty queue cannot be flushed (the
simulation refuses an empty arrival array loudly), a batch that lands
exactly at ``max_batch`` closes there even with stragglers still inside
the delay window, and a lone request forms a singleton batch whose
latency is pure service time.
"""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.serving import BatchingConfig, simulate_batching


def flat_service(batch: int) -> float:
    """1 ms per batch regardless of size — isolates queueing effects."""
    return 1.0


class TestEmptyQueueFlush:
    def test_empty_arrivals_raise(self):
        with pytest.raises(ValidationError):
            simulate_batching(np.empty(0), flat_service, BatchingConfig())

    def test_two_dimensional_arrivals_raise(self):
        with pytest.raises(ValidationError):
            simulate_batching(np.zeros((2, 2)), flat_service, BatchingConfig())

    def test_unsorted_arrivals_raise(self):
        with pytest.raises(ValidationError):
            simulate_batching(np.array([1.0, 0.5]), flat_service, BatchingConfig())


class TestBatchExactlyAtMaxSize:
    def test_window_full_of_stragglers_closes_at_max_batch(self):
        # 10 requests all arrive inside one delay window; max_batch=4 must
        # split them 4 + 4 + 2, never overfilling the leader's batch
        config = BatchingConfig(max_batch=4, max_queue_delay_ms=100.0)
        arrivals = np.linspace(0.0, 0.009, 10)
        result = simulate_batching(arrivals, flat_service, config)
        assert result.batch_sizes.tolist() == [4, 4, 2]

    def test_exactly_max_batch_arrivals_form_one_batch(self):
        config = BatchingConfig(max_batch=4, max_queue_delay_ms=100.0)
        arrivals = np.linspace(0.0, 0.009, 4)
        result = simulate_batching(arrivals, flat_service, config)
        assert result.batch_sizes.tolist() == [4]
        # one batched inference: every member completes at the same instant
        completions = arrivals + result.latencies_ms / 1e3
        assert np.allclose(completions, completions[0])

    def test_follower_exactly_at_window_close_joins(self):
        # window_close is inclusive: a follower arriving at exactly
        # earliest + delay still joins the batch
        config = BatchingConfig(max_batch=8, max_queue_delay_ms=5.0)
        arrivals = np.array([0.0, config.window_close(0.0)])
        result = simulate_batching(arrivals, flat_service, config)
        assert result.batch_sizes.tolist() == [2]

    def test_follower_just_past_window_close_starts_new_batch(self):
        config = BatchingConfig(max_batch=8, max_queue_delay_ms=5.0)
        arrivals = np.array([0.0, config.window_close(0.0) + 1e-9])
        result = simulate_batching(arrivals, flat_service, config)
        assert result.batch_sizes.tolist() == [1, 1]


class TestSingleRequestBatch:
    def test_single_request_is_served_alone(self):
        config = BatchingConfig(max_batch=8, max_queue_delay_ms=5.0)
        result = simulate_batching(np.array([1.0]), flat_service, config)
        assert result.batch_sizes.tolist() == [1]
        # a lone leader never waits for the window: latency is service only
        assert result.latencies_ms == pytest.approx([1.0])

    def test_zero_delay_window_disables_coalescing_for_spread_arrivals(self):
        config = BatchingConfig(max_batch=8, max_queue_delay_ms=0.0)
        arrivals = np.array([0.0, 0.01, 0.02])
        result = simulate_batching(arrivals, lambda b: 1.0, config)
        assert result.batch_sizes.tolist() == [1, 1, 1]
