"""Tests for servable models, optimizations, and the inference engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import InvalidStateError, NotFoundError, ValidationError
from repro.serving import (
    DEVICE_CATALOG,
    InferenceEngine,
    Precision,
    food11_classifier,
)

A100 = DEVICE_CATALOG["a100"]
PI = DEVICE_CATALOG["raspberrypi5"]


class TestOptimizations:
    def setup_method(self):
        self.model = food11_classifier()

    def test_graph_optimization_cuts_flops_not_accuracy(self):
        opt = self.model.graph_optimized()
        assert opt.gflops_per_inference < self.model.gflops_per_inference
        assert opt.accuracy == self.model.accuracy
        assert opt.size_mb == self.model.size_mb

    def test_double_graph_optimization_rejected(self):
        with pytest.raises(InvalidStateError):
            self.model.graph_optimized().graph_optimized()

    def test_int8_quantization_quarters_size(self):
        q = self.model.quantized()
        assert q.size_mb == pytest.approx(self.model.size_mb / 4)
        assert q.precision is Precision.INT8
        assert q.accuracy < self.model.accuracy
        assert q.accuracy > self.model.accuracy - 0.01  # small drop

    def test_double_quantization_rejected(self):
        with pytest.raises(InvalidStateError):
            self.model.quantized().quantized()

    def test_quantize_to_fp32_rejected(self):
        with pytest.raises(ValidationError):
            self.model.quantized(Precision.FP32)

    @given(st.floats(min_value=0.05, max_value=0.95))
    def test_pruning_scales_size_and_flops(self, s):
        p = self.model.pruned(s)
        assert p.params_million == pytest.approx(self.model.params_million * (1 - s))
        assert p.gflops_per_inference == pytest.approx(self.model.gflops_per_inference * (1 - s))
        assert p.accuracy <= self.model.accuracy

    def test_heavy_pruning_hurts_more(self):
        light = self.model.pruned(0.2)
        heavy = self.model.pruned(0.8)
        assert heavy.accuracy < light.accuracy

    def test_invalid_sparsity_rejected(self):
        with pytest.raises(ValidationError):
            self.model.pruned(0.0)
        with pytest.raises(ValidationError):
            self.model.pruned(0.99)

    def test_distillation_shrinks_with_accuracy_cost(self):
        d = self.model.distilled(4)
        assert d.params_million == pytest.approx(self.model.params_million / 4)
        assert d.accuracy < self.model.accuracy

    def test_distill_factor_must_exceed_one(self):
        with pytest.raises(ValidationError):
            self.model.distilled(1.0)

    def test_provenance_chain_recorded(self):
        m = self.model.graph_optimized().quantized().pruned(0.5)
        assert m.optimizations == ("graph", "quant:int8", "prune:0.5")

    def test_optimizations_compose(self):
        m = self.model.graph_optimized().quantized()
        assert m.size_mb == pytest.approx(self.model.size_mb / 4)
        assert m.gflops_per_inference == pytest.approx(self.model.gflops_per_inference * 0.85)


class TestInferenceEngine:
    def setup_method(self):
        self.model = food11_classifier()

    def test_latency_monotone_in_batch(self):
        eng = InferenceEngine(self.model, A100)
        lats = [eng.latency_ms(b) for b in (1, 2, 4, 8, 16)]
        assert all(b > a for a, b in zip(lats, lats[1:]))

    def test_throughput_rises_with_batch(self):
        """The dynamic-batching payoff: batch amortises fixed costs."""
        eng = InferenceEngine(self.model, A100)
        assert eng.throughput_rps(32) > 2 * eng.throughput_rps(1)

    def test_edge_device_much_slower(self):
        """Unit 6 part 2: the Pi is orders of magnitude behind an A100."""
        gpu = InferenceEngine(self.model, A100).latency_ms(1)
        pi = InferenceEngine(self.model, PI).latency_ms(1)
        assert pi > 50 * gpu

    def test_quantization_speeds_up_edge_most(self):
        fp32_pi = InferenceEngine(self.model, PI).latency_ms(1)
        int8_pi = InferenceEngine(self.model.quantized(), PI).latency_ms(1)
        assert int8_pi < 0.5 * fp32_pi  # compute-bound: ~3.7x int8 speedup

    def test_batching_barely_helps_edge(self):
        """Edge is compute-bound at batch 1; GPUs gain far more from batching."""
        pi = InferenceEngine(self.model, PI)
        gpu = InferenceEngine(self.model, A100)
        pi_gain = pi.throughput_rps(16) / pi.throughput_rps(1)
        gpu_gain = gpu.throughput_rps(16) / gpu.throughput_rps(1)
        assert gpu_gain > 2 * pi_gain

    def test_missing_execution_provider(self):
        with pytest.raises(NotFoundError):
            InferenceEngine(self.model.quantized(), DEVICE_CATALOG["p100"])  # no int8 on P100

    def test_best_batch_under_slo(self):
        eng = InferenceEngine(self.model, A100)
        b = eng.best_batch_under_slo(5.0)
        assert b >= 1
        assert eng.latency_ms(b) <= 5.0
        assert eng.latency_ms(b + 1) > 5.0 or b == 256

    def test_slo_impossible_returns_zero(self):
        eng = InferenceEngine(self.model, PI)
        assert eng.best_batch_under_slo(0.001) == 0

    def test_cost_per_million_requests(self):
        cheap = InferenceEngine(self.model.quantized(), DEVICE_CATALOG["t4"])
        pricey = InferenceEngine(self.model, A100)
        assert cheap.cost_per_million_requests() < pricey.cost_per_million_requests() * 5

    def test_invalid_batch_rejected(self):
        with pytest.raises(ValidationError):
            InferenceEngine(self.model, A100).latency_ms(0)
