"""Tests for dynamic batching simulation and the Triton-like server."""

import numpy as np
import pytest

from repro.common import NotFoundError, ValidationError
from repro.serving import (
    DEVICE_CATALOG,
    BatchingConfig,
    InferenceEngine,
    LoadProfile,
    TritonServer,
    food11_classifier,
    simulate_batching,
)
from repro.serving.batching import poisson_arrivals

A100 = DEVICE_CATALOG["a100"]


def service(batch: int) -> float:
    """A simple affine service time: 1 ms + 0.1 ms per request."""
    return 1.0 + 0.1 * batch


class TestBatchingSimulation:
    def test_request_conservation(self):
        arrivals = poisson_arrivals(100, 500, seed=1)
        res = simulate_batching(arrivals, service, BatchingConfig(max_batch=8))
        assert len(res.latencies_ms) == 500
        assert res.batch_sizes.sum() == 500

    def test_latencies_nonnegative(self):
        arrivals = poisson_arrivals(50, 300, seed=2)
        res = simulate_batching(arrivals, service, BatchingConfig())
        assert np.all(res.latencies_ms >= 0)

    def test_light_load_batches_near_one(self):
        arrivals = poisson_arrivals(1.0, 100, seed=3)  # 1 rps, 1ms service
        res = simulate_batching(arrivals, service, BatchingConfig(max_batch=8, max_queue_delay_ms=0.0))
        assert res.mean_batch == pytest.approx(1.0)

    def test_heavy_load_fills_batches(self):
        arrivals = poisson_arrivals(5000, 2000, seed=4)
        res = simulate_batching(arrivals, service, BatchingConfig(max_batch=8, max_queue_delay_ms=5.0))
        assert res.mean_batch > 4

    def test_batching_raises_throughput_under_saturation(self):
        arrivals = poisson_arrivals(3000, 3000, seed=5)
        no_batch = simulate_batching(arrivals, service, BatchingConfig(max_batch=1))
        batched = simulate_batching(arrivals, service, BatchingConfig(max_batch=16, max_queue_delay_ms=5))
        assert batched.throughput_rps > 2 * no_batch.throughput_rps
        assert batched.p99_ms < no_batch.p99_ms  # queueing collapse avoided

    def test_delay_adds_latency_under_light_load(self):
        arrivals = poisson_arrivals(10, 200, seed=6)
        eager = simulate_batching(arrivals, service, BatchingConfig(max_batch=8, max_queue_delay_ms=0))
        patient = simulate_batching(arrivals, service, BatchingConfig(max_batch=8, max_queue_delay_ms=50))
        assert patient.p50_ms >= eager.p50_ms

    def test_more_instances_more_throughput(self):
        # 1 instance at batch 4 caps at ~2857 rps; offer 10k to saturate
        arrivals = poisson_arrivals(10_000, 4000, seed=7)
        one = simulate_batching(arrivals, service, BatchingConfig(max_batch=4, n_instances=1))
        two = simulate_batching(arrivals, service, BatchingConfig(max_batch=4, n_instances=2))
        assert two.throughput_rps > 1.3 * one.throughput_rps

    def test_unsorted_arrivals_rejected(self):
        with pytest.raises(ValidationError):
            simulate_batching(np.array([2.0, 1.0]), service, BatchingConfig())

    def test_empty_arrivals_rejected(self):
        with pytest.raises(ValidationError):
            simulate_batching(np.array([]), service, BatchingConfig())

    def test_invalid_config_rejected(self):
        with pytest.raises(ValidationError):
            BatchingConfig(max_batch=0)
        with pytest.raises(ValidationError):
            poisson_arrivals(0, 10)


class TestTritonServer:
    def setup_method(self):
        self.server = TritonServer(A100, gpus=2)
        self.model = food11_classifier()
        self.server.load_model(self.model, instances_per_gpu=1,
                               batching=BatchingConfig(max_batch=8, max_queue_delay_ms=2.0))

    def test_instance_group_spans_gpus(self):
        _, cfg = self.server._model(self.model.name)
        assert cfg.n_instances == 2

    def test_benchmark_produces_metrics(self):
        m = self.server.benchmark(self.model.name, LoadProfile(rate_rps=500, n_requests=1000))
        assert m.p50_ms <= m.p95_ms <= m.p99_ms
        assert m.throughput_rps > 0
        assert m.accuracy == self.model.accuracy
        assert m.hourly_cost_usd == pytest.approx(2 * A100.hourly_cost_usd)

    def test_sweep_covers_grid(self):
        out = self.server.sweep(
            self.model.name,
            LoadProfile(rate_rps=500, n_requests=500),
            batch_sizes=[1, 8],
            delays_ms=[0.0, 5.0],
        )
        assert len(out) == 4

    def test_budget_selection(self):
        """The lab's task: pick a config meeting the performance budget."""
        metrics = self.server.sweep(
            self.model.name,
            LoadProfile(rate_rps=2000, n_requests=2000),
            batch_sizes=[1, 4, 16],
            delays_ms=[0.0, 2.0],
        )
        ok = [m for m in metrics if m.meets(latency_budget_ms=50, min_throughput_rps=1500)]
        assert ok  # at least one config satisfies the budget
        assert all(m.p95_ms <= 50 for m in ok)

    def test_unload(self):
        self.server.unload_model(self.model.name)
        with pytest.raises(NotFoundError):
            self.server.benchmark(self.model.name, LoadProfile(rate_rps=10))
        with pytest.raises(NotFoundError):
            self.server.unload_model("ghost")

    def test_two_gpu_server_outperforms_one(self):
        one = TritonServer(A100, gpus=1)
        one.load_model(self.model, batching=BatchingConfig(max_batch=8))
        load = LoadProfile(rate_rps=8000, n_requests=4000)
        m1 = one.benchmark(self.model.name, load)
        m2 = self.server.benchmark(self.model.name, load)
        assert m2.throughput_rps > m1.throughput_rps

    def test_invalid_server(self):
        with pytest.raises(ValidationError):
            TritonServer(A100, gpus=0)
        with pytest.raises(ValidationError):
            LoadProfile(rate_rps=-1)
