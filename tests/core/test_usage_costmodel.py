"""Unit tests for usage aggregation and the cost model (synthetic records)."""

import pytest

from repro.cloud.metering import UsageRecord
from repro.common import ValidationError
from repro.core import CostModel
from repro.core.costmodel import distribution_stats
from repro.core.usage import aggregate_by_assignment, aggregate_storage, per_user_instance_hours


def rec(kind, rtype, lab, hours, *, user=None, quantity=1.0, start=0.0):
    return UsageRecord(
        resource_id=f"{kind}-{rtype}-{lab}-{user}-{start}",
        kind=kind,
        resource_type=rtype,
        project="course",
        start=start,
        end=start + hours,
        quantity=quantity,
        user=user,
        lab=lab,
    )


class TestAggregation:
    def test_rows_grouped_by_lab_and_type(self):
        records = [
            rec("server", "m1.medium", "lab2", 10, user="s1"),
            rec("server", "m1.medium", "lab2", 20, user="s2"),
            rec("server", "m1.large", "lab8", 5, user="s1"),
        ]
        rows = aggregate_by_assignment(records)
        assert rows[("lab2", "m1.medium")].instance_hours == 30
        assert rows[("lab8", "m1.large")].instance_hours == 5

    def test_fip_apportioned_by_instance_share(self):
        records = [
            rec("baremetal", "gpu_a100_pcie", "lab4_multi", 30, user="s1"),
            rec("baremetal", "gpu_v100", "lab4_multi", 70, user="s2"),
            rec("floating_ip", "floating_ip", "lab4_multi", 100),
        ]
        rows = aggregate_by_assignment(records)
        assert rows[("lab4_multi", "gpu_a100_pcie")].floating_ip_hours == pytest.approx(30)
        assert rows[("lab4_multi", "gpu_v100")].floating_ip_hours == pytest.approx(70)

    def test_unattributed_records_ignored(self):
        rows = aggregate_by_assignment([rec("server", "m1.small", None, 10)])
        assert rows == {}

    def test_per_user_hours_tracked(self):
        records = [
            rec("server", "m1.medium", "lab2", 10, user="s1"),
            rec("server", "m1.medium", "lab2", 5, user="s1", start=100.0),
        ]
        rows = aggregate_by_assignment(records)
        assert rows[("lab2", "m1.medium")].per_user_hours == {"s1": 15}

    def test_storage_aggregation(self):
        records = [
            rec("volume", "block_storage", "lab8", 10, quantity=2.0),
            rec("object_storage", "object_storage", "lab8", 10, quantity=1.2),
        ]
        storage = aggregate_storage(records)
        assert storage["lab8"].block_gb_hours == pytest.approx(20)
        assert storage["lab8"].peak_object_gb == pytest.approx(1.2)

    def test_per_user_instance_hours_filters_labs(self):
        records = [
            rec("server", "m1.medium", "lab2", 10, user="s1"),
            rec("server", "m1.medium", "project", 99, user="s1"),
        ]
        out = per_user_instance_hours(records, labs={"lab2"})
        assert out["s1"] == {("lab2", "m1.medium"): 10}


class TestCostModel:
    def setup_method(self):
        self.model = CostModel()

    def test_row_cost_formula(self):
        records = [
            rec("server", "m1.medium", "lab7", 100, user="s1"),
            rec("floating_ip", "floating_ip", "lab7", 100, user="s1"),
        ]
        rows = self.model.lab_rows(records)
        lab7 = next(r for r in rows if r.lab_id == "lab7")
        assert lab7.aws_cost == pytest.approx(100 * 0.0416 + 100 * 0.005)
        assert lab7.gcp_cost == pytest.approx(100 * 0.03351 + 100 * 0.004)

    def test_expected_cost_positive_and_aws_above_gcp(self):
        aws = self.model.expected_cost_per_student("aws")
        gcp = self.model.expected_cost_per_student("gcp")
        assert aws > 0 and gcp > 0
        # paper: $79.80 AWS vs $58.85 GCP
        assert aws > gcp

    def test_per_student_costs_exclude_edge(self):
        records = [
            rec("edge", "raspberrypi5", "lab6_edge", 2, user="s1"),
            rec("server", "m1.small", "lab1", 10, user="s1"),
        ]
        costs = self.model.per_student_costs(records, "aws")
        assert costs["s1"] == pytest.approx(10 * 0.0104)

    def test_per_student_includes_fip(self):
        records = [
            rec("server", "m1.small", "lab1", 10, user="s1"),
            rec("floating_ip", "floating_ip", "lab1", 10, user="s1"),
        ]
        costs = self.model.per_student_costs(records, "aws")
        assert costs["s1"] == pytest.approx(10 * 0.0104 + 10 * 0.005)

    def test_project_cost_components(self):
        records = [
            rec("server", "m1.medium", "project", 100, user="g1"),
            rec("baremetal", "compute_cascadelake", "project", 10, user="g1"),
            rec("floating_ip", "floating_ip", "project", 100, user="g1"),
            rec("volume", "block_storage", "project", 730, quantity=100.0),
            rec("object_storage", "object_storage", "project", 730, quantity=50.0),
        ]
        pc = self.model.project_cost(records, "aws")
        assert pc.instance_usd == pytest.approx(100 * 0.0416 + 10 * 2.04)
        assert pc.floating_ip_usd == pytest.approx(0.5)
        assert pc.block_storage_usd == pytest.approx(100 * 0.08)  # 100 GB-months
        assert pc.object_storage_usd == pytest.approx(50 * 0.023)
        assert pc.total_usd == pytest.approx(
            pc.instance_usd + pc.floating_ip_usd + pc.block_storage_usd + pc.object_storage_usd
        )

    def test_edge_project_usage_costs_nothing(self):
        records = [rec("edge", "raspberrypi5", "project", 100, user="g1")]
        assert self.model.project_cost(records, "aws").total_usd == 0.0

    def test_unknown_provider_rejected(self):
        with pytest.raises(ValidationError):
            self.model.per_student_costs([], "azure")

    def test_lab_totals(self):
        records = [
            rec("server", "m1.small", "lab1", 10, user="s1"),
            rec("floating_ip", "floating_ip", "lab1", 10, user="s1"),
        ]
        rows = self.model.lab_rows(records)
        totals = self.model.lab_totals(rows)
        assert totals["instance_hours"] == 10
        assert totals["floating_ip_hours"] == 10
        assert totals["aws_cost"] > 0


class TestDistributionStats:
    def test_stats_computed(self):
        costs = {f"s{i}": float(i) for i in range(1, 101)}
        stats = distribution_stats(costs, expected=25.0)
        assert stats["mean"] == pytest.approx(50.5)
        assert stats["max"] == 100.0
        assert stats["pct_exceeding_expected"] == pytest.approx(75.0)

    def test_empty_cohort_zero_stats(self):
        stats = distribution_stats({}, expected=1.0)
        assert stats["n"] == 0.0
        assert stats["mean"] == 0.0
        assert stats["max"] == 0.0
        assert stats["pct_exceeding_expected"] == 0.0
        assert stats["expected"] == 1.0

    def test_bad_expected_rejected(self):
        with pytest.raises(ValidationError):
            distribution_stats({"s1": 5.0}, expected=0.0)
        with pytest.raises(ValidationError):
            distribution_stats({}, expected=-1.0)
