"""Reproduction tests: the simulated semester against the paper's §5 numbers.

These are the headline assertions of the whole repository: the cohort
simulation (behaviour model + testbed) must land on Table 1 and Figures
1-3 within tolerance bands — tight for calibrated VM rows (stratified
sampling makes them nearly exact), loose for small stochastic rows.
"""

import pytest

from repro.core import (
    CohortConfig,
    CohortSimulation,
    fig1_duration_data,
    fig2_cost_distribution,
    fig3_project_usage,
    table1,
)
from repro.core.course import COURSE, PAPER_TABLE1_HOURS
from repro.core.report import headline_summary

PAPER_LAB_TOTAL_HOURS = 109_837
PAPER_IP_TOTAL_HOURS = 53_387


class TestTable1Reproduction:
    def test_total_instance_hours_within_5pct(self, semester_records):
        t1 = table1(semester_records)
        assert t1.totals["instance_hours"] == pytest.approx(PAPER_LAB_TOTAL_HOURS, rel=0.05)

    def test_total_ip_hours_within_5pct(self, semester_records):
        t1 = table1(semester_records)
        assert t1.totals["floating_ip_hours"] == pytest.approx(PAPER_IP_TOTAL_HOURS, rel=0.05)

    def test_vm_rows_within_10pct(self, semester_records):
        t1 = table1(semester_records)
        vm_rows = {("lab1", "m1.small"), ("lab2", "m1.medium"), ("lab3", "m1.medium"),
                   ("lab7", "m1.medium"), ("lab8", "m1.large")}
        for row in t1.rows:
            key = (row.lab_id, row.resource_type)
            if key in vm_rows:
                paper = PAPER_TABLE1_HOURS[key][0]
                assert row.instance_hours == pytest.approx(paper, rel=0.10), key

    def test_reserved_rows_within_tolerance(self, semester_records):
        """Slot counts are Poisson, so small rows get wide bands."""
        t1 = table1(semester_records)
        for row in t1.rows:
            key = (row.lab_id, row.resource_type)
            if key not in PAPER_TABLE1_HOURS or row.lab_id.startswith("lab" ) is False:
                continue
            paper = PAPER_TABLE1_HOURS[key][0]
            # Poisson slot counts: tiny rows (28 h = ~9 slots) are dominated
            # by sampling noise, so their band is wide
            rel = 0.8 if paper < 150 else (0.45 if paper < 300 else 0.25)
            assert row.instance_hours == pytest.approx(paper, rel=rel), key

    def test_per_student_lab_cost_in_paper_range(self, semester_records):
        """Paper: $124 AWS / $111 GCP per student for labs."""
        t1 = table1(semester_records)
        aws = t1.totals["aws_cost"] / COURSE.enrollment
        gcp = t1.totals["gcp_cost"] / COURSE.enrollment
        assert 95 <= aws <= 150
        assert 90 <= gcp <= 140

    def test_vm_lab_fip_ratio(self, semester_records):
        """Rows 2-3: one floating IP per three VMs."""
        t1 = table1(semester_records)
        for row in t1.rows:
            if row.lab_id in ("lab2", "lab3"):
                assert row.floating_ip_hours == pytest.approx(row.instance_hours / 3, rel=0.01)

    def test_reserved_fip_equals_instance_hours(self, semester_records):
        t1 = table1(semester_records)
        for row in t1.rows:
            if row.lab_id.startswith(("lab4", "lab5", "lab6")):
                assert row.floating_ip_hours == pytest.approx(row.instance_hours, rel=0.01)

    def test_edge_row_has_no_commercial_cost(self, semester_records):
        t1 = table1(semester_records)
        edge = [r for r in t1.rows if r.resource_type == "raspberrypi5"]
        assert edge and edge[0].aws_cost is None and edge[0].gcp_cost is None

    def test_render_contains_paper_columns(self, semester_records):
        text = table1(semester_records).render()
        for needle in ("Assignment", "Instance Hours", "Floating IP Hours",
                       "AWS Cost", "GCP Cost", "Total", "NA"):
            assert needle in text


class TestFig1Reproduction:
    def test_vm_labs_overshoot_expected(self, semester_records):
        """Fig 1(a): every VM lab's actual usage far exceeds expected."""
        f1 = fig1_duration_data(semester_records)
        assert len(f1.vm_rows) == 5
        for row in f1.vm_rows:
            assert row.overshoot > 3.0, row.lab_id

    def test_lab2_overshoot_is_extreme(self, semester_records):
        f1 = fig1_duration_data(semester_records)
        lab2 = next(r for r in f1.vm_rows if r.lab_id == "lab2")
        assert lab2.overshoot > 10.0  # paper: ~18x

    def test_reserved_labs_track_expected(self, semester_records):
        """Fig 1(b): auto-termination keeps actual near expected."""
        f1 = fig1_duration_data(semester_records)
        for row in f1.reserved_rows:
            assert 0.1 <= row.overshoot <= 3.0, row.lab_id

    def test_unit4_single_below_unit5_multi_above(self, semester_records):
        """The paper's §5 note: single-GPU under, multi-GPU re-runs over."""
        f1 = fig1_duration_data(semester_records)
        by_id = {r.lab_id: r for r in f1.reserved_rows}
        assert by_id["lab4_single"].overshoot < 1.0
        assert by_id["lab5_multi"].overshoot > 1.5

    def test_render(self, semester_records):
        text = fig1_duration_data(semester_records).render()
        assert "Fig 1(a)" in text and "Fig 1(b)" in text


class TestFig2Reproduction:
    def test_majority_exceed_expected_cost(self, semester_records):
        """Paper: 75% (AWS) / 73% (GCP) of students exceed the expected cost."""
        f2 = fig2_cost_distribution(semester_records)
        assert f2.aws_stats["pct_exceeding_expected"] > 55
        assert f2.gcp_stats["pct_exceeding_expected"] > 55

    def test_long_tail_max_several_times_mean(self, semester_records):
        """Paper: max $665 vs mean $124 on AWS (5.4x)."""
        f2 = fig2_cost_distribution(semester_records)
        for stats in (f2.aws_stats, f2.gcp_stats):
            assert stats["max"] > 3.0 * stats["mean"]
            assert stats["max"] < 15.0 * stats["mean"]

    def test_max_student_in_paper_range(self, semester_records):
        f2 = fig2_cost_distribution(semester_records)
        assert 400 <= f2.aws_stats["max"] <= 1000  # paper: $665

    def test_expected_cost_matches_paper_ballpark(self, semester_records):
        """Paper: $79.80 AWS / $58.85 GCP expected per student."""
        f2 = fig2_cost_distribution(semester_records)
        assert 50 <= f2.aws_stats["expected"] <= 95
        assert 40 <= f2.gcp_stats["expected"] <= 80

    def test_all_students_counted(self, semester_records):
        f2 = fig2_cost_distribution(semester_records)
        assert f2.aws_stats["n"] == COURSE.enrollment

    def test_histogram_sums_to_cohort(self, semester_records):
        f2 = fig2_cost_distribution(semester_records)
        counts, _ = f2.histogram("aws")
        assert counts.sum() == COURSE.enrollment


class TestFig3Reproduction:
    def test_project_vm_hours_within_5pct(self, semester_records):
        f3 = fig3_project_usage(semester_records)
        assert f3.vm_hours_total == pytest.approx(70_259, rel=0.05)

    def test_project_gpu_hours_within_10pct(self, semester_records):
        f3 = fig3_project_usage(semester_records)
        assert f3.gpu_hours_total == pytest.approx(5_446, rel=0.10)

    def test_other_project_resources(self, semester_records):
        f3 = fig3_project_usage(semester_records)
        assert f3.baremetal_cpu_hours == pytest.approx(975, rel=0.10)
        assert f3.edge_hours == pytest.approx(175, rel=0.10)
        assert f3.block_storage_gb_peak == pytest.approx(9_000, rel=0.05)
        assert f3.object_storage_gb_peak == pytest.approx(1_541, rel=0.05)

    def test_project_cost_in_paper_range(self, semester_records):
        """Paper: $25,889 AWS / $26,218 GCP for projects."""
        f3 = fig3_project_usage(semester_records)
        assert 18_000 <= f3.aws_total_usd <= 33_000
        assert 16_000 <= f3.gcp_total_usd <= 33_000


class TestHeadlines:
    def test_total_instance_hours_matches_abstract(self, semester_records):
        """Abstract: 186,692 total compute instance hours."""
        hs = headline_summary(semester_records)
        assert hs["total_instance_hours"] == pytest.approx(186_692, rel=0.05)

    def test_cost_per_student_approximately_250(self, semester_records):
        hs = headline_summary(semester_records)
        assert 200 <= hs["aws_total_per_student"] <= 300
        assert 180 <= hs["gcp_total_per_student"] <= 300

    def test_course_total_under_60k(self, semester_records):
        """Abstract: 'almost $50,000 for our course'."""
        hs = headline_summary(semester_records)
        assert 38_000 <= hs["aws_course_total"] <= 60_000


class TestCohortMechanics:
    def test_deterministic_under_seed(self):
        a = CohortSimulation(config=CohortConfig(seed=7)).run(include_project=False)
        b = CohortSimulation(config=CohortConfig(seed=7)).run(include_project=False)
        assert len(a) == len(b)
        assert sum(r.unit_hours for r in a) == pytest.approx(sum(r.unit_hours for r in b))

    def test_different_seed_different_usage(self):
        a = CohortSimulation(config=CohortConfig(seed=1)).run(include_project=False)
        b = CohortSimulation(config=CohortConfig(seed=2)).run(include_project=False)
        assert sum(r.unit_hours for r in a) != sum(r.unit_hours for r in b)

    def test_cannot_run_twice(self):
        sim = CohortSimulation()
        sim.run(include_project=False)
        with pytest.raises(Exception):
            sim.run()

    def test_no_open_spans_after_semester(self, semester_records):
        """Every resource was eventually torn down (spans all closed)."""
        # records() snapshots open spans at now == semester end; spans that
        # are genuinely open would keep accruing if we advanced further.
        sim = CohortSimulation()
        records = sim.run(include_project=False)
        for site in sim.testbed.sites.values():
            assert not site.compute.servers
            assert not site.network.floating_ips

    def test_vm_reaper_ablation_slashes_vm_hours(self):
        """§5: 'Chameleon has introduced advance reservation for VM
        instances ... with automatic termination' — the reaper ablation."""
        base = CohortSimulation(config=CohortConfig(seed=3)).run(include_project=False)
        reaped = CohortSimulation(
            config=CohortConfig(seed=3, vm_reaper=True)
        ).run(include_project=False)

        def vm_hours(records):
            return sum(r.unit_hours for r in records if r.kind == "server")

        assert vm_hours(reaped) < 0.25 * vm_hours(base)

    def test_quota_never_exceeded(self):
        sim = CohortSimulation()
        sim.run()
        kvm = sim.testbed.site("kvm@tacc")
        # quota accounting returned to zero after cleanup
        assert kvm.quota.usage("instances") == 0
        assert kvm.quota.usage("floating_ips") == 0

    def test_participation_scales_usage(self):
        full = CohortSimulation(config=CohortConfig(seed=5)).run(include_project=False)
        # participation correction keeps totals calibrated even at 80%
        partial = CohortSimulation(
            config=CohortConfig(seed=5, participation=0.8)
        ).run(include_project=False)
        full_h = sum(r.unit_hours for r in full if r.kind == "server")
        part_h = sum(r.unit_hours for r in partial if r.kind == "server")
        assert part_h == pytest.approx(full_h, rel=0.2)
