"""Degenerate-cohort regressions for the Fig-2 statistics.

Two edges the parallel sweep made reachable in practice: a 1-student
cohort (scaled_course can shrink enrollment to 1), and a cohort where
every student lands exactly on the expected cost (the "% exceeding"
column uses a strict >, so exactly-expected must count as NOT exceeding).
"""

import math

import pytest

from repro.common.errors import ValidationError
from repro.core import CohortSimulation, fig2_cost_distribution, scaled_course
from repro.core.cohort import CohortConfig
from repro.core.costmodel import distribution_stats


def test_single_student_stats_collapse_to_that_student():
    stats = distribution_stats({"student000": 123.45}, expected=100.0)
    assert stats["n"] == 1.0
    for key in ("mean", "median", "p75", "p95", "max"):
        assert stats[key] == pytest.approx(123.45)
    assert stats["pct_exceeding_expected"] == pytest.approx(100.0)


def test_single_student_below_expected_exceeds_nothing():
    stats = distribution_stats({"student000": 80.0}, expected=100.0)
    assert stats["pct_exceeding_expected"] == 0.0
    assert stats["max"] == pytest.approx(80.0)


def test_everyone_exactly_at_expected_exceeds_nothing():
    """Strict >: hitting the expected cost to the cent is not an overrun."""
    costs = {f"student{i:03d}": 42.0 for i in range(25)}
    stats = distribution_stats(costs, expected=42.0)
    assert stats["n"] == 25.0
    assert stats["mean"] == pytest.approx(42.0)
    assert stats["median"] == pytest.approx(42.0)
    assert stats["p95"] == pytest.approx(42.0)
    assert stats["max"] == pytest.approx(42.0)
    assert stats["pct_exceeding_expected"] == 0.0


def test_one_cent_over_expected_counts_everyone():
    costs = {f"student{i:03d}": 42.01 for i in range(25)}
    stats = distribution_stats(costs, expected=42.0)
    assert stats["pct_exceeding_expected"] == pytest.approx(100.0)


def test_empty_cohort_is_all_zero_not_an_error():
    stats = distribution_stats({}, expected=50.0)
    assert stats["n"] == 0.0
    assert stats["pct_exceeding_expected"] == 0.0
    assert stats["expected"] == 50.0


def test_nonpositive_expected_rejected():
    with pytest.raises(ValidationError):
        distribution_stats({"s": 1.0}, expected=0.0)
    with pytest.raises(ValidationError):
        distribution_stats({"s": 1.0}, expected=-5.0)


def test_one_student_cohort_end_to_end():
    """A cohort scaled down to a single student flows through the whole
    Fig-2 pipeline: stats are finite, n <= 1 per provider, and percentile
    collapse (p95 == max == median when one student bears all cost)."""
    solo = scaled_course(1.0 / 191.0)
    assert solo.enrollment == 1
    records = CohortSimulation(solo, CohortConfig(seed=42)).run()
    fig2 = fig2_cost_distribution(records, course=solo)
    for stats in (fig2.aws_stats, fig2.gcp_stats):
        assert stats["n"] <= 1.0
        if stats["n"] == 1.0:
            assert stats["median"] == pytest.approx(stats["max"])
            assert stats["p95"] == pytest.approx(stats["max"])
            assert math.isfinite(stats["mean"])
        assert stats["pct_exceeding_expected"] in (0.0, 100.0)
    assert fig2.render()
