"""Shared fixtures: the cohort simulation is expensive, so run it once."""

import pytest

from repro.core import CohortSimulation


@pytest.fixture(scope="session")
def semester_records():
    """One full simulated semester (labs + project), default seed."""
    return CohortSimulation().run()


@pytest.fixture(scope="session")
def lab_records(semester_records):
    return [r for r in semester_records if r.lab != "project"]
