"""Tests for the pricing catalog, requirement matching, and course definition."""

import pytest

from repro.common import SchedulingError, ValidationError
from repro.core import AWS_CATALOG, GCP_CATALOG, COURSE, CloudInstance, RequirementSpec
from repro.core.catalog import PricingCatalog
from repro.core.course import TABLE1_ROWS, LabKind
from repro.core.matching import cheapest_match, matches


class TestCatalog:
    def test_catalogs_are_price_sorted(self):
        for catalog in (AWS_CATALOG, GCP_CATALOG):
            prices = [i.hourly_usd for i in catalog]
            assert prices == sorted(prices)

    def test_paper_recoverable_rates(self):
        """Rates exactly recoverable from Table 1 (see catalog docstring)."""
        by_name = {i.name: i for i in AWS_CATALOG}
        assert by_name["t3.micro"].hourly_usd == 0.0104
        assert by_name["t3.medium"].hourly_usd == 0.0416
        assert by_name["t3.xlarge"].hourly_usd == 0.1664
        assert AWS_CATALOG.ip_hourly_usd == 0.005
        gcp = {i.name: i for i in GCP_CATALOG}
        assert gcp["a2-highgpu-4g"].hourly_usd == 14.694
        assert gcp["g2-standard-24"].hourly_usd == 1.998
        assert GCP_CATALOG.ip_hourly_usd == 0.004

    def test_provider_mismatch_rejected(self):
        inst = CloudInstance("x", "aws", 1, 1, 1.0)
        with pytest.raises(ValidationError):
            PricingCatalog("gcp", [inst], ip_hourly_usd=0.004)

    def test_invalid_instance_rejected(self):
        with pytest.raises(ValidationError):
            CloudInstance("x", "aws", 0, 1, 1.0)
        with pytest.raises(ValidationError):
            CloudInstance("x", "aws", 1, 1, 1.0, gpus=1, gpu_mem_gib=0)


class TestMatching:
    def test_cheapest_satisfying_wins(self):
        spec = RequirementSpec(vcpus=2, ram_gib=4)
        assert cheapest_match(spec, AWS_CATALOG).name == "t3.medium"
        assert cheapest_match(spec, GCP_CATALOG).name == "e2-medium"

    def test_dedicated_cores_excludes_shared(self):
        spec = RequirementSpec(vcpus=2, ram_gib=4, dedicated_cores=True)
        assert cheapest_match(spec, GCP_CATALOG).name == "n2-standard-2"

    def test_bf16_excludes_pre_ampere(self):
        spec = RequirementSpec(gpus=1, gpu_mem_gib=16, needs_bf16=True)
        names = {i.name for i in matches(spec, AWS_CATALOG)}
        assert "g4dn.xlarge" not in names  # T4 is cc 7.5
        assert cheapest_match(spec, AWS_CATALOG).compute_capability >= 8.0

    def test_gpu_memory_bound(self):
        spec = RequirementSpec(gpus=1, gpu_mem_gib=80)
        assert cheapest_match(spec, GCP_CATALOG).name == "a2-ultragpu-1g"

    def test_impossible_spec_raises(self):
        with pytest.raises(SchedulingError):
            cheapest_match(RequirementSpec(gpus=64), AWS_CATALOG)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValidationError):
            RequirementSpec(vcpus=0)

    def test_lab_equivalents_match_paper_choices(self):
        """The per-lab matches that are recoverable from Table 1."""
        from repro.core.costmodel import CostModel

        model = CostModel()
        expectations = {
            ("lab1", "aws"): "t3.micro",
            ("lab2", "aws"): "t3.medium",
            ("lab2", "gcp"): "n2-standard-2",
            ("lab7", "aws"): "t3.medium",
            ("lab7", "gcp"): "e2-medium",
            ("lab8", "aws"): "t3.xlarge",
            ("lab8", "gcp"): "e2-standard-2",
            ("lab4_multi", "gcp"): "a2-highgpu-4g",
            ("lab4_single", "gcp"): "a2-ultragpu-1g",
            ("lab5_multi", "gcp"): "g2-standard-24",
            ("lab6_opt", "gcp"): "g2-standard-4",
            ("lab6_sys", "gcp"): "g2-standard-24",
        }
        for (lab_id, provider), name in expectations.items():
            assert model.lab_equivalent(lab_id, provider).name == name, (lab_id, provider)

    def test_edge_lab_has_no_equivalent(self):
        from repro.core.costmodel import CostModel

        assert CostModel().lab_equivalent("lab6_edge", "aws") is None

    def test_same_assignment_same_equivalent_across_node_types(self):
        """The paper's per-assignment (not per-node-type) matching."""
        from repro.core.costmodel import CostModel

        model = CostModel()
        # lab4_multi covers both gpu_a100_pcie and gpu_v100 rows with one match
        assert model.lab_equivalent("lab4_multi", "aws") is not None


class TestCourseDefinition:
    def test_enrollment_matches_paper(self):
        assert COURSE.enrollment == 191

    def test_sixteen_table1_rows(self):
        assert len(TABLE1_ROWS) == 16

    def test_every_lab_has_table1_rows(self):
        lab_ids = {lab.id for lab in COURSE.labs}
        assert {lab_id for lab_id, _ in TABLE1_ROWS} == lab_ids

    def test_calibration_targets_consistent_with_paper(self):
        """mean_actual * enrollment * vm_count reproduces Table 1 hours."""
        from repro.core.course import PAPER_TABLE1_HOURS

        for lab in COURSE.labs:
            if lab.kind is not LabKind.VM:
                continue
            paper = PAPER_TABLE1_HOURS[(lab.id, lab.flavor)][0]
            implied = lab.mean_actual_hours * COURSE.enrollment * lab.vm_count
            assert implied == pytest.approx(paper, rel=0.01)

    def test_reserved_calibration_consistent(self):
        from repro.core.course import PAPER_TABLE1_HOURS

        for lab in COURSE.labs:
            if lab.kind is LabKind.VM:
                continue
            paper_total = sum(
                hours for (lid, _), (hours, _) in PAPER_TABLE1_HOURS.items() if lid == lab.id
            )
            implied = lab.mean_slots * COURSE.enrollment * lab.slot_hours
            assert implied == pytest.approx(paper_total, rel=0.01)

    def test_option_weights_sum_to_one(self):
        for lab in COURSE.labs:
            if lab.options:
                assert sum(o.weight for o in lab.options) == pytest.approx(1.0)

    def test_unknown_lab_raises(self):
        with pytest.raises(ValidationError):
            COURSE.lab("lab99")

    def test_semester_length(self):
        assert COURSE.semester_weeks == 14
        assert COURSE.semester_hours == 2352.0
