"""Tests for report rendering and edge paths of the report generators."""

import pytest

from repro.cloud.metering import UsageRecord
from repro.core import fig1_duration_data, fig2_cost_distribution, fig3_project_usage, table1
from repro.core.report import headline_summary


def rec(kind, rtype, lab, hours, *, user="s1", quantity=1.0):
    return UsageRecord(
        resource_id=f"{kind}-{rtype}-{lab}-{user}-{hours}",
        kind=kind, resource_type=rtype, project="course",
        start=0.0, end=hours, quantity=quantity, user=user, lab=lab,
    )


MINIMAL = [
    rec("server", "m1.small", "lab1", 10),
    rec("floating_ip", "floating_ip", "lab1", 10),
    rec("edge", "raspberrypi5", "lab6_edge", 2),
    rec("server", "m1.medium", "project", 100),
    rec("baremetal", "compute_gigaio", "project", 8),
    rec("baremetal", "compute_cascadelake", "project", 4),
    rec("edge", "raspberrypi5", "project", 2),
    rec("volume", "block_storage", "project", 100, quantity=50.0),
    rec("object_storage", "object_storage", "project", 100, quantity=10.0),
]


class TestRendering:
    def test_table1_renders_minimal_records(self):
        text = table1(MINIMAL).render()
        assert "1. Hello, Chameleon" in text
        assert "NA" in text  # the edge row

    def test_fig1_handles_missing_labs(self):
        """Labs with zero usage still appear with actual=0."""
        f1 = fig1_duration_data(MINIMAL)
        lab2 = next(r for r in f1.vm_rows if r.lab_id == "lab2")
        assert lab2.actual_hours_per_student == 0.0
        assert "Fig 1(a)" in f1.render()

    def test_fig2_single_user(self):
        f2 = fig2_cost_distribution(MINIMAL)
        assert f2.aws_stats["n"] == 1
        assert "% exceeding expected" in f2.render()

    def test_fig3_categorises_project_kinds(self):
        f3 = fig3_project_usage(MINIMAL)
        assert f3.vm_hours_by_flavor == {"m1.medium": 100.0}
        assert f3.gpu_hours_by_type == {"compute_gigaio": 8.0}
        assert f3.baremetal_cpu_hours == 4.0
        assert f3.edge_hours == 2.0
        assert f3.block_storage_gb_peak == 50.0
        assert "Project usage" in f3.render()

    def test_headline_summary_keys(self):
        hs = headline_summary(MINIMAL)
        assert hs["total_instance_hours"] == pytest.approx(
            hs["lab_instance_hours"] + hs["project_instance_hours"]
        )
        assert hs["aws_total_per_student"] >= 0

    def test_fig3_excludes_lab_records(self):
        f3 = fig3_project_usage(MINIMAL)
        # lab1's m1.small must not leak into project VM hours
        assert "m1.small" not in f3.vm_hours_by_flavor
