"""The headline contract, held to sha256: ``run_parallel(workers=N)`` is
digest-identical to the serial ``CohortSimulation.run()`` for every seed,
worker count, and cohort size we sweep — and identical not just in the raw
records but in the paper artifacts (Table 1, Fig 2) rendered from them.
"""

import pytest

from repro.core import (
    CohortSimulation,
    fig2_cost_distribution,
    records_digest,
    scaled_course,
    table1,
)
from repro.core.cohort import CohortConfig
from repro.core.course import COURSE
from repro.parallel import run_parallel

#: 48-student cohort: small enough to sweep seeds x workers cheaply.
SMALL = scaled_course(0.25)
SEEDS = (42, 7, 1234)
WORKERS = (1, 2, 4)


@pytest.fixture(scope="module")
def serial_small():
    """Serial reference records per seed, computed once for the sweep."""
    return {
        seed: CohortSimulation(SMALL, CohortConfig(seed=seed)).run() for seed in SEEDS
    }


@pytest.fixture(scope="module")
def serial_full():
    """The paper's full 191-student cohort, serial reference."""
    return CohortSimulation().run()


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("workers", WORKERS)
def test_parallel_digest_matches_serial_small_cohort(serial_small, seed, workers):
    parallel = run_parallel(SMALL, CohortConfig(seed=seed), workers=workers)
    assert records_digest(parallel) == records_digest(serial_small[seed])


def test_parallel_records_equal_not_just_digest(serial_small):
    """Record-by-record equality — guards against a digest collision ever
    masking a divergence in the sweep above."""
    parallel = run_parallel(SMALL, CohortConfig(seed=SEEDS[0]), workers=2)
    assert parallel == serial_small[SEEDS[0]]


@pytest.mark.parametrize("workers", (2, 4))
def test_parallel_digest_matches_serial_full_cohort(serial_full, workers):
    parallel = run_parallel(COURSE, CohortConfig(), workers=workers)
    assert records_digest(parallel) == records_digest(serial_full)


def test_labs_only_cohort_matches(serial_small):
    serial = CohortSimulation(SMALL, CohortConfig(seed=SEEDS[0])).run(
        include_project=False
    )
    parallel = run_parallel(
        SMALL, CohortConfig(seed=SEEDS[0]), workers=2, include_project=False
    )
    assert records_digest(parallel) == records_digest(serial)


def test_paper_artifacts_identical_from_parallel_records(serial_full):
    """Table 1 and Fig 2 rendered from parallel records are byte-identical
    to the serial renders — the artifact level the paper is judged at."""
    parallel = run_parallel(COURSE, CohortConfig(), workers=2)

    t_serial, t_parallel = table1(serial_full), table1(parallel)
    assert t_parallel.render() == t_serial.render()
    assert t_parallel.totals == t_serial.totals

    f_serial = fig2_cost_distribution(serial_full)
    f_parallel = fig2_cost_distribution(parallel)
    assert f_parallel.render() == f_serial.render()
    assert f_parallel.aws == f_serial.aws
    assert f_parallel.gcp == f_serial.gcp


def test_different_seed_changes_parallel_output():
    """Anti-vacuity guard: the digest must actually see the seed."""
    a = run_parallel(SMALL, CohortConfig(seed=SEEDS[0]), workers=2)
    b = run_parallel(SMALL, CohortConfig(seed=SEEDS[1]), workers=2)
    assert records_digest(a) != records_digest(b)
