"""Property tests for the canonical merge.

The merge is the only step where shard boundaries could leak into output,
so Hypothesis drives it with adversarial partitions: shuffled shard order,
empty shards, one-record shards.  All must reduce to the same canonical
sequence, and the billing integral must be conserved exactly.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.metering import UsageRecord
from repro.parallel import merge_shard_records, total_unit_hours

_SITES = ("kvm@tacc", "chi@tacc", "chi@edge")

#: kind -> id prefix, mirroring how the simulator mints ids.  Deriving the
#: prefix from a sort-key field keeps the generated data inside the real
#: invariant "sort-key ties are content-identical", which is what makes the
#: id rewrite shard-permutation safe (see canonicalize_records).
_KIND_PREFIX = {
    "server": "server",
    "baremetal": "lease",
    "edge": "lease",
    "floating_ip": "fip",
    "volume": "volume",
    "object_storage": "objspan",
}


@st.composite
def usage_records(draw):
    start = draw(st.floats(min_value=0.0, max_value=2000.0, allow_nan=False))
    length = draw(st.floats(min_value=0.0, max_value=500.0, allow_nan=False))
    kind = draw(st.sampled_from(sorted(_KIND_PREFIX)))
    serial = draw(st.integers(min_value=1, max_value=999999))
    return UsageRecord(
        resource_id=f"{_KIND_PREFIX[kind]}-{serial:06d}",
        kind=kind,
        resource_type=draw(st.sampled_from(("m1.small", "m1.large", "gpu_v100"))),
        project=draw(st.sampled_from(("CHI-000000", "CHI-edu"))),
        start=start,
        end=start + length,
        quantity=draw(st.floats(min_value=0.0, max_value=100.0, allow_nan=False)),
        user=draw(st.sampled_from((None, "student001", "group01"))),
        lab=draw(st.sampled_from((None, "lab1", "project"))),
        site=draw(st.sampled_from(_SITES)),
    )


def _unique_ids_per_shard(shards):
    """Real shards never reuse an id within themselves; enforce that on the
    generated data so the id-rewrite identity key is well-posed."""
    out = []
    for shard in shards:
        seen: set[tuple[str, str]] = set()
        kept = []
        for rec in shard:
            key = (rec.site, rec.resource_id)
            if key not in seen:
                seen.add(key)
                kept.append(rec)
        out.append(kept)
    return out


shard_lists = st.lists(
    st.lists(usage_records(), max_size=8), max_size=6
).map(_unique_ids_per_shard)


@given(shards=shard_lists, seed=st.randoms(use_true_random=False))
@settings(max_examples=60, deadline=None)
def test_merge_invariant_to_shard_order(shards, seed):
    reference = merge_shard_records(shards)
    shuffled = list(shards)
    seed.shuffle(shuffled)
    assert merge_shard_records(shuffled) == reference


@given(shards=shard_lists)
@settings(max_examples=60, deadline=None)
def test_empty_shards_are_invisible(shards):
    reference = merge_shard_records(shards)
    padded = [[]]
    for shard in shards:
        padded.append(shard)
        padded.append([])
    assert merge_shard_records(padded) == reference


@given(shards=shard_lists)
@settings(max_examples=60, deadline=None)
def test_singleton_split_equals_grouped_merge(shards):
    """Splitting every shard into one-record shards changes nothing: the
    canonical order erases shard boundaries entirely."""
    reference = merge_shard_records(shards)
    singletons = [[rec] for shard in shards for rec in shard]
    assert merge_shard_records(singletons) == reference


@given(shards=shard_lists)
@settings(max_examples=60, deadline=None)
def test_metered_hours_conserved(shards):
    """The merge reorders and re-mints ids; it must never touch the
    billing integral (sum of quantity x hours)."""
    before = sum(total_unit_hours(shard) for shard in shards)
    after = total_unit_hours(merge_shard_records(shards))
    assert math.isclose(before, after, rel_tol=0.0, abs_tol=1e-6)
    assert sum(len(s) for s in shards) == len(merge_shard_records(shards))


@given(shards=shard_lists)
@settings(max_examples=60, deadline=None)
def test_merged_ids_are_canonical(shards):
    """Output ids are densely re-minted per (site, prefix) from 1, so two
    different shardings of the same records can never disagree on ids."""
    merged = merge_shard_records(shards)
    counters: dict[tuple[str, str], int] = {}
    seen_new: dict[tuple[str, str], set[str]] = {}
    for rec in merged:
        prefix = rec.resource_id.rsplit("-", 1)[0]
        serial = int(rec.resource_id.rsplit("-", 1)[1])
        bucket = seen_new.setdefault((rec.site, prefix), set())
        if rec.resource_id in bucket:
            continue
        bucket.add(rec.resource_id)
        counters[(rec.site, prefix)] = counters.get((rec.site, prefix), 0) + 1
        assert serial == counters[(rec.site, prefix)]
