"""Tests for the Ray-like task pool and hyperparameter tuner."""

import pytest

from repro.common import ValidationError
from repro.scheduling import RayCluster, RayTask, Tuner
from repro.training import TrainingSimulator


class TestRayCluster:
    def test_parallel_tasks_overlap(self):
        cluster = RayCluster(num_cpus=4, num_gpus=0)
        tasks = [RayTask(f"t{i}", lambda: 1, num_cpus=1, duration_hours=1.0) for i in range(4)]
        assert cluster.makespan(tasks) == pytest.approx(1.0)

    def test_gpu_limit_serialises(self):
        cluster = RayCluster(num_cpus=8, num_gpus=1)
        tasks = [RayTask(f"t{i}", lambda: 1, num_gpus=1, duration_hours=1.0) for i in range(3)]
        assert cluster.makespan(tasks) == pytest.approx(3.0)

    def test_results_captured(self):
        cluster = RayCluster()
        records = cluster.run([RayTask("t", lambda: 42, duration_hours=0.1)])
        assert records[0].result == 42

    def test_oversized_task_rejected(self):
        with pytest.raises(ValidationError):
            RayCluster(num_gpus=1).run([RayTask("t", lambda: 1, num_gpus=4)])

    def test_mixed_resources_schedule(self):
        cluster = RayCluster(num_cpus=2, num_gpus=1)
        tasks = [
            RayTask("gpu-a", lambda: 1, num_cpus=1, num_gpus=1, duration_hours=2.0),
            RayTask("cpu-a", lambda: 1, num_cpus=1, duration_hours=1.0),
            RayTask("gpu-b", lambda: 1, num_cpus=1, num_gpus=1, duration_hours=1.0),
        ]
        records = {r.name: r for r in cluster.run(tasks)}
        assert records["cpu-a"].start == 0.0  # runs alongside gpu-a
        assert records["gpu-b"].start == pytest.approx(2.0)  # waits for the GPU


class TestTuner:
    def setup_method(self):
        self.sim = TrainingSimulator(seed=0, noise=0.0)
        self.tuner = Tuner(self.sim, max_steps=200, seed=0)

    def test_grid_generates_cartesian_product(self):
        grid = Tuner.grid({"lr": [1e-4, 3e-4], "batch": [8, 16, 32]})
        assert len(grid) == 6
        assert {g["lr"] for g in grid} == {1e-4, 3e-4}

    def test_random_log_sampling_in_bounds(self):
        configs = self.tuner.random({"lr": (1e-5, 1e-2)}, 20)
        assert all(1e-5 <= c["lr"] <= 1e-2 for c in configs)

    def test_random_log_requires_positive(self):
        with pytest.raises(ValidationError):
            self.tuner.random({"lr": (0.0, 1.0)}, 3)

    def test_fit_finds_near_optimal_lr(self):
        configs = Tuner.grid({"lr": [1e-6, 1e-5, 1e-4, 3e-4, 1e-3, 1e-2, 1e-1]})
        result = self.tuner.fit(configs)
        assert result.best.config["lr"] == pytest.approx(3e-4)

    def test_asha_matches_full_search_winner(self):
        configs = Tuner.grid({"lr": [1e-6, 1e-5, 1e-4, 3e-4, 1e-3, 1e-2, 1e-1]})
        full = self.tuner.fit(configs)
        asha = self.tuner.fit_asha(configs, reduction_factor=3, min_steps=10)
        assert asha.best.config == full.best.config

    def test_asha_spends_fewer_steps(self):
        configs = Tuner.grid({"lr": [1e-6, 1e-5, 1e-4, 3e-4, 1e-3, 1e-2, 1e-1, 0.5, 1.0]})
        full = self.tuner.fit(configs)
        asha = self.tuner.fit_asha(configs)
        assert asha.total_steps < 0.6 * full.total_steps

    def test_asha_marks_early_stops(self):
        configs = Tuner.grid({"lr": [1e-6, 3e-4, 1e-1]})
        result = self.tuner.fit_asha(configs, reduction_factor=3, min_steps=10)
        stopped = [t for t in result.trials if t.stopped_early]
        assert stopped  # losers were cut
        assert all(t.steps_trained < 200 for t in stopped)

    def test_empty_configs_rejected(self):
        with pytest.raises(ValidationError):
            self.tuner.fit([])
        with pytest.raises(ValidationError):
            self.tuner.fit_asha([])

    def test_bad_reduction_factor(self):
        with pytest.raises(ValidationError):
            self.tuner.fit_asha([{"lr": 1e-4}], reduction_factor=1)
