"""Tests for jobs, the cluster, policies, and the scheduling simulation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import ConflictError, ValidationError
from repro.scheduling import (
    BackfillPolicy,
    FairSharePolicy,
    FifoPolicy,
    Job,
    SchedCluster,
    Scheduler,
    ml_workload,
)


def job(id, submit, runtime, *, tasks=1, gpus=1, user="u0", estimate=None):
    return Job(
        id=id,
        user=user,
        submit_time=submit,
        runtime_hours=runtime,
        estimate_hours=estimate if estimate is not None else runtime,
        tasks=tasks,
        gpus_per_task=gpus,
    )


class TestJobsAndCluster:
    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValidationError):
            job("j", 0, 0)
        with pytest.raises(ValidationError):
            job("j", -1, 1)
        with pytest.raises(ValidationError):
            Job("j", "u", 0, 1, 1, tasks=0)

    def test_gang_property(self):
        assert job("j", 0, 1, tasks=4).gang
        assert not job("j", 0, 1).gang

    def test_walltime_kill_at_estimate(self):
        j = Job("j", "u", 0, runtime_hours=10, estimate_hours=2)
        assert j.actual_end == 2

    def test_placement_all_or_nothing(self):
        cluster = SchedCluster.homogeneous(2, gpus_per_node=2)
        wide = job("wide", 0, 1, tasks=5, gpus=1)  # 5 tasks > 4 GPUs
        assert cluster.find_placement(wide) is None
        fits = job("fits", 0, 1, tasks=4, gpus=1)
        placement = cluster.find_placement(fits)
        assert placement is not None and len(placement) == 4

    def test_allocate_release_restores_capacity(self):
        cluster = SchedCluster.homogeneous(1, gpus_per_node=4)
        j = job("j", 0, 1, tasks=2, gpus=2)
        cluster.allocate(j, cluster.find_placement(j))
        assert cluster.free_gpus == 0
        cluster.release(j)
        assert cluster.free_gpus == 4

    def test_double_allocate_rejected(self):
        cluster = SchedCluster.homogeneous(1)
        j = job("j", 0, 1)
        cluster.allocate(j, cluster.find_placement(j))
        with pytest.raises(ConflictError):
            cluster.allocate(j, (0,))

    def test_workload_generator_shape(self):
        jobs = ml_workload(200, seed=7)
        assert len(jobs) == 200
        large = [j for j in jobs if j.gang]
        assert 0.05 < len(large) / len(jobs) < 0.30
        assert all(j.estimate_hours >= j.runtime_hours for j in jobs)
        # deterministic under seed
        again = ml_workload(200, seed=7)
        assert [j.runtime_hours for j in again] == [j.runtime_hours for j in jobs]


class TestPolicies:
    def test_fifo_head_of_line_blocking(self):
        """A wide gang job at the head blocks small jobs behind it."""
        cluster = SchedCluster.homogeneous(1, gpus_per_node=4)
        trace = [
            job("running", 0.0, 10.0, tasks=1, gpus=2),
            job("wide", 0.1, 1.0, tasks=4, gpus=1),  # needs all 4 GPUs
            job("small", 0.2, 0.5, tasks=1, gpus=1),  # would fit now
        ]
        result = Scheduler(SchedCluster.homogeneous(1, gpus_per_node=4), FifoPolicy()).run(
            [Job(**{**j.__dict__}) for j in trace]  # fresh copies
        )
        small = next(j for j in result.jobs if j.id == "small")
        assert small.start_time >= 10.0  # blocked behind the wide head job

    def test_backfill_lets_small_job_jump(self):
        trace = [
            job("running", 0.0, 10.0, tasks=1, gpus=2),
            job("wide", 0.1, 1.0, tasks=4, gpus=1),
            job("small", 0.2, 0.5, tasks=1, gpus=1),  # finishes before reservation
        ]
        result = Scheduler(SchedCluster.homogeneous(1, gpus_per_node=4), BackfillPolicy()).run(trace)
        small = next(j for j in result.jobs if j.id == "small")
        wide = next(j for j in result.jobs if j.id == "wide")
        assert small.start_time == pytest.approx(0.2)  # backfilled immediately
        assert wide.start_time == pytest.approx(10.0)  # still gets its reservation

    def test_backfill_does_not_delay_head(self):
        """A long backfill candidate that would push past the reservation must wait."""
        trace = [
            job("running", 0.0, 10.0, tasks=1, gpus=2),
            job("wide", 0.1, 1.0, tasks=4, gpus=1),
            job("long", 0.2, 20.0, tasks=1, gpus=1),  # would overrun reservation
        ]
        result = Scheduler(SchedCluster.homogeneous(1, gpus_per_node=4), BackfillPolicy()).run(trace)
        long_j = next(j for j in result.jobs if j.id == "long")
        wide = next(j for j in result.jobs if j.id == "wide")
        assert wide.start_time == pytest.approx(10.0)
        assert long_j.start_time >= wide.start_time  # did not jump ahead

    def test_backfill_improves_utilization_on_ml_trace(self):
        fifo = Scheduler(SchedCluster.homogeneous(2, gpus_per_node=4), FifoPolicy()).run(
            ml_workload(150, seed=3)
        )
        backfill = Scheduler(SchedCluster.homogeneous(2, gpus_per_node=4), BackfillPolicy()).run(
            ml_workload(150, seed=3)
        )
        assert backfill.mean_wait_hours <= fifo.mean_wait_hours
        assert backfill.makespan_hours <= fifo.makespan_hours + 1e-9

    def test_fair_share_prefers_light_user(self):
        policy = FairSharePolicy()
        policy.record_usage("heavy", 100.0)
        trace = [
            job("blocker", 0.0, 5.0, tasks=1, gpus=1, user="other"),
            job("heavy1", 0.1, 1.0, tasks=1, gpus=1, user="heavy"),
            job("light1", 0.2, 1.0, tasks=1, gpus=1, user="light"),
        ]
        result = Scheduler(SchedCluster.homogeneous(1, gpus_per_node=1), policy).run(trace)
        heavy = next(j for j in result.jobs if j.id == "heavy1")
        light = next(j for j in result.jobs if j.id == "light1")
        assert light.start_time < heavy.start_time

    def test_fair_share_usage_accumulates(self):
        policy = FairSharePolicy()
        trace = [
            job("a", 0.0, 2.0, user="alice", gpus=2),
            job("b", 0.0, 1.0, user="bob"),
        ]
        Scheduler(SchedCluster.homogeneous(2, gpus_per_node=2), policy).run(trace)
        assert policy.usage["alice"] == pytest.approx(4.0)  # 2 GPUs * 2 h
        assert policy.usage["bob"] == pytest.approx(1.0)


class TestSchedulerStats:
    def test_all_jobs_finish(self):
        result = Scheduler(SchedCluster.homogeneous(2, gpus_per_node=4), BackfillPolicy()).run(
            ml_workload(100, seed=1)
        )
        assert all(j.end_time is not None for j in result.jobs)
        assert 0 < result.gpu_utilization <= 1.0

    def test_impossible_job_raises(self):
        trace = [job("huge", 0, 1, tasks=10, gpus=4)]  # 40 GPUs on an 8-GPU cluster
        with pytest.raises(ValidationError):
            Scheduler(SchedCluster.homogeneous(2, gpus_per_node=4), FifoPolicy()).run(trace)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValidationError):
            Scheduler(SchedCluster.homogeneous(1), FifoPolicy()).run([])

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100), n=st.integers(5, 60))
    def test_capacity_never_exceeded_property(self, seed, n):
        """At every start instant, concurrently running GPUs <= capacity."""
        cluster = SchedCluster.homogeneous(2, gpus_per_node=4)
        result = Scheduler(cluster, BackfillPolicy()).run(ml_workload(n, seed=seed))
        events = []
        for j in result.jobs:
            events.append((j.start_time, j.total_gpus))
            events.append((j.end_time, -j.total_gpus))
        in_use = 0
        # at equal times, completions (negative delta) release before starts
        for _, delta in sorted(events, key=lambda e: (e[0], e[1])):
            in_use += delta
            assert in_use <= cluster.total_gpus + 1e-9
        assert in_use == 0
