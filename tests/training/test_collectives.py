"""Tests for collective cost models and the executable ring all-reduce."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.common import ValidationError
from repro.training.collectives import (
    allreduce_cost,
    ring_allreduce,
    ring_allreduce_schedule,
)


class TestCostModels:
    def test_single_rank_is_free(self):
        for algo in ("naive", "ring", "tree"):
            assert allreduce_cost(algo, 1e9, 1, link_bandwidth_gbs=100).total_s == 0.0

    def test_ring_bandwidth_term_independent_of_p(self):
        """The Patarasuk-Yuan optimality fact taught in lecture (§3.4)."""
        costs = [
            allreduce_cost("ring", 1e9, p, link_bandwidth_gbs=100, link_latency_us=0).bandwidth_s
            for p in (2, 8, 64, 512)
        ]
        # 2n(p-1)/p is increasing but bounded by 2n/B: within 2x across all p
        assert max(costs) / min(costs) < 2.0
        assert costs[-1] < 2 * 1e9 / (100e9) * 1.001

    def test_naive_bandwidth_grows_linearly_with_p(self):
        c2 = allreduce_cost("naive", 1e9, 2, link_bandwidth_gbs=100, link_latency_us=0)
        c16 = allreduce_cost("naive", 1e9, 16, link_bandwidth_gbs=100, link_latency_us=0)
        assert c16.bandwidth_s == pytest.approx(15 * c2.bandwidth_s)

    def test_ring_beats_naive_and_tree_for_large_buffers(self):
        kw = dict(link_bandwidth_gbs=100, link_latency_us=5)
        n, p = 52e9, 8  # 13B fp32 gradients across 8 GPUs
        ring = allreduce_cost("ring", n, p, **kw).total_s
        naive = allreduce_cost("naive", n, p, **kw).total_s
        tree = allreduce_cost("tree", n, p, **kw).total_s
        assert ring < tree < naive

    def test_tree_wins_for_tiny_buffers_at_scale(self):
        """Latency-bound regime: fewer rounds beat lower volume."""
        kw = dict(link_bandwidth_gbs=100, link_latency_us=50)
        n, p = 1e3, 256
        ring = allreduce_cost("ring", n, p, **kw).total_s
        tree = allreduce_cost("tree", n, p, **kw).total_s
        assert tree < ring

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValidationError):
            allreduce_cost("quantum", 1e6, 4, link_bandwidth_gbs=10)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValidationError):
            allreduce_cost("ring", 1e6, 0, link_bandwidth_gbs=10)
        with pytest.raises(ValidationError):
            allreduce_cost("ring", -1, 4, link_bandwidth_gbs=10)
        with pytest.raises(ValidationError):
            allreduce_cost("ring", 1e6, 4, link_bandwidth_gbs=0)


class TestRingSchedule:
    def test_step_count_is_2p_minus_2(self):
        sched = ring_allreduce_schedule(1000, 4)
        assert len(sched) == 6
        assert sum(1 for s in sched if s.phase == "reduce-scatter") == 3

    def test_single_rank_no_steps(self):
        assert ring_allreduce_schedule(1000, 1) == []

    def test_chunk_size_is_n_over_p(self):
        sched = ring_allreduce_schedule(1000, 4)
        assert all(s.bytes_per_rank == 250 for s in sched)


class TestRingAllreduceExecution:
    def test_matches_elementwise_sum(self):
        rng = np.random.default_rng(0)
        buffers = [rng.standard_normal(97) for _ in range(5)]
        results, _ = ring_allreduce(buffers)
        expected = np.sum(buffers, axis=0)
        for r in results:
            np.testing.assert_allclose(r, expected, rtol=1e-12)

    def test_all_ranks_agree(self):
        rng = np.random.default_rng(1)
        buffers = [rng.standard_normal((8, 8)) for _ in range(4)]
        results, _ = ring_allreduce(buffers)
        for r in results[1:]:
            np.testing.assert_array_equal(r, results[0])

    def test_preserves_shape_and_handles_2d(self):
        buffers = [np.ones((3, 7)) * i for i in range(3)]
        results, _ = ring_allreduce(buffers)
        assert results[0].shape == (3, 7)
        np.testing.assert_allclose(results[0], np.full((3, 7), 3.0))

    def test_single_rank_identity(self):
        buf = np.arange(10, dtype=float)
        results, sched = ring_allreduce([buf])
        np.testing.assert_array_equal(results[0], buf)
        assert sched == []

    def test_executed_schedule_has_2p_minus_2_steps(self):
        buffers = [np.ones(16) for _ in range(4)]
        _, sched = ring_allreduce(buffers)
        assert len(sched) == 6

    def test_buffer_smaller_than_ranks(self):
        """n < p: some chunks are empty but the result must still be right."""
        buffers = [np.array([float(i)]) for i in range(5)]
        results, _ = ring_allreduce(buffers)
        for r in results:
            np.testing.assert_allclose(r, [10.0])

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValidationError):
            ring_allreduce([np.ones(3), np.ones(4)])

    def test_no_ranks_rejected(self):
        with pytest.raises(ValidationError):
            ring_allreduce([])

    def test_input_buffers_not_mutated(self):
        buffers = [np.ones(8), np.full(8, 2.0)]
        snapshots = [b.copy() for b in buffers]
        ring_allreduce(buffers)
        for b, s in zip(buffers, snapshots):
            np.testing.assert_array_equal(b, s)

    @settings(max_examples=30, deadline=None)
    @given(
        p=st.integers(min_value=1, max_value=8),
        n=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_property_sum_invariant(self, p, n, seed):
        rng = np.random.default_rng(seed)
        buffers = [rng.integers(-100, 100, size=n).astype(float) for _ in range(p)]
        results, sched = ring_allreduce(buffers)
        expected = np.sum(buffers, axis=0)
        for r in results:
            np.testing.assert_allclose(r, expected)
        assert len(sched) == max(0, 2 * (p - 1))
