"""Tests for model specs, precision plans, and the memory estimator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import ValidationError
from repro.training import (
    GPU_CATALOG,
    DType,
    MemoryEstimator,
    MixedPrecisionPlan,
    ModelSpec,
    TrainingMode,
    llm,
)


class TestModelSpec:
    def test_param_count_matches_formula(self):
        m = ModelSpec("toy", n_layers=2, hidden_dim=256, vocab_size=1000)
        expected = 2 * (12 * 256**2 + 13 * 256) + 1000 * 256
        assert m.n_params == expected

    def test_llm_hits_target_size(self):
        m = llm(13)  # the Unit 4 lab model
        assert 10 <= m.n_params_billion <= 16

    @given(st.floats(min_value=0.1, max_value=200))
    def test_llm_within_factor_of_target(self, billions):
        m = llm(billions)
        assert 0.4 * billions <= m.n_params_billion <= 2.5 * billions

    def test_llm_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            llm(0)

    def test_flops_per_token(self):
        m = llm(1)
        assert m.flops_per_token() == pytest.approx(6 * m.n_params)
        assert m.flops_per_token(backward=False) == pytest.approx(2 * m.n_params)

    def test_lora_params_tiny_fraction(self):
        m = llm(13)
        assert m.lora_params(16) < 0.01 * m.n_params

    def test_lora_params_scale_with_rank(self):
        m = llm(1)
        assert m.lora_params(32) == 2 * m.lora_params(16)

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValidationError):
            ModelSpec("bad", n_layers=0, hidden_dim=64)
        with pytest.raises(ValidationError):
            ModelSpec("bad", n_layers=1, hidden_dim=100, n_heads=3)


class TestPrecision:
    def test_dtype_widths(self):
        assert DType.FP32.bytes == 4
        assert DType.BF16.bytes == 2
        assert DType.NF4.bytes == 0.5

    def test_bf16_requires_cc80(self):
        plan = MixedPrecisionPlan.bf16_mixed()
        plan.validate_on(GPU_CATALOG["A100-80GB"])  # fine
        with pytest.raises(ValidationError):
            plan.validate_on(GPU_CATALOG["V100-32GB"])  # cc 7.0

    def test_master_weights_need_reduced_compute(self):
        with pytest.raises(ValidationError):
            MixedPrecisionPlan(DType.FP32, master_weights=True)

    def test_grad_dtype_defaults_to_compute(self):
        plan = MixedPrecisionPlan(DType.BF16, master_weights=True)
        assert plan.effective_grad_dtype is DType.BF16


class TestMemoryEstimator:
    """The Unit 4 storyline: a 13B model does not fit in fp32 full fine-tune
    on an A100-80GB, and progressively fits with bf16, LoRA, and QLoRA."""

    def setup_method(self):
        self.model = llm(13)
        self.a100 = GPU_CATALOG["A100-80GB"]

    def test_full_fp32_does_not_fit_a100(self):
        est = MemoryEstimator(self.model, precision=MixedPrecisionPlan.fp32())
        assert not est.fits(self.a100)
        # weights alone ~ 13e9*4 B ~ 48 GiB; +grads+Adam pushes past 190 GiB
        assert est.breakdown().total_gib > 150

    def test_lora_bf16_fits_a100(self):
        est = MemoryEstimator(
            self.model,
            mode=TrainingMode.lora(16),
            precision=MixedPrecisionPlan.bf16_mixed(),
            grad_checkpointing=True,
        )
        assert est.fits(self.a100)

    def test_qlora_smaller_than_lora(self):
        lora = MemoryEstimator(
            self.model, mode=TrainingMode.lora(16), precision=MixedPrecisionPlan.bf16_mixed()
        )
        qlora = MemoryEstimator(
            self.model, mode=TrainingMode.qlora(16), precision=MixedPrecisionPlan.bf16_mixed()
        )
        assert qlora.breakdown().total_gib < lora.breakdown().total_gib
        # the 4-bit base is ~4x smaller than the bf16 base
        assert qlora.weights_bytes() < 0.3 * lora.weights_bytes()

    def test_memory_ordering_full_gt_lora_gt_qlora(self):
        plans = {}
        for name, mode in [
            ("full", TrainingMode.full()),
            ("lora", TrainingMode.lora(16)),
            ("qlora", TrainingMode.qlora(16)),
        ]:
            plans[name] = MemoryEstimator(
                self.model, mode=mode, precision=MixedPrecisionPlan.bf16_mixed()
            ).breakdown().total_gib
        assert plans["full"] > plans["lora"] > plans["qlora"]

    def test_optimizer_state_dominates_full_finetune(self):
        est = MemoryEstimator(self.model, precision=MixedPrecisionPlan.bf16_mixed())
        b = est.breakdown()
        assert b.optimizer_gib > b.weights_gib  # 8 B/param vs 2 B/param

    def test_lora_optimizer_state_negligible(self):
        est = MemoryEstimator(
            self.model, mode=TrainingMode.lora(16), precision=MixedPrecisionPlan.bf16_mixed()
        )
        b = est.breakdown()
        assert b.optimizer_gib < 0.05 * b.weights_gib

    def test_grad_checkpointing_cuts_activations(self):
        full = MemoryEstimator(self.model, micro_batch=4)
        ckpt = MemoryEstimator(self.model, micro_batch=4, grad_checkpointing=True)
        assert ckpt.activations_bytes() < 0.1 * full.activations_bytes()

    def test_activations_linear_in_micro_batch(self):
        e1 = MemoryEstimator(self.model, micro_batch=1)
        e4 = MemoryEstimator(self.model, micro_batch=4)
        assert e4.activations_bytes() == pytest.approx(4 * e1.activations_bytes())

    def test_max_micro_batch_monotone_in_gpu_memory(self):
        est = MemoryEstimator(
            self.model,
            mode=TrainingMode.qlora(16),
            precision=MixedPrecisionPlan.bf16_mixed(),
            grad_checkpointing=True,
        )
        big = est.max_micro_batch(GPU_CATALOG["A100-80GB"])
        small = est.max_micro_batch(GPU_CATALOG["A100-40GB"])
        assert big >= small

    def test_invalid_micro_batch(self):
        with pytest.raises(ValidationError):
            MemoryEstimator(self.model, micro_batch=0)

    @given(st.integers(min_value=1, max_value=64))
    def test_breakdown_total_is_sum(self, mb):
        b = MemoryEstimator(self.model, micro_batch=mb).breakdown()
        assert b.total_gib == pytest.approx(
            b.weights_gib + b.master_weights_gib + b.gradients_gib
            + b.optimizer_gib + b.activations_gib
        )
