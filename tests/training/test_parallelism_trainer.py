"""Tests for DDP/FSDP/pipeline simulators and the training-loop simulator."""

import pytest

from repro.common import ValidationError
from repro.training import (
    GPU_CATALOG,
    DDPSimulator,
    FSDPSimulator,
    MixedPrecisionPlan,
    PipelineSimulator,
    TrainingSimulator,
    llm,
)

A100 = GPU_CATALOG["A100-80GB"]
MODEL = llm(13)


class TestDDP:
    def test_memory_flat_in_world_size(self):
        m1 = DDPSimulator(MODEL, A100, 1).memory_per_rank(1)
        m4 = DDPSimulator(MODEL, A100, 4).memory_per_rank(1)
        assert m1.total_gib == pytest.approx(m4.total_gib)

    def test_step_time_decreases_with_ranks(self):
        t1 = DDPSimulator(MODEL, A100, 1).step_time(16).total_s
        t4 = DDPSimulator(MODEL, A100, 4).step_time(16).total_s
        assert t4 < t1

    def test_scaling_efficiency_below_one_above_half(self):
        eff = DDPSimulator(MODEL, A100, 4).scaling_efficiency(16)
        assert 0.5 < eff <= 1.0

    def test_single_rank_no_comm(self):
        st = DDPSimulator(MODEL, A100, 1).step_time(8)
        assert st.comm_s == 0.0

    def test_overlap_hides_comm(self):
        hidden = DDPSimulator(MODEL, A100, 4, overlap_fraction=1.0).step_time(64)
        exposed = DDPSimulator(MODEL, A100, 4, overlap_fraction=0.0).step_time(64)
        assert hidden.exposed_comm_s <= exposed.exposed_comm_s
        assert exposed.exposed_comm_s == pytest.approx(exposed.comm_s)

    def test_bf16_on_v100_rejected(self):
        with pytest.raises(ValidationError):
            DDPSimulator(MODEL, GPU_CATALOG["V100-32GB"], 4,
                         precision=MixedPrecisionPlan.bf16_mixed())

    def test_invalid_world_size(self):
        with pytest.raises(ValidationError):
            DDPSimulator(MODEL, A100, 0)


class TestFSDP:
    def test_state_shards_with_p(self):
        m1 = FSDPSimulator(MODEL, A100, 1).memory_per_rank(1)
        m4 = FSDPSimulator(MODEL, A100, 4).memory_per_rank(1)
        assert m4.weights_gib == pytest.approx(m1.weights_gib / 4)
        assert m4.optimizer_gib == pytest.approx(m1.optimizer_gib / 4)
        # activations do not shard
        assert m4.activations_gib == pytest.approx(m1.activations_gib)

    def test_fsdp_fits_13b_where_ddp_does_not(self):
        """The Unit 4 punchline: full 13B fine-tune fits on 4 A100s only sharded."""
        ddp = DDPSimulator(MODEL, A100, 4).memory_per_rank(1, grad_checkpointing=True)
        fsdp = FSDPSimulator(MODEL, A100, 4).memory_per_rank(1, grad_checkpointing=True)
        assert ddp.total_gib > A100.mem_gib
        assert fsdp.total_gib < A100.mem_gib

    def test_fsdp_comm_is_1_5x_ddp(self):
        ddp = DDPSimulator(MODEL, A100, 4).step_time(16)
        fsdp = FSDPSimulator(MODEL, A100, 4).step_time(16)
        assert fsdp.comm_s == pytest.approx(1.5 * ddp.comm_s)

    def test_fsdp_slower_but_close(self):
        ddp = DDPSimulator(MODEL, A100, 4).step_time(16)
        fsdp = FSDPSimulator(MODEL, A100, 4).step_time(16)
        assert fsdp.total_s >= ddp.total_s


class TestPipeline:
    def test_bubble_fraction_formula(self):
        assert PipelineSimulator.bubble_fraction(4, 4) == pytest.approx(3 / 7)
        assert PipelineSimulator.bubble_fraction(1, 8) == 0.0

    def test_bubble_shrinks_with_micro_batches(self):
        sim = PipelineSimulator(MODEL, A100, 4)
        few = sim.step_time(16, micro_batches=2)
        many = sim.step_time(16, micro_batches=32)
        assert many.bubble_s < few.bubble_s

    def test_weights_shard_per_stage(self):
        m1 = PipelineSimulator(MODEL, A100, 1).memory_per_rank(1)
        m4 = PipelineSimulator(MODEL, A100, 4).memory_per_rank(1)
        assert m4.weights_gib == pytest.approx(m1.weights_gib / 4)

    def test_invalid_micro_batches(self):
        with pytest.raises(ValidationError):
            PipelineSimulator(MODEL, A100, 2).step_time(4, micro_batches=0)

    def test_bubble_fraction_validation(self):
        with pytest.raises(ValidationError):
            PipelineSimulator.bubble_fraction(0, 4)


class TestTrainingSimulator:
    def test_loss_decreases(self):
        run = TrainingSimulator(seed=0).run(steps=200)
        assert run.losses[-1] < run.losses[0]
        assert run.completed

    def test_deterministic_under_seed(self):
        r1 = TrainingSimulator(seed=42).run(steps=50)
        r2 = TrainingSimulator(seed=42).run(steps=50)
        assert r1.losses == r2.losses

    def test_optimal_lr_beats_extremes(self):
        sim = TrainingSimulator(seed=0, noise=0.0)
        good = sim.run(steps=300, lr=3e-4).final_loss
        low = sim.run(steps=300, lr=1e-6).final_loss
        high = sim.run(steps=300, lr=0.3).final_loss
        assert good < low and good < high

    def test_failure_stops_run(self):
        run = TrainingSimulator(seed=0).run(steps=100, fail_at_step=30)
        assert not run.completed
        assert run.failed_at_step == 30
        assert len(run.steps) == 30

    def test_checkpoints_written_on_interval(self):
        run = TrainingSimulator(seed=0, checkpoint_every=25).run(steps=100)
        assert [c.step for c in run.checkpoints] == [24, 49, 74, 99]

    def test_recovery_loses_at_most_one_interval(self):
        sim = TrainingSimulator(seed=0, checkpoint_every=20)
        failed, recovered = sim.run_with_recovery(steps=100, fail_at_step=55)
        assert failed.failed_at_step == 55
        # resumed from step 39 checkpoint: recovery re-runs 40..99
        assert recovered.steps[0] == 40
        assert recovered.steps[-1] == 99
        assert recovered.completed

    def test_metric_callback_invoked(self):
        seen = []
        sim = TrainingSimulator(seed=0, metric_callback=lambda s, m: seen.append((s, m["loss"])))
        sim.run(steps=10)
        assert len(seen) == 10

    def test_step_time_from_parallelism_sim(self):
        dist = DDPSimulator(MODEL, A100, 4)
        run = TrainingSimulator(seed=0, sim=dist).run(steps=5, global_batch=16)
        assert run.wall_time_s == pytest.approx(5 * dist.step_time(16).total_s)

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            TrainingSimulator(initial_loss=0.5, floor_loss=0.8)
        with pytest.raises(ValidationError):
            TrainingSimulator().run(steps=0)
        with pytest.raises(ValidationError):
            TrainingSimulator(noise=0.0).run(steps=5, lr=-1)
