"""Tests for the SPMD message-passing fabric."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import SchedulingError, ValidationError
from repro.training.fabric import Comm, Fabric


class TestPointToPoint:
    def test_send_recv_pair(self):
        def program(comm: Comm):
            if comm.rank == 0:
                yield from comm.send(1, {"a": 7, "b": 3.14})
                return "sent"
            data = yield from comm.recv(0)
            return data

        results = Fabric(2).execute(program)
        assert results == ["sent", {"a": 7, "b": 3.14}]

    def test_fifo_ordering_per_link(self):
        def program(comm: Comm):
            if comm.rank == 0:
                for i in range(3):
                    yield from comm.send(1, i)
                return None
            got = []
            for _ in range(3):
                got.append((yield from comm.recv(0)))
            return got

        assert Fabric(2).execute(program)[1] == [0, 1, 2]

    def test_send_before_recv_is_buffered(self):
        def program(comm: Comm):
            if comm.rank == 0:
                yield from comm.send(1, "early")
                return None
            # rank 1 does other work first; the message waits
            data = yield from comm.recv(0)
            return data

        assert Fabric(2).execute(program)[1] == "early"

    def test_deadlock_detected(self):
        def program(comm: Comm):
            # both ranks recv first: classic deadlock
            other = 1 - comm.rank
            data = yield from comm.recv(other)
            yield from comm.send(other, data)
            return data

        with pytest.raises(SchedulingError, match="deadlock"):
            Fabric(2).execute(program)

    def test_self_send_rejected(self):
        def program(comm: Comm):
            yield from comm.send(comm.rank, 1)

        with pytest.raises(ValidationError):
            Fabric(2).execute(program)

    def test_non_generator_rejected(self):
        with pytest.raises(ValidationError):
            Fabric(2).execute(lambda comm: 42)

    def test_invalid_size(self):
        with pytest.raises(ValidationError):
            Fabric(0)


class TestRingPatterns:
    def test_ring_exchange_rotates(self):
        def program(comm: Comm):
            received = yield from comm.ring_exchange(comm.rank)
            return received

        results = Fabric(4).execute(program)
        assert results == [3, 0, 1, 2]  # each rank got its predecessor's value

    def test_allreduce_sum_scalar(self):
        def program(comm: Comm):
            total = yield from comm.allreduce_sum(float(comm.rank + 1))
            return total

        results = Fabric(5).execute(program)
        assert all(r == pytest.approx(15.0) for r in results)

    def test_allreduce_single_rank(self):
        def program(comm: Comm):
            total = yield from comm.allreduce_sum(7.0)
            return total

        assert Fabric(1).execute(program) == [7.0]

    @settings(max_examples=20, deadline=None)
    @given(
        size=st.integers(1, 6),
        values=st.lists(st.floats(-100, 100), min_size=6, max_size=6),
    )
    def test_allreduce_property(self, size, values):
        contributions = values[:size]

        def program(comm: Comm):
            total = yield from comm.allreduce_sum(contributions[comm.rank])
            return total

        results = Fabric(size).execute(program)
        for r in results:
            assert r == pytest.approx(sum(contributions))


class TestGradientAggregation:
    def test_spmd_gradient_averaging(self):
        """The DDP pattern written as a rank program: average gradients."""
        rng = np.random.default_rng(0)
        grads = [rng.standard_normal(8) for _ in range(4)]

        def program(comm: Comm):
            token = grads[comm.rank].copy()
            total = token.copy()
            for _ in range(comm.size - 1):
                token = yield from comm.ring_exchange(token)
                total += token
            return total / comm.size

        results = Fabric(4).execute(program)
        expected = np.mean(grads, axis=0)
        for r in results:
            np.testing.assert_allclose(r, expected)
