"""Tests for gradient-accumulation planning."""

import pytest

from repro.common import SchedulingError, ValidationError
from repro.training import (
    GPU_CATALOG,
    MemoryEstimator,
    MixedPrecisionPlan,
    TrainingMode,
    llm,
)
from repro.training.accumulation import (
    AccumulationPlan,
    plan_accumulation,
    step_time_with_accumulation,
)

A100_80 = GPU_CATALOG["A100-80GB"]
A100_40 = GPU_CATALOG["A100-40GB"]


def qlora_estimator(model):
    return MemoryEstimator(
        model,
        mode=TrainingMode.qlora(16),
        precision=MixedPrecisionPlan.bf16_mixed(),
        grad_checkpointing=True,
    )


class TestPlanning:
    def test_plan_hits_target_effective_batch(self):
        est = qlora_estimator(llm(13))
        plan = plan_accumulation(est, A100_80, target_effective_batch=64)
        assert plan.effective_batch >= 64
        assert plan.micro_batch * plan.accum_steps >= 64

    def test_planned_micro_batch_fits(self):
        est = qlora_estimator(llm(13))
        plan = plan_accumulation(est, A100_80, target_effective_batch=64)
        fitted = MemoryEstimator(
            est.model, mode=est.mode, precision=est.precision,
            micro_batch=plan.micro_batch, grad_checkpointing=True,
        )
        assert fitted.fits(A100_80)

    def test_smaller_gpu_needs_deeper_accumulation(self):
        est = qlora_estimator(llm(13))
        big = plan_accumulation(est, A100_80, target_effective_batch=64)
        small = plan_accumulation(est, A100_40, target_effective_batch=64)
        assert small.micro_batch <= big.micro_batch
        assert small.accum_steps >= big.accum_steps

    def test_world_size_divides_the_work(self):
        est = qlora_estimator(llm(13))
        solo = plan_accumulation(est, A100_80, target_effective_batch=64)
        ddp4 = plan_accumulation(est, A100_80, target_effective_batch=64, world_size=4)
        assert ddp4.accum_steps <= solo.accum_steps
        assert ddp4.effective_batch >= 64

    def test_impossible_model_raises_scheduling_error(self):
        # full fp32 fine-tune of 13B: micro-batch 1 cannot fit
        est = MemoryEstimator(llm(13), precision=MixedPrecisionPlan.fp32())
        with pytest.raises(SchedulingError, match="does not fit"):
            plan_accumulation(est, A100_80, target_effective_batch=8)

    def test_target_below_world_size_rejected(self):
        est = qlora_estimator(llm(1))
        with pytest.raises(ValidationError):
            plan_accumulation(est, A100_80, target_effective_batch=2, world_size=4)

    def test_invalid_plan_rejected(self):
        with pytest.raises(ValidationError):
            AccumulationPlan(micro_batch=0, accum_steps=1, world_size=1,
                             target_effective_batch=1)


class TestStepTime:
    def test_accumulation_overhead_costs_throughput(self):
        """Deep accumulation is slower than the same tokens in one batch."""
        est = qlora_estimator(llm(1))
        shallow = AccumulationPlan(micro_batch=16, accum_steps=1, world_size=1,
                                   target_effective_batch=16)
        deep = AccumulationPlan(micro_batch=1, accum_steps=16, world_size=1,
                                target_effective_batch=16)
        t_shallow = step_time_with_accumulation(shallow, est, A100_80)
        t_deep = step_time_with_accumulation(deep, est, A100_80)
        assert t_deep > t_shallow  # same compute, 16x the overhead

    def test_compute_scales_with_tokens(self):
        est = qlora_estimator(llm(1))
        small = AccumulationPlan(micro_batch=4, accum_steps=1, world_size=1,
                                 target_effective_batch=4)
        double = AccumulationPlan(micro_batch=8, accum_steps=1, world_size=1,
                                  target_effective_batch=8)
        t1 = step_time_with_accumulation(small, est, A100_80, per_micro_overhead_ms=0)
        t2 = step_time_with_accumulation(double, est, A100_80, per_micro_overhead_ms=0)
        assert t2 == pytest.approx(2 * t1)

    def test_invalid_mfu(self):
        est = qlora_estimator(llm(1))
        plan = AccumulationPlan(1, 1, 1, 1)
        with pytest.raises(ValidationError):
            step_time_with_accumulation(plan, est, A100_80, mfu=0)
