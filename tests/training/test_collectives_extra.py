"""Tests for the additional executable collectives (reduce-scatter,
all-gather, tree all-reduce) and their mutual consistency."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import ValidationError
from repro.training.collectives import (
    all_gather,
    reduce_scatter,
    ring_allreduce,
    tree_allreduce,
)


class TestReduceScatter:
    def test_each_rank_owns_its_reduced_chunk(self):
        rng = np.random.default_rng(0)
        bufs = [rng.standard_normal(23) for _ in range(5)]
        out, sched = reduce_scatter(bufs)
        total = np.sum(bufs, axis=0)
        bounds = np.linspace(0, 23, 6).astype(int)
        for r in range(5):
            np.testing.assert_allclose(out[r], total[bounds[r]: bounds[r + 1]])
        assert len(sched) == 4

    def test_single_rank(self):
        out, sched = reduce_scatter([np.arange(4.0)])
        np.testing.assert_array_equal(out[0], np.arange(4.0))
        assert sched == []

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            reduce_scatter([np.ones(3), np.ones(4)])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            reduce_scatter([])


class TestAllGather:
    def test_every_rank_gets_concatenation(self):
        shards = [np.arange(r * 3, r * 3 + 3, dtype=float) for r in range(4)]
        results, sched = all_gather(shards)
        expected = np.arange(12, dtype=float)
        for r in results:
            np.testing.assert_array_equal(r, expected)
        assert len(sched) == 3

    def test_uneven_shards(self):
        shards = [np.array([1.0]), np.array([2.0, 3.0]), np.array([4.0, 5.0, 6.0])]
        results, _ = all_gather(shards)
        for r in results:
            np.testing.assert_array_equal(r, np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0]))

    def test_single_rank(self):
        results, sched = all_gather([np.ones(3)])
        np.testing.assert_array_equal(results[0], np.ones(3))
        assert sched == []

    def test_non_1d_rejected(self):
        with pytest.raises(ValidationError):
            all_gather([np.ones((2, 2))])


class TestTreeAllreduce:
    def test_matches_sum(self):
        rng = np.random.default_rng(1)
        bufs = [rng.standard_normal((4, 5)) for _ in range(7)]  # non power of two
        results, sched = tree_allreduce(bufs)
        expected = np.sum(bufs, axis=0)
        for r in results:
            np.testing.assert_allclose(r, expected)
        # ceil(log2 7) = 3 reduce rounds + 3 broadcast rounds
        assert len(sched) == 6

    def test_round_count_log2(self):
        for p, rounds in ((2, 2), (4, 4), (8, 6), (16, 8)):
            bufs = [np.ones(4) for _ in range(p)]
            _, sched = tree_allreduce(bufs)
            assert len(sched) == rounds, p

    def test_tree_moves_whole_buffers(self):
        bufs = [np.ones(100) for _ in range(4)]
        _, sched = tree_allreduce(bufs)
        assert all(s.bytes_per_rank == 800 for s in sched)  # n bytes, not n/p


class TestConsistency:
    @settings(max_examples=25, deadline=None)
    @given(p=st.integers(1, 6), n=st.integers(1, 40), seed=st.integers(0, 99))
    def test_ring_equals_tree_equals_numpy(self, p, n, seed):
        rng = np.random.default_rng(seed)
        bufs = [rng.integers(-50, 50, size=n).astype(float) for _ in range(p)]
        ring, _ = ring_allreduce(bufs)
        tree, _ = tree_allreduce(bufs)
        expected = np.sum(bufs, axis=0)
        np.testing.assert_allclose(ring[0], expected)
        np.testing.assert_allclose(tree[0], expected)

    @settings(max_examples=25, deadline=None)
    @given(p=st.integers(1, 6), n=st.integers(6, 40), seed=st.integers(0, 99))
    def test_reduce_scatter_then_all_gather_is_allreduce(self, p, n, seed):
        """The classic identity the ring algorithm is built from."""
        rng = np.random.default_rng(seed)
        bufs = [rng.standard_normal(n) for _ in range(p)]
        shards, _ = reduce_scatter(bufs)
        gathered, _ = all_gather(shards)
        expected = np.sum(bufs, axis=0)
        for g in gathered:
            np.testing.assert_allclose(g, expected)
