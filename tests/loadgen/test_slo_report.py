"""SLO evaluation, cost reporting, the Pareto frontier, and the CLI."""

import json

import pytest

from repro.common.errors import ValidationError
from repro.loadgen import (
    AdmissionConfig,
    AutoscalerConfig,
    SloPolicy,
    TrafficConfig,
    build_report,
    evaluate_slo,
    generate_trace,
    simulate_traffic,
    slo_cost_frontier,
)
from repro.loadgen.__main__ import main as loadgen_main
from repro.serving import DEVICE_CATALOG, BatchingConfig, InferenceEngine, food11_classifier


@pytest.fixture(scope="module")
def engine():
    return InferenceEngine(food11_classifier(), DEVICE_CATALOG["server-cpu-16c"])


@pytest.fixture(scope="module")
def trace():
    return generate_trace(
        TrafficConfig(seed=3, pattern="diurnal", requests_per_day=4e6, duration_hours=0.25)
    )


@pytest.fixture(scope="module")
def result(trace, engine):
    return simulate_traffic(
        trace,
        engine,
        autoscaler=AutoscalerConfig(min_replicas=1, max_replicas=4,
                                    control_interval_s=10.0, provisioning_lag_s=20.0),
    )


class TestSlo:
    def test_policy_validation(self):
        with pytest.raises(ValidationError):
            SloPolicy(p99_budget_ms=0.0)
        with pytest.raises(ValidationError):
            SloPolicy(max_loss_rate=1.0)

    def test_attainment_and_margins(self, result):
        generous = evaluate_slo(result, SloPolicy(p99_budget_ms=1e4, max_loss_rate=0.5))
        assert generous.attained
        assert generous.latency_margin_ms > 0 and generous.loss_margin > 0

        strict = evaluate_slo(result, SloPolicy(p99_budget_ms=0.001, max_loss_rate=0.5))
        assert not strict.latency_ok and strict.loss_ok
        assert not strict.attained


class TestReport:
    def test_cost_rows_price_both_providers(self, result, engine):
        report = build_report(result, engine)
        assert [r.provider for r in report.cost_rows] == ["aws", "gcp"]
        assert all(r.replica_hours == result.replica_hours for r in report.cost_rows)
        # the 16-core CPU tier has a catalog equivalent on both clouds
        assert all(r.cost_usd is not None and r.cost_usd > 0 for r in report.cost_rows)

    def test_cost_per_million_uses_cheapest_catalog_row(self, result, engine):
        report = build_report(result, engine)
        cheapest = min(r.cost_usd for r in report.cost_rows)
        assert report.cost_per_million_usd == pytest.approx(
            cheapest / result.served * 1e6
        )

    def test_edge_device_falls_back_to_device_rate(self, engine):
        pi_engine = InferenceEngine(
            food11_classifier().quantized(), DEVICE_CATALOG["raspberrypi5"]
        )
        tiny = generate_trace(
            TrafficConfig(seed=0, pattern="poisson", requests_per_day=2e4,
                          duration_hours=0.05)
        )
        r = simulate_traffic(tiny, pi_engine)
        report = build_report(r, pi_engine)
        assert all(row.cost_usd is None for row in report.cost_rows)  # paper's "NA"
        assert report.cost_per_million_usd == 0.0  # the Pi has no hourly rate

    def test_render_mentions_every_section(self, result, engine):
        text = build_report(result, engine, SloPolicy()).render()
        for needle in ("request outcomes", "served latency", "fleet",
                       "usd_per_million", "SLO"):
            assert needle in text


class TestFrontier:
    @pytest.fixture(scope="class")
    def frontier(self, trace, engine):
        return slo_cost_frontier(
            trace,
            engine,
            policy=SloPolicy(p99_budget_ms=250.0, max_loss_rate=0.02),
            replica_ceilings=(1, 4),
            max_batches=(1, 8),
            queue_capacities=(256,),
            autoscaler=AutoscalerConfig(min_replicas=1, max_replicas=4,
                                        control_interval_s=10.0,
                                        provisioning_lag_s=20.0),
        )

    def test_sweep_covers_the_grid(self, frontier):
        assert len(frontier.points) == 4
        assert {(p.max_replicas, p.max_batch) for p in frontier.points} == {
            (1, 1), (1, 8), (4, 1), (4, 8),
        }

    def test_pareto_set_is_nonempty_and_undominated(self, frontier):
        pareto = frontier.pareto_points
        assert pareto
        feasible = [
            p for p in frontier.points
            if p.loss_rate <= frontier.policy.max_loss_rate
            and p.cost_per_million_usd is not None
        ]
        for p in pareto:
            assert not any(q.dominates(p) for q in feasible)

    def test_dominated_points_are_unflagged(self, frontier):
        for p in frontier.points:
            if not p.pareto and p.cost_per_million_usd is not None:
                covered = any(
                    q.dominates(p) or p.loss_rate > frontier.policy.max_loss_rate
                    for q in frontier.pareto_points
                )
                assert covered

    def test_render_marks_pareto_rows(self, frontier):
        text = frontier.render()
        assert "SLO-vs-cost frontier" in text
        assert "*" in text


class TestCli:
    ARGS = ["--pattern", "flash", "--rpd", "4e6", "--hours", "0.2", "--seed", "5"]

    def test_cli_verify_exits_clean(self, capsys):
        assert loadgen_main(self.ARGS + ["--verify", "--json", "-"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["digest_match"] is True
        assert summary["digest"] == summary["rerun_digest"] == summary["perturbed_digest"]

    def test_cli_whatif_prints_frontier(self, capsys):
        assert loadgen_main(self.ARGS + ["--whatif"]) == 0
        out = capsys.readouterr().out
        assert "SLO-vs-cost frontier" in out
        assert "serving load report" in out

    def test_cli_json_file_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "summary.json"
        assert loadgen_main(self.ARGS + ["--json", str(path)]) == 0
        capsys.readouterr()
        summary = json.loads(path.read_text())
        assert summary["offered"] > 0
        assert summary["served"] + summary["rejected"] + summary["dropped"] + (
            summary["errored"] + summary["failed"]
        ) == summary["offered"]

    def test_cli_faulted_run_reports_losses(self, capsys):
        assert (
            loadgen_main(
                self.ARGS
                + ["--outage-rate", "800", "--burst-rate", "800", "--json", "-"]
            )
            == 0
        )
        summary = json.loads(capsys.readouterr().out)
        assert summary["faulted"] is True
