"""The front door and the fleet: admission policies and span hygiene."""

import numpy as np
import pytest

from repro.common.errors import InvalidStateError, ValidationError
from repro.loadgen import (
    DROPPED,
    ERROR,
    REJECTED,
    SERVED,
    AdmissionConfig,
    AutoscalerConfig,
    ReplicaSet,
    RequestQueue,
)
from repro.serving import BatchingConfig


def make_queue(arrivals, *, capacity=4, deadline_ms=1000.0, max_batch=8, delay_ms=5.0):
    arrivals = np.asarray(arrivals, dtype=float)
    status = np.full(len(arrivals), SERVED, dtype=np.int8)
    queue = RequestQueue(
        AdmissionConfig(queue_capacity=capacity, deadline_ms=deadline_ms),
        BatchingConfig(max_batch=max_batch, max_queue_delay_ms=delay_ms),
        arrivals,
        status,
    )
    return queue, status


class TestAdmission:
    def test_rejects_when_full(self):
        queue, status = make_queue(np.zeros(6), capacity=4)
        admitted = [queue.offer(i, in_burst=False) for i in range(6)]
        assert admitted == [True] * 4 + [False] * 2
        assert list(status) == [SERVED] * 4 + [REJECTED] * 2
        assert queue.rejected == 2
        assert queue.max_depth == 4

    def test_burst_window_errors_before_admission(self):
        queue, status = make_queue(np.zeros(2), capacity=4)
        assert not queue.offer(0, in_burst=True)
        assert status[0] == ERROR
        assert queue.depth == 0  # errored requests never occupy the queue

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValidationError):
            AdmissionConfig(queue_capacity=0)


class TestDeadlineDrops:
    def test_expire_drops_only_over_deadline_heads(self):
        queue, status = make_queue([0.0, 0.5, 2.9], deadline_ms=1000.0, capacity=8)
        for i in range(3):
            queue.offer(i, in_burst=False)
        # service starting at t=3.0: waits are 3.0, 2.5, 0.1 seconds
        assert queue.expire(3.0) == [0, 1]
        assert list(status[:2]) == [DROPPED, DROPPED]
        assert queue.depth == 1

    def test_expire_noop_within_deadline(self):
        queue, _ = make_queue([0.0, 0.1], deadline_ms=1000.0)
        queue.offer(0, in_burst=False)
        queue.offer(1, in_burst=False)
        assert queue.expire(0.5) == []
        assert queue.depth == 2


class TestTakeBatch:
    def test_batch_capped_at_max_batch(self):
        queue, _ = make_queue(np.zeros(5), capacity=8, max_batch=2)
        for i in range(5):
            queue.offer(i, in_burst=False)
        assert queue.take_batch(0.0) == [0, 1]
        assert queue.take_batch(0.0) == [2, 3]
        assert queue.take_batch(0.0) == [4]

    def test_follower_outside_window_left_queued(self):
        queue, _ = make_queue([0.0, 10.0], capacity=8, delay_ms=5.0)
        queue.offer(0, in_burst=False)
        queue.offer(1, in_burst=False)
        assert queue.take_batch(0.0) == [0]
        assert queue.depth == 1


class TestReplicaSpans:
    def test_terminate_closes_span_exactly_once(self):
        fleet = ReplicaSet(AutoscalerConfig(min_replicas=1))
        fleet.terminate(0, 3600.0, "drain")
        assert fleet.replicas[0].billed_hours == pytest.approx(1.0)
        with pytest.raises(InvalidStateError):
            fleet.terminate(0, 7200.0, "drain")

    def test_open_span_refuses_billing(self):
        fleet = ReplicaSet(AutoscalerConfig(min_replicas=1))
        with pytest.raises(InvalidStateError):
            fleet.replicas[0].billed_hours

    def test_strike_returns_in_flight_and_kills_everyone(self):
        fleet = ReplicaSet(AutoscalerConfig(min_replicas=2))
        fleet.dispatch(0, (7, 8), busy_until_s=50.0)
        lost = fleet.strike(10.0)
        assert lost == [7, 8]  # replica 1 was idle: nothing in flight there
        assert fleet.live() == []
        assert fleet.telemetry.outage_kills == 2

    def test_drain_closes_all_spans_after_last_batch(self):
        fleet = ReplicaSet(AutoscalerConfig(min_replicas=2))
        fleet.dispatch(0, (1,), busy_until_s=100.0)
        fleet.drain(10.0)
        assert fleet.open_spans == 0
        assert fleet.replicas[0].terminated_at == 100.0  # billed to batch end
        assert fleet.replicas[1].terminated_at == 10.0


class TestReactiveScaling:
    def test_scale_up_pays_provisioning_lag(self):
        cfg = AutoscalerConfig(
            min_replicas=1, max_replicas=4, provisioning_lag_s=60.0,
            target_queue_per_replica=10.0,
        )
        fleet = ReplicaSet(cfg)
        fleet.tick(15.0, queue_depth=35)
        assert fleet.open_spans == 4  # ceil(35/10) = 4
        new = fleet.replicas[-1]
        assert new.ready_at == 75.0
        assert fleet.telemetry.scale_ups == 3

    def test_outage_clamp_delays_readiness(self):
        cfg = AutoscalerConfig(min_replicas=1, max_replicas=2, provisioning_lag_s=60.0,
                               target_queue_per_replica=1.0)
        fleet = ReplicaSet(cfg)
        fleet.tick(15.0, queue_depth=5, not_ready_before_s=500.0)
        assert fleet.replicas[-1].ready_at == 500.0

    def test_scale_down_waits_for_idle_streak_and_respects_floor(self):
        cfg = AutoscalerConfig(
            min_replicas=1, max_replicas=4, scale_down_idle_ticks=3,
            target_queue_per_replica=1.0, provisioning_lag_s=0.0,
        )
        fleet = ReplicaSet(cfg)
        fleet.tick(15.0, queue_depth=4)
        assert fleet.open_spans == 4
        for t in (30.0, 45.0):
            fleet.tick(t, queue_depth=0)
        assert fleet.open_spans == 4  # streak of 2 < 3: no retirement yet
        fleet.tick(60.0, queue_depth=0)
        assert fleet.open_spans == 3  # one per tick once the streak holds
        for t in (75.0, 90.0, 105.0, 120.0):
            fleet.tick(t, queue_depth=0)
        assert fleet.open_spans == 1  # never below min_replicas
        assert fleet.telemetry.scale_downs == 3

    def test_backlog_resets_idle_streak(self):
        cfg = AutoscalerConfig(
            min_replicas=1, max_replicas=2, scale_down_idle_ticks=2,
            target_queue_per_replica=1.0, provisioning_lag_s=0.0,
        )
        fleet = ReplicaSet(cfg)
        fleet.tick(15.0, queue_depth=2)
        fleet.tick(30.0, queue_depth=0)
        fleet.tick(45.0, queue_depth=1)  # backlog returns: streak resets
        fleet.tick(60.0, queue_depth=0)
        assert fleet.open_spans == 2

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValidationError):
            AutoscalerConfig(min_replicas=4, max_replicas=2)
        with pytest.raises(ValidationError):
            AutoscalerConfig(control_interval_s=0.0)
