"""The arrival generator: seeded, shaped, and digest-stable."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.loadgen import SECONDS_PER_DAY, TrafficConfig, generate_trace


class TestValidation:
    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValidationError):
            TrafficConfig(pattern="bursty")

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValidationError):
            TrafficConfig(requests_per_day=0)

    def test_peak_to_trough_below_one_rejected(self):
        with pytest.raises(ValidationError):
            TrafficConfig(peak_to_trough=0.5)

    def test_flash_multiplier_below_one_rejected(self):
        with pytest.raises(ValidationError):
            TrafficConfig(flash_multiplier=0.9)


class TestDeterminism:
    @pytest.mark.parametrize("pattern", ["poisson", "diurnal", "flash"])
    def test_same_seed_same_digest(self, pattern):
        config = TrafficConfig(
            seed=3, pattern=pattern, requests_per_day=5e4, duration_hours=2.0
        )
        a, b = generate_trace(config), generate_trace(config)
        assert a.digest() == b.digest()
        assert np.array_equal(a.arrivals_s, b.arrivals_s)

    def test_different_seed_different_trace(self):
        base = TrafficConfig(seed=0, requests_per_day=5e4, duration_hours=2.0)
        other = TrafficConfig(seed=1, requests_per_day=5e4, duration_hours=2.0)
        assert generate_trace(base).digest() != generate_trace(other).digest()

    def test_flash_settings_do_not_perturb_base_stream(self):
        # independent spawned streams: the diurnal backbone is identical
        # whether or not flash crowds ride on top of it
        diurnal = generate_trace(
            TrafficConfig(seed=5, pattern="diurnal", requests_per_day=2e4)
        )
        flash = generate_trace(
            TrafficConfig(seed=5, pattern="flash", requests_per_day=2e4, flash_count=1)
        )
        base = np.intersect1d(diurnal.arrivals_s, flash.arrivals_s)
        assert len(base) == len(diurnal)


class TestShape:
    def test_arrivals_sorted_and_in_horizon(self):
        trace = generate_trace(
            TrafficConfig(seed=2, pattern="flash", requests_per_day=1e5, duration_hours=3.0)
        )
        t = trace.arrivals_s
        assert np.all(np.diff(t) >= 0)
        assert t[0] >= 0.0 and t[-1] <= 3.0 * 3600.0

    def test_poisson_rate_matches_configured_mean(self):
        config = TrafficConfig(seed=0, pattern="poisson", requests_per_day=1e6)
        trace = generate_trace(config)
        assert trace.offered_per_day == pytest.approx(1e6, rel=0.01)

    def test_diurnal_peak_beats_trough(self):
        config = TrafficConfig(
            seed=0,
            pattern="diurnal",
            requests_per_day=5e5,
            peak_to_trough=4.0,
            peak_hour=20.0,
        )
        t = generate_trace(config).arrivals_s / 3600.0
        peak = ((t >= 19.0) & (t < 21.0)).sum()
        trough = ((t >= 7.0) & (t < 9.0)).sum()  # trough is peak_hour - 12
        assert peak > 2.5 * trough

    def test_flash_crowd_adds_spikes_on_top(self):
        base_cfg = TrafficConfig(
            seed=4, pattern="diurnal", requests_per_day=1e5, duration_hours=6.0
        )
        flash_cfg = TrafficConfig(
            seed=4,
            pattern="flash",
            requests_per_day=1e5,
            duration_hours=6.0,
            flash_count=2,
            flash_multiplier=10.0,
            flash_duration_s=300.0,
        )
        base, flash = generate_trace(base_cfg), generate_trace(flash_cfg)
        # expected extra: count * duration * rate * (multiplier - 1)
        expected_extra = 2 * 300.0 * base_cfg.rate_rps * 9.0
        assert (len(flash) - len(base)) == pytest.approx(expected_extra, rel=0.15)

    def test_rate_scales_to_millions_per_day(self):
        trace = generate_trace(
            TrafficConfig(seed=0, pattern="poisson", requests_per_day=5e6, duration_hours=1.0)
        )
        assert len(trace) == pytest.approx(5e6 / 24.0, rel=0.01)
        assert trace.offered_rps == pytest.approx(5e6 / SECONDS_PER_DAY, rel=0.01)
