"""The simulation's digest contract, conservation laws, and fault wiring."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.faults.plan import (
    SERVING_SITE,
    ApiErrorBurst,
    FaultCalendar,
    FaultPlanConfig,
    OutageWindow,
    build_serving_calendar,
)
from repro.loadgen import (
    DROPPED,
    FAILED,
    AdmissionConfig,
    AutoscalerConfig,
    RequestTrace,
    TrafficConfig,
    generate_trace,
    simulate_traffic,
)
from repro.serving import DEVICE_CATALOG, BatchingConfig, InferenceEngine, food11_classifier


@pytest.fixture(scope="module")
def engine():
    return InferenceEngine(food11_classifier(), DEVICE_CATALOG["server-cpu-16c"])


@pytest.fixture(scope="module")
def hot_trace():
    """A 20-minute flash scenario hot enough to force scaling and queueing:
    ~350 rps mean against ~200 rps of single-replica capacity."""
    return generate_trace(
        TrafficConfig(
            seed=11,
            pattern="flash",
            requests_per_day=3e7,
            duration_hours=1.0 / 3.0,
            flash_count=1,
            flash_multiplier=4.0,
            flash_duration_s=120.0,
        )
    )


TIGHT = dict(
    # queue drains in ~64/218 s ≈ 290 ms at single-replica throughput, so a
    # 250 ms deadline makes drops reachable alongside full-queue rejections
    admission=AdmissionConfig(queue_capacity=64, deadline_ms=250.0),
    batching=BatchingConfig(max_batch=8, max_queue_delay_ms=5.0),
    autoscaler=AutoscalerConfig(
        min_replicas=1,
        max_replicas=3,
        control_interval_s=10.0,
        provisioning_lag_s=30.0,
        target_queue_per_replica=16.0,
    ),
)


def serving_calendar(outages=(), bursts=()):
    return FaultCalendar(
        config=FaultPlanConfig(seed=0, sites=(SERVING_SITE,)),
        horizon_hours=24.0,
        outages=tuple(OutageWindow(SERVING_SITE, s, e) for s, e in outages),
        bursts=tuple(ApiErrorBurst(SERVING_SITE, s, e) for s, e in bursts),
    )


class TestDigestContract:
    def test_rerun_reproduces_digest(self, engine, hot_trace):
        a = simulate_traffic(hot_trace, engine, **TIGHT)
        b = simulate_traffic(hot_trace, engine, **TIGHT)
        assert a.digest() == b.digest()

    def test_perturbed_evaluation_order_reproduces_digest(self, engine, hot_trace):
        a = simulate_traffic(hot_trace, engine, **TIGHT)
        b = simulate_traffic(hot_trace, engine, perturb=True, **TIGHT)
        assert a.digest() == b.digest()
        # the perturbation is not a no-op: the fleet really scaled, so the
        # reversed scan really visited replicas in a different order
        assert a.telemetry.scale_ups > 0

    def test_perturbation_invariance_under_faults(self, engine, hot_trace):
        calendar = serving_calendar(
            outages=[(0.05, 0.08)], bursts=[(0.15, 0.17)]
        )
        a = simulate_traffic(hot_trace, engine, calendar=calendar, **TIGHT)
        b = simulate_traffic(hot_trace, engine, calendar=calendar, perturb=True, **TIGHT)
        assert a.digest() == b.digest()
        assert a.faulted

    def test_different_policy_different_digest(self, engine, hot_trace):
        a = simulate_traffic(hot_trace, engine, **TIGHT)
        b = simulate_traffic(
            hot_trace,
            engine,
            admission=AdmissionConfig(queue_capacity=65, deadline_ms=400.0),
            batching=TIGHT["batching"],
            autoscaler=TIGHT["autoscaler"],
        )
        assert a.digest() != b.digest()


class TestConservation:
    def test_every_request_reaches_exactly_one_terminal_status(self, engine, hot_trace):
        r = simulate_traffic(hot_trace, engine, **TIGHT)
        assert r.offered == len(hot_trace)
        assert (
            r.served + r.rejected + r.dropped + r.errored + r.failed == r.offered
        )
        # the hot scenario exercises the loss paths, not just the happy one
        assert r.served > 0 and r.rejected > 0 and r.dropped > 0

    def test_served_latencies_are_positive_and_finite(self, engine, hot_trace):
        r = simulate_traffic(hot_trace, engine, **TIGHT)
        lat = r.latencies_ms()
        assert np.all(np.isfinite(lat)) and np.all(lat > 0)
        assert r.p50_ms <= r.p95_ms <= r.p99_ms

    def test_spans_close_exactly_once_and_cover_billing(self, engine, hot_trace):
        r = simulate_traffic(hot_trace, engine, **TIGHT)
        assert len(r.spans) == r.telemetry.scale_ups + TIGHT["autoscaler"].min_replicas
        assert all(s.terminated_at_s >= s.launched_at_s for s in r.spans)
        assert r.replica_hours == pytest.approx(sum(s.billed_hours for s in r.spans))
        assert r.replica_hours > 0

    def test_empty_trace_rejected(self, engine):
        empty = RequestTrace(
            config=TrafficConfig(requests_per_day=1.0, duration_hours=0.01),
            arrivals_s=np.empty(0),
        )
        with pytest.raises(ValidationError):
            simulate_traffic(empty, engine)


class TestFaultWiring:
    def test_outage_kills_in_flight_requests(self, engine, hot_trace):
        # outage mid-run: under overload the fleet is mid-batch essentially
        # always, so the strike catches requests in flight
        calendar = serving_calendar(outages=[(0.05, 0.15)])
        r = simulate_traffic(hot_trace, engine, calendar=calendar, **TIGHT)
        assert r.telemetry.outage_kills > 0
        assert r.count(FAILED) > 0
        failed = r.status == FAILED
        assert np.all(np.isnan(r.finish_s[failed]))

    def test_burst_window_errors_exactly_its_arrivals(self, engine, hot_trace):
        calendar = serving_calendar(bursts=[(0.1, 0.2)])
        r = simulate_traffic(hot_trace, engine, calendar=calendar, **TIGHT)
        lo, hi = 0.1 * 3600.0, 0.2 * 3600.0
        in_window = (hot_trace.arrivals_s >= lo) & (hot_trace.arrivals_s < hi)
        assert r.errored == int(in_window.sum()) > 0

    def test_fleet_recovers_after_outage(self, engine, hot_trace):
        calendar = serving_calendar(outages=[(0.02, 0.05)])
        r = simulate_traffic(hot_trace, engine, calendar=calendar, **TIGHT)
        after = hot_trace.arrivals_s > 0.05 * 3600.0 + 120.0
        served_after = (r.status == 0) & after
        assert served_after.sum() > 0

    def test_null_calendar_matches_no_calendar(self, engine, hot_trace):
        null = build_serving_calendar(duration_hours=0.34)
        assert null.empty
        a = simulate_traffic(hot_trace, engine, **TIGHT)
        b = simulate_traffic(hot_trace, engine, calendar=null, **TIGHT)
        assert a.digest() == b.digest()

    def test_deadline_policy_sheds_backlog_during_outage(self, engine, hot_trace):
        calendar = serving_calendar(outages=[(0.1, 0.2)])
        r = simulate_traffic(hot_trace, engine, calendar=calendar, **TIGHT)
        assert r.count(DROPPED) > 0
