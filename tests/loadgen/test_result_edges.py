"""Empty-edge and boundary semantics of the traffic-result surfaces.

The resilience layer reads ``TrafficResult`` in regimes the happy path
never visits — runs where *nothing* was served, queues drained exactly
at the deadline — so the edge behaviour is contract, not accident:
percentiles of an empty latency set are NaN (never a fake zero),
loss_rate of an empty trace is 0, the SLO latency gate is vacuously true
with no latency evidence, and the deadline drop is strictly
greater-than.
"""

import math

import numpy as np
import pytest

from repro.faults.plan import (
    SERVING_SITE,
    ApiErrorBurst,
    FaultCalendar,
    FaultPlanConfig,
)
from repro.loadgen.arrivals import RequestTrace, TrafficConfig, generate_trace
from repro.loadgen.autoscaler import AutoscalerConfig, FleetTelemetry
from repro.loadgen.queue import SERVED, AdmissionConfig, RequestQueue
from repro.loadgen.report import build_report
from repro.loadgen.sim import TrafficResult, simulate_traffic
from repro.loadgen.slo import evaluate_slo
from repro.serving import (
    DEVICE_CATALOG,
    BatchingConfig,
    InferenceEngine,
    food11_classifier,
)

TINY = TrafficConfig(
    seed=2, pattern="poisson", requests_per_day=500_000.0, duration_hours=0.01
)


@pytest.fixture(scope="module")
def engine():
    return InferenceEngine(food11_classifier(), DEVICE_CATALOG["server-cpu-16c"])


@pytest.fixture(scope="module")
def nothing_served(engine):
    """Every arrival lands inside an API-error burst: offered > 0, served == 0."""
    trace = generate_trace(TINY)
    calendar = FaultCalendar(
        config=FaultPlanConfig(seed=0, sites=(SERVING_SITE,)),
        horizon_hours=TINY.duration_hours,
        outages=(),
        bursts=(ApiErrorBurst(site=SERVING_SITE, start=0.0, end=TINY.duration_hours),),
    )
    return simulate_traffic(trace, engine, calendar=calendar)


class TestZeroServed:
    def test_everything_errored(self, nothing_served):
        assert nothing_served.offered > 0
        assert nothing_served.served == 0
        assert nothing_served.errored == nothing_served.offered

    def test_percentiles_are_nan_not_zero(self, nothing_served):
        assert len(nothing_served.latencies_ms()) == 0
        for value in (
            nothing_served.p50_ms, nothing_served.p99_ms,
            nothing_served.percentile_ms(99.9),
        ):
            assert math.isnan(value)

    def test_loss_and_batches(self, nothing_served):
        assert nothing_served.loss_rate == 1.0
        assert nothing_served.batches == 0
        assert nothing_served.mean_batch == 0.0

    def test_slo_latency_gate_is_vacuous_loss_gate_judges(self, nothing_served):
        """NaN <= budget would read as a latency violation; a run that
        served nothing must fail on the gate that observed the problem."""
        outcome = evaluate_slo(nothing_served)
        assert outcome.latency_ok is True
        assert outcome.loss_ok is False
        assert outcome.attained is False

    def test_report_prices_nothing_served_as_none_not_zero(
        self, nothing_served, engine
    ):
        report = build_report(nothing_served, engine)
        assert report.cost_per_million_usd is None
        for row in report.cost_rows:
            assert row.cost_per_million(nothing_served.served) is None


class TestZeroOffered:
    def result(self):
        """Direct construction: ``simulate_traffic`` refuses empty traces,
        but downstream surfaces must still be total on the empty result."""
        empty_f = np.zeros(0)
        return TrafficResult(
            trace=RequestTrace(config=TINY, arrivals_s=empty_f),
            admission=AdmissionConfig(),
            batching=BatchingConfig(),
            autoscaler=AutoscalerConfig(),
            device_name="server-cpu-16c",
            model_name="food11",
            status=np.zeros(0, dtype=np.int8),
            start_s=empty_f,
            finish_s=empty_f,
            replica_of=np.zeros(0, dtype=np.int32),
            spans=(),
            telemetry=FleetTelemetry(),
            batches=0,
            max_queue_depth=0,
            faulted=False,
        )

    def test_counts_and_rates(self):
        result = self.result()
        assert result.offered == 0
        assert result.loss_rate == 0.0  # no offers, no losses — not 0/0
        assert result.attempts_total == 0
        assert result.replica_hours == 0.0

    def test_percentiles_nan_and_digest_total(self):
        result = self.result()
        assert math.isnan(result.p99_ms)
        assert len(result.digest()) == 64


class TestDeadlineBoundary:
    def make_queue(self, deadline_ms=1000.0):
        arrivals = np.asarray([0.0, 0.2, 5.0])
        status = np.full(3, SERVED, dtype=np.int8)
        queue = RequestQueue(
            AdmissionConfig(queue_capacity=4, deadline_ms=deadline_ms),
            BatchingConfig(),
            arrivals,
            status,
        )
        for idx in range(3):
            assert queue.offer(idx, in_burst=False)
        return queue, status

    def test_deadline_s_is_milliseconds_over_1000(self):
        assert AdmissionConfig(deadline_ms=250.0).deadline_s == 0.25

    def test_wait_equal_to_deadline_is_still_served(self):
        """The drop rule is strictly ``wait > deadline`` — the mirror of
        ``RetryPolicy.allows_retry``'s ``elapsed >= deadline`` give-up."""
        queue, _ = self.make_queue()
        assert queue.expire(1.0) == []  # head waited exactly 1.0 s
        assert queue.depth == 3

    def test_wait_just_over_deadline_drops_the_prefix(self):
        queue, status = self.make_queue()
        assert queue.expire(1.2000001) == [0, 1]
        assert queue.dropped == 2
        assert queue.depth == 1
        assert (status[:2] != SERVED).all()

    def test_expire_is_a_prefix_walk(self):
        """FIFO: once the head is young enough, nothing behind it can be
        expired — later waiters arrived later."""
        queue, _ = self.make_queue()
        assert queue.expire(6.0) == [0, 1]  # idx 2 arrived at 5.0, waited 1.0
        assert queue.depth == 1
