"""Tests for the tracking store, artifacts, registry, and client."""

import pytest

from repro.common import (
    ConflictError,
    InvalidStateError,
    NotFoundError,
    SimClock,
    ValidationError,
)
from repro.tracking import (
    ArtifactStore,
    ModelRegistry,
    ModelStage,
    RunStatus,
    TrackingClient,
    TrackingStore,
)


class TestTrackingStore:
    def setup_method(self):
        self.clock = SimClock()
        self.store = TrackingStore(self.clock)
        self.exp = self.store.create_experiment("gourmetgram-finetune")

    def test_duplicate_experiment_rejected(self):
        with pytest.raises(ConflictError):
            self.store.create_experiment("gourmetgram-finetune")

    def test_get_experiment_by_name(self):
        assert self.store.get_experiment_by_name("gourmetgram-finetune").id == self.exp.id

    def test_run_lifecycle(self):
        run = self.store.create_run(self.exp.id, "run-a")
        assert run.status is RunStatus.RUNNING
        self.clock.advance(2.0)
        self.store.finish_run(run.id)
        assert run.status is RunStatus.FINISHED
        assert run.end_time == 2.0

    def test_finish_twice_rejected(self):
        run = self.store.create_run(self.exp.id)
        self.store.finish_run(run.id)
        with pytest.raises(InvalidStateError):
            self.store.finish_run(run.id)

    def test_params_write_once(self):
        run = self.store.create_run(self.exp.id)
        self.store.log_param(run.id, "lr", 3e-4)
        self.store.log_param(run.id, "lr", 3e-4)  # idempotent same value
        with pytest.raises(ConflictError):
            self.store.log_param(run.id, "lr", 1e-3)

    def test_metric_series_with_steps_and_time(self):
        run = self.store.create_run(self.exp.id)
        for i, v in enumerate([2.0, 1.5, 1.2]):
            self.clock.advance(0.5)
            self.store.log_metric(run.id, "loss", v, step=i)
        points = run.metrics["loss"]
        assert [p.value for p in points] == [2.0, 1.5, 1.2]
        assert [p.step for p in points] == [0, 1, 2]
        assert points[-1].timestamp == pytest.approx(1.5)
        assert run.latest_metric("loss") == 1.2
        assert run.best_metric("loss") == 1.2

    def test_auto_step_numbering(self):
        run = self.store.create_run(self.exp.id)
        self.store.log_metric(run.id, "loss", 1.0)
        self.store.log_metric(run.id, "loss", 0.9)
        assert [p.step for p in run.metrics["loss"]] == [0, 1]

    def test_cannot_log_to_finished_run(self):
        run = self.store.create_run(self.exp.id)
        self.store.finish_run(run.id)
        with pytest.raises(InvalidStateError):
            self.store.log_metric(run.id, "loss", 1.0)

    def test_non_numeric_metric_rejected(self):
        run = self.store.create_run(self.exp.id)
        with pytest.raises(ValidationError):
            self.store.log_metric(run.id, "loss", "low")

    def test_search_orders_by_metric(self):
        for i, loss in enumerate([0.5, 0.2, 0.9]):
            run = self.store.create_run(self.exp.id, f"r{i}")
            self.store.log_metric(run.id, "val_loss", loss)
        runs = self.store.search_runs(self.exp.id, order_by_metric="val_loss")
        assert [r.latest_metric("val_loss") for r in runs] == [0.2, 0.5, 0.9]

    def test_best_run(self):
        for loss in [0.5, 0.2, 0.9]:
            run = self.store.create_run(self.exp.id)
            self.store.log_metric(run.id, "val_loss", loss)
        assert self.store.best_run(self.exp.id, "val_loss").latest_metric("val_loss") == 0.2

    def test_search_with_predicate(self):
        a = self.store.create_run(self.exp.id)
        self.store.set_tag(a.id, "gpu", "a100")
        b = self.store.create_run(self.exp.id)
        self.store.set_tag(b.id, "gpu", "v100")
        runs = self.store.search_runs(self.exp.id, predicate=lambda r: r.tags.get("gpu") == "a100")
        assert [r.id for r in runs] == [a.id]

    def test_missing_lookups_raise(self):
        with pytest.raises(NotFoundError):
            self.store.get_experiment_by_name("ghost")
        with pytest.raises(NotFoundError):
            self.store.log_metric("run-999999", "x", 1.0)


class TestArtifactStore:
    def test_round_trip_and_integrity(self):
        store = ArtifactStore()
        store.log_artifact("run-1", "models/weights.bin", b"\x00" * 100)
        assert store.get_artifact("run-1", "models/weights.bin") == b"\x00" * 100
        assert store.verify("run-1", "models/weights.bin")

    def test_dedup_identical_payloads(self):
        store = ArtifactStore()
        store.log_artifact("run-1", "a.bin", b"same")
        store.log_artifact("run-2", "b.bin", b"same")
        assert store.total_bytes() == 4

    def test_list_with_prefix(self):
        store = ArtifactStore()
        store.log_artifact("r", "models/w.bin", b"1")
        store.log_artifact("r", "plots/loss.png", b"2")
        assert [a.path for a in store.list_artifacts("r", prefix="models/")] == ["models/w.bin"]

    def test_absolute_path_rejected(self):
        with pytest.raises(ValidationError):
            ArtifactStore().log_artifact("r", "/etc/passwd", b"x")

    def test_missing_artifact_raises(self):
        with pytest.raises(NotFoundError):
            ArtifactStore().get_artifact("r", "ghost")

    def test_object_store_backing(self):
        from repro.cloud.metering import UsageMeter
        from repro.cloud.quota import Quota, QuotaManager
        from repro.cloud.storage import ObjectStorageService
        from repro.common.ids import IdGenerator

        clock = SimClock()
        backend = ObjectStorageService(clock, IdGenerator(), QuotaManager(Quota.unlimited()), UsageMeter(clock))
        store = ArtifactStore(backend)
        store.log_artifact("run-1", "w.bin", b"payload")
        assert backend.get_object("mlflow-artifacts", "run-1/w.bin").data == b"payload"


class TestModelRegistry:
    def test_versions_increment(self):
        reg = ModelRegistry()
        assert reg.register("food-classifier", "run-1").version == 1
        assert reg.register("food-classifier", "run-2").version == 2

    def test_promotion_archives_previous_production(self):
        reg = ModelRegistry()
        reg.register("m", "r1")
        reg.register("m", "r2")
        reg.transition("m", 1, ModelStage.PRODUCTION)
        reg.transition("m", 2, ModelStage.STAGING)
        reg.transition("m", 2, ModelStage.PRODUCTION)
        assert reg.production("m").version == 2
        assert reg.get("m", 1).stage is ModelStage.ARCHIVED

    def test_latest_by_stage(self):
        reg = ModelRegistry()
        reg.register("m", "r1")
        reg.register("m", "r2")
        reg.transition("m", 1, ModelStage.STAGING)
        assert reg.latest("m").version == 2
        assert reg.latest("m", stage=ModelStage.STAGING).version == 1

    def test_same_stage_transition_conflicts(self):
        reg = ModelRegistry()
        reg.register("m", "r1")
        reg.transition("m", 1, ModelStage.STAGING)
        with pytest.raises(ConflictError):
            reg.transition("m", 1, ModelStage.STAGING)

    def test_illegal_transition_rejected(self):
        reg = ModelRegistry()
        reg.register("m", "r1")
        reg.transition("m", 1, ModelStage.PRODUCTION)
        with pytest.raises(ValidationError):
            reg.transition("m", 1, ModelStage.NONE)

    def test_no_production_raises(self):
        reg = ModelRegistry()
        reg.register("m", "r1")
        with pytest.raises(NotFoundError):
            reg.production("m")

    def test_unknown_model_raises(self):
        with pytest.raises(NotFoundError):
            ModelRegistry().versions("ghost")


class TestTrackingClient:
    def test_full_training_script_flow(self):
        """The Unit 5 lab flow: params, metrics, artifacts, model, registry."""
        client = TrackingClient()
        with client.start_run("finetune", "bf16-lora") as run:
            client.log_params({"lr": 3e-4, "rank": 16})
            for step, loss in enumerate([2.0, 1.4, 1.1]):
                client.log_metric("loss", loss, step=step)
            client.set_tag("precision", "bf16")
            mv = client.log_model("food-classifier", b"weights", metrics={"val_acc": 0.91})
        assert client.store.runs[run.id].status is RunStatus.FINISHED
        assert mv.version == 1
        assert client.artifacts.get_artifact(run.id, "models/food-classifier/weights.bin") == b"weights"
        client.promote("food-classifier", 1, ModelStage.STAGING)
        assert client.registry.latest("food-classifier", stage=ModelStage.STAGING).version == 1

    def test_exception_marks_run_failed(self):
        client = TrackingClient()
        with pytest.raises(RuntimeError):
            with client.start_run("exp") as run:
                raise RuntimeError("OOM")
        assert client.store.runs[run.id].status is RunStatus.FAILED

    def test_nested_runs_rejected(self):
        client = TrackingClient()
        with client.start_run("exp"):
            with pytest.raises(InvalidStateError):
                with client.start_run("exp"):
                    pass

    def test_logging_without_run_rejected(self):
        with pytest.raises(InvalidStateError):
            TrackingClient().log_metric("loss", 1.0)

    def test_set_experiment_idempotent(self):
        client = TrackingClient()
        a = client.set_experiment("e")
        b = client.set_experiment("e")
        assert a == b
