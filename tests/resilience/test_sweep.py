"""The phase-map sweep: grid expansion, classification, digest contract.

One tiny campaign (6 points, both outage scopes, a naive rung and two
defended rungs) pins the acceptance shape from the scenario layer at
sweep scale: the naive client's LOCKED region is non-empty, the
budgeted and adaptive clients' LOCKED regions are empty, and the
partial-outage storm must NOT trip the breaker fleet-wide.  The report
digest must be byte-identical under rerun, perturbation, and worker
fan-out.
"""

import pytest

from repro.common.errors import ValidationError
from repro.resilience.report import SweepReport
from repro.resilience.scenario import DEFENDED_POLICIES, POLICIES, StormConfig
from repro.resilience.sweep import (
    PHASES,
    SweepAxes,
    SweepConfig,
    build_points,
    classify,
    quick_sweep_config,
    run_sweep,
)

#: Five minutes, 90-second outage, one load: locks the naive rung at
#: both scopes in seconds of wall clock.
TINY = SweepConfig(
    base=StormConfig(duration_s=300.0, outage_start_s=75.0, outage_end_s=165.0),
    axes=SweepAxes(
        loads_rps=(250.0,),
        outage_lengths_s=(90.0,),
        dark_replicas=(0, 1),
        policies=(
            "naive-retry",
            "budgeted-retry+breaker",
            "adaptive-retry+breaker",
        ),
        budget_fills=(0.1,),
        breaker_error_thresholds=(0.5,),
    ),
)


@pytest.fixture(scope="module")
def report():
    return run_sweep(TINY, workers=2)


class TestClassify:
    def test_locked_wins_regardless_of_ttr(self):
        assert classify(None, True, recovery_grace_s=60.0) == "LOCKED"

    def test_grace_boundary_is_inclusive(self):
        assert classify(60.0, False, recovery_grace_s=60.0) == "RECOVERED"
        assert classify(60.1, False, recovery_grace_s=60.0) == "DEGRADED"

    def test_phases_order_is_the_severity_order(self):
        assert PHASES == ("RECOVERED", "DEGRADED", "LOCKED")


class TestAxes:
    def test_empty_axis_is_refused(self):
        with pytest.raises(ValidationError):
            SweepAxes(loads_rps=())

    def test_unknown_policy_is_refused(self):
        with pytest.raises(ValidationError):
            SweepAxes(policies=("naive-retry", "yolo-retry"))

    def test_default_grid_is_336_points(self):
        axes = SweepAxes()
        assert axes.cells == 24
        assert axes.points == 336

    def test_quick_grid_is_24_points(self):
        assert quick_sweep_config().axes.points == 24

    def test_undefended_policies_skip_fill_and_threshold_axes(self):
        points = build_points(TINY)
        assert len(points) == TINY.axes.points == 6
        naive = [p for p in points if p.policy == "naive-retry"]
        assert all(p.breaker_error_threshold is None for p in naive)
        assert all(p.budget_fill == TINY.base.retry_budget_fill for p in naive)
        defended = [p for p in points if p.policy in DEFENDED_POLICIES]
        assert all(p.breaker_error_threshold == 0.5 for p in defended)

    def test_point_order_is_a_pure_function_of_the_config(self):
        a = build_points(TINY)
        b = build_points(TINY)
        assert a == b

    def test_perturb_rides_into_every_rung(self):
        assert all(p.rung.perturb for p in build_points(TINY, perturb=True))
        assert not any(p.rung.perturb for p in build_points(TINY))


class TestSweepConfig:
    def test_outage_length_must_fit_the_run(self):
        with pytest.raises(ValidationError):
            SweepConfig(
                base=TINY.base, axes=SweepAxes(outage_lengths_s=(300.0,))
            )

    def test_dark_replicas_must_leave_a_survivor(self):
        with pytest.raises(ValidationError):
            SweepConfig(base=TINY.base, axes=SweepAxes(dark_replicas=(0, 2)))

    def test_negative_grace_is_refused(self):
        with pytest.raises(ValidationError):
            SweepConfig(base=TINY.base, recovery_grace_s=-1.0)


class TestPhaseMap:
    def test_naive_locked_region_is_nonempty(self, report):
        """The metastable region exists — at both outage scopes."""
        region = report.locked_region("naive-retry")
        assert len(region) == 2
        assert {cell[2] for cell in region} == {0, 1}

    def test_defended_locked_regions_are_empty(self, report):
        assert report.locked_region("budgeted-retry+breaker") == ()
        assert report.locked_region("adaptive-retry+breaker") == ()
        assert report.phases("budgeted-retry+breaker") == ("RECOVERED",)

    def test_partial_outage_must_not_trip_the_breaker_fleet_wide(self, report):
        """One dark replica is a capacity loss, not a fleet outage: the
        survivors keep serving, so the defended policies' breakers stay
        closed while the full-site storm opens them."""
        for policy in ("budgeted-retry+breaker", "adaptive-retry+breaker"):
            partial = report.select(policy=policy, dark_replicas=1)
            full = report.select(policy=policy, dark_replicas=0)
            assert all(p.breaker_opens == 0 for p in partial)
            assert all(p.breaker_opens >= 1 for p in full)

    def test_adaptive_client_declines_doomed_retries(self, report):
        """The give-up deadline binds during the full-site storm (the
        queue pushes backoff instants past the deadline), and the counter
        reaches the point metrics."""
        (point,) = report.select(policy="adaptive-retry+breaker", dark_replicas=0)
        assert point.retries_declined_deadline > 0

    def test_amplification_cap_holds_at_every_defended_point(self, report):
        for policy in DEFENDED_POLICIES:
            for p in report.select(policy=policy):
                assert p.amplification <= 1.0 + p.budget_fill + 1e-9


class TestDigestContract:
    def test_rerun_perturb_and_workers_agree(self, report):
        baseline = report.digest()
        assert run_sweep(TINY, perturb=True).digest() == baseline
        assert run_sweep(TINY, workers=1).digest() == baseline

    def test_config_reaches_the_digest(self, report):
        reseeded = SweepConfig(
            base=StormConfig(
                duration_s=300.0, outage_start_s=75.0, outage_end_s=165.0, seed=12
            ),
            axes=TINY.axes,
        )
        salted = SweepReport(config=reseeded, points=report.points)
        assert salted.digest() != report.digest()


class TestFrontier:
    def test_defaults_to_the_hardest_cell_widest_scope(self, report):
        frontier = report.defense_frontier()
        assert frontier
        assert all(p.cell == (250.0, 90.0, 1) for p in frontier)

    def test_explicit_cell_override(self, report):
        frontier = report.defense_frontier(dark_replicas=0)
        assert frontier
        assert all(p.cell == (250.0, 90.0, 0) for p in frontier)

    def test_locked_points_never_make_the_frontier(self, report):
        for dark in (0, 1):
            frontier = report.defense_frontier(dark_replicas=dark)
            assert all(not p.locked for p in frontier)
            assert all(p.policy != "naive-retry" for p in frontier)

    def test_frontier_points_are_priced(self, report):
        for p in report.defense_frontier():
            assert p.usd_per_million_effective is not None
            assert p.time_to_recovery_s is not None

    def test_unswept_cell_is_refused(self, report):
        with pytest.raises(ValidationError):
            report.defense_frontier(load_rps=9999.0)


class TestReporting:
    def test_phase_map_shows_both_scopes_and_the_lock_glyph(self, report):
        text = report.render_phase_map()
        assert "full outage" in text
        assert "1 of 2 replicas dark" in text
        assert "X" in text
        assert "legend" in text

    def test_render_names_every_policy_and_the_frontier(self, report):
        text = report.render()
        for policy in TINY.axes.policies:
            assert policy in text
        assert "defense frontier" in text

    def test_to_dict_round_trips_points_and_digest(self, report):
        d = report.to_dict()
        assert d["digest"] == report.digest()
        assert len(d["points"]) == 6
        assert d["frontier"]

    def test_select_filters_compose(self, report):
        got = report.select(policy="naive-retry", dark_replicas=1)
        assert len(got) == 1
        assert got[0].phase == "LOCKED"


class TestPolicyRegistry:
    def test_sweepable_policies_cover_the_ladder_and_the_new_clients(self):
        assert POLICIES == (
            "no-retry",
            "naive-retry",
            "budgeted-retry+breaker",
            "adaptive-retry+breaker",
            "hedged-retry+breaker",
        )
        assert set(DEFENDED_POLICIES) == set(POLICIES[2:])
