"""Regression: extracting the engine's breaker into ``repro.common.breaker``.

The parallel engine's per-shard crash breaker is now the shared
:class:`~repro.common.breaker.RetryBreaker`.  The extraction must be
behaviour-preserving: the engine's verdicts (retry / poison / surface)
are exactly the shared breaker's verdicts for the same failure sequence,
and a crash-then-retry run still lands on the serial digest with the
same telemetry it had before the refactor.
"""

import pytest

from repro.common.breaker import RetryBreaker
from repro.common.errors import PoisonedShardError, WorkerCrashError
from repro.common.retry import RetryPolicy
from repro.core.cohort import CohortConfig, CohortSimulation, plan_cohort
from repro.core.course import scaled_course
from repro.core.report import records_digest
from repro.parallel.engine import SupervisorPolicy, run_parallel_supervised

SMALL = scaled_course(0.25)
SEED = 42
NO_BACKOFF = dict(base_backoff_hours=0.0, max_backoff_hours=0.0)


def kill_shard(index=3):
    return plan_cohort(SMALL, CohortConfig(seed=SEED)).shards()[index].shard_id


def run_with_crashes(policy):
    return run_parallel_supervised(
        SMALL, CohortConfig(seed=SEED), workers=2, policy=policy
    )


class TestDropInEquivalence:
    def test_recovered_crash_keeps_digest_and_telemetry(self):
        """One worker SystemExit, default retry budget: the run self-heals
        to the serial digest with the pre-extraction telemetry shape
        (one crash incident, retried shards, pool intact)."""
        serial = records_digest(CohortSimulation(SMALL, CohortConfig(seed=SEED)).run())
        policy = SupervisorPolicy(crash_after_shards=(kill_shard(),), crash_mode="exit")
        records, run = run_with_crashes(policy)
        assert records_digest(records) == serial
        assert run.telemetry.worker_crashes == 1
        assert run.telemetry.shards_retried > 0
        assert run.telemetry.pool_rebuilds == 0  # SystemExit leaves the pool alive
        assert run.telemetry.serial_fallback is False

    def test_poison_verdict_matches_shared_breaker_oracle(self):
        """Drive a bare RetryBreaker with the failure sequence the engine
        will see; the engine's PoisonedShardError must carry exactly the
        breaker's exhaustion verdict."""
        sid = kill_shard()
        retry = RetryPolicy(max_attempts=2, **NO_BACKOFF)

        oracle = RetryBreaker(retry)
        verdicts = []
        while True:
            oracle.record_failure(sid)
            verdicts.append(oracle.exhausted([sid]))
            if verdicts[-1]:
                break
        assert verdicts == [{}, {sid: 2}]  # retry once, then poison

        policy = SupervisorPolicy(
            retry=retry, crash_after_shards=(sid,), crash_mode="exit",
            crash_every_attempt=True,
        )
        with pytest.raises(PoisonedShardError) as excinfo:
            run_with_crashes(policy)
        assert excinfo.value.crash_counts == verdicts[-1]

    def test_zero_retry_budget_surfaces_the_crash_not_a_poison_verdict(self):
        """max_attempts=1 trips the breaker on the first failure, but the
        engine must surface the typed WorkerCrashError itself (nothing
        was ever retried, so 'poisoned' would be a lie)."""
        retry = RetryPolicy(max_attempts=1, **NO_BACKOFF)
        assert RetryBreaker(retry).exhausted([kill_shard()]) == {}
        breaker = RetryBreaker(retry)
        breaker.record_failure(kill_shard())
        assert breaker.exhausted([kill_shard()]) == {kill_shard(): 1}

        policy = SupervisorPolicy(
            retry=retry, crash_after_shards=(kill_shard(),), crash_mode="exit"
        )
        with pytest.raises(WorkerCrashError):
            run_with_crashes(policy)
