"""Closed-loop ``simulate_traffic``: conservation, equivalence, digests.

The resilience layer must not bend the simulation's contracts: every
request still gets exactly one terminal outcome, a one-attempt client is
status-identical to the open loop, and the digest is byte-identical
under rerun and evaluation-order perturbation.  On top of that sit the
closed-loop claims themselves: retries re-serve real requests, the token
bucket caps amplification, and the breaker converts overload into sheds.
"""

import numpy as np
import pytest

from repro.faults.plan import build_outage_calendar
from repro.loadgen.arrivals import TrafficConfig, generate_trace
from repro.loadgen.autoscaler import AutoscalerConfig
from repro.loadgen.queue import SERVED, SHED, AdmissionConfig
from repro.loadgen.sim import simulate_traffic
from repro.resilience.breaker import serving_breaker_config
from repro.resilience.clients import ClientConfig, plan_resilience
from repro.resilience.shedding import SheddingConfig
from repro.serving import (
    DEVICE_CATALOG,
    BatchingConfig,
    InferenceEngine,
    food11_classifier,
)

#: ~8 rps for six minutes with a one-minute full outage in the middle —
#: small enough to simulate in milliseconds, faulty enough that every
#: loss class and retry path fires.
TRAFFIC = TrafficConfig(
    seed=7, pattern="poisson", requests_per_day=700_000.0, duration_hours=0.1
)
OPS = dict(
    admission=AdmissionConfig(queue_capacity=32, deadline_ms=500.0),
    batching=BatchingConfig(max_batch=8),
    autoscaler=AutoscalerConfig(
        min_replicas=1, max_replicas=1, control_interval_s=10.0,
        provisioning_lag_s=30.0,
    ),
)


@pytest.fixture(scope="module")
def engine():
    return InferenceEngine(food11_classifier(), DEVICE_CATALOG["server-cpu-16c"])


@pytest.fixture(scope="module")
def trace():
    return generate_trace(TRAFFIC)


@pytest.fixture(scope="module")
def calendar():
    return build_outage_calendar(
        outage_start_s=120.0, outage_end_s=180.0, horizon_hours=TRAFFIC.duration_hours
    )


def run(trace, engine, calendar, client, *, perturb=False, **defenses):
    model = plan_resilience(trace, client, **defenses)
    return simulate_traffic(
        trace, engine, calendar=calendar, resilience=model, perturb=perturb, **OPS
    )


@pytest.fixture(scope="module")
def naive_run(trace, engine, calendar):
    return run(trace, engine, calendar, ClientConfig.naive())


@pytest.fixture(scope="module")
def guarded_run(trace, engine, calendar):
    return run(
        trace, engine, calendar, ClientConfig.budgeted(),
        shedding=SheddingConfig(brownout_depth_fraction=0.3),
        breaker=serving_breaker_config(min_volume=20),
    )


class TestContractsHold:
    def test_every_request_terminal_and_attempted(self, naive_run):
        out = naive_run.resilience
        assert (naive_run.status >= SERVED).all()
        assert (naive_run.status <= SHED).all()
        assert (out.attempts >= 1).all()
        counted = (
            naive_run.served + naive_run.rejected + naive_run.dropped
            + naive_run.errored + naive_run.failed + naive_run.shed
        )
        assert counted == naive_run.offered

    def test_no_retry_client_is_status_identical_to_open_loop(
        self, trace, engine, calendar
    ):
        open_loop = simulate_traffic(trace, engine, calendar=calendar, **OPS)
        closed = run(trace, engine, calendar, ClientConfig.no_retry())
        assert np.array_equal(closed.status, open_loop.status)
        assert np.array_equal(closed.replica_of, open_loop.replica_of)
        assert closed.resilience.amplification == 1.0
        assert closed.batches == open_loop.batches

    def test_rerun_and_perturb_digests_identical(
        self, trace, engine, calendar, naive_run
    ):
        again = run(trace, engine, calendar, ClientConfig.naive())
        flipped = run(trace, engine, calendar, ClientConfig.naive(), perturb=True)
        assert again.digest() == naive_run.digest() == flipped.digest()

    def test_client_seed_reaches_the_digest(self, trace, engine, calendar, naive_run):
        other = run(trace, engine, calendar, ClientConfig.naive(seed=99))
        assert other.digest() != naive_run.digest()


class TestClosedLoopBehaviour:
    def test_outage_losses_get_retried_and_served(self, trace, engine, calendar):
        """The point of the loop: requests the outage failed come back
        and complete — some request needs >1 attempts and still SERVES."""
        open_loop = simulate_traffic(trace, engine, calendar=calendar, **OPS)
        closed = run(trace, engine, calendar, ClientConfig.naive())
        out = closed.resilience
        assert out.retries > 0
        retried_and_served = (out.attempts > 1) & (closed.status == SERVED)
        assert retried_and_served.any()
        assert closed.served > open_loop.served

    def test_attempts_total_consistency(self, naive_run):
        out = naive_run.resilience
        assert out.attempts_total == naive_run.offered + out.retries
        assert naive_run.attempts_total == out.attempts_total

    def test_budget_caps_amplification(self, guarded_run):
        fill = ClientConfig.budgeted().budget.fill_per_request
        assert guarded_run.resilience.amplification <= 1.0 + fill + 1e-9

    def test_breaker_sheds_during_the_storm(self, guarded_run):
        out = guarded_run.resilience
        assert out.breaker_opens >= 1
        assert out.shed_breaker > 0
        assert out.shed_tier > 0
        # counters book *attempts*; the status array books final request
        # outcomes, and a shed attempt retried to success leaves no SHED
        assert guarded_run.shed <= out.shed_breaker + out.shed_tier

    def test_brownout_marks_served_requests_only(self, trace, engine, calendar):
        result = run(
            trace, engine, calendar, ClientConfig.naive(),
            shedding=SheddingConfig(brownout_depth_fraction=0.1),
        )
        out = result.resilience
        assert out.brownout_served > 0
        assert (result.status[out.brownout] == SERVED).all()

    def test_depth_samples_cover_every_control_tick(self, naive_run):
        samples = naive_run.resilience.depth_samples
        interval = OPS["autoscaler"].control_interval_s
        # the loop ends once the last attempt terminates, so the final
        # few ticks of the horizon may never fire
        assert len(samples) >= TRAFFIC.duration_s / interval - 4
        assert (np.diff(samples[:, 0]) > 0).all()
