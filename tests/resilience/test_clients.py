"""The closed-loop client layer: plan-time draws, runtime decision ladder.

Everything random a client does is resolved by ``plan_resilience`` into
arrays on the model; the runtime is then a pure state machine the
simulation drives.  These tests pin the stream discipline (toggling a
server defense never moves a client's jitter), the retry decision ladder
(retryable → policy → budget), and the dispatch-time service factors
(brownout beats thrash).
"""

import hashlib

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.common.retry import RetryPolicy
from repro.loadgen.arrivals import TrafficConfig, generate_trace
from repro.loadgen.queue import ERROR, REJECTED, SERVED
from repro.resilience.breaker import serving_breaker_config
from repro.resilience.clients import (
    RETRYABLE,
    ClientConfig,
    RetryBudgetConfig,
    plan_resilience,
)
from repro.resilience.shedding import CongestionConfig, SheddingConfig

CAPACITY = 64


@pytest.fixture(scope="module")
def trace():
    """~360 requests: big enough for tier shares, small enough to be free."""
    return generate_trace(
        TrafficConfig(seed=3, pattern="poisson", requests_per_day=864000.0,
                      duration_hours=0.01)
    )


def runtime_for(trace, client, **kwargs):
    return plan_resilience(trace, client, **kwargs).runtime(
        trace.arrivals_s, CAPACITY
    )


class TestConfigs:
    @pytest.mark.parametrize("kwargs", [
        {"capacity": 0.0},
        {"fill_per_request": -0.1},
        {"initial": -1.0},
        {"initial": 101.0},
    ])
    def test_budget_validation(self, kwargs):
        with pytest.raises(ValidationError):
            RetryBudgetConfig(**kwargs)

    def test_retry_on_must_be_retryable(self):
        with pytest.raises(ValidationError):
            ClientConfig(retry_on=(SERVED,))
        with pytest.raises(ValidationError):
            ClientConfig(retry_on=(99,))

    def test_canonical_clients(self):
        no = ClientConfig.no_retry()
        assert no.retry.max_attempts == 1 and no.retry_on == ()
        naive = ClientConfig.naive()
        assert naive.retry == RetryPolicy.storm_default() and naive.budget is None
        budgeted = ClientConfig.budgeted(fill_per_request=0.2)
        assert budgeted.budget is not None
        assert budgeted.budget.fill_per_request == 0.2

    def test_give_up_deadline_validated(self):
        with pytest.raises(ValidationError):
            ClientConfig(give_up_deadline_s=0.0)
        with pytest.raises(ValidationError):
            ClientConfig(give_up_deadline_s=-5.0)

    def test_adaptive_and_hedged_clients(self):
        adaptive = ClientConfig.adaptive(fill_per_request=0.2, give_up_deadline_s=5.0)
        assert adaptive.retry == RetryPolicy.client_default()
        assert adaptive.budget is not None and adaptive.budget.fill_per_request == 0.2
        assert adaptive.give_up_deadline_s == 5.0
        hedged = ClientConfig.hedged()
        assert hedged.retry == RetryPolicy.hedge_default()
        assert hedged.budget is not None
        assert hedged.give_up_deadline_s == 10.0


class TestPlan:
    def test_jitter_shape_covers_every_possible_retry(self, trace):
        model = plan_resilience(trace, ClientConfig.naive())
        assert model.jitter_u.shape == (len(trace), RetryPolicy.storm_default().max_retries)

    def test_no_retry_plans_no_jitter(self, trace):
        model = plan_resilience(trace, ClientConfig.no_retry())
        assert model.jitter_u.shape == (len(trace), 0)

    def test_tiers_default_to_critical_without_shedding(self, trace):
        model = plan_resilience(trace, ClientConfig.naive())
        assert (model.tier == 0).all()

    def test_tiers_follow_configured_shares(self, trace):
        shed = SheddingConfig()
        model = plan_resilience(trace, ClientConfig.naive(), shedding=shed)
        counts = np.bincount(model.tier, minlength=shed.tiers) / len(trace)
        assert np.allclose(counts, shed.tier_shares, atol=0.1)

    def test_shedding_toggle_never_moves_jitter(self, trace):
        """Independent spawned streams: adding a server defense must not
        perturb the client's retry schedule."""
        bare = plan_resilience(trace, ClientConfig.naive())
        defended = plan_resilience(
            trace, ClientConfig.naive(), shedding=SheddingConfig(),
            breaker=serving_breaker_config(), congestion=CongestionConfig(),
        )
        assert np.array_equal(bare.jitter_u, defended.jitter_u)

    def test_seed_reproducible_and_distinguishing(self, trace):
        a = plan_resilience(trace, ClientConfig.naive(seed=5))
        b = plan_resilience(trace, ClientConfig.naive(seed=5))
        c = plan_resilience(trace, ClientConfig.naive(seed=6))
        assert np.array_equal(a.jitter_u, b.jitter_u)
        assert not np.array_equal(a.jitter_u, c.jitter_u)


class TestRetryLadder:
    def test_retryable_failure_schedules_planned_jitter(self, trace):
        rt = runtime_for(trace, ClientConfig.naive())
        rt.begin_attempt(0)
        now = float(trace.arrivals_s[0]) + 0.001
        due = rt.on_failure(0, now, REJECTED)
        policy = RetryPolicy.storm_default()
        u = float(rt.model.jitter_u[0, 0])
        assert due == pytest.approx(now + policy.backoff_seconds(1, u=u))
        assert rt.retries == 1

    def test_unlisted_outcome_is_terminal(self, trace):
        rt = runtime_for(trace, ClientConfig(retry_on=(REJECTED,)))
        rt.begin_attempt(0)
        assert rt.on_failure(0, 1.0, ERROR) is None
        assert rt.retries == 0

    def test_attempt_budget_exhausts(self, trace):
        client = ClientConfig(retry=RetryPolicy(max_attempts=2, jitter=0.0))
        rt = runtime_for(trace, client)
        rt.begin_attempt(0)
        assert rt.on_failure(0, 1.0, REJECTED) is not None
        rt.begin_attempt(0)
        assert rt.on_failure(0, 2.0, REJECTED) is None
        assert rt.retries_exhausted == 1

    def test_deadline_measured_from_first_arrival(self, trace):
        """The give-up clock runs from the request's original arrival,
        not the failing attempt (exact-boundary semantics of
        ``allows_retry`` are pinned in ``tests/common/test_retry.py``)."""
        deadline_h = 1.0 / 3600.0  # one second
        client = ClientConfig(
            retry=RetryPolicy(max_attempts=9, jitter=0.0, deadline_hours=deadline_h)
        )
        rt = runtime_for(trace, client)
        arrival = float(trace.arrivals_s[0])
        rt.begin_attempt(0)
        assert rt.on_failure(0, arrival + 0.5, REJECTED) is not None
        rt.begin_attempt(0)
        assert rt.on_failure(0, arrival + 2.0, REJECTED) is None
        assert rt.retries_exhausted == 1

    def test_token_bucket_denies_when_empty(self, trace):
        client = ClientConfig(
            retry=RetryPolicy.storm_default(),
            budget=RetryBudgetConfig(capacity=1.0, fill_per_request=0.0, initial=1.0),
        )
        rt = runtime_for(trace, client)
        rt.begin_attempt(0)
        assert rt.on_failure(0, 1.0, REJECTED) is not None  # spends the token
        rt.begin_attempt(1)
        assert rt.on_failure(1, 1.0, REJECTED) is None
        assert rt.retries_denied_budget == 1

    def test_first_attempts_earn_tokens_capped_at_capacity(self, trace):
        client = ClientConfig(
            retry=RetryPolicy.storm_default(),
            budget=RetryBudgetConfig(capacity=1.5, fill_per_request=1.0, initial=0.0),
        )
        rt = runtime_for(trace, client)
        rt.begin_attempt(0)
        rt.begin_attempt(1)
        rt.begin_attempt(1)  # a retry attempt earns nothing
        assert rt.finish().tokens_left == 1.5


class TestAdaptiveGiveUp:
    """Deadline-aware give-up: a retry whose re-offer instant lands at or
    past the deadline (measured from first arrival) is declined *before*
    it spends a budget token."""

    def client(self, *, backoff_s, give_up_s):
        return ClientConfig(
            retry=RetryPolicy(
                max_attempts=9,
                base_backoff_hours=backoff_s / 3600.0,
                multiplier=1.0,
                max_backoff_hours=backoff_s / 3600.0,
                jitter=0.0,
            ),
            budget=RetryBudgetConfig(capacity=1.0, fill_per_request=0.0, initial=1.0),
            give_up_deadline_s=give_up_s,
        )

    def test_doomed_retry_declined_without_spending_a_token(self, trace):
        rt = runtime_for(trace, self.client(backoff_s=5.0, give_up_s=2.0))
        arrival = float(trace.arrivals_s[0])
        rt.begin_attempt(0)
        assert rt.on_failure(0, arrival + 0.1, REJECTED) is None
        out = rt.finish()
        assert out.retries_declined_deadline == 1
        assert out.retries_denied_budget == 0
        assert out.tokens_left == 1.0  # declined before the bucket
        assert rt.retries == 0

    def test_viable_retry_still_spends_the_token(self, trace):
        rt = runtime_for(trace, self.client(backoff_s=5.0, give_up_s=30.0))
        arrival = float(trace.arrivals_s[0])
        rt.begin_attempt(0)
        due = rt.on_failure(0, arrival + 0.1, REJECTED)
        assert due == pytest.approx(arrival + 0.1 + 5.0)
        assert rt.finish().tokens_left == 0.0

    def test_deadline_boundary_is_inclusive(self, trace):
        rt = runtime_for(trace, self.client(backoff_s=2.0, give_up_s=2.0))
        rt.begin_attempt(0)
        assert rt.on_failure(0, float(trace.arrivals_s[0]), REJECTED) is None
        assert rt.retries_declined_deadline == 1

    def test_deadline_runs_from_first_arrival_not_the_attempt(self, trace):
        """The same backoff is viable early and doomed late: time already
        burned against the deadline counts."""
        arrival = float(trace.arrivals_s[0])
        early = runtime_for(trace, self.client(backoff_s=1.0, give_up_s=10.0))
        early.begin_attempt(0)
        assert early.on_failure(0, arrival + 1.0, REJECTED) is not None
        late = runtime_for(trace, self.client(backoff_s=1.0, give_up_s=10.0))
        late.begin_attempt(0)
        assert late.on_failure(0, arrival + 9.5, REJECTED) is None
        assert late.retries_declined_deadline == 1


class TestHedgedClient:
    def test_first_reoffer_is_the_50ms_hedge(self):
        policy = RetryPolicy.hedge_default()
        assert policy.backoff_seconds(1) == pytest.approx(0.05)
        assert policy.backoff_seconds(2) == pytest.approx(1.0)
        assert policy.backoff_seconds(3) == pytest.approx(10.0)  # capped

    def test_every_hedge_buys_a_token(self, trace):
        """The amplification theorem survives hedging because the hedge
        goes through the same bucket as any retry."""
        client = ClientConfig(
            retry=RetryPolicy.hedge_default(),
            budget=RetryBudgetConfig(capacity=1.0, fill_per_request=0.0, initial=1.0),
            give_up_deadline_s=60.0,
        )
        rt = runtime_for(trace, client)
        rt.begin_attempt(0)
        assert rt.on_failure(0, float(trace.arrivals_s[0]), REJECTED) is not None
        rt.begin_attempt(1)
        assert rt.on_failure(1, float(trace.arrivals_s[1]), REJECTED) is None
        assert rt.retries_denied_budget == 1


class TestFrontDoorAndDispatch:
    def test_tier_shedding_uses_planned_tier(self, trace):
        shed = SheddingConfig(tier_depth_fractions=(1.0, 0.5, 0.25))
        rt = runtime_for(trace, ClientConfig.naive(), shedding=shed)
        tiers = rt.model.tier
        lo = int(np.flatnonzero(tiers == 2)[0])
        hi = int(np.flatnonzero(tiers == 0)[0])
        depth = shed.depth_limits(CAPACITY)[2]  # at the tier-2 threshold
        assert not rt.admit(lo, 1.0, depth)
        assert rt.admit(hi, 1.0, depth)
        assert rt.shed_tier == 1

    def test_open_breaker_sheds_before_tiers(self, trace):
        cfg = serving_breaker_config(min_volume=4)
        rt = runtime_for(trace, ClientConfig.naive(), breaker=cfg)
        for idx in range(4):
            rt.begin_attempt(idx)
            rt.on_failure(idx, 1.0, REJECTED)
        assert not rt.admit(0, 1.0, 0)
        assert rt.shed_breaker == 1

    def test_service_factor_brownout_beats_thrash(self, trace):
        shed = SheddingConfig(brownout_depth_fraction=0.25, brownout_speedup=0.5)
        congestion = CongestionConfig(thrash_depth_fraction=0.5, slowdown=2.0)
        rt = runtime_for(
            trace, ClientConfig.naive(), shedding=shed, congestion=congestion
        )
        assert rt.service_factor(0) == 1.0
        assert rt.service_factor(shed.brownout_depth(CAPACITY)) == 0.5
        # past the thrash depth the brownout server is *still* degraded-fast:
        # shedding quality is exactly what keeps it out of the thrash regime
        assert rt.service_factor(congestion.thrash_depth(CAPACITY)) == 0.5

    def test_thrash_without_brownout(self, trace):
        congestion = CongestionConfig(thrash_depth_fraction=0.5, slowdown=2.0)
        rt = runtime_for(trace, ClientConfig.naive(), congestion=congestion)
        depth = congestion.thrash_depth(CAPACITY)
        assert rt.service_factor(depth - 1) == 1.0
        assert rt.service_factor(depth) == 2.0

    def test_congestion_validation(self):
        with pytest.raises(ValidationError):
            CongestionConfig(thrash_depth_fraction=0.0)
        with pytest.raises(ValidationError):
            CongestionConfig(slowdown=0.9)


class TestOutcome:
    def test_amplification_is_mean_attempts(self, trace):
        rt = runtime_for(trace, ClientConfig.naive())
        for idx in range(len(trace)):
            rt.begin_attempt(idx)
        rt.begin_attempt(0)
        out = rt.finish()
        assert out.attempts_total == len(trace) + 1
        assert out.amplification == pytest.approx(1.0 + 1.0 / len(trace))

    def test_digest_update_sees_the_counters(self, trace):
        def digest(rt):
            h = hashlib.sha256()
            rt.finish().digest_update(h)
            return h.hexdigest()
        a = runtime_for(trace, ClientConfig.naive())
        b = runtime_for(trace, ClientConfig.naive())
        b.begin_attempt(0)
        assert digest(a) != digest(b)

    def test_retryable_covers_every_loss_class(self):
        assert SERVED not in RETRYABLE
        assert len(set(RETRYABLE)) == 5
