"""Property pack: the retry-budget amplification theorem.

The claim the budgeted/adaptive/hedged clients stake the whole storm
defense on: with a token bucket starting empty (``initial=0``), earning
``fill`` per fresh request and spending one per retry, closed-loop
amplification can never exceed ``1 + fill`` — against *any* server
behaviour.  Hypothesis plays the adversarial server: every attempt fails
with high probability, failure codes are drawn at random, and the client
re-offers through its own ladder until the bucket, the policy, or the
give-up deadline stops it.

A starting balance ``t0`` relaxes the bound to exactly
``1 + fill + t0/n`` — also pinned here.
"""

import hashlib
import heapq

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.retry import RetryPolicy
from repro.resilience.clients import (
    RETRYABLE,
    ClientConfig,
    RetryBudgetConfig,
    plan_resilience,
)


class _Trace:
    """The minimal trace protocol ``plan_resilience`` needs: a length."""

    def __init__(self, n: int) -> None:
        self.n = n

    def __len__(self) -> int:
        return self.n


def _drive(client: ClientConfig, n: int, fail_seed: int, fail_p: float = 0.92):
    """Run one closed loop against a Hypothesis-seeded adversarial server.

    Event-driven: every due attempt is offered in time order; the server
    fails it with probability ``fail_p`` under a random retryable code;
    the runtime decides — via its full ladder — whether a re-offer
    happens.  Returns the finished outcome.
    """
    arrivals = np.arange(n, dtype=np.float64) * 0.01
    runtime = plan_resilience(_Trace(n), client).runtime(arrivals, 64)
    rng = np.random.default_rng(fail_seed)
    events = [(float(arrivals[i]), i) for i in range(n)]
    heapq.heapify(events)
    while events:
        now, idx = heapq.heappop(events)
        runtime.begin_attempt(idx)
        if rng.random() < fail_p:
            code = RETRYABLE[int(rng.integers(len(RETRYABLE)))]
            due = runtime.on_failure(idx, now, code)
            if due is not None:
                heapq.heappush(events, (due, idx))
    return runtime.finish()


def _client(kind: str, fill: float, capacity: float, give_up_s: float,
            initial: float | None = 0.0) -> ClientConfig:
    budget = RetryBudgetConfig(
        capacity=capacity, fill_per_request=fill, initial=initial
    )
    if kind == "budgeted":
        return ClientConfig(retry=RetryPolicy.client_default(), budget=budget)
    if kind == "adaptive":
        return ClientConfig(
            retry=RetryPolicy.client_default(),
            budget=budget,
            give_up_deadline_s=give_up_s,
        )
    assert kind == "hedged"
    return ClientConfig(
        retry=RetryPolicy.hedge_default(),
        budget=budget,
        give_up_deadline_s=give_up_s,
    )


class TestAmplificationTheorem:
    @given(
        n=st.integers(5, 60),
        fill=st.floats(0.0, 1.0),
        capacity=st.floats(1.0, 20.0),
        give_up_s=st.floats(0.05, 30.0),
        kind=st.sampled_from(["budgeted", "adaptive", "hedged"]),
        fail_seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_amplification_never_exceeds_one_plus_fill(
        self, n, fill, capacity, give_up_s, kind, fail_seed
    ):
        """With an empty starting bucket the bound is exact, for the
        plain budgeted client and both new variants: deadline give-up
        declines retries *without* spending, and every hedge *does*
        spend, so neither mechanism can breach the cap."""
        out = _drive(_client(kind, fill, capacity, give_up_s), n, fail_seed)
        assert out.amplification <= 1.0 + fill + 1e-9
        # the ledger form of the same theorem: spends never exceed earns
        assert out.retries <= fill * n + 1e-9

    @given(
        n=st.integers(5, 40),
        fill=st.floats(0.0, 0.5),
        initial=st.floats(0.0, 10.0),
        kind=st.sampled_from(["budgeted", "adaptive", "hedged"]),
        fail_seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_starting_balance_relaxes_the_cap_by_exactly_t0_over_n(
        self, n, fill, initial, kind, fail_seed
    ):
        capacity = max(initial, 1.0)
        out = _drive(
            _client(kind, fill, capacity, 5.0, initial=initial), n, fail_seed
        )
        assert out.amplification <= 1.0 + fill + initial / n + 1e-9

    @given(
        n=st.integers(5, 40),
        fill=st.floats(0.0, 1.0),
        kind=st.sampled_from(["budgeted", "adaptive", "hedged"]),
        fail_seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_closed_loop_replays_byte_identically(self, n, fill, kind, fail_seed):
        """Same plan, same server behaviour → the same outcome digest:
        the property form of the sweep's determinism contract."""

        def digest(out):
            h = hashlib.sha256()
            out.digest_update(h)
            return h.hexdigest()

        a = _drive(_client(kind, fill, 10.0, 2.0), n, fail_seed)
        b = _drive(_client(kind, fill, 10.0, 2.0), n, fail_seed)
        assert digest(a) == digest(b)

    @given(
        n=st.integers(5, 40),
        fail_seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_the_naive_client_has_no_such_cap(self, n, fail_seed):
        """The control arm: without a bucket the adversarial server can
        push amplification to the policy's attempt limit — the theorem
        is a property of the budget, not of retrying politely."""
        out = _drive(ClientConfig.naive(), n, fail_seed)
        assert out.amplification <= RetryPolicy.storm_default().max_attempts
        # no budget, no denials — every retry the policy allows happens
        assert out.retries_denied_budget == 0
