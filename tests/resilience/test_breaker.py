"""The shared breaker state machines, driven call-by-call.

`repro.common.breaker` hosts both breaker species; these tests pin the
state transitions the serving front door and the parallel engine rely
on: trip thresholds, cooldown → half-open probing, re-trip on a failed
probe, and the outcome→window mapping that keeps a breaker from
latching on its own sheds.
"""

import pytest

from repro.common.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
    RetryBreaker,
)
from repro.common.errors import ValidationError
from repro.common.retry import RetryPolicy
from repro.loadgen.queue import DROPPED, ERROR, FAILED, REJECTED, SERVED, SHED
from repro.resilience.breaker import FrontDoor, serving_breaker_config

#: A small, fast-tripping policy for unit drives.
CFG = BreakerConfig(
    window_s=10.0, error_threshold=0.5, min_volume=4, cooldown_s=5.0, half_open_probes=2
)


def tripped(config: BreakerConfig = CFG) -> CircuitBreaker:
    """A breaker driven to OPEN at t=1 by a burst of failures."""
    b = CircuitBreaker(config)
    for _ in range(config.min_volume):
        b.record(1.0, False)
    assert b.state == OPEN
    return b


class TestBreakerConfig:
    @pytest.mark.parametrize("kwargs", [
        {"window_s": 0.0},
        {"cooldown_s": -1.0},
        {"error_threshold": 0.0},
        {"error_threshold": 1.5},
        {"min_volume": 0},
        {"half_open_probes": 0},
    ])
    def test_bad_fields_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            BreakerConfig(**kwargs)

    def test_serving_defaults_react_within_a_control_interval(self):
        cfg = serving_breaker_config()
        assert cfg.window_s <= 15.0 and cfg.cooldown_s <= 15.0


class TestClosedState:
    def test_starts_closed_and_admits(self):
        b = CircuitBreaker(CFG)
        assert b.state == CLOSED
        assert b.admit(0.0)
        assert b.error_rate == 0.0

    def test_no_trip_below_min_volume(self):
        """100% failures, but not enough evidence yet."""
        b = CircuitBreaker(CFG)
        for _ in range(CFG.min_volume - 1):
            b.record(1.0, False)
        assert b.state == CLOSED

    def test_no_trip_below_error_threshold(self):
        b = CircuitBreaker(CFG)
        for t in range(20):
            # errors at t = 2, 5, 8, ...: every prefix stays under 0.5
            b.record(float(t) / 10.0, t % 3 != 2)
        assert b.state == CLOSED

    def test_trips_at_threshold_and_volume(self):
        b = tripped()
        assert b.telemetry.opens == 1
        assert b.error_rate == 0.0  # window reset on trip

    def test_counted_records_trip_like_singles(self):
        """record(count=n) is the batched form of n identical records."""
        b = CircuitBreaker(CFG)
        b.record(1.0, False, count=CFG.min_volume)
        assert b.state == OPEN

    def test_window_prunes_stale_outcomes(self):
        """Failures older than window_s stop counting against the rate."""
        b = CircuitBreaker(CFG)
        b.record(0.0, False)
        b.record(0.0, False)
        b.record(CFG.window_s + 1.0, True)  # prunes the t=0 failures
        assert b.error_rate == 0.0
        assert b.state == CLOSED

    def test_record_rejects_nonpositive_count(self):
        with pytest.raises(ValidationError):
            CircuitBreaker(CFG).record(0.0, True, count=0)


class TestOpenState:
    def test_sheds_during_cooldown(self):
        b = tripped()
        assert not b.admit(1.0 + CFG.cooldown_s - 0.1)
        assert b.telemetry.sheds == 1

    def test_ignores_stale_outcomes_while_open(self):
        """Work admitted before the trip finishing later must not move
        the machine (its evidence predates the verdict)."""
        b = tripped()
        b.record(2.0, True, count=100)
        assert b.state == OPEN

    def test_half_opens_after_cooldown(self):
        b = tripped()
        assert b.admit(1.0 + CFG.cooldown_s)
        assert b.state == HALF_OPEN
        assert b.telemetry.half_opens == 1


class TestHalfOpenState:
    def half_open(self) -> CircuitBreaker:
        b = tripped()
        assert b.admit(1.0 + CFG.cooldown_s)
        return b

    def test_admits_only_probe_quota(self):
        b = self.half_open()  # the transition consumed probe slot 1
        assert b.admit(7.0)   # slot 2
        assert not b.admit(7.0)  # quota spent: shed
        assert b.telemetry.sheds == 1

    def test_probe_failure_retrips(self):
        b = self.half_open()
        b.record(7.0, False)
        assert b.state == OPEN
        assert b.telemetry.opens == 2

    def test_probe_successes_close(self):
        b = self.half_open()  # the transition admitted probe 1
        assert b.admit(7.0)   # probe 2
        for _ in range(CFG.half_open_probes):
            b.record(7.0, True)
        assert b.state == CLOSED
        assert b.telemetry.closes == 1
        assert b.error_rate == 0.0  # fresh window after closing

    def test_stale_batched_success_cannot_close(self):
        """A served batch can carry work admitted before the trip; only
        the outstanding probes' worth of it is probe evidence."""
        b = self.half_open()            # one probe outstanding
        b.record(7.0, True, count=100)  # 99 stale successes ride along
        assert b.state == HALF_OPEN     # 1 of 2 verdicts in — not closed
        assert b.admit(7.5)             # the second probe slot is real
        b.record(8.0, True)
        assert b.state == CLOSED
        assert b.telemetry.closes == 1

    def test_zero_outstanding_batch_moves_nothing(self):
        """With every admitted probe already resolved, a stale success
        batch is no evidence at all: the close must wait for a probe."""
        b = self.half_open()
        b.record(7.0, True)            # probe 1's verdict: 1 of 2
        b.record(7.0, True, count=50)  # fully stale: zero outstanding
        assert b.state == HALF_OPEN
        assert b.admit(7.5)
        b.record(8.0, True)            # the real second verdict closes
        assert b.state == CLOSED
        assert b.telemetry.closes == 1

    def test_probe_timeout_reopens_at_window_boundary(self):
        """Quota spent and unresolved for a full window: the next offer
        re-opens the breaker instead of shedding from limbo forever.
        Exactly at the boundary counts as expired (>=)."""
        b = self.half_open()   # half-opened at t = 6.0
        assert b.admit(6.0)    # probe 2: quota spent, verdicts pending
        assert not b.admit(6.0 + CFG.window_s)  # boundary: re-open + shed
        assert b.state == OPEN
        assert b.telemetry.opens == 2
        # the re-open restarted the cooldown, so it half-opens again
        assert b.admit(6.0 + CFG.window_s + CFG.cooldown_s)
        assert b.state == HALF_OPEN

    def test_probe_timeout_not_before_window(self):
        """Inside the window the verdicts may still arrive: shed, wait."""
        b = self.half_open()
        assert b.admit(6.0)
        assert not b.admit(6.0 + CFG.window_s - 0.01)
        assert b.state == HALF_OPEN
        assert b.telemetry.opens == 1

    def test_full_cycle_is_replayable(self):
        """Same call sequence, same states: the machine is clock-free."""
        def drive(b):
            states = []
            for _ in range(CFG.min_volume):
                b.record(1.0, False)
            states.append(b.state)
            b.admit(1.0 + CFG.cooldown_s)
            states.append(b.state)
            for _ in range(CFG.half_open_probes - 1):
                b.admit(7.0)
            for _ in range(CFG.half_open_probes):
                b.record(7.0, True)
            states.append(b.state)
            return states
        assert drive(CircuitBreaker(CFG)) == drive(CircuitBreaker(CFG)) == [
            OPEN, HALF_OPEN, CLOSED,
        ]


class TestFrontDoor:
    def test_sheds_never_feed_the_window(self):
        """A breaker fed its own sheds would latch open forever."""
        door = FrontDoor(CFG)
        for _ in range(10 * CFG.min_volume):
            door.record(1.0, SHED)
        assert door.state == CLOSED

    @pytest.mark.parametrize("code", [REJECTED, DROPPED, ERROR, FAILED])
    def test_server_failures_trip(self, code):
        door = FrontDoor(CFG)
        door.record(1.0, code, count=CFG.min_volume)
        assert door.state == OPEN
        assert door.telemetry.opens == 1

    def test_served_counts_as_success(self):
        door = FrontDoor(CFG)
        door.record(1.0, SERVED, count=100)
        door.record(1.0, REJECTED, count=CFG.min_volume)
        assert door.state == CLOSED  # 4/104 errors, under threshold


class TestRetryBreaker:
    POLICY = RetryPolicy(max_attempts=3, base_backoff_hours=0.0, max_backoff_hours=0.0)

    def test_counts_failures_per_key(self):
        b = RetryBreaker(self.POLICY)
        assert b.record_failure("a") == 1
        assert b.record_failure("a") == 2
        assert b.failures("a") == 2
        assert b.failures("unseen") == 0

    def test_exhausted_matches_attempt_budget(self):
        """A key trips exactly when its failure count reaches max_attempts
        — the engine's historical inline rule, now behind the shared
        breaker (first execution is attempt 1)."""
        b = RetryBreaker(self.POLICY)
        for key, n in (("one", 1), ("two", 2), ("spent", 3)):
            for _ in range(n):
                b.record_failure(key)
        keys = ["one", "two", "spent", "unseen"]
        assert b.exhausted(keys) == {"spent": 3}
        # oracle: the pre-extraction inline predicate
        inline = {k: b.counts[k] for k in keys if b.counts.get(k, 0) >= self.POLICY.max_attempts}
        assert b.exhausted(keys) == inline

    def test_no_retry_policy_trips_on_first_failure(self):
        b = RetryBreaker(RetryPolicy(max_attempts=1))
        b.record_failure("a")
        assert b.exhausted(["a"]) == {"a": 1}
        assert b.exhausted(["never-seen"]) == {}
