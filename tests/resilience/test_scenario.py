"""The metastable retry-storm ladder: verdicts, pricing, digest contract.

One shared storm (shorter than the CLI default, same physics): the naive
client must lock into sustained overload after the fault clears, the
no-retry client must recover instantly, and the budgeted+breaker client
must drain under its amplification cap.  The ladder digest must be
byte-identical under rerun, perturbation, and worker fan-out.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.resilience.scenario import (
    RUNGS,
    StormConfig,
    policy_spec,
    recovery_from_samples,
    run_rung,
    run_storm,
    storm_ladder,
)

#: Ten minutes with a 90-second mid-run outage: locks the naive rung in
#: a few seconds of wall clock.
STORM = StormConfig(duration_s=600.0, outage_start_s=150.0, outage_end_s=240.0)


@pytest.fixture(scope="module")
def report():
    return run_storm(STORM)


class TestStormConfig:
    def test_outage_must_sit_inside_the_run(self):
        with pytest.raises(ValidationError):
            StormConfig(outage_start_s=500.0, outage_end_s=700.0, duration_s=600.0)
        with pytest.raises(ValidationError):
            StormConfig(outage_start_s=100.0, outage_end_s=100.0)

    def test_congestion_fraction_validated(self):
        with pytest.raises(ValidationError):
            StormConfig(congestion_fraction=0.0)

    def test_ladder_shares_the_server_congestion_model(self):
        specs = storm_ladder(STORM)
        assert tuple(s.name for s in specs) == RUNGS
        assert len({s.congestion for s in specs}) == 1
        assert specs[0].congestion.slowdown == STORM.thrash_slowdown


class TestVerdicts:
    def test_no_retry_recovers_instantly_at_unit_amplification(self, report):
        rung = report.rung("no-retry")
        assert rung.amplification == 1.0
        assert rung.locked is False
        assert rung.time_to_recovery_s == 0.0

    def test_naive_retry_locks_after_the_fault_clears(self, report):
        """The metastable signature: the outage is 90 s, but the naive
        client's retry load holds the thrashing server over capacity for
        the rest of the run."""
        rung = report.rung("naive-retry")
        assert rung.locked is True
        assert rung.time_to_recovery_s is None
        assert rung.amplification > 1.5

    def test_budgeted_breaker_drains_under_the_cap(self, report):
        rung = report.rung("budgeted-retry+breaker")
        assert rung.locked is False
        assert rung.amplification <= 1.0 + STORM.retry_budget_fill + 1e-9
        assert rung.breaker_opens >= 1
        assert rung.shed > 0

    def test_defended_rung_beats_naive_on_loss_and_unit_cost(self, report):
        naive = report.rung("naive-retry")
        guarded = report.rung("budgeted-retry+breaker")
        assert guarded.loss_rate < naive.loss_rate
        assert guarded.usd_per_million_effective < naive.usd_per_million_effective

    def test_every_rung_is_priced(self, report):
        for rung in report.rungs:
            assert rung.cost_usd is not None and rung.cost_usd > 0
            assert rung.usd_per_million_effective is not None


class TestDigestContract:
    def test_rerun_perturb_and_workers_agree(self, report):
        """The scenario's CI contract in miniature (the CLI's --verify
        sweeps workers {1, 2, 4} on the full-size storm)."""
        baseline = report.digest()
        assert run_storm(STORM, perturb=True).digest() == baseline
        assert run_storm(STORM, workers=2).digest() == baseline

    def test_config_reaches_the_digest(self, report):
        other = run_storm(
            StormConfig(
                duration_s=600.0, outage_start_s=150.0, outage_end_s=240.0, seed=12
            )
        )
        assert other.digest() != report.digest()

    def test_rung_metrics_match_the_full_result(self):
        spec = storm_ladder(STORM)[0]
        metrics, result = run_rung(spec)
        assert metrics.digest == result.digest()
        assert metrics.served == result.served


class TestReporting:
    def test_render_names_the_metastable_verdict(self, report):
        text = report.render()
        assert "metastable" in text
        assert "LOCKED" in text
        for name in RUNGS:
            assert name in text

    def test_to_dict_round_trips_the_rungs(self, report):
        d = report.to_dict()
        assert d["digest"] == report.digest()
        assert [r["name"] for r in d["rungs"]] == list(RUNGS)
        assert d["rungs"][1]["locked"] is True

    def test_unknown_rung_is_refused(self, report):
        with pytest.raises(ValidationError):
            report.rung("nonexistent")


class TestPolicySpecs:
    def test_unknown_policy_is_refused(self):
        with pytest.raises(ValidationError):
            policy_spec("yolo-retry", STORM)

    def test_adaptive_and_hedged_specs_mount_the_full_defense(self):
        for name in ("adaptive-retry+breaker", "hedged-retry+breaker"):
            spec = policy_spec(name, STORM, breaker_error_threshold=0.25)
            assert spec.breaker is not None
            assert spec.breaker.error_threshold == 0.25
            assert spec.shedding is not None
            assert spec.client.give_up_deadline_s == pytest.approx(10.0)

    def test_hedged_rung_recovers_under_the_cap(self):
        metrics, _ = run_rung(policy_spec("hedged-retry+breaker", STORM))
        assert metrics.locked is False
        assert metrics.amplification <= 1.0 + STORM.retry_budget_fill + 1e-9


class TestPartialOutage:
    def test_dark_replicas_validated(self):
        with pytest.raises(ValidationError):
            StormConfig(outage_dark_replicas=2)  # max_replicas is 2
        with pytest.raises(ValidationError):
            StormConfig(outage_dark_replicas=-1)

    def test_partial_storm_keeps_the_breaker_closed(self):
        """One dark replica is a capacity loss, not a fleet outage: the
        surviving replica keeps answering, so the error window never
        crosses the trip threshold and the breaker must ride the whole
        storm out closed."""
        storm = replace(STORM, outage_dark_replicas=1)
        metrics, result = run_rung(policy_spec("budgeted-retry+breaker", storm))
        assert metrics.breaker_opens == 0
        assert metrics.locked is False
        assert result.served > 0

    def test_partial_scope_is_not_a_smaller_full_outage(self):
        """The blackout drops its backlog fast and recovers instantly;
        the partial outage leaves an *undefended* survivor thrash-pinned
        at the queue cap — congestion collapse locks the fleet without a
        single retry.  (The defended policies escape exactly this via
        depth shedding; see the breaker test above.)"""
        full = run_rung(policy_spec("no-retry", STORM))[0]
        partial = run_rung(
            policy_spec("no-retry", replace(STORM, outage_dark_replicas=1))
        )[0]
        assert full.digest != partial.digest
        assert full.locked is False and full.time_to_recovery_s == 0.0
        assert partial.locked is True


class TestRecoveryCriterion:
    def samples(self, *depths, start=240.0, step=10.0):
        return np.asarray(
            [(start + i * step, d, 2.0) for i, d in enumerate(depths)], dtype=np.float64
        )

    def test_no_ticks_after_outage_means_recovered(self):
        ttr, locked = recovery_from_samples(
            np.zeros((0, 3)), outage_end_s=240.0, congestion_depth=128.0
        )
        assert (ttr, locked) == (0.0, False)

    def test_never_congested_is_instant_recovery(self):
        ttr, locked = recovery_from_samples(
            self.samples(10.0, 5.0, 0.0), outage_end_s=240.0, congestion_depth=128.0
        )
        assert (ttr, locked) == (0.0, False)

    def test_ttr_measures_to_the_last_congested_tick(self):
        """A transient dip below threshold does not count as recovered."""
        ttr, locked = recovery_from_samples(
            self.samples(200.0, 50.0, 180.0, 3.0, 1.0),
            outage_end_s=240.0, congestion_depth=128.0,
        )
        assert locked is False
        assert ttr == 20.0  # the 180-deep tick at t=260, not the dip at 250

    def test_final_tick_congested_is_locked(self):
        ttr, locked = recovery_from_samples(
            self.samples(200.0, 190.0, 180.0), outage_end_s=240.0, congestion_depth=128.0
        )
        assert (ttr, locked) == (None, True)

    def test_pre_outage_congestion_is_ignored(self):
        samples = np.asarray(
            [(100.0, 250.0, 0.0), (250.0, 1.0, 2.0)], dtype=np.float64
        )
        ttr, locked = recovery_from_samples(
            samples, outage_end_s=240.0, congestion_depth=128.0
        )
        assert (ttr, locked) == (0.0, False)
