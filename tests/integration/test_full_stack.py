"""Cross-module integration tests: whole course workflows end to end."""

import numpy as np
import pytest

from repro.cloud.cli import OpenStackCli
from repro.cloud.testbed import chameleon
from repro.common import QuotaExceededError
from repro.iac import Config, OpenStackProvider, State, apply_plan, make_plan
from repro.iac.plan import destroy
from repro.mlops import FoodClassifier, FoodDatasetGenerator, MLOpsLifecycle
from repro.monitoring import BehavioralSuite, BehavioralTest
from repro.orchestration.kubernetes import Cluster, Deployment, KubeNode, PodTemplate, Service
from repro.orchestration.scaling import HorizontalPodAutoscaler
from repro.tracking import TrackingClient


class TestLab2ThenLab3OnOneTestbed:
    """The student's arc: ClickOps/CLI (lab 2), then IaC (lab 3)."""

    def test_cli_then_terraform_share_quota_and_meter(self):
        tb = chameleon()
        kvm = tb.site("kvm@tacc")

        # lab 2: CLI provisioning
        cli = OpenStackCli(kvm, "course", user="student007")
        cli.lab = "lab2"
        cli.run("network create lab2-net")
        cli.run("subnet create --network lab2-net --subnet-range 10.1.0.0/24 s")
        for i in range(3):
            cli.run(f"server create --flavor m1.medium --network lab2-net node{i}")
        tb.run_until(5.0)
        for i in range(3):
            cli.run(f"server delete node{i}")

        # lab 3: the same student, now with Terraform
        cfg = Config()
        cfg.resource("os_network", "net")
        cfg.resource("os_subnet", "sub", network_id="${os_network.net.id}",
                     cidr="10.2.0.0/24")
        for i in range(3):
            cfg.resource("os_server", f"node{i}", name=f"iac-node{i}",
                         flavor="m1.medium", network_id="${os_network.net.id}",
                         depends_on=("os_subnet.sub",))
        provider = OpenStackProvider(kvm, "course", user="student007", lab="lab3")
        state = State()
        apply_plan(make_plan(cfg, state), state, provider)
        tb.run_until(12.0)
        destroy(cfg, state, provider)

        # one meter saw both labs, attributed correctly
        assert kvm.meter.total_hours(lab="lab2") == pytest.approx(15.0)
        assert kvm.meter.total_hours(lab="lab3") == pytest.approx(21.0)
        assert kvm.quota.usage("instances") == 0

    def test_quota_pressure_surfaces_identically_in_both_interfaces(self):
        tb = chameleon()
        kvm = tb.site("kvm@tacc")
        kvm.quota.limits = type(kvm.quota.limits)(instances=2, cores=100, ram_gib=100)
        cli = OpenStackCli(kvm, "course")
        cli.run("server create --flavor m1.small a")
        cli.run("server create --flavor m1.small b")
        with pytest.raises(QuotaExceededError):
            cli.run("server create --flavor m1.small c")
        provider = OpenStackProvider(kvm, "course")
        cfg = Config()
        cfg.resource("os_server", "d", name="d", flavor="m1.small")
        with pytest.raises(QuotaExceededError):
            apply_plan(make_plan(cfg, State()), State(), provider)


class TestServingWithAutoscaling:
    """Unit 2's horizontal scaling driven by Unit 7's metrics."""

    def test_load_spike_scales_out_then_in(self):
        cluster = Cluster()
        for i in range(4):
            cluster.add_node(KubeNode(f"n{i}", cpu=4, mem_gib=8))
        cluster.apply_deployment(
            Deployment("gg", PodTemplate(image="gg:v1", labels=(("app", "gg"),)), replicas=2)
        )
        cluster.apply_service(Service("gg-svc", selector={"app": "gg"}))
        cluster.reconcile_to_convergence()
        hpa = HorizontalPodAutoscaler("gg", min_replicas=2, max_replicas=8,
                                      target=0.7, scale_down_delay=2)

        # spike: per-pod utilisation pegged
        for _ in range(3):
            n_ready = len(cluster.ready_pods("gg"))
            hpa.evaluate(cluster, [0.95] * n_ready)
            cluster.reconcile_to_convergence()
        peak = len(cluster.ready_pods("gg"))
        assert peak >= 4

        # calm: utilisation collapses; scale-in after the hold
        for _ in range(4):
            n_ready = len(cluster.ready_pods("gg"))
            hpa.evaluate(cluster, [0.05] * n_ready)
            cluster.reconcile_to_convergence()
        assert len(cluster.ready_pods("gg")) == 2

        # the service still routes throughout
        assert cluster.route("gg-svc").labels["app"] == "gg"


class TestLifecycleWithBehavioralGate:
    """Unit 7's behavioral suite wired as an extra promotion gate."""

    def test_model_restored_from_artifacts_passes_suite(self):
        gen = FoodDatasetGenerator(seed=5, drift_rate=0.6, class_spread=0.8)
        lifecycle = MLOpsLifecycle(gen, seed=5)
        lifecycle.initial_deploy()
        lifecycle.run(until=8.0, dt=1.0)

        prod = lifecycle.client.registry.production(MLOpsLifecycle.MODEL_NAME)
        payload = lifecycle.client.artifacts.get_artifact(
            prod.run_id, f"models/{MLOpsLifecycle.MODEL_NAME}/weights.bin"
        )
        model = FoodClassifier.from_bytes(payload)

        # behavioral invariance: tiny feature jitter must not flip predictions
        probe = gen.sample(20, time=8.0, seed=99)
        suite = BehavioralSuite(min_pass_rate=0.9)
        suite.add(BehavioralTest(
            "jitter invariance", "inv",
            cases=[probe.features[i] for i in range(20)],
            perturb=lambda x: x + 1e-6,
        ))
        ok, reports = suite.gate(lambda x: model.predict_one(np.asarray(x)))
        assert ok, reports["jitter invariance"].failed_cases

    def test_tracking_history_spans_all_retrains(self):
        gen = FoodDatasetGenerator(seed=6, drift_rate=0.7, class_spread=0.8)
        client = TrackingClient()
        lifecycle = MLOpsLifecycle(gen, client=client, seed=6)
        lifecycle.initial_deploy()
        report = lifecycle.run(until=8.0, dt=1.0)
        exp = client.store.get_experiment_by_name("gourmetgram-retrain")
        # one tracked run per registration (initial + every gated retrain)
        registered = 1 + sum(
            1 for e in report.events if e.kind in ("promote", "rollback") and e.time > 0
        )
        assert len(exp.run_ids) >= registered
        # every tracked run carries the calibrated params
        for run_id in exp.run_ids:
            run = client.store.runs[run_id]
            assert "train_size" in run.params
