"""Seed-replay sanity: the full Table 1 pipeline is digest-identical.

This is the contract `repro.analysis` exists to protect (DESIGN §5:
"deterministic under a seed; no wall-clock, no network"), checked
end-to-end: two independent cohort simulations under the same seed must
produce byte-identical usage records AND a byte-identical rendered
Table 1, while a different seed must not.
"""

import hashlib
from dataclasses import astuple

from repro.core import CohortSimulation, table1
from repro.core.cohort import CohortConfig


def _digest(records) -> str:
    h = hashlib.sha256()
    for r in records:
        h.update(repr(astuple(r)).encode())
    return h.hexdigest()


def test_table1_pipeline_digest_identical_under_seed_replay():
    first = CohortSimulation().run()
    second = CohortSimulation().run()
    assert _digest(first) == _digest(second)

    t1, t2 = table1(first), table1(second)
    assert t1.render() == t2.render()
    assert t1.totals == t2.totals


def test_different_seed_actually_changes_the_records():
    """Guards the digest itself: if _digest collapsed everything to one
    value, the replay test above would pass vacuously."""
    default = CohortSimulation().run()
    reseeded = CohortSimulation(config=CohortConfig(seed=43)).run()
    assert _digest(default) != _digest(reseeded)
