"""Failure-injection and fuzz tests: the systems must stay consistent
under adversarial operation sequences."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cloud.inventory import CHAMELEON_FLAVORS
from repro.cloud.quota import Quota
from repro.cloud.site import Site, SiteKind
from repro.cloud.testbed import Testbed as CloudTestbed
from repro.cloud.testbed import chameleon
from repro.common import (
    ConflictError,
    EventLoop,
    InvalidStateError,
    NotFoundError,
    QuotaExceededError,
    TransientError,
    ValidationError,
)
from repro.faults.inject import FaultInjector
from repro.faults.plan import FaultPlanConfig, build_fault_calendar
from repro.spot import BudgetGuard, BudgetPolicy
from repro.orchestration.kubernetes import Cluster, Deployment, KubeNode, PodPhase, PodTemplate
from repro.scheduling import BackfillPolicy, SchedCluster, Scheduler, ml_workload
from repro.tracking import TrackingStore


class TestLeaseCalendarFuzz:
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        bookings=st.lists(
            st.tuples(
                st.floats(0, 100),  # start
                st.floats(0.5, 10),  # duration
                st.integers(1, 3),  # count
            ),
            max_size=25,
        )
    )
    def test_overlap_never_exceeds_capacity(self, bookings):
        """Whatever the booking sequence, accepted leases never oversubscribe."""
        tb = chameleon()
        site = tb.site("chi@tacc")
        cap = site.leases.capacity("gpu_v100")
        accepted = []
        for start, duration, count in bookings:
            try:
                lease = site.leases.create_lease(
                    "p", "gpu_v100", start=start, end=start + duration, count=count
                )
                accepted.append(lease)
            except (ConflictError, ValidationError):
                continue
        # at every boundary, reserved <= capacity
        for t in {l.start for l in accepted} | {l.end - 1e-9 for l in accepted}:
            if t >= 0:
                assert site.leases.reserved_at("gpu_v100", t) <= cap


class TestKubernetesChaos:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        ops=st.lists(st.integers(0, 3), min_size=3, max_size=15),
    )
    def test_random_operations_always_converge(self, seed, ops):
        """Scale/rollout/drain in any order: the cluster reaches a fixed
        point with exactly the desired ready replicas."""
        rng = np.random.default_rng(seed)
        cluster = Cluster()
        for i in range(4):
            cluster.add_node(KubeNode(f"n{i}", cpu=8, mem_gib=16))
        cluster.apply_deployment(
            Deployment("app", PodTemplate(image="app:v0"), replicas=2)
        )
        cluster.reconcile_to_convergence()
        version = 0
        for op in ops:
            if op == 0:  # scale
                cluster.scale("app", int(rng.integers(1, 6)))
            elif op == 1:  # rolling update
                version += 1
                dep = cluster.deployments["app"]
                cluster.apply_deployment(
                    Deployment("app", PodTemplate(image=f"app:v{version}"),
                               replicas=dep.replicas)
                )
            elif op == 2:  # drain a random node (then bring it back)
                victim = f"n{int(rng.integers(4))}"
                cluster.drain_node(victim)
                cluster.nodes[victim].ready = True
            else:  # chaos-monkey a pod
                running = [p for p in cluster.pods.values() if p.phase is PodPhase.RUNNING]
                if running:
                    pod = running[int(rng.integers(len(running)))]
                    pod.phase = PodPhase.TERMINATING
                    pod.ready = False
            cluster.reconcile_to_convergence()
        desired = cluster.deployments["app"].replicas
        ready = cluster.ready_pods("app")
        assert len(ready) == desired
        # capacity invariant on every node
        for node in cluster.nodes.values():
            cpu, mem = cluster.node_allocated(node.name)
            assert cpu <= node.cpu + 1e-9 and mem <= node.mem_gib + 1e-9


class TestSchedulerFuzz:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_every_trace_completes_consistently(self, seed):
        cluster = SchedCluster.homogeneous(2, gpus_per_node=4)
        result = Scheduler(cluster, BackfillPolicy()).run(ml_workload(40, seed=seed))
        for job in result.jobs:
            assert job.start_time >= job.submit_time - 1e-9
            assert job.end_time == pytest.approx(job.start_time + job.actual_end)
        assert cluster.free_gpus == cluster.total_gpus  # everything released


class TestQuotaStorm:
    def test_burst_of_conflicting_provisions_never_corrupts_accounting(self):
        tb = chameleon()
        kvm = tb.site("kvm@tacc")
        kvm.quota.limits = type(kvm.quota.limits)(
            instances=10, cores=40, ram_gib=100, floating_ips=5
        )
        created = []
        rejected = 0
        for i in range(40):
            try:
                created.append(kvm.compute.create_server("p", f"s{i}", "m1.medium"))
            except QuotaExceededError:
                rejected += 1
                # delete one and retry — the churn pattern of 191 students
                if created:
                    kvm.compute.delete_server(created.pop(0).id)
        assert rejected > 0
        assert kvm.quota.usage("instances") == len(created)
        for server in created:
            kvm.compute.delete_server(server.id)
        assert kvm.quota.usage("instances") == 0
        assert kvm.quota.usage("cores") == 0


class TestPreemptionBudgetChaos:
    """Interleaved create/stop/delete/preempt plus a budget guard killing
    servers on its own schedule: whatever the order, every span closes
    exactly once, metered hours never exceed the wall clock, and quota
    returns to zero."""

    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(0, 1000),
        ops=st.lists(
            st.tuples(st.integers(0, 4), st.floats(0.25, 4.0)),
            min_size=5, max_size=30,
        ),
    )
    def test_interleavings_keep_metering_and_quota_exact(self, seed, ops):
        rng = np.random.default_rng(seed)
        loop = EventLoop()
        site = Site(
            "kvm", SiteKind.KVM, loop,
            quota=Quota(instances=6, cores=48, ram_gib=192),
            flavors=CHAMELEON_FLAVORS,
        )
        guard = BudgetGuard(
            loop, site.compute, site.meter,
            BudgetPolicy(budget_usd=30.0, check_every_hours=3.0),
            rate_fn=lambda rec: 1.0,
        )
        horizon = sum(dt for _, dt in ops) + 1.0
        guard.start(until=horizon)

        created = 0
        for i, (op, dt) in enumerate(ops):
            loop.run_until(min(loop.clock.now + dt, horizon))
            live = list(site.compute.servers.values())
            try:
                if op == 0:
                    site.compute.create_server("p", f"od{i}", "m1.small", user="u1")
                    created += 1
                elif op == 1:
                    site.compute.create_server(
                        "p", f"spot{i}", "m1.small", user="u2", interruptible=True
                    )
                    created += 1
                elif op == 2 and live:
                    site.compute.stop_server(live[int(rng.integers(len(live)))].id)
                elif op == 3 and live:
                    site.compute.delete_server(live[int(rng.integers(len(live)))].id)
                elif op == 4:
                    spots = [s for s in live if s.interruptible]
                    if spots:
                        site.compute.preempt_server(
                            spots[int(rng.integers(len(spots)))].id
                        )
            except (QuotaExceededError, InvalidStateError, NotFoundError):
                pass  # rejected ops are part of the chaos
            # mid-flight: SHUTOFF and notice-period servers still meter,
            # so open spans track live servers exactly
            assert site.meter.open_count == len(site.compute.servers)

        loop.run_until(horizon)
        for server in list(site.compute.servers.values()):
            site.compute.delete_server(server.id)

        now = loop.clock.now
        assert site.meter.open_count == 0
        assert site.quota.usage("instances") == 0
        assert site.quota.usage("cores") == 0
        assert site.quota.usage("ram_gib") == 0
        server_records = [r for r in site.meter.records() if r.kind == "server"]
        assert len(server_records) == created  # one span per create, closed once
        for rec in server_records:
            assert 0.0 <= rec.start <= rec.end <= now + 1e-9
            assert rec.hours <= now + 1e-9  # metered hours never exceed wall clock


class TestFaultChaos:
    """The PR-4 resilience contract, fuzzed: a fault injector (outage
    strikes, API-error bursts, per-instance hazard kills) layered on top
    of the spot-market chaos ops.  Whatever interleaving the calendar and
    the op sequence produce, every span closes exactly once, metered
    hours never exceed the wall clock, quota returns to zero, and no
    InvalidStateError escapes the terminal paths."""

    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(0, 1000),
        fault_seed=st.integers(0, 1000),
        outage_rate=st.floats(0.0, 4.0),
        burst_rate=st.floats(0.0, 4.0),
        hazard=st.floats(0.0, 100.0),
        ops=st.lists(
            st.tuples(st.integers(0, 4), st.floats(0.25, 4.0)),
            min_size=5, max_size=30,
        ),
    )
    def test_faults_plus_spot_ops_keep_books_exact(
        self, seed, fault_seed, outage_rate, burst_rate, hazard, ops
    ):
        rng = np.random.default_rng(seed)
        tb = CloudTestbed()
        site = tb.add_site(
            Site(
                "kvm", SiteKind.KVM, tb.loop,
                quota=Quota(instances=6, cores=48, ram_gib=192),
                flavors=CHAMELEON_FLAVORS,
            )
        )
        guard = BudgetGuard(
            tb.loop, site.compute, site.meter,
            BudgetPolicy(budget_usd=30.0, check_every_hours=3.0),
            rate_fn=lambda rec: 1.0,
        )
        horizon = sum(dt for _, dt in ops) + 1.0
        guard.start(until=horizon)
        calendar = build_fault_calendar(
            FaultPlanConfig(
                seed=fault_seed,
                outage_rate_per_week=outage_rate,
                burst_rate_per_week=burst_rate,
                hazard_rate_per_khour=hazard,
                outage_mean_hours=2.0,
                sites=("kvm",),
            ),
            horizon_hours=horizon,
        )
        injector = FaultInjector(tb, calendar)

        created = 0
        for i, (op, dt) in enumerate(ops):
            tb.run_until(min(tb.clock.now + dt, horizon))
            live = list(site.compute.servers.values())
            try:
                if op == 0:
                    site.compute.create_server("p", f"od{i}", "m1.small", user="u1")
                    created += 1
                elif op == 1:
                    site.compute.create_server(
                        "p", f"spot{i}", "m1.small", user="u2", interruptible=True
                    )
                    created += 1
                elif op == 2 and live:
                    site.compute.stop_server(live[int(rng.integers(len(live)))].id)
                elif op == 3 and live:
                    site.compute.delete_server(live[int(rng.integers(len(live)))].id)
                elif op == 4:
                    spots = [s for s in live if s.interruptible]
                    if spots:
                        site.compute.preempt_server(
                            spots[int(rng.integers(len(spots)))].id
                        )
            except (QuotaExceededError, NotFoundError, TransientError):
                # rejected ops — including admission-gate refusals — are
                # part of the chaos; ServiceUnavailableError is transient
                pass
            except InvalidStateError:
                # only legal for ops racing a fault kill (stop/preempt a
                # server the injector just failed), never for creates
                assert op in (2, 4)
            # SHUTOFF, notice-period and fault-killed-but-undeleted
            # servers all resolve through the same terminal path, so open
            # spans track live servers exactly at every step
            assert site.meter.open_count == len(site.compute.servers)

        tb.run_until(horizon)
        for server in list(site.compute.servers.values()):
            site.compute.delete_server(server.id)

        now = tb.clock.now
        assert site.meter.open_count == 0
        assert site.quota.usage("instances") == 0
        assert site.quota.usage("cores") == 0
        assert site.quota.usage("ram_gib") == 0
        server_records = [r for r in site.meter.records() if r.kind == "server"]
        assert len(server_records) == created  # one span per create, closed once
        for rec in server_records:
            assert 0.0 <= rec.start <= rec.end <= now + 1e-9
            assert rec.hours <= now + 1e-9
        # every admission refusal raised (and was absorbed) — the gate
        # never silently swallows a create
        attempted = sum(1 for op, _ in ops if op in (0, 1))
        assert created <= attempted
        assert injector.stats.rejections <= attempted


class TestTrackingStoreFuzz:
    @settings(max_examples=20, deadline=None)
    @given(
        values=st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=50)
    )
    def test_metric_series_preserves_order_and_values(self, values):
        store = TrackingStore()
        exp = store.create_experiment("fuzz")
        run = store.create_run(exp.id)
        for v in values:
            store.log_metric(run.id, "m", v)
        points = run.metrics["m"]
        assert [p.value for p in points] == [float(v) for v in values]
        assert [p.step for p in points] == list(range(len(values)))
        assert run.best_metric("m") == min(values)
