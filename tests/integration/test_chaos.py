"""Failure-injection and fuzz tests: the systems must stay consistent
under adversarial operation sequences."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cloud.testbed import chameleon
from repro.common import ConflictError, QuotaExceededError, ValidationError
from repro.orchestration.kubernetes import Cluster, Deployment, KubeNode, PodPhase, PodTemplate
from repro.scheduling import BackfillPolicy, SchedCluster, Scheduler, ml_workload
from repro.tracking import TrackingStore


class TestLeaseCalendarFuzz:
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        bookings=st.lists(
            st.tuples(
                st.floats(0, 100),  # start
                st.floats(0.5, 10),  # duration
                st.integers(1, 3),  # count
            ),
            max_size=25,
        )
    )
    def test_overlap_never_exceeds_capacity(self, bookings):
        """Whatever the booking sequence, accepted leases never oversubscribe."""
        tb = chameleon()
        site = tb.site("chi@tacc")
        cap = site.leases.capacity("gpu_v100")
        accepted = []
        for start, duration, count in bookings:
            try:
                lease = site.leases.create_lease(
                    "p", "gpu_v100", start=start, end=start + duration, count=count
                )
                accepted.append(lease)
            except (ConflictError, ValidationError):
                continue
        # at every boundary, reserved <= capacity
        for t in {l.start for l in accepted} | {l.end - 1e-9 for l in accepted}:
            if t >= 0:
                assert site.leases.reserved_at("gpu_v100", t) <= cap


class TestKubernetesChaos:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        ops=st.lists(st.integers(0, 3), min_size=3, max_size=15),
    )
    def test_random_operations_always_converge(self, seed, ops):
        """Scale/rollout/drain in any order: the cluster reaches a fixed
        point with exactly the desired ready replicas."""
        rng = np.random.default_rng(seed)
        cluster = Cluster()
        for i in range(4):
            cluster.add_node(KubeNode(f"n{i}", cpu=8, mem_gib=16))
        cluster.apply_deployment(
            Deployment("app", PodTemplate(image="app:v0"), replicas=2)
        )
        cluster.reconcile_to_convergence()
        version = 0
        for op in ops:
            if op == 0:  # scale
                cluster.scale("app", int(rng.integers(1, 6)))
            elif op == 1:  # rolling update
                version += 1
                dep = cluster.deployments["app"]
                cluster.apply_deployment(
                    Deployment("app", PodTemplate(image=f"app:v{version}"),
                               replicas=dep.replicas)
                )
            elif op == 2:  # drain a random node (then bring it back)
                victim = f"n{int(rng.integers(4))}"
                cluster.drain_node(victim)
                cluster.nodes[victim].ready = True
            else:  # chaos-monkey a pod
                running = [p for p in cluster.pods.values() if p.phase is PodPhase.RUNNING]
                if running:
                    pod = running[int(rng.integers(len(running)))]
                    pod.phase = PodPhase.TERMINATING
                    pod.ready = False
            cluster.reconcile_to_convergence()
        desired = cluster.deployments["app"].replicas
        ready = cluster.ready_pods("app")
        assert len(ready) == desired
        # capacity invariant on every node
        for node in cluster.nodes.values():
            cpu, mem = cluster.node_allocated(node.name)
            assert cpu <= node.cpu + 1e-9 and mem <= node.mem_gib + 1e-9


class TestSchedulerFuzz:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_every_trace_completes_consistently(self, seed):
        cluster = SchedCluster.homogeneous(2, gpus_per_node=4)
        result = Scheduler(cluster, BackfillPolicy()).run(ml_workload(40, seed=seed))
        for job in result.jobs:
            assert job.start_time >= job.submit_time - 1e-9
            assert job.end_time == pytest.approx(job.start_time + job.actual_end)
        assert cluster.free_gpus == cluster.total_gpus  # everything released


class TestQuotaStorm:
    def test_burst_of_conflicting_provisions_never_corrupts_accounting(self):
        tb = chameleon()
        kvm = tb.site("kvm@tacc")
        kvm.quota.limits = type(kvm.quota.limits)(
            instances=10, cores=40, ram_gib=100, floating_ips=5
        )
        created = []
        rejected = 0
        for i in range(40):
            try:
                created.append(kvm.compute.create_server("p", f"s{i}", "m1.medium"))
            except QuotaExceededError:
                rejected += 1
                # delete one and retry — the churn pattern of 191 students
                if created:
                    kvm.compute.delete_server(created.pop(0).id)
        assert rejected > 0
        assert kvm.quota.usage("instances") == len(created)
        for server in created:
            kvm.compute.delete_server(server.id)
        assert kvm.quota.usage("instances") == 0
        assert kvm.quota.usage("cores") == 0


class TestTrackingStoreFuzz:
    @settings(max_examples=20, deadline=None)
    @given(
        values=st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=50)
    )
    def test_metric_series_preserves_order_and_values(self, values):
        store = TrackingStore()
        exp = store.create_experiment("fuzz")
        run = store.create_run(exp.id)
        for v in values:
            store.log_metric(run.id, "m", v)
        points = run.metrics["m"]
        assert [p.value for p in points] == [float(v) for v in values]
        assert [p.step for p in points] == list(range(len(values)))
        assert run.best_metric("m") == min(values)
