"""Tests for the OpenStack-CLI-style interface."""

import pytest

from repro.cloud.cli import OpenStackCli, render
from repro.cloud.inventory import CHAMELEON_FLAVORS
from repro.cloud.quota import Quota
from repro.cloud.site import Site, SiteKind
from repro.common import EventLoop, NotFoundError, ValidationError


@pytest.fixture()
def cli():
    loop = EventLoop()
    site = Site("kvm", SiteKind.KVM, loop, quota=Quota.unlimited(), flavors=CHAMELEON_FLAVORS)
    return loop, OpenStackCli(site, "demo", user="student001")


class TestLab2CommandSequence:
    def test_full_lab2_cli_walkthrough(self, cli):
        """The exact command sequence the Unit 2 lab instructions use."""
        loop, osc = cli
        osc.lab = "lab2"
        osc.run("openstack network create private-net")
        osc.run("openstack subnet create --network private-net "
                "--subnet-range 192.168.1.0/24 private-subnet")
        for i in range(3):
            rows = osc.run(
                f"openstack server create --flavor m1.medium "
                f"--image CC-Ubuntu24.04 --network private-net node{i}"
            )
            assert rows[0]["Networks"].startswith("192.168.1.")
        fip_rows = osc.run("openstack floating ip create public")
        address = fip_rows[0]["Floating IP Address"]
        osc.run(f"openstack server add floating ip node0 {address}")

        servers = osc.run("openstack server list")
        assert len(servers) == 3
        node0 = osc.site.compute.servers[servers[0]["ID"]]
        assert node0.floating_ip_id is not None
        # usage metered with the lab tag, like the paper's accounting needs
        loop.run_until(1.0)
        assert osc.site.meter.total_hours(lab="lab2") > 0

    def test_delete_cycle(self, cli):
        _, osc = cli
        osc.run("openstack server create --flavor m1.small solo")
        osc.run("openstack server delete solo")
        assert osc.run("openstack server list") == []

    def test_network_teardown(self, cli):
        _, osc = cli
        osc.run("openstack network create n")
        osc.run("openstack network delete n")
        names = [r["Name"] for r in osc.run("openstack network list")]
        assert "n" not in names


class TestParsing:
    def test_openstack_prefix_optional(self, cli):
        _, osc = cli
        rows = osc.run("network create n2")
        assert rows[0]["Name"] == "n2"

    def test_unknown_command(self, cli):
        _, osc = cli
        with pytest.raises(ValidationError):
            osc.run("openstack teleport create x")

    def test_missing_required_flag(self, cli):
        _, osc = cli
        with pytest.raises(ValidationError):
            osc.run("openstack server create nameonly")
        osc.run("openstack network create x")
        with pytest.raises(ValidationError):
            osc.run("openstack subnet create --network x s")  # no --subnet-range

    def test_missing_positional(self, cli):
        _, osc = cli
        with pytest.raises(ValidationError):
            osc.run("openstack network create")

    def test_empty_command(self, cli):
        _, osc = cli
        with pytest.raises(ValidationError):
            osc.run("   ")

    def test_name_lookup_errors(self, cli):
        _, osc = cli
        with pytest.raises(NotFoundError):
            osc.run("openstack server delete ghost")
        with pytest.raises(NotFoundError):
            osc.run("openstack server create --flavor m1.small --network ghost x")

    def test_quoted_arguments(self, cli):
        _, osc = cli
        rows = osc.run('openstack network create "my net"')
        assert rows[0]["Name"] == "my net"


class TestVolumesAndRender:
    def test_volume_create_list(self, cli):
        _, osc = cli
        osc.run("openstack volume create --size 2 data-vol")
        rows = osc.run("openstack volume list")
        assert rows[0]["Size"] == 2

    def test_render_table(self, cli):
        _, osc = cli
        osc.run("openstack server create --flavor m1.small a")
        text = render(osc.run("openstack server list"))
        assert "Name" in text and "m1.small" in text

    def test_render_empty(self):
        assert render([]) == "(no rows)"

    def test_fip_list_shows_association(self, cli):
        _, osc = cli
        osc.run("openstack server create --flavor m1.small a")
        addr = osc.run("openstack floating ip create public")[0]["Floating IP Address"]
        osc.run(f"openstack server add floating ip a {addr}")
        rows = osc.run("openstack floating ip list")
        assert rows[0]["Port"] != ""
