"""Tests for the Unit 10 managed cloud services."""

import pytest

from repro.cloud.inventory import CHAMELEON_FLAVORS
from repro.cloud.managed import ManagedKubernetes, ManagedNotebook, ServerlessPlatform
from repro.cloud.quota import Quota
from repro.cloud.site import Site, SiteKind
from repro.common import ConflictError, EventLoop, InvalidStateError, NotFoundError, ValidationError
from repro.orchestration.kubernetes import Deployment, PodTemplate


@pytest.fixture()
def env():
    loop = EventLoop()
    site = Site("gcp-like", SiteKind.KVM, loop, quota=Quota.unlimited(), flavors=CHAMELEON_FLAVORS)
    return loop, site


class TestManagedKubernetes:
    def test_one_call_cluster(self, env):
        loop, site = env
        gke = ManagedKubernetes(site, "demo")
        cluster = gke.create_cluster("gg", nodes=3)
        loop.run_until(0.1)
        assert len(cluster.nodes) == 3
        assert len(site.compute.servers) == 3  # node pool is real metered VMs
        # workloads schedule immediately — no Kubespray step
        cluster.apply_deployment(Deployment("app", PodTemplate(image="gg:v1"), replicas=2))
        cluster.reconcile_to_convergence()
        assert len(cluster.ready_pods("app")) == 2

    def test_management_fee_accrues(self, env):
        loop, site = env
        gke = ManagedKubernetes(site, "demo")
        gke.create_cluster("gg")
        loop.run_until(10.0)
        assert gke.management_fee("gg") == pytest.approx(10 * 0.10)

    def test_delete_releases_everything(self, env):
        loop, site = env
        gke = ManagedKubernetes(site, "demo")
        gke.create_cluster("gg", nodes=2)
        loop.run_until(2.0)
        gke.delete_cluster("gg")
        assert not site.compute.servers
        fee_records = [r for r in site.meter.records() if r.kind == "managed_k8s"]
        assert fee_records[0].hours == pytest.approx(2.0)
        with pytest.raises(NotFoundError):
            gke.cluster("gg")

    def test_duplicate_and_invalid(self, env):
        _, site = env
        gke = ManagedKubernetes(site, "demo")
        gke.create_cluster("gg")
        with pytest.raises(ConflictError):
            gke.create_cluster("gg")
        with pytest.raises(ValidationError):
            gke.create_cluster("other", nodes=0)


class TestServerless:
    def test_invoke_runs_handler(self, env):
        _, site = env
        faas = ServerlessPlatform(site, "demo")
        faas.deploy("classify", lambda img: "pizza")
        result, latency = faas.invoke("classify", "img-1")
        assert result == "pizza"
        assert latency >= ServerlessPlatform.COLD_START_MS

    def test_warm_invocations_fast(self, env):
        _, site = env
        faas = ServerlessPlatform(site, "demo")
        faas.deploy("f", lambda x: x)
        _, cold = faas.invoke("f", 1, duration_ms=1.0)
        _, warm = faas.invoke("f", 1, duration_ms=1.0)
        assert warm < cold / 10  # 6 ms vs 401 ms: the cold-start penalty

    def test_scale_to_zero_after_idle(self, env):
        loop, site = env
        faas = ServerlessPlatform(site, "demo")
        faas.deploy("f", lambda x: x)
        faas.invoke("f", 1)
        loop.run_until(1.0)  # > 15 min idle
        _, latency = faas.invoke("f", 1)
        assert latency >= ServerlessPlatform.COLD_START_MS

    def test_zero_cost_when_unused(self, env):
        """The scale-to-zero contrast with an always-on VM."""
        _, site = env
        faas = ServerlessPlatform(site, "demo")
        faas.deploy("f", lambda x: x)
        assert faas.cost("f") == 0.0

    def test_usage_billing(self, env):
        _, site = env
        faas = ServerlessPlatform(site, "demo")
        faas.deploy("f", lambda x: x, memory_gb=1.0)
        for _ in range(1000):
            faas.invoke("f", 1, duration_ms=100.0)
        stats = faas.stats("f")
        assert stats["invocations"] == 1000
        assert stats["gb_seconds"] == pytest.approx(100.0)  # 1000 * 1GB * 0.1s
        assert stats["cost_usd"] == pytest.approx(1000 / 1e6 * 0.40 + 100 * 0.0000025)

    def test_unknown_function(self, env):
        _, site = env
        with pytest.raises(NotFoundError):
            ServerlessPlatform(site, "demo").invoke("ghost", 1)

    def test_invalid_memory(self, env):
        _, site = env
        with pytest.raises(ValidationError):
            ServerlessPlatform(site, "demo").deploy("f", lambda x: x, memory_gb=0)


class TestManagedNotebook:
    def test_hourly_billing_while_running(self, env):
        loop, site = env
        nb = ManagedNotebook(site, "demo")
        nb.start("train-nb")
        loop.run_until(3.0)
        assert nb.cost("train-nb") == pytest.approx(3 * 1.46)
        hours = nb.stop("train-nb")
        assert hours == pytest.approx(3.0)
        loop.run_until(10.0)
        assert nb.cost("train-nb") == pytest.approx(3 * 1.46)  # stopped: no accrual

    def test_double_start_and_stop_guards(self, env):
        _, site = env
        nb = ManagedNotebook(site, "demo")
        nb.start("x")
        with pytest.raises(InvalidStateError):
            nb.start("x")
        nb.stop("x")
        with pytest.raises(InvalidStateError):
            nb.stop("x")

    def test_metered_on_site(self, env):
        loop, site = env
        nb = ManagedNotebook(site, "demo")
        nb.start("x")
        loop.run_until(2.0)
        nb.stop("x")
        recs = [r for r in site.meter.records() if r.kind == "notebook"]
        assert recs[0].hours == pytest.approx(2.0)
        assert recs[0].lab == "lab10"
