"""Tests for usage metering and the multi-site testbed facade."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cloud import chameleon
from repro.cloud.metering import UsageMeter, UsageRecord
from repro.common import ConflictError, NotFoundError, SimClock, ValidationError


class TestUsageMeter:
    def test_span_accrues_hours(self):
        clock = SimClock()
        m = UsageMeter(clock, site="s")
        m.open_span("vm-1", kind="server", resource_type="m1.small", project="p")
        clock.advance(4.0)
        rec = m.close_span("vm-1")
        assert rec.hours == 4.0
        assert rec.site == "s"

    def test_double_open_conflicts(self):
        m = UsageMeter(SimClock())
        m.open_span("x", kind="server", resource_type="t", project="p")
        with pytest.raises(ConflictError):
            m.open_span("x", kind="server", resource_type="t", project="p")

    def test_close_unknown_raises(self):
        m = UsageMeter(SimClock())
        with pytest.raises(NotFoundError):
            m.close_span("nope")

    def test_open_span_snapshot(self):
        clock = SimClock()
        m = UsageMeter(clock)
        m.open_span("x", kind="server", resource_type="t", project="p")
        clock.advance(2.0)
        recs = m.records()
        assert recs[0].hours == 2.0
        assert m.is_open("x")  # snapshot does not close

    def test_records_exclude_open(self):
        clock = SimClock()
        m = UsageMeter(clock)
        m.open_span("x", kind="server", resource_type="t", project="p")
        assert m.records(include_open=False) == []

    def test_adjust_quantity_preserves_integral(self):
        clock = SimClock()
        m = UsageMeter(clock)
        m.open_span("obj", kind="object_storage", resource_type="os", project="p", quantity=1.0)
        clock.advance(2.0)  # 2 GB-hours
        m.adjust_quantity("obj", 3.0)
        clock.advance(1.0)  # 3 GB-hours
        m.close_span("obj")
        total = sum(r.unit_hours for r in m.records())
        assert total == pytest.approx(5.0)

    def test_total_hours_filters(self):
        clock = SimClock()
        m = UsageMeter(clock)
        m.open_span("a", kind="server", resource_type="t", project="p", lab="lab1")
        m.open_span("b", kind="floating_ip", resource_type="fip", project="p", lab="lab1")
        clock.advance(3.0)
        assert m.total_hours(kind="server") == 3.0
        assert m.total_hours(lab="lab1") == 6.0
        assert m.total_hours(lab="lab9") == 0.0

    def test_record_validation(self):
        with pytest.raises(ValidationError):
            UsageRecord("x", "server", "t", "p", start=2.0, end=1.0)
        with pytest.raises(ValidationError):
            UsageRecord("x", "server", "t", "p", start=0.0, end=1.0, quantity=-1)

    @given(st.lists(st.floats(min_value=0.01, max_value=10, allow_nan=False), min_size=1, max_size=10))
    def test_unit_hours_additive_across_spans(self, durations):
        clock = SimClock()
        m = UsageMeter(clock)
        for i, d in enumerate(durations):
            m.open_span(f"r{i}", kind="server", resource_type="t", project="p")
            clock.advance(d)
            m.close_span(f"r{i}")
        assert m.total_hours(kind="server") == pytest.approx(sum(durations))


class TestChameleonTestbed:
    def test_three_sites(self):
        tb = chameleon()
        assert set(tb.sites) == {"kvm@tacc", "chi@tacc", "chi@edge"}

    def test_sites_share_clock(self):
        tb = chameleon()
        tb.run_until(5.0)
        assert tb.clock.now == 5.0
        # lease created relative to shared clock
        lease = tb.site("chi@tacc").leases.create_lease("p", "gpu_v100", start=5.0, end=7.0)
        assert lease.start == 5.0

    def test_cross_site_usage_aggregation(self):
        tb = chameleon()
        kvm = tb.site("kvm@tacc")
        metal = tb.site("chi@tacc")
        vm = kvm.compute.create_server("proj", "a", "m1.medium", lab="lab2")
        lease = metal.leases.create_lease("proj", "gpu_v100", start=0.0, end=2.0, lab="lab4")
        metal.compute.create_baremetal("proj", "b", "gpu_v100", lease.id, lab="lab4")
        tb.run_until(10.0)
        kvm.compute.delete_server(vm.id)
        recs = tb.usage_records()
        by_kind = {}
        for r in recs:
            by_kind.setdefault(r.kind, 0.0)
            by_kind[r.kind] += r.unit_hours
        assert by_kind["server"] == pytest.approx(10.0)
        assert by_kind["baremetal"] == pytest.approx(2.0)

    def test_duplicate_site_rejected(self):
        tb = chameleon()
        with pytest.raises(ConflictError):
            tb.add_site(tb.site("kvm@tacc"))

    def test_unknown_site_raises(self):
        tb = chameleon()
        with pytest.raises(NotFoundError):
            tb.site("chi@mars")

    def test_kvm_quota_is_course_quota(self):
        tb = chameleon()
        assert tb.site("kvm@tacc").quota.limits.instances == 600
