"""Tests for per-project quota accounting."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cloud.quota import Quota, QuotaManager
from repro.common import QuotaExceededError, ValidationError


class TestQuota:
    def test_course_quota_matches_paper(self):
        q = Quota.course_quota()
        assert q.instances == 600
        assert q.cores == 1200
        assert q.ram_gib == 2560
        assert q.routers == 200
        assert q.floating_ips == 300
        assert q.security_groups == 100
        assert q.volumes == 200
        assert q.volume_storage_gb == 10_000
        assert math.isinf(q.networks)

    def test_negative_limit_rejected(self):
        with pytest.raises(ValidationError):
            Quota(instances=-1)

    def test_unlimited_everything(self):
        q = Quota.unlimited()
        assert math.isinf(q.cores)


class TestQuotaManager:
    def test_reserve_and_release(self):
        qm = QuotaManager(Quota(instances=2, cores=4, ram_gib=8))
        qm.reserve(instances=1, cores=2, ram_gib=4)
        assert qm.usage("instances") == 1
        assert qm.available("cores") == 2
        qm.release(instances=1, cores=2, ram_gib=4)
        assert qm.usage("instances") == 0

    def test_exceeding_raises(self):
        qm = QuotaManager(Quota(instances=1))
        qm.reserve(instances=1)
        with pytest.raises(QuotaExceededError):
            qm.reserve(instances=1)

    def test_reserve_is_atomic(self):
        qm = QuotaManager(Quota(instances=10, cores=2))
        with pytest.raises(QuotaExceededError):
            qm.reserve(instances=1, cores=3)
        # the instances dimension must not have been charged
        assert qm.usage("instances") == 0

    def test_unknown_dimension_rejected(self):
        qm = QuotaManager()
        with pytest.raises(ValidationError):
            qm.reserve(gpus=1)

    def test_negative_reserve_rejected(self):
        qm = QuotaManager()
        with pytest.raises(ValidationError):
            qm.reserve(instances=-1)

    def test_over_release_rejected(self):
        qm = QuotaManager()
        qm.reserve(instances=1)
        with pytest.raises(ValidationError):
            qm.release(instances=2)

    @given(
        st.lists(
            st.tuples(st.sampled_from(["reserve", "release"]), st.integers(1, 5)),
            max_size=40,
        )
    )
    def test_usage_never_negative_never_over_limit(self, ops):
        qm = QuotaManager(Quota(instances=10))
        held = 0
        for op, n in ops:
            if op == "reserve":
                try:
                    qm.reserve(instances=n)
                    held += n
                except QuotaExceededError:
                    pass
            else:
                take = min(n, held)
                if take:
                    qm.release(instances=take)
                    held -= take
            assert 0 <= qm.usage("instances") <= 10
            assert qm.usage("instances") == held
