"""Tests for advance reservations and the compute service."""

import pytest

from repro.cloud.site import Site, SiteKind
from repro.cloud.inventory import (
    CHAMELEON_FLAVORS,
    CHAMELEON_NODE_TYPES,
    EDGE_DEVICE_TYPES,
)
from repro.cloud.compute import ServerStatus
from repro.cloud.leases import LeaseStatus
from repro.cloud.quota import Quota
from repro.common import (
    ConflictError,
    EventLoop,
    InvalidStateError,
    NotFoundError,
    QuotaExceededError,
    ValidationError,
)


@pytest.fixture()
def kvm():
    loop = EventLoop()
    return loop, Site("kvm", SiteKind.KVM, loop, quota=Quota.unlimited(), flavors=CHAMELEON_FLAVORS)


@pytest.fixture()
def metal():
    loop = EventLoop()
    return loop, Site(
        "chi", SiteKind.BARE_METAL, loop, quota=Quota.unlimited(), node_types=CHAMELEON_NODE_TYPES
    )


@pytest.fixture()
def edge():
    loop = EventLoop()
    return loop, Site(
        "edge", SiteKind.EDGE, loop, quota=Quota.unlimited(), edge_types=EDGE_DEVICE_TYPES
    )


class TestVmLifecycle:
    def test_server_builds_then_activates(self, kvm):
        loop, site = kvm
        s = site.compute.create_server("proj", "node1", "m1.medium")
        assert s.status is ServerStatus.BUILD
        loop.run_until(0.1)
        assert s.status is ServerStatus.ACTIVE

    def test_unknown_flavor_raises(self, kvm):
        _, site = kvm
        with pytest.raises(NotFoundError):
            site.compute.create_server("proj", "x", "m9.gigantic")

    def test_vm_persists_until_deleted(self, kvm):
        """The key Fig 1(a) mechanism: no auto-termination on the KVM site."""
        loop, site = kvm
        s = site.compute.create_server("proj", "forgotten", "m1.medium", lab="lab2")
        loop.run_until(100.0)
        assert s.id in site.compute.servers
        site.compute.delete_server(s.id)
        recs = [r for r in site.meter.records() if r.kind == "server"]
        assert recs[0].hours == pytest.approx(100.0)

    def test_quota_enforced_on_create(self):
        loop = EventLoop()
        site = Site(
            "kvm", SiteKind.KVM, loop, quota=Quota(instances=1, cores=100, ram_gib=100),
            flavors=CHAMELEON_FLAVORS,
        )
        site.compute.create_server("proj", "a", "m1.small")
        with pytest.raises(QuotaExceededError):
            site.compute.create_server("proj", "b", "m1.small")

    def test_delete_releases_quota(self, kvm):
        _, site = kvm
        s = site.compute.create_server("proj", "a", "m1.large")
        assert site.quota.usage("cores") == 4
        site.compute.delete_server(s.id)
        assert site.quota.usage("cores") == 0

    def test_stop_start_cycle(self, kvm):
        loop, site = kvm
        s = site.compute.create_server("proj", "a", "m1.small")
        loop.run_until(0.1)
        site.compute.stop_server(s.id)
        assert s.status is ServerStatus.SHUTOFF
        site.compute.start_server(s.id)
        assert s.status is ServerStatus.ACTIVE

    def test_stop_requires_active(self, kvm):
        _, site = kvm
        s = site.compute.create_server("proj", "a", "m1.small")
        with pytest.raises(InvalidStateError):
            site.compute.stop_server(s.id)  # still BUILD

    def test_floating_ip_association(self, kvm):
        loop, site = kvm
        s = site.compute.create_server("proj", "a", "m1.small")
        fip = site.network.allocate_floating_ip("proj")
        site.compute.associate_floating_ip(s.id, fip.id)
        with pytest.raises(ConflictError):
            site.compute.associate_floating_ip(s.id, fip.id)
        site.compute.delete_server(s.id)
        assert not site.network.floating_ips[fip.id].associated

    def test_attach_network_allocates_fixed_ip(self, kvm):
        _, site = kvm
        n = site.network.create_network("proj", "private")
        site.network.create_subnet(n.id, "192.168.0.0/24")
        s = site.compute.create_server("proj", "a", "m1.small", network_id=n.id)
        assert s.fixed_ips and s.fixed_ips[0].startswith("192.168.0.")

    def test_attach_network_requires_subnet(self, kvm):
        _, site = kvm
        n = site.network.create_network("proj", "empty")
        with pytest.raises(InvalidStateError):
            site.compute.create_server("proj", "a", "m1.small", network_id=n.id)

    def test_security_group_reachability(self, kvm):
        _, site = kvm
        from repro.cloud.network import SecurityGroupRule

        sg = site.network.create_security_group("proj", "web")
        site.network.add_rule(sg.id, SecurityGroupRule("tcp", 22, 22))
        s = site.compute.create_server("proj", "a", "m1.small", security_groups=[sg.id])
        assert site.compute.can_reach(s.id, "tcp", 22)
        assert not site.compute.can_reach(s.id, "tcp", 8080)

    def test_list_servers_filters(self, kvm):
        _, site = kvm
        site.compute.create_server("p1", "a", "m1.small", lab="lab1")
        site.compute.create_server("p1", "b", "m1.small", lab="lab2")
        site.compute.create_server("p2", "c", "m1.small", lab="lab1")
        assert len(site.compute.list_servers(project="p1")) == 2
        assert len(site.compute.list_servers(lab="lab1")) == 2


class TestLeases:
    def test_reservation_capacity_enforced(self, metal):
        _, site = metal
        cap = site.leases.capacity("gpu_a100_pcie")
        for i in range(cap):
            site.leases.create_lease("proj", "gpu_a100_pcie", start=0.0, end=2.0)
        with pytest.raises(ConflictError):
            site.leases.create_lease("proj", "gpu_a100_pcie", start=1.0, end=3.0)

    def test_non_overlapping_ok(self, metal):
        _, site = metal
        cap = site.leases.capacity("gpu_a100_pcie")
        for i in range(cap):
            site.leases.create_lease("proj", "gpu_a100_pcie", start=0.0, end=2.0)
        # back-to-back slot reuses the nodes
        lease = site.leases.create_lease("proj", "gpu_a100_pcie", start=2.0, end=4.0)
        assert lease.status is LeaseStatus.PENDING

    def test_lease_in_past_rejected(self, metal):
        loop, site = metal
        loop.run_until(10.0)
        with pytest.raises(ValidationError):
            site.leases.create_lease("proj", "gpu_v100", start=5.0, end=6.0)

    def test_degenerate_interval_rejected(self, metal):
        _, site = metal
        with pytest.raises(ValidationError):
            site.leases.create_lease("proj", "gpu_v100", start=2.0, end=2.0)

    def test_unknown_type_rejected(self, metal):
        _, site = metal
        with pytest.raises(NotFoundError):
            site.leases.create_lease("proj", "gpu_h100", start=0.0, end=1.0)

    def test_lease_activates_then_expires(self, metal):
        loop, site = metal
        lease = site.leases.create_lease("proj", "gpu_v100", start=1.0, end=3.0)
        assert lease.status is LeaseStatus.PENDING
        loop.run_until(1.5)
        assert lease.status is LeaseStatus.ACTIVE
        loop.run_until(3.5)
        assert lease.status is LeaseStatus.EXPIRED


class TestBareMetalAutoTermination:
    def test_instance_killed_at_lease_end(self, metal):
        """The Fig 1(b) mechanism: reserved usage cannot exceed the lease."""
        loop, site = metal
        lease = site.leases.create_lease("proj", "gpu_v100", start=0.0, end=3.0, lab="lab4")
        node = site.compute.create_baremetal("proj", "train0", "gpu_v100", lease.id, lab="lab4")
        loop.run_until(50.0)  # student walks away; node is still auto-killed
        assert node.id not in site.compute.servers
        recs = [r for r in site.meter.records() if r.kind == "baremetal"]
        assert recs[0].hours == pytest.approx(3.0)

    def test_instance_requires_matching_lease_type(self, metal):
        _, site = metal
        lease = site.leases.create_lease("proj", "gpu_v100", start=0.0, end=2.0)
        with pytest.raises(ValidationError):
            site.compute.create_baremetal("proj", "x", "gpu_a100_pcie", lease.id)

    def test_lease_count_limits_bound_instances(self, metal):
        _, site = metal
        lease = site.leases.create_lease("proj", "gpu_v100", start=0.0, end=2.0, count=1)
        site.compute.create_baremetal("proj", "a", "gpu_v100", lease.id)
        with pytest.raises(ConflictError):
            site.compute.create_baremetal("proj", "b", "gpu_v100", lease.id)

    def test_early_lease_delete_kills_instance(self, metal):
        loop, site = metal
        lease = site.leases.create_lease("proj", "gpu_v100", start=0.0, end=5.0)
        node = site.compute.create_baremetal("proj", "a", "gpu_v100", lease.id)
        loop.run_until(1.0)
        site.leases.delete_lease(lease.id)
        assert node.id not in site.compute.servers
        recs = [r for r in site.meter.records() if r.kind == "baremetal"]
        assert recs[0].hours == pytest.approx(1.0)

    def test_manual_delete_before_expiry(self, metal):
        loop, site = metal
        lease = site.leases.create_lease("proj", "gpu_v100", start=0.0, end=5.0)
        node = site.compute.create_baremetal("proj", "a", "gpu_v100", lease.id)
        loop.run_until(2.0)
        site.compute.delete_server(node.id)
        loop.run_until(10.0)  # lease expiry must not crash on the gone server
        recs = [r for r in site.meter.records() if r.kind == "baremetal"]
        assert recs[0].hours == pytest.approx(2.0)


class TestEdgeSessions:
    def test_edge_session_under_lease(self, edge):
        loop, site = edge
        lease = site.leases.create_lease("proj", "raspberrypi5", start=0.0, end=2.0, lab="lab6c")
        dev = site.compute.create_edge_session("proj", "pi", "raspberrypi5", lease.id, lab="lab6c")
        loop.run_until(10.0)
        assert dev.id not in site.compute.servers
        recs = [r for r in site.meter.records() if r.kind == "edge"]
        assert recs[0].hours == pytest.approx(2.0)
        assert recs[0].resource_type == "raspberrypi5"

    def test_seven_pis_available(self, edge):
        """The authors added 7 Raspberry Pi 5 devices (paper §4)."""
        _, site = edge
        assert site.leases.capacity("raspberrypi5") == 7

    def test_kvm_site_has_no_leases(self, kvm):
        _, site = kvm
        assert site.leases is None
        with pytest.raises(InvalidStateError):
            site.compute.create_baremetal("proj", "x", "gpu_v100", "lease-1")
