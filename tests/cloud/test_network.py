"""Tests for the Neutron-like network service."""

import pytest

from repro.cloud.metering import UsageMeter
from repro.cloud.network import NetworkService, SecurityGroupRule
from repro.cloud.quota import Quota, QuotaManager
from repro.common import (
    ConflictError,
    NotFoundError,
    SimClock,
    ValidationError,
)
from repro.common.ids import IdGenerator


@pytest.fixture()
def svc():
    clock = SimClock()
    return clock, NetworkService(clock, IdGenerator(), QuotaManager(Quota.unlimited()), UsageMeter(clock))


class TestNetworksAndRouters:
    def test_external_network_preexists(self, svc):
        _, net = svc
        assert net.networks["external"].external

    def test_create_network_subnet_router_wireup(self, svc):
        _, net = svc
        n = net.create_network("proj", "private-net")
        s = net.create_subnet(n.id, "192.168.1.0/24")
        r = net.create_router("proj", "router0")
        net.set_router_gateway(r.id, "external")
        net.add_router_interface(r.id, s.id)
        assert s.id in net.routers[r.id].interface_subnet_ids
        assert net.routers[r.id].external_network_id == "external"

    def test_gateway_must_be_external(self, svc):
        _, net = svc
        n = net.create_network("proj", "n")
        r = net.create_router("proj", "r")
        with pytest.raises(ValidationError):
            net.set_router_gateway(r.id, n.id)

    def test_cannot_delete_network_with_subnets(self, svc):
        _, net = svc
        n = net.create_network("proj", "n")
        net.create_subnet(n.id, "10.0.0.0/24")
        with pytest.raises(ConflictError):
            net.delete_network(n.id)

    def test_cannot_delete_external_network(self, svc):
        _, net = svc
        with pytest.raises(ConflictError):
            net.delete_network("external")

    def test_cannot_delete_router_with_interfaces(self, svc):
        _, net = svc
        n = net.create_network("proj", "n")
        s = net.create_subnet(n.id, "10.0.0.0/24")
        r = net.create_router("proj", "r")
        net.add_router_interface(r.id, s.id)
        with pytest.raises(ConflictError):
            net.delete_router(r.id)

    def test_cannot_delete_subnet_attached_to_router(self, svc):
        _, net = svc
        n = net.create_network("proj", "n")
        s = net.create_subnet(n.id, "10.0.0.0/24")
        r = net.create_router("proj", "r")
        net.add_router_interface(r.id, s.id)
        with pytest.raises(ConflictError):
            net.delete_subnet(s.id)

    def test_full_teardown_succeeds(self, svc):
        _, net = svc
        n = net.create_network("proj", "n")
        s = net.create_subnet(n.id, "10.0.0.0/24")
        net.delete_subnet(s.id)
        net.delete_network(n.id)
        assert n.id not in net.networks

    def test_subnet_addresses_unique(self, svc):
        _, net = svc
        n = net.create_network("proj", "n")
        s = net.create_subnet(n.id, "10.0.0.0/28")
        addrs = {s.allocate_address() for _ in range(4)}
        assert len(addrs) == 4

    def test_subnet_exhaustion(self, svc):
        _, net = svc
        n = net.create_network("proj", "n")
        s = net.create_subnet(n.id, "10.0.0.0/28")  # 16 addresses, host ids 10..14
        for _ in range(5):
            s.allocate_address()
        with pytest.raises(ConflictError):
            s.allocate_address()

    def test_invalid_cidr_rejected(self, svc):
        _, net = svc
        n = net.create_network("proj", "n")
        with pytest.raises(ValueError):
            net.create_subnet(n.id, "not-a-cidr")


class TestFloatingIPs:
    def test_allocate_associate_release(self, svc):
        clock, net = svc
        fip = net.allocate_floating_ip("proj")
        net.associate_floating_ip(fip.id, "vm-1")
        assert net.floating_ips[fip.id].associated
        net.disassociate_floating_ip(fip.id)
        net.release_floating_ip(fip.id)
        assert fip.id not in net.floating_ips

    def test_double_association_conflicts(self, svc):
        _, net = svc
        fip = net.allocate_floating_ip("proj")
        net.associate_floating_ip(fip.id, "vm-1")
        with pytest.raises(ConflictError):
            net.associate_floating_ip(fip.id, "vm-2")

    def test_floating_ip_hours_metered(self, svc):
        clock, net = svc
        fip = net.allocate_floating_ip("proj", lab="lab1")
        clock.advance(3.0)
        net.release_floating_ip(fip.id)
        clock.advance(10.0)  # no further accrual after release
        meter_records = [r for r in net._meter.records() if r.kind == "floating_ip"]
        assert len(meter_records) == 1
        assert meter_records[0].hours == pytest.approx(3.0)
        assert meter_records[0].lab == "lab1"

    def test_quota_enforced(self):
        clock = SimClock()
        net = NetworkService(
            clock, IdGenerator(), QuotaManager(Quota(floating_ips=1)), UsageMeter(clock)
        )
        net.allocate_floating_ip("proj")
        from repro.common import QuotaExceededError

        with pytest.raises(QuotaExceededError):
            net.allocate_floating_ip("proj")

    def test_addresses_are_public_pool(self, svc):
        _, net = svc
        fip = net.allocate_floating_ip("proj")
        assert fip.address.startswith("129.114.")


class TestSecurityGroups:
    def test_rule_permits_port_range(self, svc):
        _, net = svc
        sg = net.create_security_group("proj", "ssh-jupyter")
        net.add_rule(sg.id, SecurityGroupRule("tcp", 22, 22))
        net.add_rule(sg.id, SecurityGroupRule("tcp", 8888, 8890))
        assert sg.permits("tcp", 22)
        assert sg.permits("tcp", 8889)
        assert not sg.permits("tcp", 80)
        assert not sg.permits("udp", 22)

    def test_duplicate_rule_conflicts(self, svc):
        _, net = svc
        sg = net.create_security_group("proj", "sg")
        rule = SecurityGroupRule("tcp", 22, 22)
        net.add_rule(sg.id, rule)
        with pytest.raises(ConflictError):
            net.add_rule(sg.id, rule)

    def test_invalid_rule_rejected(self):
        with pytest.raises(ValidationError):
            SecurityGroupRule("tcp", 100, 50)
        with pytest.raises(ValidationError):
            SecurityGroupRule("bogus", 1, 2)

    def test_missing_group_raises(self, svc):
        _, net = svc
        with pytest.raises(NotFoundError):
            net.add_rule("sg-nope", SecurityGroupRule("tcp", 22, 22))
