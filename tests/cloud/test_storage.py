"""Tests for block and object storage services."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cloud.metering import UsageMeter
from repro.cloud.quota import Quota, QuotaManager
from repro.cloud.storage import BlockStorageService, ObjectStorageService, VolumeStatus
from repro.common import (
    ConflictError,
    InvalidStateError,
    NotFoundError,
    QuotaExceededError,
    SimClock,
    ValidationError,
)
from repro.common.ids import IdGenerator
from repro.common.units import GB


@pytest.fixture()
def block():
    clock = SimClock()
    qm = QuotaManager(Quota.unlimited())
    return clock, BlockStorageService(clock, IdGenerator(), qm, UsageMeter(clock)), qm


@pytest.fixture()
def objstore():
    clock = SimClock()
    qm = QuotaManager(Quota.unlimited())
    return clock, ObjectStorageService(clock, IdGenerator(), qm, UsageMeter(clock)), qm


class TestBlockStorage:
    def test_lab8_workflow_attach_format_mount_persist(self, block):
        """The Unit 8 lab: provision, attach, format, mount, persist data."""
        _, svc, _ = block
        vol = svc.create_volume("proj", "data", 2, lab="lab8")
        svc.attach(vol.id, "vm-1")
        svc.format_volume(vol.id)
        svc.mount(vol.id, "/mnt/data")
        svc.write_file(vol.id, "db.sqlite", b"state")
        # detach (ephemeral VM dies), re-attach elsewhere: data persists
        svc.detach(vol.id)
        svc.attach(vol.id, "vm-2")
        svc.mount(vol.id, "/mnt/data")
        assert svc.read_file(vol.id, "db.sqlite") == b"state"

    def test_size_must_be_positive(self, block):
        _, svc, _ = block
        with pytest.raises(ValidationError):
            svc.create_volume("proj", "v", 0)

    def test_cannot_mount_unformatted(self, block):
        _, svc, _ = block
        vol = svc.create_volume("proj", "v", 1)
        svc.attach(vol.id, "vm-1")
        with pytest.raises(InvalidStateError):
            svc.mount(vol.id, "/mnt")

    def test_cannot_format_detached(self, block):
        _, svc, _ = block
        vol = svc.create_volume("proj", "v", 1)
        with pytest.raises(InvalidStateError):
            svc.format_volume(vol.id)

    def test_cannot_attach_twice(self, block):
        _, svc, _ = block
        vol = svc.create_volume("proj", "v", 1)
        svc.attach(vol.id, "vm-1")
        with pytest.raises(InvalidStateError):
            svc.attach(vol.id, "vm-2")

    def test_cannot_delete_attached(self, block):
        _, svc, _ = block
        vol = svc.create_volume("proj", "v", 1)
        svc.attach(vol.id, "vm-1")
        with pytest.raises(ConflictError):
            svc.delete_volume(vol.id)

    def test_format_wipes_data(self, block):
        _, svc, _ = block
        vol = svc.create_volume("proj", "v", 1)
        svc.attach(vol.id, "vm-1")
        svc.format_volume(vol.id)
        svc.mount(vol.id, "/mnt")
        svc.write_file(vol.id, "f", b"x")
        svc.format_volume(vol.id)
        svc.mount(vol.id, "/mnt")
        with pytest.raises(NotFoundError):
            svc.read_file(vol.id, "f")

    def test_capacity_enforced(self, block):
        _, svc, _ = block
        vol = svc.create_volume("proj", "v", 1)
        svc.attach(vol.id, "vm-1")
        svc.format_volume(vol.id)
        svc.mount(vol.id, "/mnt")
        with pytest.raises(ConflictError):
            svc.write_file(vol.id, "big", b"x" * (1 * GB + 1))

    def test_quota_charged_and_released(self, block):
        _, svc, qm = block
        vol = svc.create_volume("proj", "v", 100)
        assert qm.usage("volume_storage_gb") == 100
        svc.delete_volume(vol.id)
        assert qm.usage("volume_storage_gb") == 0

    def test_gb_hours_metered(self, block):
        clock, svc, _ = block
        vol = svc.create_volume("proj", "v", 2, lab="lab8")
        clock.advance(3.0)
        svc.delete_volume(vol.id)
        recs = [r for r in svc._meter.records() if r.kind == "volume"]
        assert recs[0].unit_hours == pytest.approx(6.0)  # 2 GB * 3 h

    def test_snapshot_restore_round_trip(self, block):
        _, svc, _ = block
        vol = svc.create_volume("proj", "v", 1)
        svc.attach(vol.id, "vm-1")
        svc.format_volume(vol.id)
        svc.mount(vol.id, "/mnt")
        svc.write_file(vol.id, "a", b"1")
        snap = svc.snapshot(vol.id)
        svc.write_file(vol.id, "a", b"2")
        restored = svc.restore(snap.id, "proj", "v2")
        svc.attach(restored.id, "vm-9")
        svc.mount(restored.id, "/mnt2")
        assert svc.read_file(restored.id, "a") == b"1"


class TestObjectStorage:
    def test_put_get_round_trip(self, objstore):
        _, svc, _ = objstore
        svc.create_bucket("proj", "datasets")
        svc.put_object("datasets", "food11/train.tar", b"imagedata")
        obj = svc.get_object("datasets", "food11/train.tar")
        assert obj.data == b"imagedata"
        assert obj.etag  # md5 populated

    def test_duplicate_bucket_conflicts(self, objstore):
        _, svc, _ = objstore
        svc.create_bucket("proj", "b")
        with pytest.raises(ConflictError):
            svc.create_bucket("proj", "b")

    def test_invalid_bucket_name(self, objstore):
        _, svc, _ = objstore
        with pytest.raises(ValidationError):
            svc.create_bucket("proj", "a/b")

    def test_list_with_prefix(self, objstore):
        _, svc, _ = objstore
        svc.create_bucket("proj", "b")
        svc.put_object("b", "train/1", b"x")
        svc.put_object("b", "train/2", b"x")
        svc.put_object("b", "val/1", b"x")
        assert svc.list_objects("b", prefix="train/") == ["train/1", "train/2"]

    def test_delete_object_and_bucket(self, objstore):
        _, svc, _ = objstore
        svc.create_bucket("proj", "b")
        svc.put_object("b", "k", b"x")
        with pytest.raises(ConflictError):
            svc.delete_bucket("b")
        svc.delete_object("b", "k")
        svc.delete_bucket("b")
        with pytest.raises(NotFoundError):
            svc.get_object("b", "k")

    def test_overwrite_adjusts_quota(self, objstore):
        _, svc, qm = objstore
        svc.create_bucket("proj", "b")
        svc.put_object("b", "k", b"x" * 1000)
        assert qm.usage("object_storage_gb") == pytest.approx(1000 / GB)
        svc.put_object("b", "k", b"x" * 500)
        assert qm.usage("object_storage_gb") == pytest.approx(500 / GB)

    def test_quota_enforced(self):
        clock = SimClock()
        qm = QuotaManager(Quota(object_storage_gb=1e-6))
        svc = ObjectStorageService(clock, IdGenerator(), qm, UsageMeter(clock))
        svc.create_bucket("proj", "b")
        with pytest.raises(QuotaExceededError):
            svc.put_object("b", "k", b"x" * 10_000)

    def test_capacity_span_tracks_stored_bytes(self, objstore):
        clock, svc, _ = objstore
        svc.create_bucket("proj", "b")
        svc.put_object("b", "k", b"x" * GB)  # 1 GB
        clock.advance(2.0)
        svc.delete_object("b", "k")
        clock.advance(5.0)
        gb_hours = sum(
            r.unit_hours for r in svc._meter.records() if r.kind == "object_storage"
        )
        assert gb_hours == pytest.approx(2.0)  # 1 GB for 2 h, then 0 GB

    def test_external_usage_recorded(self, objstore):
        clock, svc, _ = objstore
        clock.advance(10.0)
        svc.record_external_usage("proj", gb=1541.0, hours=5.0, lab="project")
        recs = [r for r in svc._meter.records() if r.kind == "object_storage"]
        assert recs[0].quantity == 1541.0
        assert recs[0].hours == pytest.approx(5.0)

    @given(st.dictionaries(st.text(min_size=1, max_size=8), st.binary(max_size=64), max_size=10))
    def test_round_trip_property(self, contents):
        clock = SimClock()
        svc = ObjectStorageService(
            clock, IdGenerator(), QuotaManager(Quota.unlimited()), UsageMeter(clock)
        )
        svc.create_bucket("proj", "b")
        for k, v in contents.items():
            svc.put_object("b", k, v)
        for k, v in contents.items():
            assert svc.get_object("b", k).data == v
        assert svc.project_bytes("proj") == sum(len(v) for v in contents.values())
