"""Tests for relational, ETL, streaming, and feature-store components."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import ConflictError, NotFoundError, ValidationError
from repro.common.errors import DeadlineExceededError
from repro.common.retry import RetryPolicy
from repro.datasys import (
    Broker,
    Consumer,
    EtlPipeline,
    FeatureStore,
    FeatureView,
    Producer,
    Table,
)


class TestTable:
    def setup_method(self):
        self.t = Table(
            "predictions",
            {"id": str, "label": str, "confidence": float},
            primary_key="id",
        )

    def test_insert_get_round_trip(self):
        self.t.insert({"id": "r1", "label": "pizza", "confidence": 0.9})
        assert self.t.get("r1")["label"] == "pizza"

    def test_duplicate_key_rejected(self):
        self.t.insert({"id": "r1", "label": "pizza", "confidence": 0.9})
        with pytest.raises(ConflictError):
            self.t.insert({"id": "r1", "label": "salad", "confidence": 0.1})

    def test_upsert_replaces(self):
        self.t.insert({"id": "r1", "label": "pizza", "confidence": 0.9})
        replaced = self.t.upsert({"id": "r1", "label": "salad", "confidence": 0.5})
        assert replaced and len(self.t) == 1
        assert self.t.get("r1")["label"] == "salad"

    def test_type_enforcement(self):
        with pytest.raises(ValidationError):
            self.t.insert({"id": "r1", "label": "pizza", "confidence": "high"})

    def test_missing_and_unknown_columns(self):
        with pytest.raises(ValidationError):
            self.t.insert({"id": "r1", "label": "pizza"})
        with pytest.raises(ValidationError):
            self.t.insert({"id": "r1", "label": "p", "confidence": 0.5, "extra": 1})

    def test_select_where_order_limit(self):
        for i, conf in enumerate([0.9, 0.1, 0.5]):
            self.t.insert({"id": f"r{i}", "label": "x", "confidence": conf})
        rows = self.t.select(lambda r: r["confidence"] > 0.2, order_by="confidence", limit=1)
        assert rows == [{"id": "r2", "label": "x", "confidence": 0.5}]

    def test_aggregate_group_by(self):
        for i, (label, c) in enumerate([("pizza", 0.8), ("pizza", 0.6), ("salad", 0.9)]):
            self.t.insert({"id": f"r{i}", "label": label, "confidence": c})
        means = self.t.aggregate("label", "confidence", lambda v: sum(v) / len(v))
        assert means == {"pizza": pytest.approx(0.7), "salad": 0.9}

    def test_join(self):
        users = Table("users", {"uid": str, "tier": str}, primary_key="uid")
        users.insert({"uid": "u1", "tier": "pro"})
        logs = Table("logs", {"uid": str, "event": str})
        logs.insert({"uid": "u1", "event": "upload"})
        logs.insert({"uid": "u2", "event": "upload"})
        joined = logs.join(users, on="uid")
        assert len(joined) == 1
        assert joined[0]["tier"] == "pro"

    def test_rows_are_copies(self):
        self.t.insert({"id": "r1", "label": "pizza", "confidence": 0.9})
        row = self.t.get("r1")
        row["label"] = "mutated"
        assert self.t.get("r1")["label"] == "pizza"


class TestEtl:
    def test_full_pipeline(self):
        sink = []
        pipeline = EtlPipeline(
            "ingest",
            extract=lambda: [{"img": i, "size": 100 * i} for i in range(5)],
            transforms=[
                ("drop tiny", lambda r: r if r["size"] >= 100 else None),
                ("add thumb", lambda r: {**r, "thumb": f"t{r['img']}"}),
            ],
            load=sink.append,
        )
        report = pipeline.run()
        assert report.extracted == 5
        assert report.filtered == 1  # img 0 dropped
        assert report.loaded == 4
        assert all("thumb" in r for r in sink)

    def test_bad_records_go_to_dead_letter_queue(self):
        sink = []
        pipeline = EtlPipeline(
            "ingest",
            extract=lambda: [1, "two", 3],
            transforms=[("double", lambda r: r * 2 if isinstance(r, int) else 1 / 0)],
            load=sink.append,
        )
        report = pipeline.run()
        assert report.loaded == 2
        assert report.failed == 1
        assert report.dead_letters[0].stage == "double"
        assert "ZeroDivisionError" in report.dead_letters[0].error

    def test_load_failures_recorded(self):
        def load(r):
            if r == 2:
                raise IOError("disk full")

        report = EtlPipeline("p", extract=lambda: [1, 2, 3], load=load).run()
        assert report.loaded == 2
        assert report.dead_letters[0].stage == "load"

    def test_extract_retries(self):
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise IOError("transient")
            return [1]

        report = EtlPipeline("p", extract=flaky, load=lambda r: None, extract_retries=3).run()
        assert report.extract_attempts == 3
        assert report.loaded == 1

    def test_extract_retries_exhausted(self):
        def broken():
            raise IOError("gone")

        with pytest.raises(DeadlineExceededError):
            EtlPipeline("p", extract=broken, load=lambda r: None, extract_retries=1).run()


class TestEtlRetryPolicy:
    """The shared-RetryPolicy port of the extract retry path."""

    def test_retry_then_succeed_accumulates_backoff(self):
        policy = RetryPolicy(max_attempts=4, base_backoff_hours=1.0, multiplier=2.0,
                             max_backoff_hours=24.0)
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise IOError("transient")
            return [1, 2]

        report = EtlPipeline("p", extract=flaky, load=lambda r: None, retry=policy).run()
        assert report.loaded == 2
        assert report.extract_attempts == 3
        # two retries waited 1 h then 2 h under the policy's schedule
        assert report.backoff_hours == pytest.approx(3.0)

    def test_retry_exhausted_raises_deadline_exceeded(self):
        policy = RetryPolicy(max_attempts=2, base_backoff_hours=0.5)

        def broken():
            raise IOError("gone")

        with pytest.raises(DeadlineExceededError, match="after 2 attempts"):
            EtlPipeline("p", extract=broken, load=lambda r: None, retry=policy).run()

    def test_explicit_policy_wins_over_legacy_count(self):
        policy = RetryPolicy(max_attempts=1)
        attempts = {"n": 0}

        def broken():
            attempts["n"] += 1
            raise IOError("gone")

        pipeline = EtlPipeline("p", extract=broken, load=lambda r: None,
                               extract_retries=5, retry=policy)
        assert pipeline.extract_retries == 0
        with pytest.raises(DeadlineExceededError):
            pipeline.run()
        assert attempts["n"] == 1

    def test_dead_letters_unaffected_by_retry_policy(self):
        sink = []
        pipeline = EtlPipeline(
            "ingest",
            extract=lambda: [1, 0, 3],
            transforms=[("invert", lambda r: 1 / r)],
            load=sink.append,
            retry=RetryPolicy.transient_default(),
        )
        report = pipeline.run()
        assert report.loaded == 2
        assert report.failed == 1
        assert report.dead_letters[0].stage == "invert"
        assert report.backoff_hours == 0.0


class TestStreaming:
    def setup_method(self):
        self.broker = Broker()
        self.broker.create_topic("uploads", partitions=3)

    def test_produce_consume_commit_cycle(self):
        producer = Producer(self.broker)
        for i in range(10):
            producer.send("uploads", {"img": i})
        consumer = Consumer(self.broker, "training-pipeline")
        msgs = consumer.consume_all("uploads")
        assert len(msgs) == 10
        assert self.broker.lag("training-pipeline", "uploads") == 0

    def test_key_routing_is_stable(self):
        producer = Producer(self.broker)
        parts = {producer.send("uploads", i, key="user-42").partition for i in range(5)}
        assert len(parts) == 1  # same key, same partition

    def test_independent_groups_see_full_stream(self):
        producer = Producer(self.broker)
        for i in range(6):
            producer.send("uploads", i)
        a = Consumer(self.broker, "group-a").consume_all("uploads")
        b = Consumer(self.broker, "group-b").consume_all("uploads")
        assert len(a) == len(b) == 6

    def test_restart_resumes_from_committed_offset(self):
        producer = Producer(self.broker)
        for i in range(10):
            producer.send("uploads", i, key="k")  # single partition
        consumer = Consumer(self.broker, "g")
        first = consumer.poll("uploads", max_messages=4)
        consumer.commit(first)
        # "restart": a new consumer object in the same group
        resumed = Consumer(self.broker, "g").consume_all("uploads")
        assert len(resumed) == 6
        assert {m.value for m in first} | {m.value for m in resumed} == set(range(10))

    def test_uncommitted_messages_redelivered(self):
        Producer(self.broker).send("uploads", "x", key="k")
        consumer = Consumer(self.broker, "g")
        assert len(consumer.poll("uploads")) == 1
        assert len(consumer.poll("uploads")) == 1  # not committed -> redelivered

    def test_lag_accounting(self):
        producer = Producer(self.broker)
        for i in range(5):
            producer.send("uploads", i)
        assert self.broker.lag("g", "uploads") == 5

    def test_topic_guards(self):
        with pytest.raises(ConflictError):
            self.broker.create_topic("uploads")
        with pytest.raises(NotFoundError):
            self.broker.append("ghost", 1)
        with pytest.raises(ValidationError):
            self.broker.create_topic("bad", partitions=0)

    @given(st.lists(st.integers(), min_size=1, max_size=50))
    def test_no_message_lost_property(self, values):
        broker = Broker()
        broker.create_topic("t", partitions=4)
        for v in values:
            broker.append("t", v)
        got = Consumer(broker, "g").consume_all("t")
        assert sorted(m.value for m in got) == sorted(values)


class TestFeatureStore:
    def setup_method(self):
        self.fs = FeatureStore()
        self.view = self.fs.register_view(
            FeatureView("user_stats", entity="user_id", features=("uploads_7d", "avg_conf"))
        )

    def test_online_serves_latest(self):
        self.fs.write("user_stats", "u1", {"uploads_7d": 3}, timestamp=1.0)
        self.fs.write("user_stats", "u1", {"uploads_7d": 5, "avg_conf": 0.8}, timestamp=2.0)
        assert self.fs.get_online("user_stats", "u1") == {"uploads_7d": 5, "avg_conf": 0.8}

    def test_point_in_time_correctness(self):
        """The label-leakage guard: training rows must not see future values."""
        self.fs.write("user_stats", "u1", {"uploads_7d": 3}, timestamp=1.0)
        self.fs.write("user_stats", "u1", {"uploads_7d": 99}, timestamp=5.0)
        as_of = self.fs.get_as_of("user_stats", "u1", timestamp=2.0)
        assert as_of == {"uploads_7d": 3}  # not the future 99

    def test_training_set_assembly(self):
        self.fs.write("user_stats", "u1", {"uploads_7d": 3, "avg_conf": 0.7}, timestamp=1.0)
        self.fs.write("user_stats", "u2", {"uploads_7d": 1}, timestamp=4.0)
        events = [("u1", 2.0, "churned"), ("u2", 3.0, "active"), ("u2", 5.0, "active")]
        ts = self.fs.training_set("user_stats", events)
        # u2@3.0 dropped (no features yet at that time)
        assert ts == [
            ({"uploads_7d": 3, "avg_conf": 0.7}, "churned"),
            ({"uploads_7d": 1}, "active"),
        ]

    def test_batch_ingest(self):
        rows = [{"user_id": f"u{i}", "uploads_7d": i} for i in range(3)]
        n = self.fs.ingest_batch("user_stats", rows, timestamp=1.0)
        assert n == 3
        assert self.fs.get_online("user_stats", "u2")["uploads_7d"] == 2

    def test_late_stream_write_inserted_in_order(self):
        self.fs.write("user_stats", "u1", {"uploads_7d": 10}, timestamp=5.0)
        self.fs.write("user_stats", "u1", {"uploads_7d": 2}, timestamp=1.0)  # late
        assert self.fs.get_as_of("user_stats", "u1", timestamp=2.0) == {"uploads_7d": 2}
        assert self.fs.get_online("user_stats", "u1") == {"uploads_7d": 10}

    def test_guards(self):
        with pytest.raises(ValidationError):
            self.fs.write("user_stats", "u1", {"bogus": 1}, timestamp=0)
        with pytest.raises(NotFoundError):
            self.fs.get_online("user_stats", "ghost")
        with pytest.raises(NotFoundError):
            self.fs.write("ghost-view", "u1", {}, timestamp=0)
        with pytest.raises(ValidationError):
            FeatureView("empty", entity="e", features=())
        with pytest.raises(ValidationError):
            self.fs.ingest_batch("user_stats", [{"uploads_7d": 1}], timestamp=0)
