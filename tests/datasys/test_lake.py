"""Tests for the data lake and lakehouse table."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import ConflictError, NotFoundError, ValidationError
from repro.datasys.lake import DataLake, LakehouseTable


class TestDataLake:
    def test_schema_on_read_accepts_heterogeneous_rows(self):
        lake = DataLake()
        lake.write("raw", "uploads", [{"img": 1}, {"img": 2, "exif": {"iso": 800}}])
        rows = lake.read("raw", "uploads")
        assert len(rows) == 2
        assert "exif" in rows[1]

    def test_partitioned_writes_and_reads(self):
        lake = DataLake()
        lake.write("raw", "uploads", [{"img": 1}], partition="dt=2025-01-01")
        lake.write("raw", "uploads", [{"img": 2}], partition="dt=2025-01-02")
        assert lake.partitions("raw", "uploads") == ["dt=2025-01-01", "dt=2025-01-02"]
        assert len(lake.read("raw", "uploads")) == 2
        assert lake.read("raw", "uploads", partition="dt=2025-01-02")[0]["img"] == 2

    def test_promote_raw_to_curated_with_filtering(self):
        lake = DataLake()
        lake.write("raw", "uploads", [{"img": 1, "ok": True}, {"img": 2, "ok": False}])
        n = lake.promote("uploads", lambda r: {"img": r["img"]} if r["ok"] else None)
        assert n == 1
        assert lake.read("curated", "uploads") == [{"img": 1}]

    def test_unknown_zone_rejected(self):
        with pytest.raises(ValidationError):
            DataLake().write("gold", "x", [])

    def test_missing_data_raises(self):
        with pytest.raises(NotFoundError):
            DataLake().read("raw", "ghost")

    def test_reads_are_copies(self):
        lake = DataLake()
        lake.write("raw", "d", [{"a": 1}])
        lake.read("raw", "d")[0]["a"] = 99
        assert lake.read("raw", "d")[0]["a"] == 1


class TestLakehouseTable:
    def setup_method(self):
        self.t = LakehouseTable("predictions", {"id": str, "label": str})

    def test_schema_enforced_unlike_the_lake(self):
        with pytest.raises(ValidationError):
            self.t.append([{"id": "a"}])  # missing column
        with pytest.raises(ValidationError):
            self.t.append([{"id": "a", "label": 5}])  # wrong type

    def test_append_creates_versions(self):
        v1 = self.t.append([{"id": "a", "label": "pizza"}])
        v2 = self.t.append([{"id": "b", "label": "soup"}])
        assert (v1, v2) == (1, 2)
        assert len(self.t.read()) == 2

    def test_time_travel(self):
        self.t.append([{"id": "a", "label": "pizza"}])
        self.t.overwrite([{"id": "z", "label": "salad"}])
        assert self.t.read(as_of=1) == [{"id": "a", "label": "pizza"}]
        assert self.t.read() == [{"id": "z", "label": "salad"}]
        assert self.t.read(as_of=0) == []

    def test_unknown_version_raises(self):
        with pytest.raises(NotFoundError):
            self.t.read(as_of=5)

    def test_optimistic_concurrency(self):
        v = self.t.append([{"id": "a", "label": "x"}])
        self.t.append([{"id": "b", "label": "y"}], expected_version=v)
        with pytest.raises(ConflictError):
            # a writer holding the stale version loses
            self.t.append([{"id": "c", "label": "z"}], expected_version=v)

    def test_failed_commit_leaves_no_version(self):
        before = self.t.version
        with pytest.raises(ValidationError):
            self.t.append([{"id": "ok", "label": "ok"}, {"bad": True}])
        assert self.t.version == before
        assert self.t.read() == []

    def test_restore_is_a_new_commit(self):
        self.t.append([{"id": "a", "label": "x"}])
        self.t.overwrite([])
        v = self.t.restore(1)
        assert self.t.read() == [{"id": "a", "label": "x"}]
        assert v == 3  # rollback recorded, history preserved
        assert [tv.operation for tv in self.t.history()] == [
            "create", "append", "overwrite", "overwrite",
        ]

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=20))
    def test_version_row_counts_monotone_under_appends(self, batches):
        t = LakehouseTable("t", {"n": int})
        total = 0
        for i, n in enumerate(batches):
            t.append([{"n": j} for j in range(n)])
            total += n
            assert t.history()[-1].row_count == total
        assert len(t.read()) == total
