"""The spot PR's acceptance criteria, end to end on the cohort simulation.

(a) the spot what-if lab total undercuts the on-demand Table 1 total at
    the baseline preemption rate,
(b) expected completion time of preemptible training falls then flattens
    as the checkpoint interval shrinks,
(c) budget guardrails compress the Fig-2 max/mean tail ratio, and
(d) with the spot subsystem disabled the pipeline's outputs are
    bit-identical to the seed's.
"""

import numpy as np
import pytest

from repro.core import CohortSimulation, CostModel, SpotScenario, spot_whatif, table1
from repro.core.costmodel import distribution_stats
from repro.core.report import spot_headline_summary
from repro.spot import (
    BudgetGuard,
    BudgetPolicy,
    SpotMarket,
    commercial_rate_fn,
    expected_completion_hours,
    simulate_preemptible_training,
)
from repro.training.trainer import TrainingSimulator


@pytest.fixture(scope="module")
def lab_records():
    return CohortSimulation().run(include_project=False)


class TestSpotWhatIfSavings:
    def test_spot_total_strictly_below_on_demand(self, lab_records):
        t1 = table1(lab_records)
        what_if = spot_whatif(lab_records)
        for provider in ("aws", "gcp"):
            spot = what_if.totals[f"{provider}_cost"]
            on_demand = t1.totals[f"{provider}_cost"]
            assert 0 < spot < on_demand
            # deep discount minus modest re-work: expect a 30-80 % saving
            assert 0.3 < what_if.savings(provider) / on_demand < 0.8

    def test_headline_summary_consistent(self, lab_records):
        h = spot_headline_summary(lab_records)
        assert h["aws_lab_savings"] > 0
        assert h["gcp_lab_savings"] > 0
        assert h["time_inflation"] > 1.0
        assert h["aws_lab_per_student"] * 191 == pytest.approx(
            spot_whatif(lab_records).totals["aws_cost"], rel=1e-9
        )

    def test_edge_rows_stay_na(self, lab_records):
        for row in spot_whatif(lab_records).rows:
            if row.resource_type in ("raspberrypi5", "jetson-nano"):
                assert row.aws_spot_cost is None
                assert row.gcp_spot_cost is None

    def test_savings_shrink_with_hazard(self, lab_records):
        model = CostModel()
        savings = []
        for lam in (0.01, 0.05, 0.2, 1.0, 5.0):
            rows = model.spot_lab_rows(lab_records, SpotScenario(preempt_rate_per_hour=lam))
            savings.append(
                model.lab_totals(model.lab_rows(lab_records))["aws_cost"]
                - model.spot_lab_totals(rows)["aws_cost"]
            )
        assert savings == sorted(savings, reverse=True)

    def test_render_mentions_savings(self, lab_records):
        text = spot_whatif(lab_records).render()
        assert "Spot what-if" in text
        assert "saves $" in text


class TestCheckpointCurve:
    """(b): completion time falls then flattens as the interval shrinks."""

    def test_analytic_curve_decreases_then_flattens(self):
        lam = 0.05
        intervals = [16.0, 8.0, 4.0, 2.0, 1.0, 0.5]
        times = [
            expected_completion_hours(
                200.0, preempt_rate_per_hour=lam, checkpoint_interval_hours=tau
            )
            for tau in intervals
        ]
        # strictly decreasing while intervals are far above the optimum
        assert times[0] > times[1] > times[2] > times[3]
        # flattening: the last refinement changes the total by < 2 %
        assert abs(times[-1] - times[-2]) / times[-2] < 0.02

    def test_simulated_curve_decreases_then_flattens(self):
        lam = 30.0  # hazard per hour; 1-second steps -> mean draw ≈ 120 steps
        walls = []
        for every in (100, 50, 20):
            trainer = TrainingSimulator(seed=9, checkpoint_every=every)
            r = simulate_preemptible_training(
                trainer, steps=10_000, preempt_rate_per_hour=lam,
                restart_overhead_s=20.0, seed=13,
            )
            assert r.completed
            walls.append(r.wall_time_s)
        assert walls[0] > walls[1]  # coarse -> medium: big win
        assert abs(walls[2] - walls[1]) / walls[1] < 0.35  # medium -> fine: flat-ish


class TestGuardrailTail:
    """(c): a per-student budget guard compresses the Fig-2 tail."""

    def test_guardrails_reduce_max_over_mean(self, lab_records):
        model = CostModel()
        base_costs = model.per_student_costs(lab_records, "aws")
        base_stats = distribution_stats(base_costs, model.expected_cost_per_student("aws"))

        sim = CohortSimulation()
        kvm = sim.testbed.site("kvm@tacc")
        chi = sim.testbed.site("chi@tacc")
        guard = BudgetGuard(
            sim.testbed.loop, kvm.compute, kvm.meter,
            BudgetPolicy(budget_usd=250.0, check_every_hours=2.0, scope="user",
                         max_vm_age_hours=7 * 24.0),
            rate_fn=commercial_rate_fn(model, "aws"),
        ).watch(chi.compute, chi.meter)  # the tail lives in GPU bare-metal labs
        guard.start(until=sim.course.semester_hours)
        guarded = sim.run(include_project=False)
        guard_costs = model.per_student_costs(guarded, "aws")
        guard_stats = distribution_stats(guard_costs, model.expected_cost_per_student("aws"))

        assert guard.events  # the guard actually acted
        base_ratio = base_stats["max"] / base_stats["mean"]
        guard_ratio = guard_stats["max"] / guard_stats["mean"]
        assert guard_ratio < base_ratio * 0.8  # tail compressed by > 20 %
        assert guard_stats["max"] < base_stats["max"]


class TestBitIdenticalWhenDisabled:
    """(d): an attached-but-unused market changes nothing."""

    def test_records_identical_with_idle_market(self):
        plain = CohortSimulation().run(include_project=False)

        sim = CohortSimulation()
        market = SpotMarket(sim.testbed.loop, seed=0)
        market.attach(sim.testbed.site("kvm@tacc").compute)
        with_market = sim.run(include_project=False)

        assert len(plain) == len(with_market)
        assert plain == with_market  # frozen dataclasses: field-exact equality
        assert market.tracked_count == 0
        assert market.notices == []

    def test_table1_identical_with_idle_market(self):
        plain = CohortSimulation().run(include_project=False)
        sim = CohortSimulation()
        SpotMarket(sim.testbed.loop, seed=123).attach(sim.testbed.site("kvm@tacc").compute)
        with_market = sim.run(include_project=False)
        assert table1(plain).render() == table1(with_market).render()

    def test_fig2_identical_with_idle_market(self):
        model = CostModel()
        plain = CohortSimulation().run(include_project=False)
        sim = CohortSimulation()
        SpotMarket(sim.testbed.loop, seed=7).attach(sim.testbed.site("kvm@tacc").compute)
        with_market = sim.run(include_project=False)
        a = model.per_student_costs(plain, "aws")
        b = model.per_student_costs(with_market, "aws")
        assert a == b
        assert np.array_equal(
            np.array(sorted(a.values())), np.array(sorted(b.values()))
        )
