"""Young/Daly analytics, the preemptible training loop, and the advisor."""

import math

import pytest

from repro.common import ValidationError
from repro.scheduling.cluster import SchedCluster
from repro.scheduling.jobs import ml_workload
from repro.scheduling.policies import BackfillPolicy
from repro.spot import (
    PreemptibleScheduler,
    SpotAdvisor,
    expected_completion_hours,
    expected_time_inflation,
    simulate_preemptible_training,
    young_daly_interval,
)
from repro.training.trainer import TrainingSimulator


class TestYoungDaly:
    def test_optimum_formula(self):
        assert young_daly_interval(0.5, 1.0) == pytest.approx(1.0)
        assert young_daly_interval(30 / 3600, 0.05) == pytest.approx(math.sqrt(2 * (30 / 3600) / 0.05))

    def test_zero_rate_means_never_checkpoint(self):
        assert young_daly_interval(0.01, 0.0) == math.inf

    def test_validation(self):
        with pytest.raises(ValidationError):
            young_daly_interval(0.0, 1.0)
        with pytest.raises(ValidationError):
            young_daly_interval(0.1, -1.0)
        with pytest.raises(ValidationError):
            expected_completion_hours(0.0, preempt_rate_per_hour=0.1,
                                      checkpoint_interval_hours=1.0)

    def test_no_preemption_is_work_plus_checkpoints(self):
        t = expected_completion_hours(
            10.0, preempt_rate_per_hour=0.0, checkpoint_interval_hours=1.0,
            checkpoint_overhead_hours=0.01,
        )
        assert t == pytest.approx(10.0 + 10 * 0.01)

    def test_completion_increases_with_rate(self):
        times = [
            expected_completion_hours(40.0, preempt_rate_per_hour=lam,
                                      checkpoint_interval_hours=0.5)
            for lam in (0.0, 0.05, 0.2, 1.0)
        ]
        assert times == sorted(times)
        assert times[0] < times[-1]

    def test_optimum_beats_neighbours(self):
        lam, c = 0.1, 30 / 3600
        tau_star = young_daly_interval(c, lam)

        def t(tau):
            return expected_completion_hours(
                100.0, preempt_rate_per_hour=lam, checkpoint_interval_hours=tau,
                checkpoint_overhead_hours=c,
            )

        assert t(tau_star) <= t(tau_star * 4) + 1e-9
        assert t(tau_star) <= t(tau_star / 4) + 1e-9

    def test_inflation_at_least_one(self):
        assert expected_time_inflation(0.0) == 1.0
        assert expected_time_inflation(0.05) > 1.0
        assert expected_time_inflation(0.5) > expected_time_inflation(0.05)


class TestPreemptibleTraining:
    def test_no_preemptions_without_rate(self):
        r = simulate_preemptible_training(
            TrainingSimulator(seed=0), steps=500, preempt_rate_per_hour=0.0
        )
        assert r.completed
        assert r.n_preemptions == 0
        assert r.wasted_steps == 0
        assert r.time_inflation == pytest.approx(1.0)

    def test_preempted_run_completes_with_rework(self):
        r = simulate_preemptible_training(
            TrainingSimulator(seed=1), steps=3000, preempt_rate_per_hour=15.0, seed=2
        )
        assert r.completed
        assert r.n_preemptions > 0
        assert r.wasted_steps > 0
        assert r.steps_executed == r.target_steps + r.wasted_steps
        assert r.time_inflation > 1.0

    def test_seeded_determinism(self):
        kw = dict(steps=2000, preempt_rate_per_hour=10.0, seed=7)
        a = simulate_preemptible_training(TrainingSimulator(seed=3), **kw)
        b = simulate_preemptible_training(TrainingSimulator(seed=3), **kw)
        assert a == b

    def test_tracks_analytic_model(self):
        """Measured inflation sits in the same regime as Young/Daly's."""
        trainer = TrainingSimulator(seed=5, checkpoint_every=100)
        lam = 20.0  # per hour; steps are 1 s, so tau = 100 s
        r = simulate_preemptible_training(
            trainer, steps=20_000, preempt_rate_per_hour=lam,
            restart_overhead_s=30.0, seed=11,
        )
        analytic = expected_completion_hours(
            20_000 / 3600.0, preempt_rate_per_hour=lam,
            checkpoint_interval_hours=100 / 3600.0,
            checkpoint_overhead_hours=1e-9,  # the simulator's writes are free
            restart_overhead_hours=30 / 3600.0,
        )
        measured_h = r.wall_time_s / 3600.0
        assert analytic * 0.5 < measured_h < analytic * 2.0


class TestSpotAdvisor:
    def test_baseline_recommends_spot(self):
        advice = SpotAdvisor().advise(work_hours=20.0, on_demand_hourly_usd=1.0)
        assert advice.use_spot
        assert advice.savings_usd > 0
        assert advice.spot_cost_usd < advice.on_demand_cost_usd
        assert advice.time_inflation > 1.0

    def test_extreme_hazard_kills_the_deal(self):
        calm = SpotAdvisor().advise(work_hours=20.0, on_demand_hourly_usd=1.0,
                                    preempt_rate_per_hour=0.05)
        stormy = SpotAdvisor().advise(work_hours=20.0, on_demand_hourly_usd=1.0,
                                      preempt_rate_per_hour=60.0)
        assert calm.savings_usd > stormy.savings_usd
        assert not stormy.use_spot  # re-work inflation eats the whole discount

    def test_validation(self):
        with pytest.raises(ValidationError):
            SpotAdvisor().advise(work_hours=0.0, on_demand_hourly_usd=1.0)
        with pytest.raises(ValidationError):
            SpotAdvisor().advise(work_hours=1.0, on_demand_hourly_usd=1.0,
                                 spot_fraction=1.5)


class TestPreemptibleScheduler:
    def test_zero_rate_matches_deterministic_behaviour(self):
        res = PreemptibleScheduler(
            SchedCluster.homogeneous(4), BackfillPolicy(), preempt_rate_per_hour=0.0
        ).run(ml_workload(40, seed=1))
        assert res.n_preemptions == 0
        assert res.wasted_gpu_hours == 0.0

    def test_all_jobs_complete_under_preemption(self):
        res = PreemptibleScheduler(
            SchedCluster.homogeneous(4), BackfillPolicy(),
            preempt_rate_per_hour=0.3, seed=4,
        ).run(ml_workload(40, seed=1))
        assert res.n_preemptions > 0
        assert res.wasted_gpu_hours > 0
        assert all(j.end_time is not None for j in res.jobs)

    def test_makespan_grows_with_hazard(self):
        spans = []
        for rate in (0.0, 1.0):
            res = PreemptibleScheduler(
                SchedCluster.homogeneous(4), BackfillPolicy(),
                preempt_rate_per_hour=rate, seed=4,
            ).run(ml_workload(40, seed=1))
            spans.append(res.makespan_hours)
        assert spans[1] > spans[0]

    def test_empty_trace_rejected(self):
        with pytest.raises(ValidationError):
            PreemptibleScheduler(SchedCluster.homogeneous(1), BackfillPolicy()).run([])
