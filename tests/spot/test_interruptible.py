"""Interruptible-server lifecycle and the span-close-exactly-once audit.

Every terminal path a server can take — delete, stop→delete, lease end,
early lease delete, preemption reclaim, delete-during-notice — must
close its metering span exactly once and return quota to zero.  These
are the regression tests for the metering audit of the spot PR.
"""

import pytest

from repro.cloud.compute import ComputeService, ServerStatus
from repro.cloud.inventory import (
    CHAMELEON_FLAVORS,
    CHAMELEON_NODE_TYPES,
    EDGE_DEVICE_TYPES,
)
from repro.cloud.quota import Quota
from repro.cloud.site import Site, SiteKind
from repro.common import EventLoop, InvalidStateError, NotFoundError
from repro.spot import SpotFleet, SpotMarket, SpotTypeSpec

NOTICE = ComputeService.PREEMPTION_NOTICE_HOURS


@pytest.fixture()
def kvm():
    loop = EventLoop()
    return loop, Site(
        "kvm", SiteKind.KVM, loop, quota=Quota.unlimited(), flavors=CHAMELEON_FLAVORS
    )


class TestPreemptionLifecycle:
    def test_notice_then_reclaim_after_120s(self, kvm):
        loop, site = kvm
        s = site.compute.create_server("p", "spot", "m1.medium", interruptible=True)
        loop.run_until(10.0)
        noticed = []
        site.compute.on_preemption_notice(lambda srv: noticed.append(srv.id))
        site.compute.preempt_server(s.id)
        assert noticed == [s.id]
        assert s.preemption_notice_at == 10.0
        assert s.id in site.compute.servers  # still running during the notice
        loop.run_until(10.0 + NOTICE)
        assert s.status is ServerStatus.PREEMPTED
        assert s.id not in site.compute.servers

    def test_span_closes_at_reclaim_not_notice(self, kvm):
        loop, site = kvm
        s = site.compute.create_server("p", "spot", "m1.medium", interruptible=True)
        loop.run_until(5.0)
        site.compute.preempt_server(s.id)
        loop.run_until(5.0 + NOTICE)
        [rec] = [r for r in site.meter.records() if r.kind == "server"]
        assert rec.hours == pytest.approx(5.0 + NOTICE)  # billed through the notice
        assert site.meter.open_count == 0

    def test_preemption_releases_quota(self):
        loop = EventLoop()
        site = Site(
            "kvm", SiteKind.KVM, loop,
            quota=Quota(instances=1, cores=100, ram_gib=100),
            flavors=CHAMELEON_FLAVORS,
        )
        s = site.compute.create_server("p", "spot", "m1.medium", interruptible=True)
        site.compute.preempt_server(s.id)
        loop.run_until(1.0)
        site.compute.create_server("p", "next", "m1.medium")  # quota is free again
        assert site.quota.usage("instances") == 1

    def test_preempt_is_idempotent_during_notice(self, kvm):
        loop, site = kvm
        s = site.compute.create_server("p", "spot", "m1.small", interruptible=True)
        loop.run_until(1.0)
        site.compute.preempt_server(s.id)
        site.compute.preempt_server(s.id)  # second notice is a no-op
        loop.run_until(2.0)
        assert len([r for r in site.meter.records() if r.kind == "server"]) == 1
        assert site.meter.open_count == 0

    def test_delete_during_notice_window_safe(self, kvm):
        """A student beats the reaper: delete after the notice, before reclaim."""
        loop, site = kvm
        s = site.compute.create_server("p", "spot", "m1.small", interruptible=True)
        loop.run_until(1.0)
        site.compute.preempt_server(s.id)
        site.compute.delete_server(s.id)
        assert s.status is ServerStatus.DELETED
        loop.run_until(2.0)  # the pending reclaim event must be a no-op
        [rec] = [r for r in site.meter.records() if r.kind == "server"]
        assert rec.hours == pytest.approx(1.0)
        assert site.meter.open_count == 0
        assert site.quota.usage("instances") == 0

    def test_on_demand_server_not_preemptible(self, kvm):
        _, site = kvm
        s = site.compute.create_server("p", "vm", "m1.small")
        with pytest.raises(InvalidStateError):
            site.compute.preempt_server(s.id)

    def test_preempt_unknown_server_raises(self, kvm):
        _, site = kvm
        with pytest.raises(NotFoundError):
            site.compute.preempt_server("vm-nope")

    def test_preemption_detaches_floating_ip(self, kvm):
        loop, site = kvm
        s = site.compute.create_server("p", "spot", "m1.small", interruptible=True)
        fip = site.network.allocate_floating_ip("p")
        site.compute.associate_floating_ip(s.id, fip.id)
        site.compute.preempt_server(s.id)
        loop.run_until(1.0)
        assert not site.network.floating_ips[fip.id].associated


class TestSpanCloseExactlyOnce:
    """The audit: every terminal path closes one span, leaks none."""

    def assert_clean(self, site, expected_records):
        assert site.meter.open_count == 0, site.meter.open_ids()
        server_recs = [
            r for r in site.meter.records() if r.kind in ("server", "baremetal", "edge")
        ]
        assert len(server_recs) == expected_records
        assert site.quota.usage("instances") == 0

    def test_create_delete(self, kvm):
        loop, site = kvm
        s = site.compute.create_server("p", "a", "m1.small")
        loop.run_until(3.0)
        site.compute.delete_server(s.id)
        self.assert_clean(site, 1)

    def test_stop_then_delete(self, kvm):
        loop, site = kvm
        s = site.compute.create_server("p", "a", "m1.small")
        loop.run_until(1.0)
        site.compute.stop_server(s.id)
        loop.run_until(2.0)
        site.compute.delete_server(s.id)
        self.assert_clean(site, 1)
        # SHUTOFF still meters (the Chameleon semantics Fig 1(a) relies on)
        [rec] = [r for r in site.meter.records() if r.kind == "server"]
        assert rec.hours == pytest.approx(2.0)

    def test_lease_end_auto_terminates(self):
        loop = EventLoop()
        site = Site(
            "chi", SiteKind.BARE_METAL, loop,
            quota=Quota.unlimited(), node_types=CHAMELEON_NODE_TYPES,
        )
        lease = site.leases.create_lease("p", "compute_cascadelake", start=0.0, end=10.0)
        site.compute.create_baremetal("p", "node", "compute_cascadelake", lease.id)
        loop.run_until(20.0)
        assert site.meter.open_count == 0
        [rec] = [r for r in site.meter.records() if r.kind == "baremetal"]
        assert rec.hours == pytest.approx(10.0)

    def test_lease_deleted_early_terminates(self):
        loop = EventLoop()
        site = Site(
            "edge", SiteKind.EDGE, loop,
            quota=Quota.unlimited(), edge_types=EDGE_DEVICE_TYPES,
        )
        lease = site.leases.create_lease("p", "raspberrypi5", start=0.0, end=10.0)
        site.compute.create_edge_session("p", "cam", "raspberrypi5", lease.id)
        loop.run_until(4.0)
        site.leases.delete_lease(lease.id)
        loop.run_until(20.0)
        assert site.meter.open_count == 0
        [rec] = [r for r in site.meter.records() if r.kind == "edge"]
        assert rec.hours == pytest.approx(4.0)

    def test_preempt_reclaim(self, kvm):
        loop, site = kvm
        s = site.compute.create_server("p", "spot", "m1.small", interruptible=True)
        loop.run_until(1.0)
        site.compute.preempt_server(s.id)
        loop.run_until(2.0)
        self.assert_clean(site, 1)

    def test_fleet_long_run_leaks_nothing(self, kvm):
        """Hundreds of preempt/relaunch cycles: spans and quota stay exact."""
        loop, site = kvm
        market = SpotMarket(
            loop, seed=11, default_spec=SpotTypeSpec(preempt_rate_per_hour=1.0)
        )
        market.attach(site.compute)
        fleet = SpotFleet(loop, site.compute, market, project="p", until=300.0)
        fleet.launch("w0", "m1.small", user="alice")
        fleet.launch("w1", "m1.small", user="bob")
        loop.run_until(300.0)
        assert fleet.preemption_count > 50
        live = len(site.compute.servers)
        assert site.meter.open_count == live
        assert site.quota.usage("instances") == live
        closed = [r for r in site.meter.records(include_open=False)]
        assert len(closed) == fleet.preemption_count
        for rec in site.meter.records(include_open=True):
            assert 0.0 <= rec.start <= rec.end <= 300.0
