"""Budget-guard behaviour on a synthetic site."""

import pytest

from repro.cloud.inventory import CHAMELEON_FLAVORS
from repro.cloud.quota import Quota
from repro.cloud.site import Site, SiteKind
from repro.common import EventLoop, ValidationError
from repro.core import CostModel
from repro.spot import BudgetGuard, BudgetPolicy, commercial_rate_fn


def kvm_site(loop):
    return Site("kvm", SiteKind.KVM, loop, quota=Quota.unlimited(), flavors=CHAMELEON_FLAVORS)


def flat_rate(rec):
    return 1.0  # $1 per instance-hour keeps the arithmetic readable


class TestBudgetPolicy:
    def test_validation(self):
        with pytest.raises(ValidationError):
            BudgetPolicy(budget_usd=0.0)
        with pytest.raises(ValidationError):
            BudgetPolicy(budget_usd=10, warn_fraction=1.5)
        with pytest.raises(ValidationError):
            BudgetPolicy(budget_usd=10, check_every_hours=0)
        with pytest.raises(ValidationError):
            BudgetPolicy(budget_usd=10, scope="team")
        with pytest.raises(ValidationError):
            BudgetPolicy(budget_usd=10, max_vm_age_hours=-1)


class TestBudgetGuard:
    def test_warn_fires_once(self):
        loop = EventLoop()
        site = kvm_site(loop)
        guard = BudgetGuard(
            loop, site.compute, site.meter,
            BudgetPolicy(budget_usd=100.0, warn_fraction=0.5, check_every_hours=10.0,
                         stop=False),
            rate_fn=flat_rate,
        )
        site.compute.create_server("proj", "vm", "m1.small")
        guard.start(until=500.0)
        loop.run_until(500.0)
        warns = [e for e in guard.events if e.action == "warn"]
        assert len(warns) == 1
        assert warns[0].scope_key == "proj"
        assert warns[0].spent_usd >= 50.0
        # stop disabled: the VM survives the whole horizon
        assert len(site.compute.servers) == 1

    def test_stop_kills_over_budget_scope(self):
        loop = EventLoop()
        site = kvm_site(loop)
        guard = BudgetGuard(
            loop, site.compute, site.meter,
            BudgetPolicy(budget_usd=24.0, check_every_hours=6.0),
            rate_fn=flat_rate,
        )
        site.compute.create_server("proj", "vm", "m1.small")
        guard.start(until=100.0)
        loop.run_until(100.0)
        stops = [e for e in guard.events if e.action == "stop"]
        assert stops and stops[0].time == pytest.approx(24.0)
        assert len(site.compute.servers) == 0
        assert site.meter.open_count == 0
        # spend is frozen at the stop (≈ $24), not the full horizon
        assert guard.spend()["proj"] == pytest.approx(24.0)

    def test_stop_fires_again_for_new_servers(self):
        loop = EventLoop()
        site = kvm_site(loop)
        guard = BudgetGuard(
            loop, site.compute, site.meter,
            BudgetPolicy(budget_usd=10.0, check_every_hours=5.0),
            rate_fn=flat_rate,
        )
        site.compute.create_server("proj", "vm1", "m1.small")
        guard.start(until=100.0)
        loop.schedule(50.0, lambda: site.compute.create_server("proj", "vm2", "m1.small"))
        loop.run_until(100.0)
        stops = [e for e in guard.events if e.action == "stop" and "terminated 1" in e.detail]
        assert len(stops) == 2  # the relaunched VM was killed too
        assert len(site.compute.servers) == 0

    def test_user_scope_isolates_students(self):
        loop = EventLoop()
        site = kvm_site(loop)
        guard = BudgetGuard(
            loop, site.compute, site.meter,
            BudgetPolicy(budget_usd=20.0, check_every_hours=6.0, scope="user"),
            rate_fn=flat_rate,
        )
        site.compute.create_server("proj", "a", "m1.small", user="spender")
        frugal = site.compute.create_server("proj", "b", "m1.small", user="frugal")
        loop.schedule(12.0, lambda: site.compute.delete_server(frugal.id))
        guard.start(until=100.0)
        loop.run_until(100.0)
        assert guard.stopped_keys() == ["spender"]
        assert len(site.compute.servers) == 0  # spender killed, frugal self-deleted
        spend = guard.spend()
        assert spend["frugal"] == pytest.approx(12.0)

    def test_reaper_terminates_forgotten_vms(self):
        loop = EventLoop()
        site = kvm_site(loop)
        guard = BudgetGuard(
            loop, site.compute, site.meter,
            BudgetPolicy(budget_usd=1e9, check_every_hours=6.0, max_vm_age_hours=48.0),
            rate_fn=flat_rate,
        )
        site.compute.create_server("proj", "forgotten", "m1.small", user="alice")
        guard.start(until=500.0)
        loop.run_until(500.0)
        reaps = [e for e in guard.events if e.action == "reap"]
        assert len(reaps) == 1
        assert reaps[0].time == pytest.approx(54.0)  # first check after 48 h
        [rec] = [r for r in site.meter.records() if r.kind == "server"]
        assert rec.hours == pytest.approx(54.0)

    def test_unstarted_guard_schedules_nothing(self):
        loop = EventLoop()
        site = kvm_site(loop)
        BudgetGuard(
            loop, site.compute, site.meter,
            BudgetPolicy(budget_usd=1.0), rate_fn=flat_rate,
        )
        assert loop.pending == 0


class TestCommercialRateFn:
    def test_lab_record_uses_matched_rate(self):
        from repro.cloud.metering import UsageRecord

        model = CostModel()
        rate = commercial_rate_fn(model, "aws")
        rec = UsageRecord(resource_id="vm-1", kind="server", resource_type="m1.medium",
                          project="course", start=0, end=1, lab="lab2")
        assert rate(rec) == pytest.approx(model.hourly_rate("lab2", "aws"))

    def test_edge_records_priced_zero(self):
        from repro.cloud.metering import UsageRecord

        rate = commercial_rate_fn()
        rec = UsageRecord(resource_id="e-1", kind="edge", resource_type="raspberrypi5",
                          project="course", start=0, end=1, lab="project")
        assert rate(rec) == 0.0

    def test_storage_and_fip_rates(self):
        from repro.cloud.metering import UsageRecord
        from repro.core import AWS_CATALOG

        rate = commercial_rate_fn()
        fip = UsageRecord(resource_id="f", kind="floating_ip", resource_type="fip",
                          project="c", start=0, end=1)
        vol = UsageRecord(resource_id="v", kind="volume", resource_type="vol",
                          project="c", start=0, end=1, quantity=100.0)
        assert rate(fip) == pytest.approx(AWS_CATALOG.ip_hourly_usd)
        assert rate(vol) == pytest.approx(AWS_CATALOG.block_gb_month_usd / 730.0)

    def test_unknown_provider_rejected(self):
        with pytest.raises(ValidationError):
            commercial_rate_fn(provider="azure")
