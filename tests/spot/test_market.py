"""Market process: determinism, bounds, and reclaim behaviour."""

import numpy as np
import pytest

from repro.cloud.inventory import CHAMELEON_FLAVORS
from repro.cloud.quota import Quota
from repro.cloud.site import Site, SiteKind
from repro.common.errors import InvalidStateError, ValidationError
from repro.common.events import EventLoop
from repro.spot import SpotMarket, SpotTypeSpec, simulated_price_path


def kvm_site(loop):
    return Site("kvm", SiteKind.KVM, loop, quota=Quota.unlimited(), flavors=CHAMELEON_FLAVORS)


class TestPricePath:
    def test_seeded_determinism(self):
        a = simulated_price_path(SpotTypeSpec(), 500, seed=4)
        b = simulated_price_path(SpotTypeSpec(), 500, seed=4)
        assert np.array_equal(a, b)

    def test_seed_changes_path(self):
        a = simulated_price_path(SpotTypeSpec(), 500, seed=4)
        b = simulated_price_path(SpotTypeSpec(), 500, seed=5)
        assert not np.array_equal(a, b)

    def test_bounds_respected(self):
        p = simulated_price_path(SpotTypeSpec(volatility=0.5, spike_prob=0.2), 2000, seed=0)
        assert p.min() >= 0.05 - 1e-12
        assert p.max() <= 1.0 + 1e-12

    def test_mean_reversion_holds_long_run_discount(self):
        spec = SpotTypeSpec(mean_discount=0.32, spike_prob=0.0)
        p = simulated_price_path(spec, 20_000, seed=1)
        # log-OU stationary mean sits near log(0.32); allow a generous band
        assert 0.2 < float(np.exp(np.log(p).mean())) < 0.45

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValidationError):
            SpotTypeSpec(mean_discount=0.0)
        with pytest.raises(ValidationError):
            SpotTypeSpec(mean_discount=1.5)
        with pytest.raises(ValidationError):
            SpotTypeSpec(reversion=2.0)
        with pytest.raises(ValidationError):
            SpotTypeSpec(spike_mult=0.5)
        with pytest.raises(ValidationError):
            SpotTypeSpec(preempt_rate_per_hour=-1.0)
        with pytest.raises(ValidationError):
            simulated_price_path(SpotTypeSpec(), 0)


class TestSpotMarket:
    def test_idle_market_schedules_nothing(self):
        loop = EventLoop()
        market = SpotMarket(loop, seed=0)
        market.attach(kvm_site(loop).compute)
        assert loop.pending == 0
        loop.run_until(100.0)
        assert loop.fired == 0

    def test_attach_twice_rejected(self):
        loop = EventLoop()
        market = SpotMarket(loop, seed=0)
        market.attach(kvm_site(loop).compute)
        with pytest.raises(InvalidStateError):
            market.attach(kvm_site(loop).compute)

    def test_tracks_interruptible_creates_only(self):
        loop = EventLoop()
        site = kvm_site(loop)
        market = SpotMarket(loop, seed=0)
        market.attach(site.compute)
        site.compute.create_server("p", "ondemand", "m1.small")
        assert market.tracked_count == 0
        site.compute.create_server("p", "spot", "m1.small", interruptible=True)
        assert market.tracked_count == 1

    def test_reclaims_eventually_and_goes_quiet(self):
        loop = EventLoop()
        site = kvm_site(loop)
        market = SpotMarket(
            loop, seed=3, default_spec=SpotTypeSpec(preempt_rate_per_hour=2.0)
        )
        market.attach(site.compute)
        server = site.compute.create_server("p", "spot", "m1.small", interruptible=True)
        loop.run_until(500.0)
        assert len(market.notices) == 1
        assert market.notices[0].server_id == server.id
        assert market.tracked_count == 0
        assert server.id not in site.compute.servers
        # once nothing is tracked the market stops ticking
        fired = loop.fired
        loop.run_until(600.0)
        assert loop.fired == fired

    def test_non_interruptible_track_rejected(self):
        loop = EventLoop()
        site = kvm_site(loop)
        market = SpotMarket(loop, seed=0)
        server = site.compute.create_server("p", "vm", "m1.small")
        with pytest.raises(InvalidStateError):
            market.track(server)

    def test_price_history_recorded_while_tracking(self):
        loop = EventLoop()
        site = kvm_site(loop)
        market = SpotMarket(loop, seed=0, default_spec=SpotTypeSpec(preempt_rate_per_hour=0.0))
        market.attach(site.compute)
        site.compute.create_server("p", "spot", "m1.small", interruptible=True)
        loop.run_until(24.0)
        hist = market.price_history("m1.small")
        assert len(hist) >= 24
        assert all(0.05 <= price <= 1.0 for _, price in hist)
