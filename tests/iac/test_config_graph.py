"""Tests for IaC configuration, interpolation, and the dependency graph."""

import pytest

from repro.common import ConflictError, ValidationError
from repro.iac.config import Config, ResourceConfig, find_references, interpolate
from repro.iac.graph import dependency_graph, destroy_order, execution_order


class TestReferences:
    def test_find_in_string(self):
        refs = find_references("${os_network.net1.id}")
        assert refs == [("os_network", "net1", "id")]

    def test_find_in_nested_structures(self):
        args = {"a": ["${t.x.id}", {"b": "${t.y.addr}"}], "c": 5}
        assert set(find_references(args)) == {("t", "x", "id"), ("t", "y", "addr")}

    def test_whole_reference_preserves_type(self):
        out = interpolate("${t.x.port}", {"t.x": {"port": 8080}})
        assert out == 8080

    def test_embedded_reference_stringifies(self):
        out = interpolate("http://${t.x.ip}:80", {"t.x": {"ip": "10.0.0.5"}})
        assert out == "http://10.0.0.5:80"

    def test_unknown_resource_raises(self):
        with pytest.raises(ValidationError):
            interpolate("${t.missing.id}", {})

    def test_unknown_attr_raises(self):
        with pytest.raises(ValidationError):
            interpolate("${t.x.nope}", {"t.x": {"id": 1}})

    def test_interpolate_nested(self):
        resolved = interpolate({"ids": ["${t.x.id}"]}, {"t.x": {"id": "abc"}})
        assert resolved == {"ids": ["abc"]}


class TestConfig:
    def test_address_and_implicit_deps(self):
        c = Config()
        c.resource("os_network", "net1", name="private")
        r = c.resource("os_subnet", "sub1", network_id="${os_network.net1.id}", cidr="10.0.0.0/24")
        assert r.address == "os_subnet.sub1"
        assert r.dependencies() == {"os_network.net1"}

    def test_explicit_depends_on(self):
        r = ResourceConfig("os_server", "a", depends_on=("os_network.n",))
        assert "os_network.n" in r.dependencies()

    def test_duplicate_address_rejected(self):
        c = Config()
        c.resource("t", "a")
        with pytest.raises(ConflictError):
            c.resource("t", "a")

    def test_invalid_names_rejected(self):
        with pytest.raises(ValidationError):
            ResourceConfig("bad type", "x")
        with pytest.raises(ValidationError):
            ResourceConfig("t", "bad name!")
        with pytest.raises(ValidationError):
            ResourceConfig("t", "x", depends_on=("notanaddress",))

    def test_validate_catches_dangling_dep(self):
        c = Config()
        c.resource("t", "a", ref="${t.ghost.id}")
        with pytest.raises(ValidationError):
            c.validate()


class TestGraph:
    def _three_tier(self):
        c = Config()
        c.resource("os_network", "net")
        c.resource("os_subnet", "sub", network_id="${os_network.net.id}", cidr="10.0.0.0/24")
        c.resource("os_server", "vm", flavor="m1.small", network_id="${os_network.net.id}",
                   depends_on=("os_subnet.sub",))
        return c

    def test_execution_order_respects_deps(self):
        order = execution_order(self._three_tier())
        assert order.index("os_network.net") < order.index("os_subnet.sub")
        assert order.index("os_subnet.sub") < order.index("os_server.vm")

    def test_destroy_order_is_reversed(self):
        c = self._three_tier()
        assert destroy_order(c) == list(reversed(execution_order(c)))

    def test_cycle_detected(self):
        c = Config()
        c.resource("t", "a", ref="${t.b.id}")
        c.resource("t", "b", ref="${t.a.id}")
        with pytest.raises(ValidationError):
            dependency_graph(c)

    def test_order_is_deterministic(self):
        c = Config()
        for name in ["zeta", "alpha", "mid"]:
            c.resource("t", name)
        assert execution_order(c) == ["t.alpha", "t.mid", "t.zeta"]

    def test_independent_resources_all_present(self):
        c = Config()
        c.resource("t", "a")
        c.resource("u", "b")
        assert set(execution_order(c)) == {"t.a", "u.b"}
