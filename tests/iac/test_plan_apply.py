"""Tests for plan/apply/destroy against the OpenStack provider."""

import pytest

from repro.cloud.inventory import CHAMELEON_FLAVORS
from repro.cloud.quota import Quota
from repro.cloud.site import Site, SiteKind
from repro.common import EventLoop
from repro.iac.config import Config
from repro.iac.plan import Action, apply, destroy, detect_drift, plan
from repro.iac.provider import OpenStackProvider
from repro.iac.state import State


@pytest.fixture()
def site():
    loop = EventLoop()
    return Site("kvm", SiteKind.KVM, loop, quota=Quota.unlimited(), flavors=CHAMELEON_FLAVORS)


@pytest.fixture()
def provider(site):
    return OpenStackProvider(site, "proj", lab="lab3")


def lab3_config(n_servers: int = 3) -> Config:
    """The Unit 3 Terraform config: network + router + 3 VMs + floating IP."""
    c = Config()
    c.resource("os_network", "private")
    c.resource("os_subnet", "subnet", network_id="${os_network.private.id}", cidr="192.168.10.0/24")
    c.resource("os_router", "gw", external_network_id="external")
    c.resource(
        "os_router_iface", "gw_iface",
        router_id="${os_router.gw.id}", subnet_id="${os_subnet.subnet.id}",
    )
    c.resource("os_floating_ip", "fip")
    for i in range(n_servers):
        c.resource(
            "os_server", f"node{i}",
            name=f"node{i}", flavor="m1.medium", network_id="${os_network.private.id}",
            floating_ip_id="${os_floating_ip.fip.id}" if i == 0 else None,
            depends_on=("os_subnet.subnet",),
        )
    return c


class TestPlan:
    def test_initial_plan_all_creates(self):
        p = plan(lab3_config(), State())
        assert p.summary()["create"] == 8
        assert p.summary()["delete"] == 0

    def test_plan_after_apply_is_empty(self, provider):
        cfg, state = lab3_config(), State()
        apply(plan(cfg, state), state, provider)
        assert plan(cfg, state).empty

    def test_removed_resource_planned_for_delete(self, provider):
        cfg, state = lab3_config(3), State()
        apply(plan(cfg, state), state, provider)
        smaller = lab3_config(2)
        p = plan(smaller, state)
        assert [s for s in p.steps if s.action is Action.DELETE][0].address == "os_server.node2"

    def test_changed_args_planned_for_update(self, provider):
        cfg, state = lab3_config(1), State()
        apply(plan(cfg, state), state, provider)
        cfg2 = lab3_config(1)
        # mutate an arg: same address, different flavor
        from repro.iac.config import Config, ResourceConfig

        cfg3 = Config([r if r.name != "node0" else ResourceConfig(
            r.type, r.name, {**r.args, "flavor": "m1.large"}, r.depends_on) for r in cfg2])
        p = plan(cfg3, state)
        updates = [s for s in p.steps if s.action is Action.UPDATE]
        assert len(updates) == 1
        assert updates[0].changed_keys == ("flavor",)


class TestApply:
    def test_apply_creates_real_resources(self, site, provider):
        cfg, state = lab3_config(), State()
        apply(plan(cfg, state), state, provider)
        assert len(site.compute.servers) == 3
        assert len(site.network.floating_ips) == 1
        # interpolation delivered the real network id to the servers
        server = next(iter(site.compute.servers.values()))
        assert server.fixed_ips[0].startswith("192.168.10.")

    def test_floating_ip_wired_to_first_server(self, site, provider):
        cfg, state = lab3_config(), State()
        apply(plan(cfg, state), state, provider)
        associated = [s for s in site.compute.servers.values() if s.floating_ip_id]
        assert len(associated) == 1
        assert associated[0].name == "node0"

    def test_immutable_change_replaces_server(self, site, provider):
        cfg, state = lab3_config(1), State()
        apply(plan(cfg, state), state, provider)
        old_id = state.get("os_server.node0").resource_id
        from repro.iac.config import Config, ResourceConfig

        cfg2 = Config([r if r.name != "node0" else ResourceConfig(
            r.type, r.name, {**r.args, "flavor": "m1.large"}, r.depends_on) for r in lab3_config(1)])
        apply(plan(cfg2, state), state, provider)
        new_id = state.get("os_server.node0").resource_id
        assert new_id != old_id
        assert old_id not in site.compute.servers
        assert site.compute.servers[new_id].resource_type == "m1.large"

    def test_apply_is_idempotent_two_rounds(self, site, provider):
        cfg, state = lab3_config(), State()
        apply(plan(cfg, state), state, provider)
        servers_before = set(site.compute.servers)
        apply(plan(cfg, state), state, provider)
        assert set(site.compute.servers) == servers_before

    def test_shrink_config_deletes_server(self, site, provider):
        cfg, state = lab3_config(3), State()
        apply(plan(cfg, state), state, provider)
        apply(plan(lab3_config(2), state), state, provider)
        assert len(site.compute.servers) == 2


class TestDestroyAndDrift:
    def test_destroy_removes_everything(self, site, provider):
        cfg, state = lab3_config(), State()
        apply(plan(cfg, state), state, provider)
        destroy(cfg, state, provider)
        assert len(state) == 0
        assert not site.compute.servers
        assert not site.network.floating_ips
        # network/subnet/router teardown succeeded despite dependencies
        assert len(site.network.networks) == 1  # only the external net remains

    def test_no_drift_after_apply(self, provider):
        cfg, state = lab3_config(), State()
        apply(plan(cfg, state), state, provider)
        assert detect_drift(state, provider) == {}

    def test_out_of_band_delete_detected(self, site, provider):
        cfg, state = lab3_config(1), State()
        apply(plan(cfg, state), state, provider)
        # ClickOps deletion out of band
        sid = state.get("os_server.node0").resource_id
        site.compute.delete_server(sid)
        drift = detect_drift(state, provider)
        assert drift == {"os_server.node0": "missing"}

    def test_out_of_band_change_detected(self, site, provider):
        cfg, state = lab3_config(1), State()
        apply(plan(cfg, state), state, provider)
        sid = state.get("os_server.node0").resource_id
        site.compute.servers[sid].name = "renamed-by-hand"
        assert detect_drift(state, provider) == {"os_server.node0": "changed"}
