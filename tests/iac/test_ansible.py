"""Tests for the Ansible-like playbook runner."""

import pytest

from repro.common import NotFoundError, ValidationError
from repro.iac.ansible import Host, Play, Playbook, PlaybookRunner, Task


@pytest.fixture()
def inventory():
    return {f"node{i}": Host(f"node{i}") for i in range(3)}


def k8s_install_playbook() -> Playbook:
    """A Kubespray-flavored playbook: packages, config, service + handler."""
    tasks = (
        Task("install containerd", "package", {"name": "containerd"}),
        Task("install kubeadm", "package", {"name": "kubeadm"}),
        Task(
            "write kubelet config", "copy",
            {"dest": "/etc/kubernetes/kubelet.yaml", "content": "cgroupDriver: systemd"},
            notify=("restart kubelet",),
        ),
        Task("enable kubelet", "service", {"name": "kubelet", "state": "running"}),
    )
    handlers = (Task("restart kubelet", "service", {"name": "kubelet", "state": "restarted"}),)
    return Playbook("install-k8s", (Play("k8s", ("node0", "node1", "node2"), tasks, handlers),))


class TestPlaybookRunner:
    def test_first_run_changes_everything(self, inventory):
        runner = PlaybookRunner(inventory)
        results = runner.run(k8s_install_playbook())
        task_results = [r for r in results if r.task != "restart kubelet"]
        assert all(r.changed for r in task_results)
        assert inventory["node1"].packages == {"containerd", "kubeadm"}
        assert inventory["node2"].services["kubelet"] == "running"

    def test_second_run_is_idempotent(self, inventory):
        runner = PlaybookRunner(inventory)
        runner.run(k8s_install_playbook())
        results = runner.run(k8s_install_playbook())
        assert all(not r.changed for r in results)

    def test_handler_fires_once_after_change(self, inventory):
        runner = PlaybookRunner(inventory)
        results = runner.run(k8s_install_playbook())
        restarts = [r for r in results if r.task == "restart kubelet"]
        assert len(restarts) == 3  # once per host, once per play

    def test_handler_not_fired_without_change(self, inventory):
        runner = PlaybookRunner(inventory)
        runner.run(k8s_install_playbook())
        results = runner.run(k8s_install_playbook())
        assert [r for r in results if r.task == "restart kubelet"] == []

    def test_when_condition_skips(self, inventory):
        inventory["node0"].facts["role"] = "control"
        pb = Playbook("x", (Play("p", ("node0", "node1"), (
            Task("only control", "package", {"name": "etcd"},
                 when=lambda h: h.facts.get("role") == "control"),
        )),))
        runner = PlaybookRunner(inventory)
        runner.run(pb)
        assert "etcd" in inventory["node0"].packages
        assert "etcd" not in inventory["node1"].packages

    def test_command_guarded_by_creates(self, inventory):
        pb = Playbook("x", (Play("p", ("node0",), (
            Task("kubeadm init", "command", {"cmd": "kubeadm init", "creates": "/etc/kubernetes/admin.conf"}),
        )),))
        runner = PlaybookRunner(inventory)
        r1 = runner.run(pb)
        r2 = runner.run(pb)
        assert r1[0].changed and not r2[0].changed

    def test_lineinfile_idempotent(self, inventory):
        pb = Playbook("x", (Play("p", ("node0",), (
            Task("add module", "lineinfile", {"path": "/etc/modules", "line": "br_netfilter"}),
        )),))
        runner = PlaybookRunner(inventory)
        assert runner.run(pb)[0].changed
        assert not runner.run(pb)[0].changed
        assert inventory["node0"].files["/etc/modules"] == "br_netfilter"

    def test_unknown_host_raises(self):
        runner = PlaybookRunner({})
        pb = Playbook("x", (Play("p", ("ghost",), (Task("t", "package", {"name": "x"}),)),))
        with pytest.raises(NotFoundError):
            runner.run(pb)

    def test_unknown_module_raises(self, inventory):
        runner = PlaybookRunner(inventory)
        pb = Playbook("x", (Play("p", ("node0",), (Task("t", "quantum_entangle", {}),)),))
        with pytest.raises(ValidationError):
            runner.run(pb)

    def test_unknown_handler_raises(self, inventory):
        runner = PlaybookRunner(inventory)
        pb = Playbook("x", (Play("p", ("node0",), (
            Task("t", "package", {"name": "x"}, notify=("ghost handler",)),
        )),))
        with pytest.raises(NotFoundError):
            runner.run(pb)

    def test_failed_task_aborts(self, inventory):
        runner = PlaybookRunner(inventory)
        pb = Playbook("x", (Play("p", ("node0",), (
            Task("bad", "package", {"name": "x", "state": "sideways"}),
            Task("never runs", "package", {"name": "y"}),
        )),))
        with pytest.raises(ValidationError):
            runner.run(pb)
        assert "y" not in inventory["node0"].packages

    def test_custom_module_registration(self, inventory):
        from repro.iac.ansible import TaskResult

        runner = PlaybookRunner(inventory)
        runner.register_module(
            "kubespray", lambda h, a: TaskResult(h.name, "kubespray", True)
        )
        pb = Playbook("x", (Play("p", ("node0",), (Task("deploy", "kubespray", {}),)),))
        assert runner.run(pb)[0].changed

    def test_set_fact_changed_semantics(self, inventory):
        runner = PlaybookRunner(inventory)
        pb = Playbook("x", (Play("p", ("node0",), (Task("f", "set_fact", {"a": 1}),)),))
        assert runner.run(pb)[0].changed
        assert not runner.run(pb)[0].changed
