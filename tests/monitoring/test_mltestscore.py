"""Tests for the ML Test Score rubric (Breck et al., paper ref [3])."""

import pytest

from repro.common import NotFoundError, ValidationError
from repro.monitoring.mltestscore import (
    READINESS_BANDS,
    RUBRIC_ITEMS,
    MLTestScorecard,
)
from repro.monitoring.mltestscore import TestStatus as Status


class TestRubricStructure:
    def test_four_sections_of_seven(self):
        assert set(RUBRIC_ITEMS) == {"data", "model", "infrastructure", "monitoring"}
        for items in RUBRIC_ITEMS.values():
            assert len(items) == 7

    def test_bands_ordered(self):
        thresholds = [t for t, _ in READINESS_BANDS]
        assert thresholds == sorted(thresholds)


class TestScorecard:
    def test_untouched_card_scores_zero(self):
        card = MLTestScorecard("gourmetgram")
        assert card.final_score == 0.0
        assert "research project" in card.readiness

    def test_section_score_sums_items(self):
        card = MLTestScorecard("gg")
        items = RUBRIC_ITEMS["monitoring"]
        card.record("monitoring", items[0], Status.AUTOMATED)
        card.record("monitoring", items[1], Status.MANUAL)
        assert card.section_score("monitoring") == 1.5

    def test_final_score_is_weakest_section(self):
        card = MLTestScorecard("gg")
        for section, items in RUBRIC_ITEMS.items():
            if section == "data":
                continue  # leave data at zero
            for item in items:
                card.record(section, item, Status.AUTOMATED)
        assert card.final_score == 0.0  # the weakest link rule

    def test_full_automation_scores_seven(self):
        card = MLTestScorecard("gg")
        for section, items in RUBRIC_ITEMS.items():
            for item in items:
                card.record(section, item, Status.AUTOMATED)
        assert card.final_score == 7.0
        assert "strong levels" in card.readiness

    def test_readiness_bands(self):
        card = MLTestScorecard("gg")
        for section, items in RUBRIC_ITEMS.items():
            for item in items[:3]:
                card.record(section, item, Status.AUTOMATED)
        assert card.final_score == 3.0
        assert "reasonable level" in card.readiness

    def test_gaps_are_the_backlog(self):
        card = MLTestScorecard("gg")
        item = RUBRIC_ITEMS["data"][0]
        card.record("data", item, Status.AUTOMATED)
        gaps = card.gaps()
        assert ("data", item) not in gaps
        assert len(gaps) == 27

    def test_manual_counts_half_but_not_a_gap(self):
        card = MLTestScorecard("gg")
        item = RUBRIC_ITEMS["model"][0]
        card.record("model", item, Status.MANUAL)
        assert ("model", item) not in card.gaps()
        assert card.section_score("model") == 0.5

    def test_rerecording_overwrites(self):
        card = MLTestScorecard("gg")
        item = RUBRIC_ITEMS["data"][0]
        card.record("data", item, Status.MANUAL)
        card.record("data", item, Status.AUTOMATED)
        assert card.section_score("data") == 1.0

    def test_unknown_section_and_item_rejected(self):
        card = MLTestScorecard("gg")
        with pytest.raises(ValidationError):
            card.record("security", "x", Status.MANUAL)
        with pytest.raises(NotFoundError):
            card.record("data", "made-up item", Status.MANUAL)

    def test_summary_shape(self):
        card = MLTestScorecard("gg")
        summary = card.summary()
        assert set(summary) == {"data", "model", "infrastructure", "monitoring", "final"}
