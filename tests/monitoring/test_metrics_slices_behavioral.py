"""Tests for offline metrics, slice evaluation, and behavioral tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import ValidationError
from repro.monitoring import (
    BehavioralSuite,
    BehavioralTest,
    classification_report,
    evaluate_slices,
    latency_summary,
    ngram_overlap_score,
)


class TestClassificationReport:
    def test_perfect_predictions(self):
        rep = classification_report(["a", "b", "a"], ["a", "b", "a"])
        assert rep.accuracy == 1.0
        assert rep.macro_f1 == 1.0

    def test_confusion_accounting(self):
        y_true = ["cat", "cat", "dog", "dog"]
        y_pred = ["cat", "dog", "dog", "dog"]
        rep = classification_report(y_true, y_pred)
        assert rep.accuracy == 0.75
        assert rep.per_class_recall["cat"] == 0.5
        assert rep.per_class_precision["dog"] == pytest.approx(2 / 3)
        assert rep.support == {"cat": 2, "dog": 2}

    def test_worst_class_identified(self):
        y_true = ["a"] * 10 + ["b"] * 10
        y_pred = ["a"] * 10 + ["a"] * 8 + ["b"] * 2
        cls, f1 = classification_report(y_true, y_pred).worst_class()
        assert cls == "b"
        assert f1 < 0.5

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValidationError):
            classification_report(["a"], ["a", "b"])
        with pytest.raises(ValidationError):
            classification_report([], [])

    @given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=50))
    def test_accuracy_bounds_property(self, labels):
        rep = classification_report(labels, list(reversed(labels)))
        assert 0.0 <= rep.accuracy <= 1.0
        for v in rep.per_class_f1.values():
            assert 0.0 <= v <= 1.0


class TestNgramOverlap:
    def test_identical_is_one(self):
        s = "the curry was delicious and spicy"
        assert ngram_overlap_score(s, s) == pytest.approx(1.0)

    def test_disjoint_is_zero(self):
        assert ngram_overlap_score("a b c d", "w x y z") == 0.0

    def test_partial_overlap_between(self):
        score = ngram_overlap_score("the cat sat on the mat", "the cat sat on a mat")
        assert 0.0 < score < 1.0

    def test_brevity_penalty(self):
        ref = "a b c d e f g h"
        short = ngram_overlap_score(ref, "a b c d")
        full = ngram_overlap_score(ref, ref)
        assert short < full

    def test_empty_candidate(self):
        assert ngram_overlap_score("a b", "") == 0.0


class TestLatencySummary:
    def test_percentile_ordering(self):
        s = latency_summary(list(range(1, 1001)))
        assert s.p50_ms <= s.p95_ms <= s.p99_ms <= s.max_ms
        assert s.count == 1000

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            latency_summary([])

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            latency_summary([1.0, -2.0])


class TestSliceEvaluation:
    def test_underperforming_slice_flagged(self):
        # slice "night" photos: 50% accuracy vs 100% for "day"
        y_true = ["pizza"] * 40
        y_pred = ["pizza"] * 20 + ["pizza"] * 10 + ["salad"] * 10
        slices = ["day"] * 20 + ["night"] * 20
        rep = evaluate_slices(y_true, y_pred, slices)
        assert rep.flagged == ("night",)
        assert rep.gap("night") > 0.2

    def test_small_slices_not_flagged(self):
        y_true = ["a"] * 20 + ["a"] * 3
        y_pred = ["a"] * 20 + ["b"] * 3
        slices = ["big"] * 20 + ["tiny"] * 3
        rep = evaluate_slices(y_true, y_pred, slices, min_support=10)
        assert rep.flagged == ()
        assert rep.per_slice["tiny"] == 0.0  # still reported

    def test_custom_metric(self):
        def always_half(t, p):
            return 0.5

        rep = evaluate_slices(["a"] * 12, ["a"] * 12, ["s"] * 12, metric=always_half)
        assert rep.overall == 0.5
        assert rep.flagged == ()

    def test_alignment_enforced(self):
        with pytest.raises(ValidationError):
            evaluate_slices(["a"], ["a"], ["s", "t"])


class TestBehavioral:
    @staticmethod
    def predict(text: str) -> str:
        """A toy classifier with a robustness bug: shouting changes the label."""
        if text.isupper():
            return "dessert"
        return "soup" if "soup" in text else "salad"

    def test_mft_passes_and_fails(self):
        test = BehavioralTest(
            "basic labels", "mft",
            cases=["tomato soup", "greek salad"],
            expected=["soup", "salad"],
        )
        report = test.run(self.predict)
        assert report.pass_rate == 1.0

    def test_invariance_catches_case_bug(self):
        test = BehavioralTest(
            "case invariance", "inv",
            cases=["tomato soup", "greek salad"],
            perturb=str.upper,
        )
        report = test.run(self.predict)
        assert report.pass_rate == 0.0
        assert "prediction changed" in report.failed_cases[0].detail

    def test_directional(self):
        scores = {"small": 0.3, "small extra": 0.5}
        test = BehavioralTest(
            "more words more score", "dir",
            cases=["small"],
            perturb=lambda s: s + " extra",
            direction=lambda before, after: after > before,
        )
        report = test.run(lambda s: scores[s])
        assert report.pass_rate == 1.0

    def test_suite_gate(self):
        suite = BehavioralSuite(min_pass_rate=0.9)
        suite.add(BehavioralTest("mft", "mft", cases=["tomato soup"], expected=["soup"]))
        suite.add(BehavioralTest("inv", "inv", cases=["tomato soup"], perturb=str.upper))
        ok, reports = suite.gate(self.predict)
        assert not ok  # the invariance failure blocks promotion
        assert reports["mft"].pass_rate == 1.0

    def test_invalid_tests_rejected(self):
        with pytest.raises(ValidationError):
            BehavioralTest("x", "mft", cases=["a"], expected=[])
        with pytest.raises(ValidationError):
            BehavioralTest("x", "inv", cases=["a"])
        with pytest.raises(ValidationError):
            BehavioralTest("x", "dir", cases=["a"], perturb=str.upper)
        with pytest.raises(ValidationError):
            BehavioralTest("x", "fuzz", cases=[])
