"""Tests for drift detectors, online evaluation, alerts, and feedback."""

import numpy as np
import pytest

from repro.common import InvalidStateError, NotFoundError, ValidationError
from repro.monitoring import (
    ABTest,
    AlertRule,
    AlertState,
    CanaryController,
    CanaryStatus,
    FeedbackCollector,
    MetricStore,
    ShadowDeployment,
    WindowedMeanDetector,
    chi2_drift,
    ks_drift,
    psi,
    psi_drift,
)


class TestDriftDetectors:
    def test_ks_no_drift_same_distribution(self):
        rng = np.random.default_rng(0)
        ref, cur = rng.normal(0, 1, 500), rng.normal(0, 1, 500)
        assert not ks_drift(ref, cur).drifted

    def test_ks_detects_shift(self):
        rng = np.random.default_rng(0)
        assert ks_drift(rng.normal(0, 1, 500), rng.normal(2, 1, 500)).drifted

    def test_ks_needs_samples(self):
        with pytest.raises(ValidationError):
            ks_drift([1.0], [1.0, 2.0])

    def test_psi_zero_for_identical(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0, 1, 2000)
        assert psi(x, x) < 0.01

    def test_psi_bands(self):
        rng = np.random.default_rng(2)
        ref = rng.normal(0, 1, 2000)
        mild = psi_drift(ref, rng.normal(0.1, 1, 2000))
        major = psi_drift(ref, rng.normal(1.5, 1, 2000))
        assert not mild.drifted
        assert major.drifted
        assert major.detail == "major"

    def test_chi2_on_prediction_distribution(self):
        """The lab's output-distribution monitor: class mix shifts under drift."""
        ref = {"pizza": 500, "salad": 300, "soup": 200}
        same = {"pizza": 260, "salad": 145, "soup": 95}
        shifted = {"pizza": 100, "salad": 100, "soup": 800}
        assert not chi2_drift(ref, same).drifted
        assert chi2_drift(ref, shifted).drifted

    def test_chi2_validation(self):
        with pytest.raises(ValidationError):
            chi2_drift({"a": 1}, {"a": 2})
        with pytest.raises(ValidationError):
            chi2_drift({"a": 0, "b": 0}, {"a": 1, "b": 1})

    def test_windowed_detector_calibrates_then_detects(self):
        det = WindowedMeanDetector(reference_size=100, window_size=20, z_threshold=4)
        rng = np.random.default_rng(3)
        for _ in range(100):
            assert det.update(float(rng.normal(0, 1))) is False
        assert det.calibrated
        # stable stream: no detection
        fired = any(det.update(float(rng.normal(0, 1))) for _ in range(100))
        assert not fired
        # shifted stream: detection
        fired = any(det.update(float(rng.normal(3, 1))) for _ in range(60))
        assert fired

    def test_windowed_detector_reset(self):
        det = WindowedMeanDetector(reference_size=50, window_size=10)
        for _ in range(50):
            det.update(0.0)
        det.reset_reference()
        assert not det.calibrated

    def test_windowed_detector_validation(self):
        with pytest.raises(ValidationError):
            WindowedMeanDetector(reference_size=5)


class TestShadow:
    def test_agreement_measured_without_affecting_traffic(self):
        champion = lambda x: "pizza"
        challenger = lambda x: "pizza" if x % 2 == 0 else "salad"
        shadow = ShadowDeployment(champion, challenger)
        responses = [shadow.serve(i) for i in range(10)]
        assert all(r == "pizza" for r in responses)  # champion always serves
        assert shadow.agreement == 0.5
        assert len(shadow.disagreements()) == 5

    def test_agreement_needs_traffic(self):
        with pytest.raises(ValidationError):
            ShadowDeployment(lambda x: x, lambda x: x).agreement


class TestCanary:
    def test_bad_canary_rolled_back(self):
        ctl = CanaryController(max_error_delta=0.02, min_samples=50, seed=0)
        rng = np.random.default_rng(100)  # decorrelated from routing
        status = CanaryStatus.RUNNING
        while status is CanaryStatus.RUNNING:
            arm = ctl.route()
            err = rng.random() < (0.20 if arm == "canary" else 0.02)
            status = ctl.observe(arm, error=err)
        assert status is CanaryStatus.ROLLED_BACK

    def test_good_canary_promoted(self):
        ctl = CanaryController(min_samples=50, promote_after=200, seed=1)
        rng = np.random.default_rng(101)  # decorrelated from routing
        status = CanaryStatus.RUNNING
        for _ in range(20_000):
            arm = ctl.route()
            status = ctl.observe(arm, error=rng.random() < 0.02)
            if status is not CanaryStatus.RUNNING:
                break
        assert status is CanaryStatus.PROMOTED

    def test_terminal_canary_rejects_observations(self):
        ctl = CanaryController(min_samples=1, promote_after=1)
        ctl.observe("canary", error=False)
        ctl.observe("baseline", error=False)
        with pytest.raises(InvalidStateError):
            ctl.observe("canary", error=False)

    def test_routing_fraction_roughly_respected(self):
        ctl = CanaryController(canary_fraction=0.1, seed=2)
        arms = [ctl.route() for _ in range(5000)]
        frac = arms.count("canary") / len(arms)
        assert 0.07 < frac < 0.13

    def test_invalid_config(self):
        with pytest.raises(ValidationError):
            CanaryController(canary_fraction=0.0)


class TestABTest:
    def test_detects_real_difference(self):
        ab = ABTest(seed=0)
        rng = np.random.default_rng(77)
        for _ in range(4000):
            arm = ab.assign()
            p = 0.30 if arm == "A" else 0.20
            ab.record(arm, success=rng.random() < p)
        res = ab.result()
        assert res.significant
        assert res.winner == "A"

    def test_no_difference_not_significant(self):
        # distinct seeds: identical streams would correlate arm with outcome
        ab = ABTest(seed=1)
        rng = np.random.default_rng(99)
        for _ in range(2000):
            arm = ab.assign()
            ab.record(arm, success=rng.random() < 0.25)
        res = ab.result()
        assert not res.significant
        assert res.winner is None

    def test_needs_traffic_in_both_arms(self):
        ab = ABTest()
        ab.record("A", success=True)
        with pytest.raises(ValidationError):
            ab.result()

    def test_unknown_arm_rejected(self):
        with pytest.raises(ValidationError):
            ABTest().record("C", success=True)


class TestMetricStoreAlerts:
    def test_record_query_window(self):
        store = MetricStore()
        for t in range(10):
            store.record("latency_ms", float(t), 100.0 + t)
        ts, vs = store.query("latency_ms", start=3, end=6)
        assert list(ts) == [3.0, 4.0, 5.0, 6.0]

    def test_labelled_series_distinct(self):
        store = MetricStore()
        store.record("rps", 0.0, 10, labels={"env": "prod"})
        store.record("rps", 0.0, 2, labels={"env": "staging"})
        _, prod = store.query("rps", labels={"env": "prod"})
        assert list(prod) == [10.0]

    def test_out_of_order_rejected(self):
        store = MetricStore()
        store.record("m", 5.0, 1.0)
        with pytest.raises(ValidationError):
            store.record("m", 4.0, 1.0)

    def test_missing_series_raises(self):
        with pytest.raises(NotFoundError):
            MetricStore().query("ghost")

    def test_alert_fires_after_hold(self):
        store = MetricStore()
        rule = AlertRule("high latency", "latency_ms", threshold=200, window=1.0, for_hours=0.5)
        store.record("latency_ms", 0.0, 100)
        assert rule.evaluate(store, 0.0) is AlertState.OK
        # breach begins and is observed at t=1.0
        store.record("latency_ms", 1.0, 500)
        assert rule.evaluate(store, 1.0) is AlertState.PENDING
        store.record("latency_ms", 1.3, 500)
        assert rule.evaluate(store, 1.3) is AlertState.PENDING  # only 0.3h held
        store.record("latency_ms", 1.6, 500)
        assert rule.evaluate(store, 1.6) is AlertState.FIRING  # 0.6h >= for_hours

    def test_alert_resolves_on_recovery(self):
        store = MetricStore()
        rule = AlertRule("high", "m", threshold=10, window=0.5, for_hours=0.0)
        store.record("m", 0.0, 100)
        assert rule.evaluate(store, 0.0) is AlertState.FIRING
        store.record("m", 1.0, 1)
        assert rule.evaluate(store, 1.0) is AlertState.OK

    def test_less_than_comparison(self):
        store = MetricStore()
        rule = AlertRule("low accuracy", "acc", threshold=0.8, comparison="<", window=1.0)
        store.record("acc", 0.0, 0.6)
        assert rule.evaluate(store, 0.0) is AlertState.FIRING

    def test_invalid_rule(self):
        with pytest.raises(ValidationError):
            AlertRule("x", "m", threshold=1, comparison="!=")


class TestFeedback:
    def test_user_flags_and_live_accuracy(self):
        fc = FeedbackCollector(annotation_rate=0.0, seed=0)
        for i in range(20):
            fc.record(f"r{i}", features=i, prediction="pizza")
        for i in range(5):
            fc.user_flag(f"r{i}", corrected_label="salad")
        for i in range(5, 15):
            fc.annotate(f"r{i}", "pizza")
        assert fc.flag_rate() == 0.25
        # 10 correct of 15 labelled
        assert fc.live_accuracy() == pytest.approx(10 / 15)

    def test_flagged_items_prioritised_for_annotation(self):
        fc = FeedbackCollector(annotation_rate=0.0, seed=0)
        fc.record("a", 1, "x")
        fc.record("b", 2, "x")
        fc.user_flag("b")
        assert fc.annotation_backlog() == ["b"]

    def test_sampling_into_annotation_queue(self):
        fc = FeedbackCollector(annotation_rate=0.5, seed=0)
        for i in range(200):
            fc.record(f"r{i}", i, "x")
        backlog = fc.annotation_backlog()
        assert 60 < len(backlog) < 140

    def test_training_examples_from_labels(self):
        fc = FeedbackCollector(annotation_rate=0.0)
        fc.record("a", {"img": 1}, "pizza")
        fc.annotate("a", "salad")
        assert fc.training_examples() == [({"img": 1}, "salad")]

    def test_guards(self):
        fc = FeedbackCollector()
        with pytest.raises(ValidationError):
            fc.flag_rate()
        fc.record("a", 1, "x")
        with pytest.raises(ValidationError):
            fc.record("a", 1, "x")
        with pytest.raises(NotFoundError):
            fc.user_flag("ghost")
        with pytest.raises(ValidationError):
            fc.live_accuracy()
