"""Edge-path tests for the lifecycle loop: gates, rollbacks, config guards."""

import pytest

from repro.common import ValidationError
from repro.mlops import FoodDatasetGenerator, MLOpsLifecycle
from repro.tracking.registry import ModelStage


class TestGateAndRollbackPaths:
    def test_impossible_gate_margin_blocks_promotion(self):
        """With an unreachable improvement bar, drift is detected and a
        retrain runs, but the challenger never ships."""
        gen = FoodDatasetGenerator(seed=9, drift_rate=0.6, class_spread=0.8)
        lc = MLOpsLifecycle(gen, seed=9, gate_margin=2.0)  # accuracy can't improve by 2.0
        lc.initial_deploy()
        report = lc.run(until=8.0, dt=1.0)
        assert report.retrain_count >= 1
        assert report.of_kind("gate_failed")
        assert lc.client.registry.production(MLOpsLifecycle.MODEL_NAME).version == 1

    def test_registry_never_has_two_production_versions(self):
        gen = FoodDatasetGenerator(seed=10, drift_rate=0.7, class_spread=0.8)
        lc = MLOpsLifecycle(gen, seed=10)
        lc.initial_deploy()
        lc.run(until=10.0, dt=1.0)
        versions = lc.client.registry.versions(MLOpsLifecycle.MODEL_NAME)
        prod = [v for v in versions if v.stage is ModelStage.PRODUCTION]
        assert len(prod) == 1

    def test_drift_reference_resets_after_promotion(self):
        """After promoting, the new prediction mix becomes the reference, so
        the loop doesn't immediately re-trigger on the same drift."""
        gen = FoodDatasetGenerator(seed=11, drift_rate=0.6, class_spread=0.8)
        lc = MLOpsLifecycle(gen, seed=11)
        lc.initial_deploy()
        report = lc.run(until=10.0, dt=1.0)
        # consecutive drift events at every step would mean the reference
        # never reset; require drift events to be sparser than serve events
        assert len(report.of_kind("drift")) < len(report.of_kind("serve"))

    def test_invalid_config_rejected(self):
        gen = FoodDatasetGenerator(seed=0)
        with pytest.raises(ValidationError):
            MLOpsLifecycle(gen, serve_batch=0)
        lc = MLOpsLifecycle(gen)
        with pytest.raises(ValidationError):
            lc.run(until=0.0)
        lc2 = MLOpsLifecycle(gen)
        lc2.initial_deploy()
        with pytest.raises(ValidationError):
            lc2.run(until=5.0, dt=-1.0)

    def test_event_report_accessors(self):
        gen = FoodDatasetGenerator(seed=12, drift_rate=0.6, class_spread=0.8)
        lc = MLOpsLifecycle(gen, seed=12)
        lc.initial_deploy()
        report = lc.run(until=6.0, dt=1.0)
        series = report.accuracy_series()
        assert len(series) == 6
        assert all(0.0 <= acc <= 1.0 for _, acc in series)
        assert report.promote_count == len(report.of_kind("promote"))
