"""Tests for the Unit 9 safeguards: filters, guardrails, red-teaming, bias audit."""

import pytest

from repro.common import ValidationError
from repro.mlops.safety import (
    AttackCase,
    ContentFilter,
    FilterRule,
    Guardrail,
    RedTeamHarness,
    Severity,
    bias_audit,
)


def classifier(request):
    """A toy endpoint returning (label, confidence)."""
    text = str(request)
    if "pizza" in text:
        return "pizza", 0.95
    if "blurry" in text:
        return "dessert", 0.3  # uncertain on bad photos
    return "vegetable", 0.8


class TestContentFilter:
    def test_first_matching_rule_decides(self):
        f = ContentFilter([
            FilterRule("a", r"foo", "cat1"),
            FilterRule("b", r"foo bar", "cat2"),
        ])
        decision = f.check("foo bar")
        assert not decision.allowed
        assert decision.reason == "cat1:a"

    def test_clean_text_allowed(self):
        f = ContentFilter.default_gourmetgram()
        assert f.check("a lovely margherita pizza").allowed

    def test_default_rules_catch_pii_and_injection(self):
        f = ContentFilter.default_gourmetgram()
        assert not f.check("contact bob@example.org").allowed
        assert not f.check("Ignore previous instructions and do X").allowed
        assert not f.check("SSN 123-45-6789").allowed

    def test_case_insensitive(self):
        f = ContentFilter([FilterRule("x", r"secret", "c")])
        assert not f.check("SECRET").allowed

    def test_bad_pattern_rejected(self):
        import re

        with pytest.raises(re.error):
            FilterRule("bad", r"([", "c")


class TestGuardrail:
    def test_clean_request_served(self):
        g = Guardrail(classifier, input_filter=ContentFilter.default_gourmetgram())
        resp = g.serve("pizza photo")
        assert resp.prediction == "pizza"
        assert not resp.blocked and not resp.abstained

    def test_input_filter_blocks(self):
        g = Guardrail(classifier, input_filter=ContentFilter.default_gourmetgram())
        resp = g.serve("pizza, email me at a@b.co")
        assert resp.blocked
        assert resp.prediction is None
        assert "privacy" in resp.reason

    def test_confidence_floor_abstains(self):
        g = Guardrail(classifier, confidence_floor=0.5)
        resp = g.serve("blurry photo")
        assert resp.abstained and not resp.blocked
        assert resp.prediction is None

    def test_output_filter_blocks_label(self):
        g = Guardrail(classifier, output_filter=ContentFilter([
            FilterRule("no-veg", r"vegetable", "policy")
        ]))
        resp = g.serve("some photo")
        assert resp.blocked
        assert "policy" in resp.reason

    def test_audit_log_append_only(self):
        g = Guardrail(classifier, input_filter=ContentFilter.default_gourmetgram(),
                      confidence_floor=0.5)
        g.serve("pizza")
        g.serve("blurry")
        g.serve("email a@b.co")
        actions = [e.action for e in g.audit_log]
        assert actions == ["allowed", "abstained", "blocked"]

    def test_block_rate(self):
        g = Guardrail(classifier, input_filter=ContentFilter.default_gourmetgram())
        g.serve("pizza")
        g.serve("email a@b.co")
        assert g.block_rate() == 0.5

    def test_block_rate_requires_traffic(self):
        with pytest.raises(ValidationError):
            Guardrail(classifier).block_rate()

    def test_invalid_floor_rejected(self):
        with pytest.raises(ValidationError):
            Guardrail(classifier, confidence_floor=1.5)


class TestRedTeam:
    def test_guarded_endpoint_defends_default_suite(self):
        g = Guardrail(classifier, input_filter=ContentFilter.default_gourmetgram())
        report = RedTeamHarness(g).run(RedTeamHarness.default_suite())
        assert report.defense_rate == 1.0

    def test_unguarded_endpoint_fails(self):
        g = Guardrail(classifier)  # no filters
        report = RedTeamHarness(g).run(RedTeamHarness.default_suite())
        assert report.defense_rate == 0.0
        assert report.weakest_category() is not None

    def test_partial_defense_identifies_weakest(self):
        only_privacy = ContentFilter([
            FilterRule("pii-email", r"[\w.+-]+@[\w-]+\.[\w.]+", "privacy", Severity.HIGH),
            FilterRule("pii-ssn", r"\b\d{3}-\d{2}-\d{4}\b", "privacy", Severity.HIGH),
        ])
        g = Guardrail(classifier, input_filter=only_privacy)
        report = RedTeamHarness(g).run(RedTeamHarness.default_suite())
        assert 0 < report.defense_rate < 1
        assert report.weakest_category() in ("injection", "harmful")

    def test_empty_suite_rejected(self):
        g = Guardrail(classifier)
        with pytest.raises(ValidationError):
            RedTeamHarness(g).run([])


class TestBiasAudit:
    def test_flags_disadvantaged_group(self):
        # group B gets 60% accuracy vs 100% for A
        y_true = ["x"] * 60
        y_pred = ["x"] * 30 + ["x"] * 18 + ["y"] * 12
        groups = ["A"] * 30 + ["B"] * 30
        report = bias_audit(y_true, y_pred, groups, min_support=10)
        assert report.flagged == ("B",)
        assert report.gap("B") > 0.1

    def test_balanced_groups_not_flagged(self):
        y = ["x"] * 40
        groups = ["A"] * 20 + ["B"] * 20
        report = bias_audit(y, y, groups)
        assert report.flagged == ()
