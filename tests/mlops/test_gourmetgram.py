"""Tests for the GourmetGram data, model, and lifecycle loop."""

import numpy as np
import pytest

from repro.common import InvalidStateError, ValidationError
from repro.mlops import FoodClassifier, FoodDatasetGenerator, MLOpsLifecycle
from repro.tracking.registry import ModelStage


class TestData:
    def test_seeded_determinism(self):
        g1 = FoodDatasetGenerator(seed=5)
        g2 = FoodDatasetGenerator(seed=5)
        d1, d2 = g1.sample(100, time=1.0), g2.sample(100, time=1.0)
        np.testing.assert_array_equal(d1.features, d2.features)
        np.testing.assert_array_equal(d1.labels, d2.labels)

    def test_drift_moves_means(self):
        g = FoodDatasetGenerator(drift_rate=0.5)
        shift = np.linalg.norm(g.means_at(4.0) - g.means_at(0.0), axis=1)
        np.testing.assert_allclose(shift, 2.0)  # rate * t along unit directions

    def test_zero_drift_rate_is_stationary(self):
        g = FoodDatasetGenerator(drift_rate=0.0)
        np.testing.assert_array_equal(g.means_at(0.0), g.means_at(100.0))

    def test_class_names(self):
        g = FoodDatasetGenerator(seed=0)
        ds = g.sample(10)
        assert len(ds.class_names()) == 10

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            FoodDatasetGenerator(n_classes=1)
        with pytest.raises(ValidationError):
            FoodDatasetGenerator().sample(0)


class TestModel:
    def setup_method(self):
        self.gen = FoodDatasetGenerator(seed=1, class_spread=0.8)

    def test_high_accuracy_in_distribution(self):
        train = self.gen.sample(2000, time=0.0, seed=10)
        test = self.gen.sample(1000, time=0.0, seed=11)
        model = FoodClassifier().fit(train)
        assert model.accuracy(test) > 0.9

    def test_accuracy_degrades_under_drift(self):
        """The mechanistic drift story the lifecycle loop depends on."""
        model = FoodClassifier().fit(self.gen.sample(2000, time=0.0, seed=10))
        accs = [model.accuracy(self.gen.sample(1000, time=t, seed=20 + int(t)))
                for t in (0.0, 2.0, 4.0, 8.0)]
        assert accs[0] > accs[-1] + 0.2  # substantial decay
        assert all(a >= b - 0.05 for a, b in zip(accs, accs[1:]))  # ~monotone

    def test_retraining_restores_accuracy(self):
        stale = FoodClassifier().fit(self.gen.sample(2000, time=0.0, seed=10))
        fresh = FoodClassifier().fit(self.gen.sample(2000, time=6.0, seed=12))
        test = self.gen.sample(1000, time=6.0, seed=13)
        assert fresh.accuracy(test) > stale.accuracy(test) + 0.1

    def test_predict_before_fit_rejected(self):
        with pytest.raises(InvalidStateError):
            FoodClassifier().predict(np.zeros((1, 8)))

    def test_dimension_mismatch_rejected(self):
        model = FoodClassifier().fit(self.gen.sample(500, seed=10))
        with pytest.raises(ValidationError):
            model.predict(np.zeros((1, 3)))

    def test_serialisation_round_trip(self):
        model = FoodClassifier().fit(self.gen.sample(500, seed=10))
        clone = FoodClassifier.from_bytes(model.to_bytes())
        test = self.gen.sample(200, seed=11)
        np.testing.assert_array_equal(model.predict(test.features), clone.predict(test.features))
        assert model.fingerprint() == clone.fingerprint()

    def test_corrupt_payload_rejected(self):
        with pytest.raises(ValidationError):
            FoodClassifier.from_bytes(b"short")
        model = FoodClassifier().fit(self.gen.sample(500, seed=10))
        with pytest.raises(ValidationError):
            FoodClassifier.from_bytes(model.to_bytes()[:-8])

    def test_single_vector_prediction(self):
        model = FoodClassifier().fit(self.gen.sample(500, seed=10))
        pred = model.predict_one(model.centroids[3])
        assert pred == 3


class TestLifecycle:
    def make_lifecycle(self, drift_rate=0.6):
        gen = FoodDatasetGenerator(seed=2, drift_rate=drift_rate, class_spread=0.8)
        return MLOpsLifecycle(gen, seed=2)

    def test_initial_deploy_creates_production_v1(self):
        lc = self.make_lifecycle()
        v = lc.initial_deploy()
        assert v == 1
        assert lc.client.registry.production(MLOpsLifecycle.MODEL_NAME).version == 1

    def test_step_requires_deploy(self):
        lc = self.make_lifecycle()
        with pytest.raises(ValidationError):
            lc.step(1.0)

    def test_drift_triggers_retraining_and_promotion(self):
        lc = self.make_lifecycle()
        lc.initial_deploy()
        report = lc.run(until=8.0, dt=1.0)
        assert report.retrain_count >= 1
        assert report.promote_count >= 2  # initial + at least one retrain
        prod = lc.client.registry.production(MLOpsLifecycle.MODEL_NAME)
        assert prod.version > 1

    def test_managed_system_beats_unmanaged(self):
        """The course's core lesson, measured: the loop preserves accuracy."""
        lc = self.make_lifecycle()
        lc.initial_deploy()
        lc.run(until=8.0, dt=1.0)
        managed_final = lc.report.accuracy_series()[-1][1]

        gen = FoodDatasetGenerator(seed=2, drift_rate=0.6, class_spread=0.8)
        stale = FoodClassifier().fit(gen.sample(2000, time=0.0, seed=50))
        unmanaged_final = stale.accuracy(gen.sample(1000, time=8.0, seed=51))
        assert managed_final > unmanaged_final + 0.1

    def test_no_drift_no_retraining(self):
        lc = self.make_lifecycle(drift_rate=0.0)
        lc.initial_deploy()
        report = lc.run(until=6.0, dt=1.0)
        assert report.retrain_count == 0
        assert lc.client.registry.production(MLOpsLifecycle.MODEL_NAME).version == 1

    def test_runs_logged_to_tracking(self):
        lc = self.make_lifecycle()
        lc.initial_deploy()
        lc.run(until=8.0, dt=1.0)
        exp = lc.client.store.get_experiment_by_name("gourmetgram-retrain")
        assert len(exp.run_ids) >= 2  # initial train + retrains
        best = lc.client.store.best_run(exp.id, "val_accuracy", mode="max")
        assert best.latest_metric("val_accuracy") > 0.8

    def test_model_artifacts_stored_and_loadable(self):
        lc = self.make_lifecycle()
        lc.initial_deploy()
        prod = lc.client.registry.production(MLOpsLifecycle.MODEL_NAME)
        payload = lc.client.artifacts.get_artifact(
            prod.run_id, f"models/{MLOpsLifecycle.MODEL_NAME}/weights.bin"
        )
        restored = FoodClassifier.from_bytes(payload)
        assert restored.is_trained

    def test_accuracy_recovers_after_promotion(self):
        lc = self.make_lifecycle()
        lc.initial_deploy()
        report = lc.run(until=10.0, dt=1.0)
        series = report.accuracy_series()
        promos = [e.time for e in report.of_kind("promote") if e.time > 0]
        assert promos, "expected at least one retrain promotion"
        t_promo = promos[0]
        before = [a for t, a in series if t <= t_promo][-1]
        after = [a for t, a in series if t > t_promo]
        assert after and max(after) > before
