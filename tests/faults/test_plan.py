"""Plan-time fault resolution: calendars, the sweep, and the ledger."""

import pytest

from repro.common.errors import InvalidStateError, ValidationError
from repro.core.cohort import (
    KVM_SITE,
    METAL_SITE,
    CohortConfig,
    ShardPlan,
    SlotActivity,
    VmLabActivity,
    plan_cohort,
)
from repro.core.course import scaled_course
from repro.faults.plan import (
    ApiErrorBurst,
    FaultCalendar,
    FaultPlanConfig,
    FaultSweep,
    OutageWindow,
    build_fault_calendar,
    plan_faulted_cohort,
)

SMALL = scaled_course(0.25)


def calendar_with(outages=(), bursts=(), config=None, horizon=1000.0):
    cfg = config if config is not None else FaultPlanConfig(seed=1)
    return FaultCalendar(config=cfg, horizon_hours=horizon,
                         outages=tuple(outages), bursts=tuple(bursts))


def vm_shard(start=100.0, duration=10.0, vm_count=2):
    act = VmLabActivity(lab_id="lab2", user="s1", start=start, duration=duration,
                        flavor="m1.medium", vm_count=vm_count)
    return ShardPlan(shard_id="student:s1", spawn_key=(0,), vm_labs=(act,))


class TestConfigValidation:
    def test_default_is_null(self):
        assert FaultPlanConfig().is_null

    @pytest.mark.parametrize("kwargs", [
        {"outage_rate_per_week": -1.0},
        {"hazard_rate_per_khour": -0.1},
        {"burst_rate_per_week": -2.0},
        {"outage_mean_hours": 0.0},
        {"outage_sigma": -0.5},
        {"redo_fraction": 1.5},
        {"sites": ()},
    ])
    def test_bad_fields_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            FaultPlanConfig(**kwargs)


class TestCalendar:
    def test_null_config_builds_empty_calendar(self):
        cal = build_fault_calendar(FaultPlanConfig(), horizon_hours=500.0)
        assert cal.empty
        assert cal.outages == () and cal.bursts == ()

    def test_calendar_is_pure_function_of_config_and_horizon(self):
        cfg = FaultPlanConfig(seed=5, outage_rate_per_week=0.5, burst_rate_per_week=1.0)
        a = build_fault_calendar(cfg, horizon_hours=2000.0)
        b = build_fault_calendar(cfg, horizon_hours=2000.0)
        assert a == b
        assert not a.empty

    def test_different_fault_seed_different_calendar(self):
        kw = dict(outage_rate_per_week=1.0, burst_rate_per_week=2.0)
        a = build_fault_calendar(FaultPlanConfig(seed=1, **kw), horizon_hours=2000.0)
        b = build_fault_calendar(FaultPlanConfig(seed=2, **kw), horizon_hours=2000.0)
        assert a.outages != b.outages

    def test_windows_clamped_to_horizon_and_sorted(self):
        cfg = FaultPlanConfig(seed=5, outage_rate_per_week=2.0,
                              outage_mean_hours=100.0, outage_sigma=1.0)
        cal = build_fault_calendar(cfg, horizon_hours=300.0)
        assert all(w.end <= 300.0 for w in cal.outages)
        starts = [w.start for w in cal.outages]
        assert starts == sorted(starts)

    def test_bad_horizon_rejected(self):
        with pytest.raises(ValidationError):
            build_fault_calendar(FaultPlanConfig(), horizon_hours=0.0)

    def test_lookups(self):
        w = OutageWindow(site=KVM_SITE, start=10.0, end=20.0)
        b = ApiErrorBurst(site=KVM_SITE, start=50.0, end=51.0)
        cal = calendar_with(outages=[w], bursts=[b])
        assert cal.outage_at(KVM_SITE, 10.0) is w
        assert cal.outage_at(KVM_SITE, 20.0) is None  # half-open
        assert cal.outage_at(METAL_SITE, 15.0) is None
        assert cal.burst_at(KVM_SITE, 50.5) is b
        assert cal.outage_over(KVM_SITE, 0.0, 10.1) is w
        assert cal.outage_over(KVM_SITE, 20.0, 30.0) is None
        assert cal.next_clear(KVM_SITE, 15.0) == 20.0
        assert cal.next_clear(KVM_SITE, 5.0) == 5.0


class TestSweepSemantics:
    def test_empty_calendar_returns_same_objects(self):
        """The null plan is a strict no-op — identity, not just equality."""
        shards = (vm_shard(),)
        sweep = FaultSweep(calendar_with())
        out_students, out_groups = sweep.apply(shards, (), semester_hours=1000.0)
        assert out_students is shards
        assert sweep.ledger.events == []

    def test_apply_twice_raises(self):
        cal = calendar_with(outages=[OutageWindow(KVM_SITE, 10.0, 20.0)])
        sweep = FaultSweep(cal)
        sweep.apply((vm_shard(),), (), semester_hours=1000.0)
        with pytest.raises(InvalidStateError):
            sweep.apply((vm_shard(),), (), semester_hours=1000.0)

    def test_outage_kills_running_vm_and_relaunches(self):
        cal = calendar_with(outages=[OutageWindow(KVM_SITE, start=105.0, end=106.0)])
        sweep = FaultSweep(cal)
        (shard,), _ = sweep.apply((vm_shard(start=100.0, duration=10.0),), (),
                                  semester_hours=1000.0)
        assert len(shard.vm_labs) == 2
        first, second = shard.vm_labs
        assert first.start == 100.0 and first.duration == pytest.approx(5.0)
        assert second.start >= 106.0  # relaunch waits out the window
        # remaining 5 h plus the redone fraction of the killed 5 h
        assert second.duration == pytest.approx(5.0 + 0.5 * 5.0)
        assert sweep.ledger.outage_kills == 1
        assert sweep.ledger.redo_instance_hours == pytest.approx(2.5 * 2)  # ×vm_count

    def test_start_inside_outage_is_delayed(self):
        cal = calendar_with(outages=[OutageWindow(KVM_SITE, start=95.0, end=120.0)])
        sweep = FaultSweep(cal)
        (shard,), _ = sweep.apply((vm_shard(start=100.0, duration=10.0),), (),
                                  semester_hours=1000.0)
        assert len(shard.vm_labs) == 1
        assert shard.vm_labs[0].start >= 120.0
        assert shard.vm_labs[0].duration == pytest.approx(10.0)  # work not lost
        assert sweep.ledger.delayed_starts == 1
        assert sweep.ledger.delay_hours > 0

    def test_semester_long_outage_abandons_activity(self):
        cal = calendar_with(outages=[OutageWindow(KVM_SITE, start=0.0, end=1000.0)])
        sweep = FaultSweep(cal)
        (shard,), _ = sweep.apply((vm_shard(start=100.0, duration=10.0, vm_count=3),),
                                  (), semester_hours=1000.0)
        assert shard.vm_labs == ()
        assert sweep.ledger.abandoned == 1
        assert sweep.ledger.lost_instance_hours == pytest.approx(30.0)

    def test_slot_overlapping_outage_moves_whole_interval(self):
        slot = SlotActivity(lab_id="lab4", user="s1", site=METAL_SITE,
                            node_type="gpu_v100", start=100.0, slot_hours=3.0,
                            edge=False)
        shard = ShardPlan(shard_id="student:s1", spawn_key=(0,), slots=(slot,))
        cal = calendar_with(outages=[OutageWindow(METAL_SITE, start=102.0, end=104.0)])
        sweep = FaultSweep(cal)
        (out,), _ = sweep.apply((shard,), (), semester_hours=1000.0)
        moved = out.slots[0]
        assert moved.start >= 104.0
        assert moved.slot_hours == 3.0  # reservations move, never shrink
        assert cal.outage_over(METAL_SITE, moved.start,
                               moved.start + moved.slot_hours) is None

    def test_burst_delays_start_on_transient_policy(self):
        cal = calendar_with(bursts=[ApiErrorBurst(KVM_SITE, start=99.9, end=100.5)])
        sweep = FaultSweep(cal)
        (shard,), _ = sweep.apply((vm_shard(start=100.0, duration=10.0),), (),
                                  semester_hours=1000.0)
        assert shard.vm_labs[0].start > 100.0
        # 0.25 h backoff lands inside the burst; the second (0.5 h) clears it
        assert shard.vm_labs[0].start == pytest.approx(100.75)
        assert sweep.ledger.delayed_starts == 1

    def test_hazard_kills_are_seeded_and_bounded(self):
        cfg = FaultPlanConfig(seed=3, hazard_rate_per_khour=50.0)
        cal = build_fault_calendar(cfg, horizon_hours=1000.0)
        a = FaultSweep(cal).apply((vm_shard(duration=100.0),), (), semester_hours=1000.0)
        b = FaultSweep(cal).apply((vm_shard(duration=100.0),), (), semester_hours=1000.0)
        assert a == b  # hazard stream re-derived, not shared state
        sweep = FaultSweep(cal)
        (shard,), _ = sweep.apply((vm_shard(duration=100.0),), (), semester_hours=1000.0)
        # relaunch policy bounds segments: ≤ 1 original + 3 relaunches
        assert 1 <= len(shard.vm_labs) <= 4


class TestLedgerConservation:
    def test_unit_hour_accounting_balances(self):
        """Planned = executed + lost − redo, per the ledger's books."""
        cfg = FaultPlanConfig(seed=9, outage_rate_per_week=0.5,
                              hazard_rate_per_khour=5.0, burst_rate_per_week=1.0)
        config = CohortConfig()
        base = plan_cohort(SMALL, config)
        faulted, ledger = plan_faulted_cohort(SMALL, config, cfg)
        assert ledger.events  # anti-vacuity

        def vm_instance_hours(plan):
            return sum(
                a.duration * a.vm_count
                for s in plan.student_shards for a in s.vm_labs
            ) + sum(
                a.hours for s in plan.group_shards for a in s.project_vms
            )

        planned = vm_instance_hours(base)
        executed = vm_instance_hours(faulted)
        assert executed == pytest.approx(
            planned + ledger.redo_instance_hours - ledger.lost_instance_hours,
            rel=1e-9,
        )

    def test_hardware_failures_view_matches_counts(self):
        cfg = FaultPlanConfig(seed=9, hazard_rate_per_khour=10.0)
        _, ledger = plan_faulted_cohort(SMALL, CohortConfig(), cfg)
        failures = ledger.hardware_failures()
        assert len(failures) == ledger.hardware_kills
        assert all(f.site for f in failures)

    def test_per_user_redo_sums_to_total(self):
        cfg = FaultPlanConfig(seed=9, outage_rate_per_week=0.5,
                              hazard_rate_per_khour=5.0)
        _, ledger = plan_faulted_cohort(SMALL, CohortConfig(), cfg)
        per_user = ledger.per_user_redo_hours()
        assert sum(per_user.values()) == pytest.approx(ledger.redo_instance_hours)
