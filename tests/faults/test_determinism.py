"""Digest equality under faults: serial vs parallel, and the null-plan anchor.

Mirrors ``tests/parallel/test_equivalence.py`` — the contract is that a
resolved fault plan is just data, so worker count can never change the
merged records digest.
"""

import pytest

from repro.core.cohort import CohortConfig, CohortSimulation, plan_cohort
from repro.core.course import scaled_course
from repro.core.report import records_digest
from repro.faults.plan import FaultPlanConfig, plan_faulted_cohort
from repro.parallel.engine import execute_plan
from repro.parallel.merge import merge_shard_records

SMALL = scaled_course(0.25)
SEEDS = (42, 7, 1234)
WORKERS = (1, 2, 4)

CHAOS = FaultPlanConfig(
    seed=11,
    outage_rate_per_week=0.3,
    hazard_rate_per_khour=2.0,
    burst_rate_per_week=1.0,
)


@pytest.fixture(scope="module")
def faulted_runs():
    """One faulted plan + serial reference digest per cohort seed."""
    runs = {}
    for seed in SEEDS:
        config = CohortConfig(seed=seed)
        plan, ledger = plan_faulted_cohort(SMALL, config, CHAOS)
        records = CohortSimulation(SMALL, config, plan=plan).run()
        runs[seed] = (config, plan, ledger, records)
    return runs


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("workers", WORKERS)
def test_parallel_matches_serial_under_faults(faulted_runs, seed, workers):
    config, plan, _, serial = faulted_runs[seed]
    results = execute_plan(plan, config, workers=workers)
    merged = merge_shard_records([r.records for r in results])
    assert records_digest(merged) == records_digest(serial)
    assert len(merged) == len(serial)


@pytest.mark.parametrize("seed", SEEDS)
def test_fault_plan_is_reproducible(seed):
    config = CohortConfig(seed=seed)
    a, la = plan_faulted_cohort(SMALL, config, CHAOS)
    b, lb = plan_faulted_cohort(SMALL, config, CHAOS)
    assert a.student_shards == b.student_shards
    assert a.group_shards == b.group_shards
    assert la.events == lb.events


def test_faults_actually_fired(faulted_runs):
    """Anti-vacuity: the chaos config must perturb every seed's plan."""
    for seed in SEEDS:
        _, _, ledger, _ = faulted_runs[seed]
        assert ledger.events, f"no fault events at seed {seed}"


def test_null_fault_plan_matches_unfaulted_baseline():
    """FaultPlanConfig() must be invisible: same plan objects, same digest."""
    config = CohortConfig(seed=42)
    base_plan = plan_cohort(SMALL, config)
    null_plan, ledger = plan_faulted_cohort(SMALL, config, FaultPlanConfig())
    assert ledger.events == []
    assert null_plan.student_shards == base_plan.student_shards
    assert null_plan.group_shards == base_plan.group_shards

    base = CohortSimulation(SMALL, config, plan=base_plan).run()
    nulled = CohortSimulation(SMALL, config, plan=null_plan).run()
    assert records_digest(nulled) == records_digest(base)


@pytest.mark.parametrize("fault_seed", (7, 11))
def test_fault_seed_independent_of_cohort_seed(fault_seed):
    """The calendar comes from the fault plan's own seed stream, so changing
    the cohort seed must not change which windows exist."""
    cfg = FaultPlanConfig(seed=fault_seed, outage_rate_per_week=0.5)
    _, ledger_a = plan_faulted_cohort(SMALL, CohortConfig(seed=1), cfg)
    _, ledger_b = plan_faulted_cohort(SMALL, CohortConfig(seed=2), cfg)
    # Different cohorts schedule different activities, so event lists differ,
    # but both were swept against the identical calendar.
    from repro.faults.plan import build_fault_calendar

    horizon = SMALL.semester_hours
    assert build_fault_calendar(cfg, horizon_hours=horizon) == \
        build_fault_calendar(cfg, horizon_hours=horizon)
    assert ledger_a.events or ledger_b.events
