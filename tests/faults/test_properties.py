"""Graceful degradation, fuzzed: the cohort engine completes under ANY
fault plan — nothing a calendar can contain makes it raise."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cohort import CohortConfig, CohortSimulation
from repro.core.course import scaled_course
from repro.core.report import records_digest
from repro.faults.plan import FaultPlanConfig, plan_faulted_cohort
from repro.parallel.engine import execute_plan
from repro.parallel.merge import merge_shard_records

TINY = scaled_course(0.1)

fault_configs = st.builds(
    FaultPlanConfig,
    seed=st.integers(0, 10_000),
    outage_rate_per_week=st.floats(0.0, 5.0),
    outage_mean_hours=st.floats(0.5, 200.0),
    outage_sigma=st.floats(0.0, 2.0),
    hazard_rate_per_khour=st.floats(0.0, 100.0),
    burst_rate_per_week=st.floats(0.0, 5.0),
    burst_mean_hours=st.floats(0.1, 8.0),
    redo_fraction=st.floats(0.0, 1.0),
)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(fault=fault_configs, seed=st.integers(0, 1000))
def test_cohort_always_completes_under_any_fault_plan(fault, seed):
    config = CohortConfig(seed=seed)
    plan, ledger = plan_faulted_cohort(TINY, config, fault)
    records = CohortSimulation(TINY, config, plan=plan).run()
    assert records  # degraded, maybe — but never empty, never an exception
    # the ledger's books stay internally consistent at any severity
    assert ledger.lost_instance_hours >= 0
    assert ledger.redo_instance_hours >= 0
    assert ledger.delay_hours >= 0
    assert len(ledger.hardware_failures()) == ledger.hardware_kills


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(fault=fault_configs)
def test_parallel_digest_holds_under_any_fault_plan(fault):
    """The sha256 contract is not a property of nice calendars."""
    config = CohortConfig(seed=7)
    plan, _ = plan_faulted_cohort(TINY, config, fault)
    serial = CohortSimulation(TINY, config, plan=plan).run()
    results = execute_plan(plan, config, workers=2)
    merged = merge_shard_records([r.records for r in results])
    assert records_digest(merged) == records_digest(serial)
