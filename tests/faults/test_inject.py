"""Runtime injection against a live testbed: gates, strikes, span hygiene."""

import pytest

from repro.cloud.compute import ServerStatus
from repro.cloud.leases import LeaseStatus
from repro.cloud.testbed import chameleon
from repro.common.errors import ServiceUnavailableError, TransientError
from repro.core.cohort import KVM_SITE, METAL_SITE
from repro.faults.inject import FaultInjector
from repro.faults.plan import ApiErrorBurst, FaultCalendar, FaultPlanConfig, OutageWindow


def calendar_with(outages=(), bursts=(), *, hazard=0.0, horizon=1000.0):
    cfg = FaultPlanConfig(seed=1, hazard_rate_per_khour=hazard)
    return FaultCalendar(config=cfg, horizon_hours=horizon,
                         outages=tuple(outages), bursts=tuple(bursts))


def boot(testbed, name="vm-0"):
    return testbed.site(KVM_SITE).compute.create_server(
        "proj", name, "m1.medium", user="s1", lab="lab2"
    )


class TestAdmissionGates:
    def test_create_refused_during_outage(self):
        tb = chameleon()
        FaultInjector(tb, calendar_with(outages=[OutageWindow(KVM_SITE, 0.0, 5.0)]))
        with pytest.raises(ServiceUnavailableError):
            boot(tb)
        assert tb.site(KVM_SITE).compute.servers == {}
        assert tb.site(KVM_SITE).meter.open_count == 0  # no residue

    def test_create_refused_during_burst_is_transient(self):
        tb = chameleon()
        injector = FaultInjector(
            tb, calendar_with(bursts=[ApiErrorBurst(KVM_SITE, 0.0, 1.0)])
        )
        with pytest.raises(TransientError):
            boot(tb)
        assert injector.stats.rejections == 1

    def test_create_succeeds_once_window_passes(self):
        tb = chameleon()
        FaultInjector(tb, calendar_with(outages=[OutageWindow(KVM_SITE, 0.0, 5.0)]))
        tb.run_until(6.0)
        server = boot(tb)
        assert server.id in tb.site(KVM_SITE).compute.servers

    def test_lease_refused_during_outage(self):
        tb = chameleon()
        FaultInjector(tb, calendar_with(outages=[OutageWindow(METAL_SITE, 0.0, 5.0)]))
        with pytest.raises(ServiceUnavailableError):
            tb.site(METAL_SITE).leases.create_lease(
                "proj", "compute_cascadelake", start=1.0, end=4.0
            )

    def test_other_sites_unaffected(self):
        tb = chameleon()
        FaultInjector(tb, calendar_with(outages=[OutageWindow(METAL_SITE, 0.0, 5.0)]))
        server = boot(tb)
        assert server.id in tb.site(KVM_SITE).compute.servers


class TestOutageStrike:
    def test_outage_kills_live_servers_and_closes_spans_once(self):
        tb = chameleon()
        for i in range(3):
            boot(tb, f"vm-{i}")
        site = tb.site(KVM_SITE)
        assert site.meter.open_count == 3
        injector = FaultInjector(
            tb, calendar_with(outages=[OutageWindow(KVM_SITE, 10.0, 12.0)])
        )
        tb.run_until(11.0)
        assert injector.stats.servers_killed == 3
        assert site.compute.servers == {}
        assert site.meter.open_count == 0
        records = [r for r in tb.usage_records() if r.resource_id.startswith("vm")]
        assert len(records) == 3  # one span each — closed exactly once
        assert all(r.end == 10.0 for r in records)

    def test_outage_cuts_active_leases(self):
        tb = chameleon()
        leases = tb.site(METAL_SITE).leases
        lease = leases.create_lease("proj", "compute_cascadelake", start=1.0, end=40.0)
        injector = FaultInjector(
            tb, calendar_with(outages=[OutageWindow(METAL_SITE, 10.0, 12.0)])
        )
        tb.run_until(11.0)
        assert injector.stats.leases_cut == 1
        assert leases.leases[lease.id].status is LeaseStatus.DELETED

    def test_server_deleted_before_strike_is_idempotent_noop(self):
        tb = chameleon()
        server = boot(tb)
        injector = FaultInjector(
            tb, calendar_with(outages=[OutageWindow(KVM_SITE, 10.0, 12.0)])
        )
        tb.run_until(5.0)
        tb.site(KVM_SITE).compute.delete_server(server.id)
        tb.run_until(11.0)  # strike fires against an empty site
        assert injector.stats.servers_killed == 0
        assert tb.site(KVM_SITE).meter.open_count == 0
        records = [r for r in tb.usage_records() if r.resource_id == server.id]
        assert len(records) == 1 and records[0].end == 5.0


class TestHazard:
    def test_hazard_kills_mark_error_and_conserve_spans(self):
        tb = chameleon()
        injector = FaultInjector(tb, calendar_with(hazard=200.0), hazard_seed=42)
        created = [boot(tb, f"vm-{i}") for i in range(20)]
        tb.run_until(200.0)
        site = tb.site(KVM_SITE)
        assert injector.stats.hazard_kills > 0  # MTBF 5 h, 200 h horizon
        survivors = set(site.compute.servers)
        killed = [s for s in created if s.id not in survivors]
        assert all(s.status is ServerStatus.ERROR for s in killed)
        # conservation: every created server has exactly one span,
        # open iff it is still alive
        assert site.meter.open_count == len(survivors)
        closed = [r for r in tb.usage_records() if r.resource_id.startswith("vm")]
        assert len(closed) == len(created) - len(survivors)

    def test_hazard_replayable_from_calendar_stream(self):
        def run():
            tb = chameleon()
            injector = FaultInjector(tb, calendar_with(hazard=100.0))
            for i in range(10):
                boot(tb, f"vm-{i}")
            tb.run_until(300.0)
            return injector.stats.hazard_kills, sorted(
                tb.site(KVM_SITE).compute.servers
            )

        assert run() == run()
