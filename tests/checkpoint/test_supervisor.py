"""The supervisor loop: typed crash mapping, retry/breaker, journal resume.

All cohorts here are the 48-student quarter-scale course; every digest
assertion is against the uninterrupted serial run, which the equivalence
pack (``tests/parallel``) already ties to the full contract.
"""

import pytest

from repro.checkpoint.manifest import StaleJournalError
from repro.common.errors import PoisonedShardError, ValidationError, WorkerCrashError
from repro.common.retry import RetryPolicy
from repro.core.cohort import CohortConfig, CohortSimulation, plan_cohort
from repro.core.course import scaled_course
from repro.core.report import records_digest
from repro.parallel.engine import (
    SupervisorHalt,
    SupervisorPolicy,
    run_parallel,
    run_parallel_supervised,
)

SMALL = scaled_course(0.25)
SEED = 42

NO_BACKOFF = dict(base_backoff_hours=0.0, max_backoff_hours=0.0)


@pytest.fixture(scope="module")
def serial_digest():
    return records_digest(CohortSimulation(SMALL, CohortConfig(seed=SEED)).run())


def kill_shard(index=3):
    """A real shard id from the plan the supervisor will execute."""
    return plan_cohort(SMALL, CohortConfig(seed=SEED)).shards()[index].shard_id


class TestCrashMapping:
    def test_sigkill_with_no_retry_budget_is_a_typed_worker_crash(self):
        policy = SupervisorPolicy(
            retry=RetryPolicy(max_attempts=1, **NO_BACKOFF),
            crash_after_shards=(kill_shard(),),
        )
        with pytest.raises(WorkerCrashError) as excinfo:
            run_parallel_supervised(SMALL, CohortConfig(seed=SEED), workers=2, policy=policy)
        assert kill_shard() in excinfo.value.shard_ids
        assert "BrokenProcessPool" in str(excinfo.value)

    def test_worker_systemexit_with_no_retry_budget_is_a_typed_worker_crash(self):
        policy = SupervisorPolicy(
            retry=RetryPolicy(max_attempts=1, **NO_BACKOFF),
            crash_after_shards=(kill_shard(),),
            crash_mode="exit",
        )
        with pytest.raises(WorkerCrashError) as excinfo:
            run_parallel_supervised(SMALL, CohortConfig(seed=SEED), workers=2, policy=policy)
        assert kill_shard() in excinfo.value.shard_ids
        assert "SystemExit" in str(excinfo.value)

    def test_every_attempt_crashing_poisons_the_shard(self):
        policy = SupervisorPolicy(
            retry=RetryPolicy(max_attempts=3, **NO_BACKOFF),
            crash_after_shards=(kill_shard(),),
            crash_mode="exit",
            crash_every_attempt=True,
        )
        with pytest.raises(PoisonedShardError) as excinfo:
            run_parallel_supervised(SMALL, CohortConfig(seed=SEED), workers=2, policy=policy)
        err = excinfo.value
        assert kill_shard() in err.shard_ids
        assert err.crash_counts[kill_shard()] == 3
        assert "poisoned" in str(err)
        # the breaker wraps the typed crash, not a bare pool error
        assert isinstance(err.__cause__, WorkerCrashError)

    def test_workers_must_be_positive(self):
        with pytest.raises(ValidationError):
            run_parallel(SMALL, CohortConfig(seed=SEED), workers=0)


class TestRecovery:
    def test_single_sigkill_self_heals_to_the_serial_digest(self, serial_digest):
        policy = SupervisorPolicy(crash_after_shards=(kill_shard(),))
        records, run = run_parallel_supervised(
            SMALL, CohortConfig(seed=SEED), workers=2, policy=policy
        )
        assert records_digest(records) == serial_digest
        assert run.telemetry.worker_crashes == 1
        assert run.telemetry.pool_rebuilds == 1
        assert run.telemetry.shards_retried > 0

    def test_pool_crash_limit_degrades_to_serial_fallback(self, serial_digest):
        policy = SupervisorPolicy(pool_crash_limit=1, crash_after_shards=(kill_shard(),))
        records, run = run_parallel_supervised(
            SMALL, CohortConfig(seed=SEED), workers=2, policy=policy
        )
        assert records_digest(records) == serial_digest
        assert run.telemetry.serial_fallback is True

    def test_in_process_systemexit_is_recovered_in_serial_mode(self, serial_digest):
        policy = SupervisorPolicy(
            crash_after_shards=(kill_shard(),), crash_mode="exit"
        )
        records, run = run_parallel_supervised(
            SMALL, CohortConfig(seed=SEED), workers=1, policy=policy
        )
        # serial mode never arms worker crash orders: nothing to recover,
        # output still exact
        assert records_digest(records) == serial_digest
        assert run.telemetry.worker_crashes == 0


class TestJournalResume:
    def test_halted_run_resumes_to_the_serial_digest(self, tmp_path, serial_digest):
        policy = SupervisorPolicy(halt_after_segments=2)
        with pytest.raises(SupervisorHalt, match="shards durable"):
            run_parallel_supervised(
                SMALL, CohortConfig(seed=SEED), workers=2,
                journal_dir=tmp_path, policy=policy,
            )
        records, run = run_parallel_supervised(
            SMALL, CohortConfig(seed=SEED), workers=2, journal_dir=tmp_path
        )
        assert records_digest(records) == serial_digest
        assert run.telemetry.shards_resumed > 0
        assert run.telemetry.shards_resumed + run.telemetry.shards_executed == (
            run.telemetry.shards_total
        )

    def test_completed_journal_resumes_without_executing(self, tmp_path, serial_digest):
        first = run_parallel(
            SMALL, CohortConfig(seed=SEED), workers=2, journal_dir=tmp_path
        )
        again, run = run_parallel_supervised(
            SMALL, CohortConfig(seed=SEED), workers=2, journal_dir=tmp_path
        )
        assert records_digest(first) == serial_digest
        assert again == first
        assert run.telemetry.shards_executed == 0
        assert run.telemetry.shards_resumed == run.telemetry.shards_total

    def test_resume_with_a_different_seed_is_refused(self, tmp_path):
        run_parallel(SMALL, CohortConfig(seed=SEED), workers=1, journal_dir=tmp_path)
        with pytest.raises(StaleJournalError, match="seed"):
            run_parallel(SMALL, CohortConfig(seed=7), workers=1, journal_dir=tmp_path)

    def test_resume_with_a_different_course_is_refused(self, tmp_path):
        run_parallel(SMALL, CohortConfig(seed=SEED), workers=1, journal_dir=tmp_path)
        with pytest.raises(StaleJournalError, match="course_digest"):
            run_parallel(
                scaled_course(0.5), CohortConfig(seed=SEED), workers=1, journal_dir=tmp_path
            )

    def test_journal_free_run_is_byte_identical_to_serial(self, serial_digest):
        records = run_parallel(SMALL, CohortConfig(seed=SEED), workers=2)
        assert records_digest(records) == serial_digest
        serial = CohortSimulation(SMALL, CohortConfig(seed=SEED)).run()
        assert records == serial
