"""The headline property, held under the crash-injection sweep.

``run_parallel(..., journal_dir=...)`` killed at randomized shard
boundaries, halted between segments, truncated mid-frame, or bit-flipped
— and then resumed — must merge sha256-identical to the uninterrupted
serial run.  The quick matrix here is the same one CI runs via
``python -m repro.checkpoint --verify --quick``.
"""

import pytest

from repro.checkpoint.killmatrix import (
    ALL_MODES,
    KillCase,
    run_kill_matrix,
    sweep_cases,
)
from repro.common.errors import ValidationError


@pytest.fixture(scope="module")
def quick_outcomes(tmp_path_factory):
    root = tmp_path_factory.mktemp("killmatrix")
    return run_kill_matrix(root, quick=True)


class TestSweepShape:
    def test_quick_sweep_covers_every_mode(self):
        cases = sweep_cases(quick=True)
        assert {c.mode for c in cases} == set(ALL_MODES)
        assert {c.workers for c in cases} >= {1, 2, 4}

    def test_full_sweep_is_a_superset_in_breadth(self):
        full = sweep_cases()
        assert len(full) > len(sweep_cases(quick=True))
        assert {c.seed for c in full} == {42, 7}

    def test_worker_kill_modes_require_a_pool(self):
        with pytest.raises(ValidationError):
            KillCase("worker-sigkill", seed=42, workers=1, kill_point=0)
        with pytest.raises(ValidationError):
            KillCase("nonsense-mode", seed=42, workers=2, kill_point=0)


class TestQuickMatrix:
    def test_every_case_recovers_to_the_serial_digest(self, quick_outcomes):
        bad = [o.case.label for o in quick_outcomes if not o.digest_ok]
        assert bad == []

    def test_every_injected_crash_actually_fired(self, quick_outcomes):
        dud = [o.case.label for o in quick_outcomes if not o.crashed]
        assert dud == []

    def test_worker_kills_exercise_the_retry_path(self, quick_outcomes):
        worker_rows = [
            o for o in quick_outcomes if o.case.mode in ("worker-sigkill", "worker-exit")
        ]
        assert worker_rows
        assert all(o.worker_crashes >= 1 for o in worker_rows)
        assert all(o.shards_retried > 0 for o in worker_rows)

    def test_damaged_segments_are_quarantined_not_loaded(self, quick_outcomes):
        damage_rows = [
            o for o in quick_outcomes
            if o.case.mode in ("halt-truncate", "corrupt-segment")
        ]
        assert damage_rows
        assert all(o.segments_quarantined >= 1 for o in damage_rows)

    def test_halt_resume_rows_actually_resume_prior_work(self, quick_outcomes):
        resumed = [o for o in quick_outcomes if o.case.mode == "halt-resume"]
        assert resumed
        assert all(o.shards_resumed > 0 for o in resumed)
