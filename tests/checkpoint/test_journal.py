"""The write-ahead segment format: atomic publish, verified load, quarantine."""

import json

import pytest

from repro.checkpoint.journal import MAGIC, JournalLoad, ShardJournal, atomic_write_bytes
from repro.common.errors import ValidationError


@pytest.fixture()
def journal(tmp_path):
    return ShardJournal(tmp_path / "journal")


def fill(journal, n=3):
    records = []
    for i in range(n):
        records.append(journal.append([f"shard-{i}a", f"shard-{i}b"], {"segment": i}))
    return records


class TestAppendLoadRoundtrip:
    def test_roundtrip_preserves_payloads_and_shard_ids(self, journal):
        fill(journal)
        loaded = journal.load()
        assert isinstance(loaded, JournalLoad)
        assert loaded.quarantined == ()
        assert [rec.shard_ids for rec, _ in loaded.entries] == [
            ("shard-0a", "shard-0b"), ("shard-1a", "shard-1b"), ("shard-2a", "shard-2b"),
        ]
        assert [payload for _, payload in loaded.entries] == [
            {"segment": 0}, {"segment": 1}, {"segment": 2},
        ]
        assert loaded.shard_ids == (
            "shard-0a", "shard-0b", "shard-1a", "shard-1b", "shard-2a", "shard-2b",
        )

    def test_reopened_journal_appends_after_existing_segments(self, journal):
        fill(journal, n=2)
        reopened = ShardJournal(journal.root)
        rec = reopened.append(["late"], "tail")
        assert rec.index == 2
        assert [r.index for r, _ in reopened.load().entries] == [0, 1, 2]

    def test_empty_shard_ids_rejected(self, journal):
        with pytest.raises(ValidationError):
            journal.append([], "payload")

    def test_atomic_write_leaves_no_temp_file(self, tmp_path):
        target = tmp_path / "manifest.json"
        atomic_write_bytes(target, b"{}")
        assert target.read_bytes() == b"{}"
        assert [p.name for p in tmp_path.iterdir()] == ["manifest.json"]


class TestVerifiedLoad:
    def test_truncation_mid_payload_is_quarantined(self, journal):
        fill(journal)
        victim = journal.segment_paths()[1]
        data = victim.read_bytes()
        victim.write_bytes(data[: len(data) - 4])
        loaded = journal.load()
        assert [rec.shard_ids for rec, _ in loaded.entries] == [
            ("shard-0a", "shard-0b"), ("shard-2a", "shard-2b"),
        ]
        assert len(loaded.quarantined) == 1
        assert "payload length mismatch" in loaded.quarantined[0].reason
        assert loaded.quarantined[0].path.endswith(".quarantined")

    def test_truncation_inside_header_is_quarantined(self, journal):
        fill(journal, n=1)
        victim = journal.segment_paths()[0]
        victim.write_bytes(victim.read_bytes()[: len(MAGIC) + 6])
        loaded = journal.load()
        assert loaded.entries == ()
        assert "truncated inside the header" in loaded.quarantined[0].reason

    def test_bad_magic_is_quarantined(self, journal):
        fill(journal, n=1)
        victim = journal.segment_paths()[0]
        victim.write_bytes(b"GARBAGE" + victim.read_bytes()[7:])
        loaded = journal.load()
        assert "bad magic" in loaded.quarantined[0].reason

    def test_payload_bit_flip_fails_the_sha(self, journal):
        fill(journal, n=1)
        victim = journal.segment_paths()[0]
        data = bytearray(victim.read_bytes())
        data[-3] ^= 0xFF
        victim.write_bytes(bytes(data))
        loaded = journal.load()
        assert loaded.entries == ()
        assert "sha256 mismatch" in loaded.quarantined[0].reason

    def test_quarantined_file_is_renamed_and_segment_gone(self, journal):
        fill(journal, n=1)
        victim = journal.segment_paths()[0]
        victim.write_bytes(b"")
        journal.load()
        assert journal.segment_paths() == []
        assert len(journal.quarantined_paths()) == 1

    def test_quarantine_never_frees_an_index_for_reuse(self, journal):
        fill(journal, n=2)
        journal.segment_paths()[1].write_bytes(b"")
        journal.load()  # quarantines segment 1
        rec = journal.append(["replacement"], "again")
        assert rec.index == 2
        names = {p.name for p in journal.segment_paths()}
        assert "segment-000001.seg" not in names


class TestHealth:
    def test_health_reports_damage_without_quarantining(self, journal):
        fill(journal)
        victim = journal.segment_paths()[2]
        data = victim.read_bytes()
        victim.write_bytes(data[: len(data) - 4])
        report = journal.health()
        assert report["segments_ok"] == 2
        assert report["segments_damaged"] == 1
        assert report["shards_covered"] == 4
        # non-destructive: the damaged file is still in place
        assert len(journal.segment_paths()) == 3
        assert json.dumps(report)  # JSON-serializable for --inspect --json
