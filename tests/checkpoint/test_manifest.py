"""The run manifest: journals are keyed to their inputs, staleness is loud."""

import pytest

from repro.checkpoint.manifest import (
    RunManifest,
    StaleJournalError,
    course_fingerprint,
    fault_model_digest,
)
from repro.core.cohort import CohortConfig, plan_cohort
from repro.core.course import scaled_course
from repro.faults.plan import FaultPlanConfig, FaultSweep, build_fault_calendar

COURSE = scaled_course(0.25)


def manifest_for(seed=42, course=COURSE, include_project=True):
    plan = plan_cohort(course, CohortConfig(seed=seed))
    return RunManifest.for_run(plan, course, seed=seed, include_project=include_project)


class TestFingerprints:
    def test_course_fingerprint_moves_with_the_course(self):
        assert course_fingerprint(COURSE) == course_fingerprint(scaled_course(0.25))
        assert course_fingerprint(COURSE) != course_fingerprint(scaled_course(0.5))

    def test_no_fault_model_is_the_dash_sentinel(self):
        assert fault_model_digest(None) == "-"

    def test_fault_sweep_digest_is_stable_and_seed_sensitive(self):
        def sweep(seed):
            calendar = build_fault_calendar(
                FaultPlanConfig(seed=seed, outage_rate_per_week=0.2), horizon_hours=100.0
            )
            return FaultSweep(calendar)

        assert fault_model_digest(sweep(1)) == fault_model_digest(sweep(1))
        assert fault_model_digest(sweep(1)) != fault_model_digest(sweep(2))
        assert fault_model_digest(sweep(1)) != "-"


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        manifest = manifest_for()
        manifest.save(tmp_path)
        assert RunManifest.load(tmp_path) == manifest

    def test_missing_manifest_loads_as_none(self, tmp_path):
        assert RunManifest.load(tmp_path) is None

    def test_unreadable_manifest_is_a_stale_journal(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{not json")
        with pytest.raises(StaleJournalError, match="unreadable manifest"):
            RunManifest.load(tmp_path)

    def test_missing_fields_are_a_stale_journal(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"seed": 42}')
        with pytest.raises(StaleJournalError, match="missing fields"):
            RunManifest.load(tmp_path)


class TestMatching:
    def test_identical_runs_match(self):
        manifest_for().require_match(manifest_for())

    def test_seed_change_is_named_in_the_diagnostic(self):
        diffs = manifest_for(seed=42).mismatches(manifest_for(seed=7))
        assert any(d.startswith("seed:") for d in diffs)
        with pytest.raises(StaleJournalError, match="seed"):
            manifest_for(seed=42).require_match(manifest_for(seed=7), journal_dir="runs/x")

    def test_course_change_mismatches(self):
        other = manifest_for(course=scaled_course(0.5))
        diffs = manifest_for().mismatches(other)
        assert any(d.startswith("course_digest:") for d in diffs)

    def test_labs_only_plan_mismatches_full_plan(self):
        diffs = manifest_for().mismatches(manifest_for(include_project=False))
        fields = {d.split(":")[0] for d in diffs}
        assert "include_project" in fields
        assert "shard_count" in fields
