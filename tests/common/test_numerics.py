"""Regression tests for the shared stable-summation rule.

The contract both accounting paths rely on: the total is the exactly
rounded sum of the input *multiset* — invariant to permutation,
chunking, and reassociation, even for adversarial magnitude spreads
where naive or pairwise summation drifts by many ulps.  If these break,
the columnar/object byte-equality gate breaks with them.
"""

import math
from fractions import Fraction

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.numerics import stable_dot, stable_sum

#: Magnitudes spanning ~10^32: one big value, a sea of small ones that a
#: running ``+=`` in the wrong order annihilates entirely.
ADVERSARIAL = [1e16, 1.0, -1e16, 1.0] * 500 + [1e-16] * 1000


def test_adversarial_magnitudes_sum_exactly():
    """Naive left-to-right loses the small terms; fsum must not."""
    exact = float(sum(Fraction(v) for v in ADVERSARIAL))
    assert stable_sum(ADVERSARIAL) == exact
    # the case is actually adversarial: the naive loop gets it wrong
    naive = 0.0
    for v in ADVERSARIAL:
        naive += v
    assert naive != exact


def test_permutation_and_chunk_invariance():
    reference = stable_sum(ADVERSARIAL)
    assert stable_sum(reversed(ADVERSARIAL)) == reference
    assert stable_sum(sorted(ADVERSARIAL)) == reference
    # chunked like the columnar merge: per-bucket arrays chained
    chunks = [ADVERSARIAL[i : i + 97] for i in range(0, len(ADVERSARIAL), 97)]
    chained = stable_sum(v for chunk in chunks for v in chunk)
    assert chained == reference


@settings(deadline=None, max_examples=100)
@given(
    st.lists(
        st.floats(
            min_value=-1e18, max_value=1e18, allow_nan=False, allow_infinity=False
        ),
        max_size=60,
    ),
    st.randoms(use_true_random=False),
)
def test_stable_sum_is_multiset_function(values, rnd):
    """Property form: any shuffle of any list lands on the same bits."""
    shuffled = list(values)
    rnd.shuffle(shuffled)
    assert stable_sum(shuffled) == stable_sum(values)
    exact = sum(Fraction(v) for v in values)
    assert stable_sum(values) == float(exact)


def test_numpy_scalars_and_empty():
    arr = np.array(ADVERSARIAL)
    assert stable_sum(arr.tolist()) == stable_sum(ADVERSARIAL)
    assert stable_sum(iter(arr)) == stable_sum(ADVERSARIAL)
    assert stable_sum([]) == 0.0
    assert stable_dot([], []) == 0.0


def test_stable_dot_matches_per_product_fsum():
    q = [3.0, 1e12, 2e-12, 7.5] * 200
    h = [1e-12, 2.5e12, 4.0, 1e3] * 200
    products = [a * b for a, b in zip(q, h)]
    assert stable_dot(q, h) == math.fsum(products)
    exact = sum(Fraction(p) for p in products)
    assert stable_dot(q, h) == float(exact)
