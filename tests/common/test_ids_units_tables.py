"""Tests for id generation, unit helpers, and table rendering."""

from hypothesis import given
from hypothesis import strategies as st

from repro.common import IdGenerator, format_table
from repro.common.units import (
    GB,
    GIB,
    bytes_to_gb,
    bytes_to_gib,
    hours_to_seconds,
    seconds_to_hours,
)


class TestIdGenerator:
    def test_sequential_per_prefix(self):
        ids = IdGenerator()
        assert ids.next("vm") == "vm-000001"
        assert ids.next("vm") == "vm-000002"
        assert ids.next("vol") == "vol-000001"

    def test_peek_counts(self):
        ids = IdGenerator()
        ids.next("x")
        ids.next("x")
        assert ids.peek("x") == 2
        assert ids.peek("y") == 0

    @given(st.lists(st.sampled_from(["a", "b", "c"]), max_size=50))
    def test_ids_are_unique(self, prefixes):
        ids = IdGenerator()
        minted = [ids.next(p) for p in prefixes]
        assert len(set(minted)) == len(minted)


class TestUnits:
    def test_gb_round_trip(self):
        assert bytes_to_gb(5 * GB) == 5.0

    def test_gib_round_trip(self):
        assert bytes_to_gib(3 * GIB) == 3.0

    def test_gib_larger_than_gb(self):
        assert GIB > GB

    def test_hours_seconds_round_trip(self):
        assert seconds_to_hours(hours_to_seconds(2.5)) == 2.5


class TestFormatTable:
    def test_basic_rendering(self):
        out = format_table(["name", "hours"], [["lab1", 2620], ["lab2", 52332]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "2620" in out and "52332" in out

    def test_numbers_right_aligned(self):
        out = format_table(["k", "v"], [["a", 1], ["bbbb", 1000]])
        lines = out.splitlines()
        # the numeric column is right-aligned: '1' ends where '1000' ends
        assert lines[2].rstrip().endswith("1")
        assert lines[3].rstrip().endswith("1000")

    def test_none_renders_na(self):
        out = format_table(["a"], [[None]])
        assert "NA" in out

    def test_floats_use_format(self):
        out = format_table(["cost"], [[1234.5]], float_fmt=",.2f")
        assert "1,234.50" in out

    def test_title_included(self):
        out = format_table(["a"], [[1]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_ragged_row_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])
