"""The error taxonomy's retryable branch and the shared RetryPolicy."""

import pytest

from repro.common.errors import (
    DeadlineExceededError,
    ReproError,
    ServiceUnavailableError,
    TransientError,
    ValidationError,
)
from repro.common.retry import RetryPolicy


class TestTaxonomy:
    def test_transient_is_a_repro_error(self):
        assert issubclass(TransientError, ReproError)

    def test_service_unavailable_is_transient(self):
        """An outage is catchable by any 'retry on transient' handler."""
        assert issubclass(ServiceUnavailableError, TransientError)
        with pytest.raises(TransientError):
            raise ServiceUnavailableError("site down")

    def test_deadline_exceeded_is_terminal_not_transient(self):
        """Exhausting a retry budget must not itself look retryable."""
        assert issubclass(DeadlineExceededError, ReproError)
        assert not issubclass(DeadlineExceededError, TransientError)

    def test_definitive_errors_are_not_transient(self):
        assert not issubclass(ValidationError, TransientError)


class TestRetryPolicyValidation:
    def test_defaults_valid(self):
        RetryPolicy()

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_backoff_hours": -1.0},
        {"max_backoff_hours": -0.5},
        {"multiplier": 0.5},
        {"jitter": 1.5},
        {"jitter": -0.1},
        {"deadline_hours": 0.0},
    ])
    def test_bad_fields_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            RetryPolicy(**kwargs)

    def test_backoff_retry_index_is_one_based(self):
        with pytest.raises(ValidationError):
            RetryPolicy().backoff_hours(0)

    def test_backoff_u_must_be_uniform_draw(self):
        with pytest.raises(ValidationError):
            RetryPolicy(jitter=0.5).backoff_hours(1, u=1.5)


class TestRetrySchedule:
    def test_exponential_schedule_with_cap(self):
        policy = RetryPolicy(max_attempts=5, base_backoff_hours=1.0,
                             multiplier=2.0, max_backoff_hours=5.0)
        assert policy.schedule() == [1.0, 2.0, 4.0, 5.0]
        assert policy.total_backoff_hours() == pytest.approx(12.0)

    def test_max_retries_counts_after_first_attempt(self):
        assert RetryPolicy(max_attempts=1).max_retries == 0
        assert RetryPolicy(max_attempts=4).max_retries == 3

    def test_allows_retry_attempt_bound(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows_retry(0)
        assert policy.allows_retry(1)
        assert not policy.allows_retry(2)

    def test_allows_retry_deadline_bound(self):
        policy = RetryPolicy(max_attempts=100, deadline_hours=10.0)
        assert policy.allows_retry(50, elapsed_hours=9.9)
        assert not policy.allows_retry(0, elapsed_hours=10.0)

    def test_jitter_is_symmetric_and_caller_driven(self):
        policy = RetryPolicy(base_backoff_hours=2.0, jitter=0.5)
        assert policy.backoff_hours(1, u=0.5) == pytest.approx(2.0)  # midpoint
        assert policy.backoff_hours(1, u=0.0) == pytest.approx(1.0)  # -50%
        lo, hi = (policy.backoff_hours(1, u=u) for u in (0.0, 0.999))
        assert lo < 2.0 < hi < 3.0  # u in [0, 1) never quite reaches +50%

    def test_zero_jitter_ignores_u(self):
        policy = RetryPolicy(base_backoff_hours=3.0)
        assert policy.backoff_hours(1, u=0.0) == policy.backoff_hours(1, u=0.9)

    def test_schedule_with_jitter_stream(self):
        policy = RetryPolicy(max_attempts=3, base_backoff_hours=1.0,
                             multiplier=1.0, max_backoff_hours=1.0, jitter=1.0)
        assert policy.schedule(us=iter([0.0, 0.5])) == pytest.approx([0.0, 1.0])


class TestRetryDeadlineBoundaries:
    """Edge-of-budget semantics the supervisor's circuit breaker leans on."""

    def test_attempt_landing_exactly_on_deadline_is_refused(self):
        """The deadline is a closed bound: elapsed == deadline means no retry."""
        policy = RetryPolicy(max_attempts=10, deadline_hours=6.0)
        assert policy.allows_retry(3, elapsed_hours=5.999999)
        assert not policy.allows_retry(3, elapsed_hours=6.0)

    def test_deadline_and_attempt_bounds_are_independent(self):
        policy = RetryPolicy(max_attempts=2, deadline_hours=100.0)
        assert not policy.allows_retry(1, elapsed_hours=0.0)  # attempts alone
        assert not policy.allows_retry(0, elapsed_hours=100.0)  # deadline alone
        assert policy.allows_retry(0, elapsed_hours=99.999)

    def test_zero_retry_budget_refuses_even_at_time_zero(self):
        policy = RetryPolicy(max_attempts=1)
        assert not policy.allows_retry(0, elapsed_hours=0.0)
        assert policy.schedule() == []
        assert policy.total_backoff_hours() == 0.0

    def test_jitter_stream_exhaustion_is_a_validation_error(self):
        """A short stream must not leak a bare StopIteration out of the policy."""
        policy = RetryPolicy(max_attempts=3, jitter=1.0)
        with pytest.raises(ValidationError, match="jitter stream exhausted after 1 draws"):
            policy.schedule(us=iter([0.5]))

    def test_exactly_max_retries_draws_is_enough(self):
        policy = RetryPolicy(max_attempts=3, base_backoff_hours=1.0,
                             multiplier=1.0, max_backoff_hours=1.0, jitter=1.0)
        assert policy.schedule(us=iter([0.5, 0.5])) == pytest.approx([1.0, 1.0])

    def test_empty_stream_fine_when_no_retries_possible(self):
        assert RetryPolicy(max_attempts=1, jitter=1.0).schedule(us=iter([])) == []


class TestCanonicalPolicies:
    def test_quota_default_replicates_legacy_constants(self):
        """Byte-compatibility anchor: 60 retries, 6 h apart, constant."""
        policy = RetryPolicy.quota_default()
        assert policy.max_retries == 60
        assert policy.backoff_hours(1) == 6.0
        assert policy.backoff_hours(60) == 6.0  # constant, not exponential
        assert policy.jitter == 0.0

    def test_relaunch_default_gives_up_after_a_handful(self):
        policy = RetryPolicy.relaunch_default()
        assert policy.max_attempts == 4
        assert policy.schedule() == [2.0, 4.0, 8.0]

    def test_transient_default_is_tight(self):
        policy = RetryPolicy.transient_default()
        assert policy.schedule()[0] == 0.25
        assert policy.total_backoff_hours() < 24.0

    def test_policies_are_frozen_values(self):
        policy = RetryPolicy()
        with pytest.raises(AttributeError):
            policy.max_attempts = 10  # type: ignore[misc]
        assert RetryPolicy.quota_default() == RetryPolicy.quota_default()


class TestServingClockPolicies:
    """The seconds-scale policies the closed-loop client layer drives."""

    def test_client_default_is_jittered_exponential_seconds(self):
        policy = RetryPolicy.client_default()
        assert policy.max_attempts == 4
        assert policy.jitter == 0.5
        # 1 s, 2 s, 4 s at the jitter-free midpoint, capped at 30 s
        assert [policy.backoff_seconds(r) for r in (1, 2, 3)] == pytest.approx(
            [1.0, 2.0, 4.0]
        )
        assert policy.backoff_seconds(20) == pytest.approx(30.0)

    def test_storm_default_is_fast_and_barely_jittered(self):
        """The naive client the metastable scenario indicts: six attempts
        re-offering within seconds, so an outage's backlog slams the
        recovering fleet near-simultaneously."""
        policy = RetryPolicy.storm_default()
        assert policy.max_attempts == 6
        assert policy.deadline_hours is None  # it never gives up on time
        assert policy.backoff_seconds(1) == pytest.approx(0.5)
        schedule_s = [policy.backoff_seconds(r) for r in range(1, 6)]
        assert sum(schedule_s) < 15.0
        assert max(schedule_s) <= 5.0  # capped at 5 s

    def test_backoff_seconds_is_hours_times_3600(self):
        policy = RetryPolicy(base_backoff_hours=0.5, jitter=0.2)
        for retry, u in ((1, 0.0), (2, 0.9)):
            assert policy.backoff_seconds(retry, u=u) == pytest.approx(
                policy.backoff_hours(retry, u=u) * 3600.0
            )

    def test_storm_schedule_at_zero_retry_budget(self):
        """A storm-schedule policy clamped to one attempt is exactly the
        open-loop client: no retry is ever allowed, even at t=0."""
        policy = RetryPolicy(
            max_attempts=1,
            base_backoff_hours=RetryPolicy.storm_default().base_backoff_hours,
            multiplier=RetryPolicy.storm_default().multiplier,
            max_backoff_hours=RetryPolicy.storm_default().max_backoff_hours,
        )
        assert not policy.allows_retry(0, elapsed_hours=0.0)
        assert policy.schedule() == []
