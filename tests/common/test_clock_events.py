"""Tests for the simulation clock and event loop."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import SimClock, EventLoop, ValidationError


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(5.5).now == 5.5

    def test_negative_start_rejected(self):
        with pytest.raises(ValidationError):
            SimClock(-1.0)

    def test_advance_accumulates(self):
        c = SimClock()
        c.advance(1.5)
        c.advance(2.5)
        assert c.now == 4.0

    def test_advance_negative_rejected(self):
        c = SimClock()
        with pytest.raises(ValidationError):
            c.advance(-0.1)

    def test_advance_to_moves_forward(self):
        c = SimClock(1.0)
        c.advance_to(3.0)
        assert c.now == 3.0

    def test_advance_to_past_rejected(self):
        c = SimClock(5.0)
        with pytest.raises(ValidationError):
            c.advance_to(4.0)

    def test_advance_to_now_is_noop(self):
        c = SimClock(2.0)
        c.advance_to(2.0)
        assert c.now == 2.0

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), max_size=20))
    def test_clock_is_monotone(self, deltas):
        c = SimClock()
        prev = c.now
        for d in deltas:
            c.advance(d)
            assert c.now >= prev
            prev = c.now


class TestEventLoop:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(2.0, lambda: order.append("b"))
        loop.schedule(1.0, lambda: order.append("a"))
        loop.schedule(3.0, lambda: order.append("c"))
        loop.run()
        assert order == ["a", "b", "c"]

    def test_same_time_ties_broken_by_priority_then_seq(self):
        loop = EventLoop()
        order = []
        loop.schedule(1.0, lambda: order.append("low-prio"), priority=5)
        loop.schedule(1.0, lambda: order.append("first"), priority=0)
        loop.schedule(1.0, lambda: order.append("second"), priority=0)
        loop.run()
        assert order == ["first", "second", "low-prio"]

    def test_many_equal_timestamp_events_pop_in_insertion_order(self):
        """The seq tie-break is a total order: 50 events at the same instant
        (same priority) fire exactly in the order they were scheduled."""
        loop = EventLoop()
        order = []
        for i in range(50):
            loop.schedule(1.0, lambda i=i: order.append(i))
        loop.run()
        assert order == list(range(50))

    def test_equal_time_events_from_callbacks_fire_after_earlier_peers(self):
        """An event scheduled *at the current time from inside a callback*
        gets a later seq, so it fires after the same-time events that were
        already queued — replay order never depends on heap internals."""
        loop = EventLoop()
        order = []

        def first():
            order.append("first")
            loop.schedule(1.0, lambda: order.append("nested"))

        loop.schedule(1.0, first)
        loop.schedule(1.0, lambda: order.append("second"))
        loop.run()
        assert order == ["first", "second", "nested"]

    @given(
        st.lists(
            st.tuples(st.floats(min_value=0, max_value=10), st.integers(-3, 3)),
            min_size=1,
            max_size=60,
        )
    )
    def test_firing_order_is_stable_sort_of_schedule_order(self, schedules):
        """Across arbitrary (time, priority) mixes, firing order equals a
        *stable* sort of insertion order — i.e. equal (time, priority) keys
        preserve insertion order."""
        loop = EventLoop()
        fired = []
        for idx, (t, prio) in enumerate(schedules):
            loop.schedule(t, lambda idx=idx: fired.append(idx), priority=prio)
        loop.run()
        expected = [
            idx
            for idx, _ in sorted(
                enumerate(schedules), key=lambda pair: (pair[1][0], pair[1][1], pair[0])
            )
        ]
        assert fired == expected

    def test_clock_advances_to_event_time(self):
        loop = EventLoop()
        seen = []
        loop.schedule(4.5, lambda: seen.append(loop.clock.now))
        loop.run()
        assert seen == [4.5]

    def test_schedule_in_past_rejected(self):
        loop = EventLoop()
        loop.clock.advance(10.0)
        with pytest.raises(ValidationError):
            loop.schedule(5.0, lambda: None)

    def test_schedule_in_relative(self):
        loop = EventLoop()
        loop.clock.advance(2.0)
        fired = []
        loop.schedule_in(1.5, lambda: fired.append(loop.clock.now))
        loop.run()
        assert fired == [3.5]

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValidationError):
            loop.schedule_in(-1.0, lambda: None)

    def test_run_until_stops_at_boundary(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda: fired.append(1))
        loop.schedule(2.0, lambda: fired.append(2))
        loop.schedule(5.0, lambda: fired.append(5))
        n = loop.run_until(3.0)
        assert n == 2
        assert fired == [1, 2]
        assert loop.clock.now == 3.0
        assert loop.pending == 1

    def test_run_until_advances_clock_even_without_events(self):
        loop = EventLoop()
        loop.run_until(7.0)
        assert loop.clock.now == 7.0

    def test_event_at_boundary_fires(self):
        loop = EventLoop()
        fired = []
        loop.schedule(3.0, lambda: fired.append(3))
        loop.run_until(3.0)
        assert fired == [3]

    def test_cancel_prevents_firing(self):
        loop = EventLoop()
        fired = []
        ev = loop.schedule(1.0, lambda: fired.append(1))
        loop.schedule(2.0, lambda: fired.append(2))
        loop.cancel(ev)
        loop.run()
        assert fired == [2]

    def test_callbacks_can_schedule_more_events(self):
        loop = EventLoop()
        fired = []

        def cascade():
            fired.append(loop.clock.now)
            if len(fired) < 3:
                loop.schedule_in(1.0, cascade)

        loop.schedule(1.0, cascade)
        loop.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_max_events_bound(self):
        loop = EventLoop()
        for i in range(10):
            loop.schedule(float(i + 1), lambda: None)
        assert loop.run(max_events=4) == 4
        assert loop.pending == 6

    def test_fired_counter(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        loop.run()
        assert loop.fired == 2

    @given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=1, max_size=30))
    def test_arbitrary_schedules_fire_sorted(self, times):
        loop = EventLoop()
        seen = []
        for t in times:
            loop.schedule(t, lambda t=t: seen.append(t))
        loop.run()
        assert seen == sorted(times)
