"""Committed baseline for incremental adoption.

The baseline file records findings that predate the linter (or a new rule)
so CI can gate on **new** findings while the old ones are burned down.  An
entry matches a finding on ``(file, rule_id, snippet)`` — the stripped
source line, not the line *number* — so unrelated edits above a baselined
finding do not resurrect it.  Matching consumes entries: two identical
hazards need two entries, and fixing one shrinks the baseline on the next
``--write-baseline``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding
from repro.common.errors import ValidationError


@dataclass(frozen=True)
class BaselineEntry:
    file: str
    rule_id: str
    snippet: str

    def key(self) -> tuple[str, str, str]:
        return (self.file, self.rule_id, self.snippet)


@dataclass
class Baseline:
    """A multiset of accepted findings."""

    entries: list[BaselineEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        try:
            raw = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValidationError(f"baseline {path} is not valid JSON: {exc}") from exc
        if not isinstance(raw, dict) or not isinstance(raw.get("findings"), list):
            raise ValidationError(f"baseline {path} must be {{'findings': [...]}}")
        entries = []
        for item in raw["findings"]:
            try:
                entries.append(
                    BaselineEntry(
                        file=item["file"], rule_id=item["rule_id"], snippet=item["snippet"]
                    )
                )
            except (TypeError, KeyError) as exc:
                raise ValidationError(f"malformed baseline entry {item!r}") from exc
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        payload = {
            "findings": [
                {"file": e.file, "rule_id": e.rule_id, "snippet": e.snippet}
                for e in sorted(self.entries, key=BaselineEntry.key)
            ]
        }
        path.write_text(json.dumps(payload, indent=2) + "\n")

    @classmethod
    def from_findings(cls, findings: list[Finding], sources: dict[str, str]) -> "Baseline":
        """Build the baseline that would accept exactly ``findings``."""
        entries = []
        for f in findings:
            entries.append(
                BaselineEntry(file=f.file, rule_id=f.rule_id, snippet=_snippet(sources, f))
            )
        return cls(entries=entries)

    def stale_entries(
        self, findings: list[Finding], sources: dict[str, str]
    ) -> list[BaselineEntry]:
        """Entries no current finding consumes (the hazard was fixed or the
        line rewrote) — ``--prune-baseline`` reports and drops them."""
        budget: dict[tuple[str, str, str], int] = {}
        for e in self.entries:
            budget[e.key()] = budget.get(e.key(), 0) + 1
        for f in findings:
            key = (f.file, f.rule_id, _snippet(sources, f))
            if budget.get(key, 0) > 0:
                budget[key] -= 1
        stale: list[BaselineEntry] = []
        for e in sorted(self.entries, key=BaselineEntry.key):
            if budget.get(e.key(), 0) > 0:
                budget[e.key()] -= 1
                stale.append(e)
        return stale

    def without(self, stale: list[BaselineEntry]) -> "Baseline":
        """A copy with ``stale`` removed (multiset subtraction)."""
        remove: dict[tuple[str, str, str], int] = {}
        for e in stale:
            remove[e.key()] = remove.get(e.key(), 0) + 1
        kept: list[BaselineEntry] = []
        for e in self.entries:
            if remove.get(e.key(), 0) > 0:
                remove[e.key()] -= 1
            else:
                kept.append(e)
        return Baseline(entries=kept)

    def partition(
        self, findings: list[Finding], sources: dict[str, str]
    ) -> tuple[list[Finding], list[Finding]]:
        """Split ``findings`` into (new, baselined), consuming entries."""
        budget: dict[tuple[str, str, str], int] = {}
        for e in self.entries:
            budget[e.key()] = budget.get(e.key(), 0) + 1
        new: list[Finding] = []
        old: list[Finding] = []
        for f in findings:
            key = (f.file, f.rule_id, _snippet(sources, f))
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                old.append(f)
            else:
                new.append(f)
        return new, old


def _snippet(sources: dict[str, str], finding: Finding) -> str:
    lines = sources.get(finding.file, "").splitlines()
    if 1 <= finding.line <= len(lines):
        return lines[finding.line - 1].strip()
    return ""
