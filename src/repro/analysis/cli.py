"""Command-line interface: ``python -m repro.analysis [paths...]``.

Exit codes: 0 clean (or everything waived), 1 new findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.engine import analyze_paths, iter_python_files
from repro.analysis.registry import RULES, load_builtin_rules
from repro.analysis.reporters import render_json, render_text
from repro.common.errors import ReproError

DEFAULT_BASELINE = "analysis-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based determinism & resource-hygiene linter for the repro tree.",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="report format"
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file (default: {DEFAULT_BASELINE}; missing file = empty)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept every current finding into the baseline file and exit 0",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-rule new/suppressed/baselined counts",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    load_builtin_rules()

    rules: list[str] | None = None
    if args.select is not None:
        rules = [r.strip() for r in args.select.split(",") if r.strip()]
        unknown = [r for r in rules if r not in RULES]
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}", file=sys.stderr)
            return 2

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"no such path(s): {', '.join(map(str, missing))}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline)
    try:
        baseline = Baseline.load(baseline_path)
        result = analyze_paths(paths, baseline=baseline, rules=rules)
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.write_baseline:
        sources = {str(f): f.read_text() for f in iter_python_files(paths)}
        merged = result.findings + result.baselined
        merged.sort()
        Baseline.from_findings(merged, sources).save(baseline_path)
        print(f"wrote {len(merged)} finding(s) to {baseline_path}")
        return 0

    render = render_json if args.format == "json" else render_text
    print(render(result, stats=args.stats))
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
