"""Command-line interface: ``python -m repro.analysis [paths...]``.

Exit codes: 0 clean (or everything waived), 1 new findings, 2 usage error.

The whole-program flow pass (``--whole-program``) runs the PUR001 /
SEED001 / RES004 / DET004 pack over the full module set; ``--cache``
makes repeat runs incremental (only changed files re-analyze), and
``--graph`` dumps the call graph + shard reachability as JSON for
debugging why PUR001 does or does not reach a function.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.cache import AnalysisCache
from repro.analysis.engine import analyze_paths, iter_python_files, module_name_for
from repro.analysis.findings import Severity
from repro.analysis.registry import RULES, WHOLE_PROGRAM_RULES, load_builtin_rules
from repro.analysis.reporters import render_github, render_json, render_text
from repro.common.errors import ReproError

DEFAULT_BASELINE = "analysis-baseline.json"

#: Severity rank for ``--min-severity`` (higher = more severe).
_SEVERITY_RANK = {Severity.WARNING: 0, Severity.ERROR: 1}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based determinism & resource-hygiene linter for the repro tree.",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories")
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="report format (github = GitHub Actions ::error annotations)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file (default: {DEFAULT_BASELINE}; missing file = empty)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept every current finding into the baseline file and exit 0",
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help="report baseline entries no current finding matches and rewrite "
        "the baseline without them",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-rule new/suppressed/baselined counts",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--whole-program",
        action="store_true",
        help="also run the flow rules (PUR001/SEED001/RES004/DET004) over "
        "the full module set",
    )
    parser.add_argument(
        "--graph",
        action="store_true",
        help="dump the call graph and shard-execution reachability as JSON "
        "and exit (no findings are reported)",
    )
    parser.add_argument(
        "--cache",
        metavar="PATH",
        default=None,
        help="incremental cache file: unchanged files (by sha256) are not "
        "re-analyzed",
    )
    parser.add_argument(
        "--min-severity",
        choices=tuple(s.value for s in Severity),
        default=None,
        help="findings below this severity are reported as advisory and do "
        "not affect the exit code",
    )
    return parser


def _graph_dump(paths: list[Path]) -> str:
    """JSON call-graph dump for ``--graph``."""
    import ast as _ast

    from repro.analysis.engine import ModuleContext
    from repro.analysis.flow import build_program
    from repro.analysis.rules.flow_rules import SHARD_ENTRY_POINTS

    contexts = []
    for file in iter_python_files(paths):
        source = file.read_text()
        try:
            tree = _ast.parse(source)
        except SyntaxError:
            continue
        contexts.append(
            ModuleContext(
                path=str(file), module=module_name_for(file), source=source, tree=tree
            )
        )
    program = build_program(contexts)
    entries = [e for e in SHARD_ENTRY_POINTS if e in program.index.functions]
    parents = program.graph.reachable_from(entries)
    payload = {
        "modules": sorted(program.index.modules),
        "functions": len(program.index.functions),
        "entry_points": entries,
        "edges": {q: list(callees) for q, callees in sorted(program.graph.edges.items())},
        "reachable_from_shard_execution": {
            q: program.graph.witness_chain(parents, q) for q in sorted(parents)
        },
    }
    return json.dumps(payload, indent=2)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    load_builtin_rules()

    rules: list[str] | None = None
    if args.select is not None:
        rules = [r.strip() for r in args.select.split(",") if r.strip()]
        unknown = [r for r in rules if r not in RULES and r not in WHOLE_PROGRAM_RULES]
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
        if any(r in WHOLE_PROGRAM_RULES for r in rules):
            args.whole_program = True  # selecting a flow rule implies the pass

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"no such path(s): {', '.join(map(str, missing))}", file=sys.stderr)
        return 2

    if args.graph:
        print(_graph_dump(paths))
        return 0

    cache: AnalysisCache | None = None
    if args.cache is not None:
        selected = rules if rules is not None else sorted(RULES) + sorted(WHOLE_PROGRAM_RULES)
        rules_key = ",".join(selected)
        cache = AnalysisCache.load(Path(args.cache), rules_key)

    baseline_path = Path(args.baseline)
    try:
        baseline = Baseline.load(baseline_path)
        result = analyze_paths(
            paths,
            baseline=baseline,
            rules=rules,
            whole_program=args.whole_program,
            cache=cache,
        )
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if cache is not None:
        cache.prune_missing({str(f) for f in iter_python_files(paths)})
        cache.save()

    if args.write_baseline:
        sources = {str(f): f.read_text() for f in iter_python_files(paths)}
        merged = result.findings + result.baselined
        merged.sort()
        Baseline.from_findings(merged, sources).save(baseline_path)
        print(f"wrote {len(merged)} finding(s) to {baseline_path}")
        return 0

    if args.prune_baseline:
        stale = result.stale_baseline
        if stale:
            for entry in stale:
                print(f"stale baseline entry: {entry.file}: {entry.rule_id} {entry.snippet!r}")
            baseline.without(stale).save(baseline_path)
            print(f"pruned {len(stale)} stale entr{'y' if len(stale) == 1 else 'ies'}")
        else:
            print("baseline has no stale entries")

    if args.min_severity is not None:
        threshold = _SEVERITY_RANK[Severity(args.min_severity)]
        gating = [f for f in result.findings if _SEVERITY_RANK[f.severity] >= threshold]
        result.advisory = [
            f for f in result.findings if _SEVERITY_RANK[f.severity] < threshold
        ]
        result.findings = gating

    if args.format == "json":
        print(render_json(result, stats=args.stats))
    elif args.format == "github":
        print(render_github(result))
    else:
        print(render_text(result, stats=args.stats))
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
