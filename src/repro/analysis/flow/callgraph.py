"""Call graph over the indexed program.

Edges are resolved by a deliberately small local type inference:
parameter annotations, ``self`` -> the owning class, ``x = ClassName(...)``
constructor bindings, factory/return annotations, and ``self.attr``
types collected by the module index.  Two extra edge kinds matter for
this codebase: constructor edges (``Site(...)`` reaches ``Site.__init__``)
and *reference* edges — a bare function name passed as an argument, the
``pool.submit(_execute_batch, batch)`` idiom, reaches the referenced
function even though no call syntax appears.

Unresolvable calls produce no edge; whole-program rules treat missing
edges as "can't prove reachable", which keeps PUR001 quiet on external
libraries while staying complete over ``src/repro``'s own plumbing.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass

from repro.analysis.flow.modindex import FunctionInfo, ProgramIndex, all_args, dotted_name

#: Rounds of local assignment propagation (`a = Foo(); b = a; c = b`).
_ENV_ROUNDS = 3


@dataclass(frozen=True)
class CallGraph:
    """Function-qname -> callee-qnames, deterministic (sorted) everywhere."""

    edges: dict[str, tuple[str, ...]]

    def reachable_from(self, entries: list[str]) -> dict[str, str | None]:
        """BFS closure; maps each reachable qname to its BFS parent
        (entries map to ``None``), so rules can print a witness chain."""
        parents: dict[str, str | None] = {}
        queue: deque[str] = deque()
        for entry in sorted(entries):
            if entry in self.edges and entry not in parents:
                parents[entry] = None
                queue.append(entry)
        while queue:
            cur = queue.popleft()
            for callee in self.edges.get(cur, ()):
                if callee not in parents:
                    parents[callee] = cur
                    queue.append(callee)
        return parents

    def witness_chain(self, parents: dict[str, str | None], qname: str) -> list[str]:
        """Entry -> ... -> qname along BFS parents."""
        chain = [qname]
        cur: str | None = qname
        while cur is not None:
            cur = parents.get(cur)
            if cur is not None:
                chain.append(cur)
        chain.reverse()
        return chain


def build_callgraph(index: ProgramIndex) -> CallGraph:
    edges: dict[str, tuple[str, ...]] = {}
    for qname in sorted(index.functions):
        edges[qname] = tuple(sorted(_edges_for(index.functions[qname], index)))
    return CallGraph(edges=edges)


def _edges_for(fi: FunctionInfo, index: ProgramIndex) -> set[str]:
    env = _local_env(fi, index)
    out: set[str] = set()
    call_func_ids: set[int] = set()
    inner_ids: set[int] = set()  # sub-chains of a longer Attribute chain
    calls: list[ast.Call] = []
    for node in ast.walk(fi.node):
        if isinstance(node, ast.Call):
            calls.append(node)
            call_func_ids.add(id(node.func))
        if isinstance(node, ast.Attribute):
            inner_ids.add(id(node.value))
    for call in calls:
        target = _resolve_call(fi, env, call.func, index)
        if target is None:
            continue
        out.update(_as_function_edges(target, index))
    # reference edges: a function (or class) named in non-call position —
    # only maximal chains, so `Cls.method()` does not read as a `Cls` ref
    for node in ast.walk(fi.node):
        if id(node) in call_func_ids or id(node) in inner_ids:
            continue
        if isinstance(node, (ast.Name, ast.Attribute)) and isinstance(node.ctx, ast.Load):
            dotted = dotted_name(node)
            if dotted is None:
                continue
            resolved = _resolve_dotted_here(fi, dotted, index)
            if resolved is not None:
                out.update(_as_function_edges(resolved, index))
    out.discard(fi.qname)
    return out


def _as_function_edges(qname: str, index: ProgramIndex) -> set[str]:
    """Normalize a resolved target to function nodes: a class contributes
    its ``__init__`` (constructor edge) when one is indexed."""
    if qname in index.functions:
        return {qname}
    if qname in index.classes:
        init = index.lookup_method(qname, "__init__")
        return {init} if init is not None else set()
    return set()


def _resolve_dotted_here(fi: FunctionInfo, dotted: str, index: ProgramIndex) -> str | None:
    head, _, rest = dotted.partition(".")
    if not rest:
        return index.resolve_in_module(fi.ctx, head)
    imported = fi.ctx.imports.get(head)
    if imported is None:
        return None
    return index.resolve_dotted(f"{imported}.{rest}")


def _resolve_call(
    fi: FunctionInfo, env: dict[str, str], func: ast.expr, index: ProgramIndex
) -> str | None:
    """Resolve a call's target to an indexed function/class qname."""
    if isinstance(func, ast.Name):
        return index.resolve_in_module(fi.ctx, func.id)
    if isinstance(func, ast.Attribute):
        # imported dotted chain: repro.x.f(...) / alias.f(...)
        dotted = fi.ctx.qualified_name(func)
        if dotted is not None:
            resolved = index.resolve_dotted(dotted)
            if resolved is not None:
                return resolved
        # method on a typed receiver: site.compute.create_server(...)
        recv = _expr_class(fi, env, func.value, index)
        if recv is not None:
            return index.lookup_method(recv, func.attr)
    return None


def _expr_class(
    fi: FunctionInfo, env: dict[str, str], expr: ast.expr, index: ProgramIndex
) -> str | None:
    """The indexed class of an expression's value, when provable."""
    if isinstance(expr, ast.Name):
        return env.get(expr.id)
    if isinstance(expr, ast.Attribute):
        owner = _expr_class(fi, env, expr.value, index)
        if owner is None:
            return None
        return index.attr_class(owner, expr.attr)
    if isinstance(expr, ast.Call):
        target = _resolve_call(fi, env, expr.func, index)
        if target is None:
            return None
        if target in index.classes:
            return target
        return index.return_class(target)
    if isinstance(expr, ast.IfExp):
        return _expr_class(fi, env, expr.body, index) or _expr_class(
            fi, env, expr.orelse, index
        )
    return None


def _local_env(fi: FunctionInfo, index: ProgramIndex) -> dict[str, str]:
    """name -> class qname for this function's locals and parameters."""
    env: dict[str, str] = {}
    for arg in all_args(fi.node):
        cls = index.annotation_class(fi.ctx, arg.annotation)
        if cls is not None:
            env[arg.arg] = cls
    if fi.cls is not None:
        args = fi.node.args
        positional = [*args.posonlyargs, *args.args]
        if positional and positional[0].arg in ("self", "cls"):
            env.setdefault(positional[0].arg, fi.cls)
    assigns: list[tuple[str, ast.expr]] = []
    for node in ast.walk(fi.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            t = node.targets[0]
            if isinstance(t, ast.Name):
                assigns.append((t.id, node.value))
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            cls = index.annotation_class(fi.ctx, node.annotation)
            if cls is not None:
                env[node.target.id] = cls
    for _ in range(_ENV_ROUNDS):
        changed = False
        for name, value in assigns:
            if name in env:
                continue
            cls = _expr_class(fi, env, value, index)
            if cls is not None:
                env[name] = cls
                changed = True
        if not changed:
            break
    return env
