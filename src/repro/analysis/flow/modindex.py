"""Project-wide module index: every module, class, and function by name.

The per-file engine resolves import aliases inside one
:class:`~repro.analysis.engine.ModuleContext`; this index stitches those
contexts into one namespace so whole-program rules can ask "what function
does ``repro.parallel.run_parallel`` actually name?" and "what type does
``self.compute`` have on a ``Site``?".  Resolution is deliberately
best-effort: anything the index cannot prove stays ``None`` and the rules
treat it as opaque (no finding), never as a guess.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.engine import ModuleContext

#: An ``from a import b`` chain is followed at most this many hops before
#: resolution gives up (guards against pathological re-export cycles).
_MAX_HOPS = 8

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef

#: Typing containers whose *outer* name never resolves to a project class;
#: for unions/optionals the element types are worth trying instead.
_UNION_WRAPPERS = frozenset({"Optional", "Union"})
_CONTAINER_NAMES = frozenset(
    {"list", "tuple", "set", "frozenset", "dict", "List", "Tuple", "Set", "Dict", "FrozenSet"}
)


@dataclass
class FunctionInfo:
    """One indexed function or method."""

    qname: str  # "repro.core.cohort.execute_shard" / "repro.cloud.site.Site.server"
    module: str
    cls: str | None  # owning class qname, None for free functions
    name: str
    node: FunctionNode
    ctx: ModuleContext


@dataclass
class ClassInfo:
    """One indexed class: methods, resolved bases, and attribute types."""

    qname: str
    module: str
    name: str
    node: ast.ClassDef
    ctx: ModuleContext
    bases: tuple[str, ...] = ()  # resolved class qnames only
    methods: dict[str, str] = field(default_factory=dict)  # method name -> function qname
    # attr name -> annotation/constructor expression, resolved lazily
    attr_exprs: dict[str, ast.expr] = field(default_factory=dict)


@dataclass
class ProgramIndex:
    """All modules of one analysis run, merged into a single namespace."""

    modules: dict[str, ModuleContext] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)

    # -- namespace resolution ------------------------------------------------

    def resolve_dotted(self, dotted: str) -> str | None:
        """Follow re-export chains until ``dotted`` names an indexed
        function or class; ``None`` when it never does (external names,
        locals, unresolvable star-imports)."""
        seen: set[str] = set()
        for _ in range(_MAX_HOPS):
            if dotted in seen:
                return None
            seen.add(dotted)
            if dotted in self.functions or dotted in self.classes:
                return dotted
            hop = self._reexport_hop(dotted)
            if hop is None:
                return None
            dotted = hop
        return None

    def _reexport_hop(self, dotted: str) -> str | None:
        """One import hop: find the longest module prefix of ``dotted`` and
        push the next segment through that module's import table."""
        parts = dotted.split(".")
        for i in range(len(parts) - 1, 0, -1):
            mctx = self.modules.get(".".join(parts[:i]))
            if mctx is None:
                continue
            target = mctx.imports.get(parts[i])
            if target is None:
                return None
            return ".".join([target, *parts[i + 1 :]])
        return None

    def resolve_in_module(self, ctx: ModuleContext, name: str) -> str | None:
        """Resolve a bare name as seen from ``ctx``: module-local definition
        first, then the import table."""
        local = f"{ctx.module}.{name}"
        if local in self.functions or local in self.classes:
            return local
        imported = ctx.imports.get(name)
        if imported is None:
            return None
        return self.resolve_dotted(imported)

    # -- class structure -----------------------------------------------------

    def lookup_method(self, cls_qname: str, name: str) -> str | None:
        """Find ``name`` on the class or (depth-first) on its bases."""
        seen: set[str] = set()
        stack = [cls_qname]
        while stack:
            qn = stack.pop(0)
            if qn in seen:
                continue
            seen.add(qn)
            info = self.classes.get(qn)
            if info is None:
                continue
            hit = info.methods.get(name)
            if hit is not None:
                return hit
            stack.extend(info.bases)
        return None

    def attr_class(self, cls_qname: str, attr: str) -> str | None:
        """The class of ``instance.attr`` when the index can prove one."""
        seen: set[str] = set()
        stack = [cls_qname]
        while stack:
            qn = stack.pop(0)
            if qn in seen:
                continue
            seen.add(qn)
            info = self.classes.get(qn)
            if info is None:
                continue
            expr = info.attr_exprs.get(attr)
            if expr is not None:
                return self.annotation_class(info.ctx, expr)
            stack.extend(info.bases)
        return None

    def return_class(self, fn_qname: str) -> str | None:
        """The class a function returns, from its return annotation."""
        info = self.functions.get(fn_qname)
        if info is None or info.node.returns is None:
            return None
        return self.annotation_class(info.ctx, info.node.returns)

    # -- annotations ---------------------------------------------------------

    def annotation_class(self, ctx: ModuleContext, node: ast.expr | None) -> str | None:
        """Map a type annotation (or constructor call) to an indexed class.

        Understands plain names, dotted names, string annotations,
        ``X | None`` unions, ``Optional[X]``/``Union[X, ...]``, and
        constructor/factory calls whose target resolves in the index.
        Containers (``list[X]`` etc.) intentionally resolve to ``None`` —
        an attribute holding a list of X is not an X.
        """
        for cand in self._annotation_names(node):
            resolved = self._resolve_type_name(ctx, cand)
            if resolved is not None:
                return resolved
        return None

    def _annotation_names(self, node: ast.expr | None) -> list[str]:
        if node is None:
            return []
        if isinstance(node, ast.Constant):
            if isinstance(node.value, str):
                try:
                    inner = ast.parse(node.value, mode="eval").body
                except SyntaxError:
                    return []
                return self._annotation_names(inner)
            return []
        if isinstance(node, ast.Name):
            if node.id in _CONTAINER_NAMES:
                return []
            return [node.id]
        if isinstance(node, ast.Attribute):
            dotted = dotted_name(node)
            return [dotted] if dotted is not None else []
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            return self._annotation_names(node.left) + self._annotation_names(node.right)
        if isinstance(node, ast.Subscript):
            head = node.value
            head_name = head.id if isinstance(head, ast.Name) else None
            if head_name in _UNION_WRAPPERS:
                sl = node.slice
                elts = sl.elts if isinstance(sl, ast.Tuple) else [sl]
                out: list[str] = []
                for elt in elts:
                    out.extend(self._annotation_names(elt))
                return out
            return self._annotation_names(head)
        if isinstance(node, ast.Call):
            # constructor / factory call used as an attribute initializer
            target = dotted_name(node.func)
            return [target] if target is not None else []
        return []

    def _resolve_type_name(self, ctx: ModuleContext, dotted: str) -> str | None:
        head, _, rest = dotted.partition(".")
        base = ctx.imports.get(head)
        candidate = ".".join(filter(None, [base, rest])) if base else None
        for full in (candidate, f"{ctx.module}.{dotted}" if not rest else None):
            if full is None:
                continue
            resolved = self.resolve_dotted(full)
            if resolved is None:
                continue
            if resolved in self.classes:
                return resolved
            # a factory function: follow its return annotation
            if resolved in self.functions:
                return self.return_class(resolved)
        return None


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` -> "a.b.c" when the chain roots in a plain name."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    return ".".join([cur.id, *reversed(parts)])


def _index_class(info: ClassInfo, index: ProgramIndex) -> None:
    """Collect methods and attribute-type evidence from one class body."""
    for stmt in info.node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods[stmt.name] = f"{info.qname}.{stmt.name}"
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            info.attr_exprs.setdefault(stmt.target.id, stmt.annotation)
    # ``self.attr = ...`` bindings anywhere in the class's methods; the
    # first binding wins (``__init__`` comes first in idiomatic code).
    for stmt in info.node.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        params = {a.arg: a.annotation for a in all_args(stmt) if a.annotation is not None}
        for sub in ast.walk(stmt):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target, value = sub.targets[0], sub.value
            elif isinstance(sub, ast.AnnAssign):
                target, value = sub.target, sub.annotation
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and value is not None
            ):
                # ``self.x = param`` inherits the parameter's annotation
                if isinstance(value, ast.Name) and value.id in params:
                    value = params[value.id]
                info.attr_exprs.setdefault(target.attr, value)


def all_args(fn: FunctionNode) -> list[ast.arg]:
    a = fn.args
    return [*a.posonlyargs, *a.args, *a.kwonlyargs]


def build_index(modules: list[ModuleContext]) -> ProgramIndex:
    """Index every top-level function and class across ``modules``.

    Later definitions shadow earlier ones under the same qualified name
    (matching runtime rebinding semantics), which is also what lets tests
    plant a violation by appending a redefinition to a module's source.
    """
    index = ProgramIndex()
    for ctx in modules:
        index.modules[ctx.module] = ctx
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{ctx.module}.{stmt.name}"
                index.functions[qname] = FunctionInfo(
                    qname=qname, module=ctx.module, cls=None, name=stmt.name, node=stmt, ctx=ctx
                )
            elif isinstance(stmt, ast.ClassDef):
                cls_qname = f"{ctx.module}.{stmt.name}"
                index.classes[cls_qname] = ClassInfo(
                    qname=cls_qname, module=ctx.module, name=stmt.name, node=stmt, ctx=ctx
                )
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        mq = f"{cls_qname}.{sub.name}"
                        index.functions[mq] = FunctionInfo(
                            qname=mq,
                            module=ctx.module,
                            cls=cls_qname,
                            name=sub.name,
                            node=sub,
                            ctx=ctx,
                        )
    # second pass: class structure (needs every class name known first)
    for info in index.classes.values():
        _index_class(info, index)
        bases: list[str] = []
        for b in info.node.bases:
            dotted = dotted_name(b)
            if dotted is None:
                continue
            resolved = index._resolve_type_name(info.ctx, dotted)
            if resolved is not None and resolved in index.classes:
                bases.append(resolved)
        info.bases = tuple(bases)
    return index
