"""Intraprocedural control-flow graphs, with exception edges.

One node per statement (plus synthetic entry/exit/junction nodes), built
for path questions like RES004's "does every route from ``open_span`` to
function exit pass a close?".  Exception edges are modelled where they
are *structurally visible*: every ``raise``, every ``assert``, and every
statement lexically inside a ``try`` body gets edges to the applicable
handlers (or out of the function when nothing catches).  ``finally``
bodies are instantiated once per route — normal, exceptional, and
early-return — so a close inside ``finally`` covers all three.

Deliberate limit: a call *outside* any ``try`` is not given a may-raise
edge.  Doing so would make every statement a potential exit and drown
the one real leak class (early return / caught-and-skipped close) in
noise; DESIGN §10 records the trade.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.analysis.flow.modindex import FunctionNode

CallPred = Callable[[ast.Call], bool]


@dataclass(frozen=True)
class CFG:
    """Statement-level flow graph for one function body."""

    entry: int
    exit: int
    succ: dict[int, tuple[int, ...]]
    stmts: dict[int, ast.stmt | None]  # None for synthetic nodes

    def nodes(self) -> list[int]:
        return sorted(self.succ)


@dataclass(frozen=True)
class _Frame:
    """Where abnormal control transfers go from the current position."""

    raise_to: tuple[int, ...]  # explicit `raise` / failing `assert`
    stmt_exc_to: tuple[int, ...]  # any statement inside a try body
    return_to: int  # EXIT, or the innermost finally's return junction
    breaks: list[int] = field(default_factory=list)
    continues: list[int] = field(default_factory=list)


def _catches_everything(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    names = []
    t = handler.type
    elts = t.elts if isinstance(t, ast.Tuple) else [t]
    for e in elts:
        if isinstance(e, ast.Name):
            names.append(e.id)
    return any(n in ("Exception", "BaseException") for n in names)


class _Builder:
    def __init__(self) -> None:
        self.succ: dict[int, set[int]] = {}
        self.stmts: dict[int, ast.stmt | None] = {}

    def node(self, stmt: ast.stmt | None) -> int:
        nid = len(self.stmts)
        self.stmts[nid] = stmt
        self.succ[nid] = set()
        return nid

    def edge(self, frm: int, to: int) -> None:
        self.succ[frm].add(to)

    def edges(self, frontier: set[int], to: int) -> None:
        for f in frontier:
            self.edge(f, to)

    # -- statement dispatch --------------------------------------------------

    def stmts_seq(self, body: list[ast.stmt], frontier: set[int], frame: _Frame) -> set[int]:
        for stmt in body:
            if not frontier:
                break  # unreachable code after return/raise/break
            frontier = self.stmt(stmt, frontier, frame)
        return frontier

    def stmt(self, stmt: ast.stmt, frontier: set[int], frame: _Frame) -> set[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier, frame)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, frontier, frame)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier, frame)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            head = self._plain(stmt, frontier, frame)
            return self.stmts_seq(stmt.body, head, frame)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, frontier, frame)
        if isinstance(stmt, ast.Return):
            head = self._plain(stmt, frontier, frame)
            self.edges(head, frame.return_to)
            return set()
        if isinstance(stmt, ast.Raise):
            nid = self.node(stmt)
            self.edges(frontier, nid)
            for t in frame.raise_to:
                self.edge(nid, t)
            return set()
        if isinstance(stmt, ast.Assert):
            # a failing assert raises; a passing one falls through
            head = self._plain(stmt, frontier, frame)
            for nid in head:
                for t in frame.raise_to:
                    self.edge(nid, t)
            return head
        if isinstance(stmt, ast.Break):
            nid = self.node(stmt)
            self.edges(frontier, nid)
            frame.breaks.append(nid)
            return set()
        if isinstance(stmt, ast.Continue):
            nid = self.node(stmt)
            self.edges(frontier, nid)
            frame.continues.append(nid)
            return set()
        return self._plain(stmt, frontier, frame)

    def _plain(self, stmt: ast.stmt, frontier: set[int], frame: _Frame) -> set[int]:
        nid = self.node(stmt)
        self.edges(frontier, nid)
        for t in frame.stmt_exc_to:
            self.edge(nid, t)
        return {nid}

    def _if(self, stmt: ast.If, frontier: set[int], frame: _Frame) -> set[int]:
        head = self._plain(stmt, frontier, frame)
        then_out = self.stmts_seq(stmt.body, set(head), frame)
        else_out = self.stmts_seq(stmt.orelse, set(head), frame) if stmt.orelse else set(head)
        return then_out | else_out

    def _loop(self, stmt: ast.While | ast.For | ast.AsyncFor, frontier: set[int],
              frame: _Frame) -> set[int]:
        head = self._plain(stmt, frontier, frame)
        loop_frame = replace(frame, breaks=[], continues=[])
        body_out = self.stmts_seq(stmt.body, set(head), loop_frame)
        for nid in body_out:
            for h in head:
                self.edge(nid, h)
        for nid in loop_frame.continues:
            for h in head:
                self.edge(nid, h)
        never_exits = (
            isinstance(stmt, ast.While)
            and isinstance(stmt.test, ast.Constant)
            and bool(stmt.test.value)
        )
        exits: set[int] = set() if never_exits else set(head)
        exits |= set(loop_frame.breaks)
        if stmt.orelse and not never_exits:
            exits = self.stmts_seq(stmt.orelse, set(head), frame) | set(loop_frame.breaks)
        return exits

    def _match(self, stmt: ast.Match, frontier: set[int], frame: _Frame) -> set[int]:
        head = self._plain(stmt, frontier, frame)
        out: set[int] = set()
        wildcard = False
        for case in stmt.cases:
            out |= self.stmts_seq(case.body, set(head), frame)
            if isinstance(case.pattern, ast.MatchAs) and case.pattern.pattern is None:
                if case.guard is None:
                    wildcard = True
        if not wildcard:
            out |= head
        return out

    def _try(self, stmt: ast.Try, frontier: set[int], frame: _Frame) -> set[int]:
        head = self._plain(stmt, frontier, frame)
        has_final = bool(stmt.finalbody)
        # junction collecting exceptions no handler here catches
        exc_out = self.node(None)
        ret_junction = self.node(None) if has_final else None

        handler_heads = [self.node(h) for h in stmt.handlers]
        caught_all = any(_catches_everything(h) for h in stmt.handlers)
        body_exc = tuple(handler_heads) + (() if caught_all else (exc_out,))
        inner_return = ret_junction if ret_junction is not None else frame.return_to
        body_frame = replace(
            frame, raise_to=body_exc, stmt_exc_to=body_exc, return_to=inner_return
        )
        body_out = self.stmts_seq(stmt.body, set(head), body_frame)

        # handlers and orelse raise *past* this try (but through its finally)
        outer_frame = replace(
            frame,
            raise_to=(exc_out,),
            stmt_exc_to=(exc_out,) if has_final else frame.stmt_exc_to,
            return_to=inner_return,
        )
        normal_out = (
            self.stmts_seq(stmt.orelse, body_out, outer_frame) if stmt.orelse else body_out
        )
        for hid, handler in zip(handler_heads, stmt.handlers):
            normal_out |= self.stmts_seq(handler.body, {hid}, outer_frame)

        if not has_final:
            for t in frame.raise_to:
                self.edge(exc_out, t)
            return normal_out

        # normal completion runs finally and falls through
        after = self.stmts_seq(stmt.finalbody, normal_out, frame)
        # exceptional route: finally runs, then the exception propagates
        exc_fin = self.stmts_seq(stmt.finalbody, {exc_out}, frame)
        for nid in exc_fin:
            for t in frame.raise_to:
                self.edge(nid, t)
        # early-return route: finally runs, then control leaves the function
        assert ret_junction is not None
        ret_fin = self.stmts_seq(stmt.finalbody, {ret_junction}, frame)
        for nid in ret_fin:
            self.edge(nid, frame.return_to)
        return after


def build_cfg(fn: FunctionNode) -> CFG:
    """Build the CFG of one function body (nested defs are opaque nodes)."""
    b = _Builder()
    entry = b.node(None)
    exit_ = b.node(None)
    frame = _Frame(raise_to=(exit_,), stmt_exc_to=(), return_to=exit_)
    frontier = b.stmts_seq(fn.body, {entry}, frame)
    b.edges(frontier, exit_)
    return CFG(
        entry=entry,
        exit=exit_,
        succ={n: tuple(sorted(s)) for n, s in b.succ.items()},
        stmts=dict(b.stmts),
    )


def may_reach_exit_open(cfg: CFG, is_open: CallPred, is_close: CallPred) -> list[ast.Call]:
    """Forward may-analysis: open calls for which *some* path reaches the
    function exit without passing a close.  Nested function/lambda bodies
    are excluded on both sides — code that does not run on this frame's
    path neither opens nor closes anything here."""
    gen: dict[int, list[ast.Call]] = {}
    kill: dict[int, bool] = {}
    for nid, stmt in cfg.stmts.items():
        opens: list[ast.Call] = []
        closes = False
        if stmt is not None:
            for call in _same_frame_calls(stmt):
                if is_close(call):
                    closes = True
                elif is_open(call):
                    opens.append(call)
        gen[nid] = opens
        kill[nid] = closes

    preds: dict[int, list[int]] = {n: [] for n in cfg.succ}
    for pred, succs in cfg.succ.items():
        for s in succs:
            preds[s].append(pred)
    live_in: dict[int, set[int]] = {n: set() for n in cfg.succ}
    live_out: dict[int, set[int]] = {n: set() for n in cfg.succ}
    by_id: dict[int, ast.Call] = {}
    for opens in gen.values():
        for call in opens:
            by_id[id(call)] = call

    changed = True
    while changed:
        changed = False
        for nid in cfg.nodes():
            inset: set[int] = set()
            for pred in preds[nid]:
                inset |= live_out[pred]
            outset = set() if kill[nid] else set(inset)
            outset |= {id(c) for c in gen[nid]}
            if inset != live_in[nid] or outset != live_out[nid]:
                live_in[nid] = inset
                live_out[nid] = outset
                changed = True

    leaked = [by_id[cid] for cid in live_in[cfg.exit]]
    leaked.sort(key=lambda c: (c.lineno, c.col_offset))
    return leaked


def _same_frame_calls(stmt: ast.stmt) -> list[ast.Call]:
    """Calls made when this statement executes — skipping nested defs
    and lambdas, whose bodies run on some other frame, some other time."""
    out: list[ast.Call] = []
    stack: list[ast.AST] = []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        # a nested def: only its decorators and argument defaults run now
        stack.extend(stmt.decorator_list)
        stack.extend(stmt.args.defaults)
        stack.extend(d for d in stmt.args.kw_defaults if d is not None)
    else:
        stack.append(stmt)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return out
