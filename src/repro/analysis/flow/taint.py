"""Effect detection and taint propagation for the flow rules.

Three analyses live here, each scoped to one function at a time (the
call graph supplies the inter-procedural glue):

* :func:`direct_effects` — PUR001's purity check: RNG construction,
  wall-clock/entropy reads, and module-global mutation.  Effects inside
  nested defs and lambdas *count*: shard execution schedules closures,
  and a closure that draws entropy runs on the shard's clock.
* :func:`seed_provenance_findings` — SEED001: every ``Generator``
  construction must be fed from a parameter, attribute, or spawned
  ``SeedSequence``; literal or module-constant seeds are findings.
* :func:`unordered_flow` — DET004: values produced by unordered dict/set
  iteration, propagated through local assignments to a fixpoint, must
  not reach journaled/digested/reported sinks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.engine import ModuleContext
from repro.analysis.flow.modindex import FunctionInfo, all_args
from repro.analysis.rules.determinism import WALL_CLOCK_CALLS, _is_set_expr

#: numpy.random entry points that construct generator state.
RNG_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.PCG64",
        "numpy.random.PCG64DXSM",
        "numpy.random.Philox",
        "numpy.random.SFC64",
        "numpy.random.MT19937",
    }
)

#: Method calls that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
        "appendleft",
        "extendleft",
    }
)


@dataclass(frozen=True)
class Effect:
    """One impurity found inside a function body."""

    node: ast.AST
    kind: str  # "rng" | "clock" | "global"
    detail: str


def _local_store_names(fn_node: ast.AST) -> set[str]:
    """Every name the function (incl. nested scopes) binds locally."""
    names: set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.update(a.arg for a in all_args(node))
        elif isinstance(node, ast.Lambda):
            a = node.args
            names.update(x.arg for x in [*a.posonlyargs, *a.args, *a.kwonlyargs])
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".", 1)[0])
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
    return names


def _module_level_bindings(tree: ast.Module) -> set[str]:
    """Names bound by module-level statements (mutable state candidates)."""
    out: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for t in stmt.targets:
                for n in ast.walk(t):
                    if isinstance(n, ast.Name):
                        out.add(n.id)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(stmt.target, ast.Name):
                out.add(stmt.target.id)
    return out


def _root_name(expr: ast.expr) -> str | None:
    cur = expr
    while isinstance(cur, (ast.Attribute, ast.Subscript)):
        cur = cur.value
    return cur.id if isinstance(cur, ast.Name) else None


def direct_effects(fi: FunctionInfo) -> list[Effect]:
    """Impure operations lexically inside ``fi`` (nested scopes included)."""
    ctx = fi.ctx
    effects: list[Effect] = []
    module_names = _module_level_bindings(ctx.tree)
    local_names = _local_store_names(fi.node) | {a.arg for a in all_args(fi.node)}
    globals_declared: set[str] = set()
    for node in ast.walk(fi.node):
        if isinstance(node, ast.Global):
            globals_declared.update(node.names)

    for node in ast.walk(fi.node):
        if isinstance(node, ast.Call):
            qname = ctx.qualified_name(node.func)
            if qname is None:
                continue
            if qname in RNG_CONSTRUCTORS or qname == "random.Random":
                effects.append(Effect(node, "rng", f"constructs RNG state via {qname}()"))
            elif qname in WALL_CLOCK_CALLS or (
                qname.startswith("random.") and qname != "random.Random"
            ):
                effects.append(Effect(node, "clock", f"reads wall clock/entropy via {qname}()"))
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in module_names
                and node.func.value.id not in local_names
            ):
                effects.append(
                    Effect(
                        node,
                        "global",
                        f"mutates module global {node.func.value.id!r} "
                        f"via .{node.func.attr}()",
                    )
                )
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id in globals_declared:
                    effects.append(
                        Effect(node, "global", f"rebinds module global {target.id!r}")
                    )
                elif isinstance(target, (ast.Subscript, ast.Attribute)):
                    root = _root_name(target)
                    if root is not None and root in module_names and root not in local_names:
                        effects.append(
                            Effect(node, "global", f"writes into module global {root!r}")
                        )
    effects.sort(key=lambda e: (getattr(e.node, "lineno", 0), getattr(e.node, "col_offset", 0)))
    return effects


# -- SEED001: generator seed provenance ---------------------------------------------

#: Provenance tags a seed expression can carry.
_OK_TAGS = frozenset({"param", "attr", "spawn"})
_BAD_TAGS = frozenset({"literal", "global"})


def _function_stack_map(tree: ast.Module) -> dict[int, list[ast.AST]]:
    """node id -> enclosing function-def chain (innermost last)."""
    out: dict[int, list[ast.AST]] = {}

    def visit(node: ast.AST, stack: list[ast.AST]) -> None:
        out[id(node)] = list(stack)
        is_fn = isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
        if is_fn:
            stack = [*stack, node]
        for child in ast.iter_child_nodes(node):
            visit(child, stack)

    visit(tree, [])
    return out


def _params_of(stack: list[ast.AST]) -> set[str]:
    params: set[str] = set()
    for fn in stack:
        if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            params.update(a.arg for a in all_args(fn))
        elif isinstance(fn, ast.Lambda):
            a = fn.args
            params.update(x.arg for x in [*a.posonlyargs, *a.args, *a.kwonlyargs])
    return params


def _local_assignments(stack: list[ast.AST]) -> dict[str, ast.expr]:
    """name -> last assigned expression within the enclosing functions."""
    env: dict[str, ast.expr] = {}
    for fn in stack:
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                t = node.targets[0]
                if isinstance(t, ast.Name):
                    env[t.id] = node.value
            elif isinstance(node, ast.For) and isinstance(node.target, ast.Name):
                env[node.target.id] = node.iter
    return env


def seed_tags(
    expr: ast.expr,
    ctx: ModuleContext,
    params: set[str],
    env: dict[str, ast.expr],
    _depth: int = 0,
) -> set[str]:
    """Classify where a seed expression's entropy comes from."""
    if _depth > 6:
        return {"unknown"}
    if isinstance(expr, ast.Constant):
        return {"literal"}
    if isinstance(expr, ast.Name):
        if expr.id in params:
            return {"param"}
        if expr.id in env:
            return seed_tags(env[expr.id], ctx, params, env, _depth + 1)
        if expr.id in ctx.imports or expr.id in _module_level_bindings(ctx.tree):
            return {"global"}
        return {"unknown"}
    if isinstance(expr, ast.Attribute):
        root = _root_name(expr)
        if root is not None and (root in params or root == "self"):
            return {"attr"}
        if ctx.qualified_name(expr) is not None:
            return {"global"}
        return {"unknown"}
    if isinstance(expr, ast.Subscript):
        return seed_tags(expr.value, ctx, params, env, _depth + 1)
    if isinstance(expr, ast.Call):
        if isinstance(expr.func, ast.Attribute) and expr.func.attr == "spawn":
            return {"spawn"}
        qname = ctx.qualified_name(expr.func)
        if qname == "numpy.random.SeedSequence":
            if not expr.args:
                return {"literal"}
            return seed_tags(expr.args[0], ctx, params, env, _depth + 1)
        return {"unknown"}
    if isinstance(expr, ast.BinOp):
        return seed_tags(expr.left, ctx, params, env, _depth + 1) | seed_tags(
            expr.right, ctx, params, env, _depth + 1
        )
    if isinstance(expr, ast.IfExp):
        return seed_tags(expr.body, ctx, params, env, _depth + 1) | seed_tags(
            expr.orelse, ctx, params, env, _depth + 1
        )
    return {"unknown"}


@dataclass(frozen=True)
class SeedFinding:
    """One Generator construction whose seed never left the module."""

    node: ast.Call
    tags: frozenset[str]


def seed_provenance_findings(ctx: ModuleContext) -> list[SeedFinding]:
    """SEED001 evidence for one module (the rule applies scope/exemptions)."""
    stacks = _function_stack_map(ctx.tree)
    out: list[SeedFinding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        qname = ctx.qualified_name(node.func)
        if qname not in ("numpy.random.default_rng", "numpy.random.Generator"):
            continue
        seed: ast.expr | None = node.args[0] if node.args else None
        for kw in node.keywords:
            if kw.arg == "seed":
                seed = kw.value
        if seed is None or (isinstance(seed, ast.Constant) and seed.value is None):
            continue  # ambient entropy is DET002's finding, not SEED001's
        stack = stacks.get(id(node), [])
        params = _params_of(stack)
        env = _local_assignments(stack)
        tags = seed_tags(seed, ctx, params, env)
        if tags & _OK_TAGS:
            continue
        if tags and tags <= _BAD_TAGS:
            out.append(SeedFinding(node=node, tags=frozenset(tags)))
    out.sort(key=lambda f: (f.node.lineno, f.node.col_offset))
    return out


# -- DET004: unordered iteration flowing into stable outputs ------------------------

#: Sink call names: anything whose result is journaled, digested, or reported.
_HASH_CONSTRUCTORS = frozenset(
    {"hashlib.sha256", "hashlib.sha1", "hashlib.md5", "hashlib.blake2b", "hashlib.blake2s"}
)
_JSON_SINKS = frozenset({"json.dump", "json.dumps"})
_PROPAGATE_MUTATORS = frozenset({"append", "add", "extend", "insert", "update", "setdefault"})
_TAINT_ROUNDS = 4


@dataclass(frozen=True)
class UnorderedFlow:
    """One unordered-iteration site whose values reach a stable-output sink."""

    site: ast.AST  # the iterable expression (anchor)
    kind: str  # "set" | "dict view"
    sink: ast.Call
    sink_desc: str


@dataclass(frozen=True)
class _Site:
    """One unordered-iteration construct and the taint it seeds."""

    anchor: ast.AST  # the iterable expression (where the finding points)
    names: frozenset[str]  # loop-target names carrying iteration order
    node_ids: frozenset[int]  # expression nodes carrying it (comprehensions)
    kind: str  # "set" | "dict view"


def _classify_unordered(iterable: ast.expr) -> str | None:
    if _is_set_expr(iterable):
        return "set"
    if (
        isinstance(iterable, ast.Call)
        and isinstance(iterable.func, ast.Attribute)
        and iterable.func.attr in ("keys", "values", "items")
        and not iterable.args
    ):
        return "dict view"
    return None


def _unordered_sites(fn_node: ast.AST) -> list[_Site]:
    sites: list[_Site] = []
    for node in ast.walk(fn_node):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            kind = _classify_unordered(node.iter)
            if kind is not None:
                names = frozenset(
                    n.id
                    for n in ast.walk(node.target)
                    if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store)
                )
                sites.append(
                    _Site(anchor=node.iter, names=names, node_ids=frozenset(), kind=kind)
                )
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                kind = _classify_unordered(gen.iter)
                if kind is not None:
                    # the comprehension's value itself carries the taint
                    sites.append(
                        _Site(
                            anchor=gen.iter,
                            names=frozenset(),
                            node_ids=frozenset({id(node)}),
                            kind=kind,
                        )
                    )
    return sites


def _mentions(node: ast.AST, names: set[str], node_ids: set[int]) -> bool:
    for sub in ast.walk(node):
        if id(sub) in node_ids:
            return True
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load) and sub.id in names:
            return True
    return False


def _sink_desc(call: ast.Call, ctx: ModuleContext, hash_locals: set[str]) -> str | None:
    qname = ctx.qualified_name(call.func)
    if qname in _JSON_SINKS:
        return f"{qname}() serialization"
    if qname in _HASH_CONSTRUCTORS:
        return f"{qname}() digest"
    func = call.func
    if isinstance(func, ast.Attribute):
        if func.attr == "update" and isinstance(func.value, ast.Name):
            if func.value.id in hash_locals:
                return f"{func.value.id}.update() digest"
        if "digest" in func.attr:
            return f".{func.attr}() digest"
        if func.attr in ("append", "extend") and isinstance(func.value, ast.Name):
            low = func.value.id.lower()
            if "journal" in low or "segment" in low:
                return f"{func.value.id}.{func.attr}() journal write"
    if isinstance(func, ast.Name) and "digest" in func.id:
        return f"{func.id}() digest"
    return None


def unordered_flow(fn_node: ast.AST, ctx: ModuleContext) -> list[UnorderedFlow]:
    """DET004 evidence: per unordered site, the first sink its taint reaches."""
    sites = _unordered_sites(fn_node)
    if not sites:
        return []
    hash_locals: set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            t = node.targets[0]
            if isinstance(t, ast.Name) and isinstance(node.value, ast.Call):
                if ctx.qualified_name(node.value.func) in _HASH_CONSTRUCTORS:
                    hash_locals.add(t.id)

    flows: list[UnorderedFlow] = []
    for site in sites:
        tainted = set(site.names)
        tainted_nodes = set(site.node_ids)
        for _ in range(_TAINT_ROUNDS):
            changed = False
            for node in ast.walk(fn_node):
                if isinstance(node, ast.Assign):
                    if _mentions(node.value, tainted, tainted_nodes):
                        for t in node.targets:
                            for n in ast.walk(t):
                                if isinstance(n, ast.Name) and n.id not in tainted:
                                    tainted.add(n.id)
                                    changed = True
                elif isinstance(node, ast.AugAssign):
                    if isinstance(node.target, ast.Name) and _mentions(
                        node.value, tainted, tainted_nodes
                    ):
                        if node.target.id not in tainted:
                            tainted.add(node.target.id)
                            changed = True
                elif isinstance(node, ast.Call):
                    func = node.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in _PROPAGATE_MUTATORS
                        and isinstance(func.value, ast.Name)
                        and func.value.id not in tainted
                        and any(_mentions(a, tainted, tainted_nodes) for a in node.args)
                    ):
                        tainted.add(func.value.id)
                        changed = True
            if not changed:
                break
        for node in ast.walk(fn_node):
            if not isinstance(node, ast.Call):
                continue
            desc = _sink_desc(node, ctx, hash_locals)
            if desc is None:
                continue
            payload = list(node.args) + [kw.value for kw in node.keywords]
            if any(_mentions(a, tainted, tainted_nodes) for a in payload):
                flows.append(
                    UnorderedFlow(site=site.anchor, kind=site.kind, sink=node, sink_desc=desc)
                )
                break
    flows.sort(
        key=lambda f: (getattr(f.site, "lineno", 0), getattr(f.site, "col_offset", 0))
    )
    return flows
