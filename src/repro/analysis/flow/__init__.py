"""repro.analysis.flow — the whole-program analysis layer.

Where the per-file engine sees one :class:`ModuleContext` at a time,
this package assembles all of them into a :class:`ProgramContext`:

* :mod:`~repro.analysis.flow.modindex` — project-wide namespace
  (functions, classes, attribute types, re-export resolution),
* :mod:`~repro.analysis.flow.callgraph` — call + reference edges with
  small local type inference,
* :mod:`~repro.analysis.flow.cfg` — statement-level CFGs with exception
  edges, and a may-reach-exit dataflow,
* :mod:`~repro.analysis.flow.taint` — purity effects, seed provenance,
  and unordered-iteration taint.

``whole_program`` rules (see :mod:`repro.analysis.rules.flow_rules`)
consume the :class:`ProgramContext` instead of a single module; the
engine builds it once per run and threads the same inline-suppression
and baseline machinery over the findings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.engine import ModuleContext
from repro.analysis.flow.callgraph import CallGraph, build_callgraph
from repro.analysis.flow.cfg import CFG, build_cfg, may_reach_exit_open
from repro.analysis.flow.modindex import (
    ClassInfo,
    FunctionInfo,
    ProgramIndex,
    build_index,
)


@dataclass(frozen=True)
class ProgramContext:
    """Everything a whole-program rule may want to know about the run."""

    index: ProgramIndex
    graph: CallGraph

    def modules(self) -> list[ModuleContext]:
        return [self.index.modules[m] for m in sorted(self.index.modules)]


def build_program(modules: list[ModuleContext]) -> ProgramContext:
    """Index the modules and build the call graph over them."""
    index = build_index(modules)
    return ProgramContext(index=index, graph=build_callgraph(index))


__all__ = [
    "CFG",
    "CallGraph",
    "ClassInfo",
    "FunctionInfo",
    "ProgramContext",
    "ProgramIndex",
    "build_callgraph",
    "build_cfg",
    "build_index",
    "build_program",
    "may_reach_exit_open",
]
