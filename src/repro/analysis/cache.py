"""Incremental analysis cache, keyed by file sha256.

CI runs the analyzer on every push; most pushes touch a handful of
files.  The cache stores, per display path, the sha256 of the source it
analyzed and the findings that analysis produced, so an unchanged file
is never re-parsed.  The whole-program pass caches against a *program
digest* — the sha256 over every ``(path, file-sha)`` pair — because a
flow finding in one file can be caused by an edit in another; any
changed file invalidates the whole-program entry while per-file entries
survive.

The cache identifies the rule configuration it was built under
(``rules_key``): a run with a different ``--select`` set or a different
installed rule pack starts cold rather than serving wrong answers.
Corrupt or version-mismatched cache files are silently treated as empty
— a cache must never be able to fail the build.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.engine import SuppressedFinding
from repro.analysis.findings import Finding, Severity

CACHE_VERSION = 1


def source_sha(source: str) -> str:
    return hashlib.sha256(source.encode()).hexdigest()


def program_digest(sources: dict[str, str]) -> str:
    """sha256 over every (path, file-sha) pair, order-independent."""
    h = hashlib.sha256()
    for display in sorted(sources):
        h.update(display.encode())
        h.update(b"\0")
        h.update(source_sha(sources[display]).encode())
        h.update(b"\n")
    return h.hexdigest()


def _finding_to_json(f: Finding) -> dict:
    return {
        "file": f.file,
        "line": f.line,
        "rule_id": f.rule_id,
        "severity": f.severity.value,
        "message": f.message,
    }


def _finding_from_json(raw: dict) -> Finding:
    return Finding(
        file=raw["file"],
        line=raw["line"],
        rule_id=raw["rule_id"],
        severity=Severity(raw["severity"]),
        message=raw["message"],
    )


@dataclass
class AnalysisCache:
    """Per-file and whole-program finding cache (JSON on disk)."""

    path: Path
    rules_key: str
    files: dict[str, dict] = field(default_factory=dict)
    program: dict | None = None
    dirty: bool = False

    @classmethod
    def load(cls, path: Path, rules_key: str) -> "AnalysisCache":
        """Read the cache; anything unusable degrades to an empty cache."""
        cache = cls(path=path, rules_key=rules_key)
        if not path.exists():
            return cache
        try:
            raw = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            return cache
        if not isinstance(raw, dict):
            return cache
        if raw.get("version") != CACHE_VERSION or raw.get("rules_key") != rules_key:
            return cache
        files = raw.get("files")
        if isinstance(files, dict):
            cache.files = files
        program = raw.get("program")
        if isinstance(program, dict):
            cache.program = program
        return cache

    def save(self) -> None:
        """Publish atomically (temp file + os.replace) when anything changed."""
        if not self.dirty:
            return
        payload = {
            "version": CACHE_VERSION,
            "rules_key": self.rules_key,
            "files": self.files,
            "program": self.program,
        }
        data = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()
        from repro.checkpoint import atomic_write_bytes

        atomic_write_bytes(self.path, data, durable=False)

    # -- per-file entries ----------------------------------------------------

    def lookup_file(
        self, display: str, source: str
    ) -> tuple[list[Finding], list[SuppressedFinding]] | None:
        entry = self.files.get(display)
        if not isinstance(entry, dict) or entry.get("sha") != source_sha(source):
            return None
        try:
            active = [_finding_from_json(raw) for raw in entry["findings"]]
            waived = [
                SuppressedFinding(
                    finding=_finding_from_json(raw["finding"]), reason=raw["reason"]
                )
                for raw in entry["suppressed"]
            ]
        except (KeyError, TypeError, ValueError):
            return None
        return active, waived

    def store_file(
        self,
        display: str,
        source: str,
        active: list[Finding],
        waived: list[SuppressedFinding],
    ) -> None:
        self.files[display] = {
            "sha": source_sha(source),
            "findings": [_finding_to_json(f) for f in active],
            "suppressed": [
                {"finding": _finding_to_json(s.finding), "reason": s.reason} for s in waived
            ],
        }
        self.dirty = True

    # -- the whole-program entry ---------------------------------------------

    def lookup_program(
        self, sources: dict[str, str]
    ) -> tuple[list[Finding], list[SuppressedFinding]] | None:
        entry = self.program
        if not isinstance(entry, dict) or entry.get("digest") != program_digest(sources):
            return None
        try:
            active = [_finding_from_json(raw) for raw in entry["findings"]]
            waived = [
                SuppressedFinding(
                    finding=_finding_from_json(raw["finding"]), reason=raw["reason"]
                )
                for raw in entry["suppressed"]
            ]
        except (KeyError, TypeError, ValueError):
            return None
        return active, waived

    def store_program(
        self,
        sources: dict[str, str],
        active: list[Finding],
        waived: list[SuppressedFinding],
    ) -> None:
        self.program = {
            "digest": program_digest(sources),
            "findings": [_finding_to_json(f) for f in active],
            "suppressed": [
                {"finding": _finding_to_json(s.finding), "reason": s.reason} for s in waived
            ],
        }
        self.dirty = True

    def prune_missing(self, present: set[str]) -> None:
        """Drop per-file entries for paths no longer analyzed."""
        gone = [d for d in self.files if d not in present]
        for d in gone:
            del self.files[d]
            self.dirty = True
