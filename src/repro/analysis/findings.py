"""Finding and severity types shared by every rule and reporter."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Severity(str, Enum):
    """How bad a finding is.

    ``ERROR`` findings break the determinism/hygiene contract outright;
    ``WARNING`` findings are hazards that need a human look.  Both fail the
    CI gate unless suppressed or baselined — the split only affects report
    presentation and triage order.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Orders by ``(file, line, rule_id)`` so reports and baselines are stable
    regardless of rule registration or traversal order.
    """

    file: str
    line: int
    rule_id: str
    severity: Severity
    message: str

    def render(self) -> str:
        return f"{self.file}:{self.line}: {self.rule_id} [{self.severity.value}] {self.message}"
