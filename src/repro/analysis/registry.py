"""Rule registry.

A rule is a callable taking a :class:`~repro.analysis.engine.ModuleContext`
and returning an iterable of :class:`~repro.analysis.findings.Finding`.
Rules self-register via the :func:`rule` decorator; the engine runs every
registered rule over every module it analyzes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

from repro.common.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.analysis.engine import ModuleContext
    from repro.analysis.findings import Finding
    from repro.analysis.flow import ProgramContext

RuleFn = Callable[["ModuleContext"], Iterable["Finding"]]
WholeProgramRuleFn = Callable[["ProgramContext"], Iterable["Finding"]]


@dataclass(frozen=True)
class Rule:
    """A registered per-module rule: id, description, and the check."""

    rule_id: str
    description: str
    check: RuleFn


@dataclass(frozen=True)
class WholeProgramRule:
    """A rule that consumes the whole :class:`ProgramContext` at once."""

    rule_id: str
    description: str
    check: WholeProgramRuleFn


#: rule_id -> Rule, in registration order (dicts preserve it).
RULES: dict[str, Rule] = {}

#: rule_id -> WholeProgramRule; run only under ``--whole-program``.
WHOLE_PROGRAM_RULES: dict[str, WholeProgramRule] = {}


def _claim_rule_id(rule_id: str) -> None:
    if rule_id in RULES or rule_id in WHOLE_PROGRAM_RULES:
        raise ValidationError(f"rule {rule_id!r} registered twice")


def rule(rule_id: str, description: str) -> Callable[[RuleFn], RuleFn]:
    """Register ``fn`` as the implementation of ``rule_id``."""

    def decorate(fn: RuleFn) -> RuleFn:
        _claim_rule_id(rule_id)
        RULES[rule_id] = Rule(rule_id=rule_id, description=description, check=fn)
        return fn

    return decorate


def whole_program_rule(
    rule_id: str, description: str
) -> Callable[[WholeProgramRuleFn], WholeProgramRuleFn]:
    """Register ``fn`` as a whole-program rule (one call per analysis run)."""

    def decorate(fn: WholeProgramRuleFn) -> WholeProgramRuleFn:
        _claim_rule_id(rule_id)
        WHOLE_PROGRAM_RULES[rule_id] = WholeProgramRule(
            rule_id=rule_id, description=description, check=fn
        )
        return fn

    return decorate


def rule_description(rule_id: str) -> str:
    """Description for either rule kind ("" when unknown)."""
    if rule_id in RULES:
        return RULES[rule_id].description
    if rule_id in WHOLE_PROGRAM_RULES:
        return WHOLE_PROGRAM_RULES[rule_id].description
    return ""


def load_builtin_rules() -> None:
    """Import the built-in rule pack (idempotent)."""
    from repro.analysis.rules import (  # noqa: F401
        determinism,
        errors,
        flow_rules,
        parallelism,
        resources,
    )
