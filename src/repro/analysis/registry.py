"""Rule registry.

A rule is a callable taking a :class:`~repro.analysis.engine.ModuleContext`
and returning an iterable of :class:`~repro.analysis.findings.Finding`.
Rules self-register via the :func:`rule` decorator; the engine runs every
registered rule over every module it analyzes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

from repro.common.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.analysis.engine import ModuleContext
    from repro.analysis.findings import Finding

RuleFn = Callable[["ModuleContext"], Iterable["Finding"]]


@dataclass(frozen=True)
class Rule:
    """A registered rule: id, one-line description, and the check itself."""

    rule_id: str
    description: str
    check: RuleFn


#: rule_id -> Rule, in registration order (dicts preserve it).
RULES: dict[str, Rule] = {}


def rule(rule_id: str, description: str) -> Callable[[RuleFn], RuleFn]:
    """Register ``fn`` as the implementation of ``rule_id``."""

    def decorate(fn: RuleFn) -> RuleFn:
        if rule_id in RULES:
            raise ValidationError(f"rule {rule_id!r} registered twice")
        RULES[rule_id] = Rule(rule_id=rule_id, description=description, check=fn)
        return fn

    return decorate


def load_builtin_rules() -> None:
    """Import the built-in rule pack (idempotent)."""
    from repro.analysis.rules import determinism, errors, parallelism, resources  # noqa: F401
