"""The analysis engine: walk files, parse, run rules, apply waivers.

The engine is deliberately dumb about *what* to check — rules own that —
and smart about the plumbing every rule needs: import-alias resolution
(so ``np.random.rand`` is recognised under any ``import numpy as ...``
spelling), dotted module names (so rules can scope themselves to e.g.
``repro.cloud``), inline suppressions, and the committed baseline.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import RULES, WHOLE_PROGRAM_RULES, load_builtin_rules
from repro.analysis.suppressions import Suppression, parse_suppressions

if TYPE_CHECKING:  # pragma: no cover - typing only (engine never imports it)
    from repro.analysis.cache import AnalysisCache


@dataclass
class ModuleContext:
    """Everything a rule may want to know about one source module."""

    path: str  # display path (as given / relative)
    module: str  # dotted module name, e.g. "repro.cloud.compute"
    source: str
    tree: ast.Module
    imports: dict[str, str] = field(default_factory=dict)  # alias -> dotted name

    def __post_init__(self) -> None:
        if not self.imports:
            self.imports = _collect_imports(self.tree)

    def qualified_name(self, node: ast.expr) -> str | None:
        """Resolve a Name/Attribute chain to its imported dotted name.

        Returns ``None`` when the chain is rooted in something that is not
        an import (a local variable, ``self``, a call result, ...), so
        rules never fire on look-alike local names.
        """
        parts: list[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        base = self.imports.get(cur.id)
        if base is None:
            return None
        return ".".join([base, *reversed(parts)])

    def finding(self, node: ast.AST, rule_id: str, severity: Severity, message: str) -> Finding:
        return Finding(
            file=self.path,
            line=getattr(node, "lineno", 1),
            rule_id=rule_id,
            severity=severity,
            message=message,
        )


def _collect_imports(tree: ast.Module) -> dict[str, str]:
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    # `import numpy.random` binds the root name `numpy`
                    root = alias.name.split(".", 1)[0]
                    imports[root] = root
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return imports


@dataclass(frozen=True)
class SuppressedFinding:
    """A finding waived by an inline ``# repro: noqa`` comment."""

    finding: Finding
    reason: str


@dataclass
class AnalysisResult:
    """The outcome of one analysis run over a set of paths."""

    findings: list[Finding] = field(default_factory=list)  # new (gate-failing)
    suppressed: list[SuppressedFinding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    #: findings demoted below ``--min-severity``: reported, never gating
    advisory: list[Finding] = field(default_factory=list)
    #: baseline entries no current finding consumes (``--prune-baseline``)
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    files_checked: int = 0
    #: files actually parsed+analyzed this run (< files_checked on cache hits)
    files_reanalyzed: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-rule counts: new / inline-suppressed / baseline-suppressed."""
        out: dict[str, dict[str, int]] = {}

        def bucket(rule_id: str) -> dict[str, int]:
            return out.setdefault(rule_id, {"new": 0, "suppressed": 0, "baselined": 0})

        for f in self.findings + self.advisory:
            bucket(f.rule_id)["new"] += 1
        for s in self.suppressed:
            bucket(s.finding.rule_id)["suppressed"] += 1
        for f in self.baselined:
            bucket(f.rule_id)["baselined"] += 1
        return out


def module_name_for(path: Path) -> str:
    """Dotted module name: ``src/repro/cloud/compute.py`` -> ``repro.cloud.compute``."""
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "repro" in parts:
        parts = parts[parts.index("repro") :]
    elif parts:
        parts = [parts[-1]]
    return ".".join(parts)


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: set[Path] = set()
    for p in paths:
        if p.is_dir():
            for f in p.rglob("*.py"):
                if "__pycache__" not in f.parts and not f.name.startswith("."):
                    found.add(f)
        elif p.suffix == ".py":
            found.add(p)
    return sorted(found)


def analyze_source(
    source: str,
    *,
    path: str = "<string>",
    module: str | None = None,
    rules: list[str] | None = None,
) -> tuple[list[Finding], list[SuppressedFinding]]:
    """Analyze one module's source; returns (active, inline-suppressed)."""
    load_builtin_rules()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        bad = Finding(
            file=path,
            line=exc.lineno or 1,
            rule_id="SYNTAX",
            severity=Severity.ERROR,
            message=f"could not parse: {exc.msg}",
        )
        return [bad], []
    ctx = ModuleContext(
        path=path, module=module if module is not None else module_name_for(Path(path)),
        source=source, tree=tree,
    )
    findings: list[Finding] = []
    selected = rules if rules is not None else list(RULES)
    for rule_id in selected:
        module_rule = RULES.get(rule_id)  # whole-program ids run elsewhere
        if module_rule is not None:
            findings.extend(module_rule.check(ctx))
    findings.sort()
    return _apply_suppressions(findings, parse_suppressions(source))


def _apply_suppressions(
    findings: list[Finding], suppressions: dict[int, Suppression]
) -> tuple[list[Finding], list[SuppressedFinding]]:
    active: list[Finding] = []
    waived: list[SuppressedFinding] = []
    for f in findings:
        sup = suppressions.get(f.line)
        if sup is not None and sup.covers(f.rule_id):
            waived.append(SuppressedFinding(finding=f, reason=sup.reason))
        else:
            active.append(f)
    return active, waived


def _run_whole_program(
    files: list[tuple[str, str, str]],  # (display path, module, source)
    rules: list[str] | None,
) -> tuple[list[Finding], list[SuppressedFinding]]:
    """Build the ProgramContext and run the whole-program rule pack."""
    from repro.analysis.flow import build_program

    contexts: list[ModuleContext] = []
    for display, module, source in files:
        try:
            tree = ast.parse(source)
        except SyntaxError:
            continue  # the per-file pass already reported SYNTAX
        contexts.append(ModuleContext(path=display, module=module, source=source, tree=tree))
    program = build_program(contexts)
    selected = rules if rules is not None else list(WHOLE_PROGRAM_RULES)
    findings: list[Finding] = []
    for rule_id in selected:
        wp = WHOLE_PROGRAM_RULES.get(rule_id)
        if wp is not None:
            findings.extend(wp.check(program))
    findings.sort()
    suppressions = {d: parse_suppressions(src) for d, _m, src in files}
    active: list[Finding] = []
    waived: list[SuppressedFinding] = []
    for f in findings:
        sup = suppressions.get(f.file, {}).get(f.line)
        if sup is not None and sup.covers(f.rule_id):
            waived.append(SuppressedFinding(finding=f, reason=sup.reason))
        else:
            active.append(f)
    return active, waived


def analyze_program(
    sources: dict[str, str], *, rules: list[str] | None = None
) -> tuple[list[Finding], list[SuppressedFinding]]:
    """Run *only* the whole-program rules over in-memory sources.

    ``sources`` maps display paths to module source; module names are
    derived from the paths.  This is the hook tests use to plant a
    violation into a real module's source and prove the analyzer sees it.
    """
    load_builtin_rules()
    files = [(d, module_name_for(Path(d)), s) for d, s in sorted(sources.items())]
    return _run_whole_program(files, rules)


def analyze_paths(
    paths: list[Path],
    *,
    baseline: Baseline | None = None,
    rules: list[str] | None = None,
    whole_program: bool = False,
    cache: AnalysisCache | None = None,
) -> AnalysisResult:
    """Analyze every ``.py`` file under ``paths`` and apply the baseline.

    With ``whole_program=True`` the flow rule pack runs over the full
    module set after the per-file pass.  ``cache`` (an
    :class:`~repro.analysis.cache.AnalysisCache`) skips re-analysis of
    files whose sha256 is unchanged since the cached run.
    """
    load_builtin_rules()
    result = AnalysisResult()
    all_active: list[Finding] = []
    sources: dict[str, str] = {}
    modules: list[tuple[str, str]] = []  # (display, module)
    for file in iter_python_files(paths):
        display = str(file)
        source = file.read_text()
        sources[display] = source
        module = module_name_for(file)
        modules.append((display, module))
        cached = cache.lookup_file(display, source) if cache is not None else None
        if cached is not None:
            active, waived = cached
        else:
            active, waived = analyze_source(source, path=display, module=module, rules=rules)
            result.files_reanalyzed += 1
            if cache is not None:
                cache.store_file(display, source, active, waived)
        all_active.extend(active)
        result.suppressed.extend(waived)
        result.files_checked += 1
    if whole_program:
        cached_wp = cache.lookup_program(sources) if cache is not None else None
        if cached_wp is not None:
            wp_active, wp_waived = cached_wp
        else:
            files = [(d, m, sources[d]) for d, m in modules]
            wp_active, wp_waived = _run_whole_program(files, rules)
            if cache is not None:
                cache.store_program(sources, wp_active, wp_waived)
        all_active.extend(wp_active)
        result.suppressed.extend(wp_waived)
    all_active.sort()
    if baseline is None:
        baseline = Baseline()
    result.findings, result.baselined = baseline.partition(all_active, sources)
    result.stale_baseline = baseline.stale_entries(all_active, sources)
    return result
