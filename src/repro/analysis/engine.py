"""The analysis engine: walk files, parse, run rules, apply waivers.

The engine is deliberately dumb about *what* to check — rules own that —
and smart about the plumbing every rule needs: import-alias resolution
(so ``np.random.rand`` is recognised under any ``import numpy as ...``
spelling), dotted module names (so rules can scope themselves to e.g.
``repro.cloud``), inline suppressions, and the committed baseline.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import RULES, load_builtin_rules
from repro.analysis.suppressions import Suppression, parse_suppressions


@dataclass
class ModuleContext:
    """Everything a rule may want to know about one source module."""

    path: str  # display path (as given / relative)
    module: str  # dotted module name, e.g. "repro.cloud.compute"
    source: str
    tree: ast.Module
    imports: dict[str, str] = field(default_factory=dict)  # alias -> dotted name

    def __post_init__(self) -> None:
        if not self.imports:
            self.imports = _collect_imports(self.tree)

    def qualified_name(self, node: ast.expr) -> str | None:
        """Resolve a Name/Attribute chain to its imported dotted name.

        Returns ``None`` when the chain is rooted in something that is not
        an import (a local variable, ``self``, a call result, ...), so
        rules never fire on look-alike local names.
        """
        parts: list[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        base = self.imports.get(cur.id)
        if base is None:
            return None
        return ".".join([base, *reversed(parts)])

    def finding(self, node: ast.AST, rule_id: str, severity: Severity, message: str) -> Finding:
        return Finding(
            file=self.path,
            line=getattr(node, "lineno", 1),
            rule_id=rule_id,
            severity=severity,
            message=message,
        )


def _collect_imports(tree: ast.Module) -> dict[str, str]:
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    # `import numpy.random` binds the root name `numpy`
                    root = alias.name.split(".", 1)[0]
                    imports[root] = root
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return imports


@dataclass(frozen=True)
class SuppressedFinding:
    """A finding waived by an inline ``# repro: noqa`` comment."""

    finding: Finding
    reason: str


@dataclass
class AnalysisResult:
    """The outcome of one analysis run over a set of paths."""

    findings: list[Finding] = field(default_factory=list)  # new (gate-failing)
    suppressed: list[SuppressedFinding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-rule counts: new / inline-suppressed / baseline-suppressed."""
        out: dict[str, dict[str, int]] = {}

        def bucket(rule_id: str) -> dict[str, int]:
            return out.setdefault(rule_id, {"new": 0, "suppressed": 0, "baselined": 0})

        for f in self.findings:
            bucket(f.rule_id)["new"] += 1
        for s in self.suppressed:
            bucket(s.finding.rule_id)["suppressed"] += 1
        for f in self.baselined:
            bucket(f.rule_id)["baselined"] += 1
        return out


def module_name_for(path: Path) -> str:
    """Dotted module name: ``src/repro/cloud/compute.py`` -> ``repro.cloud.compute``."""
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "repro" in parts:
        parts = parts[parts.index("repro") :]
    elif parts:
        parts = [parts[-1]]
    return ".".join(parts)


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: set[Path] = set()
    for p in paths:
        if p.is_dir():
            for f in p.rglob("*.py"):
                if "__pycache__" not in f.parts and not f.name.startswith("."):
                    found.add(f)
        elif p.suffix == ".py":
            found.add(p)
    return sorted(found)


def analyze_source(
    source: str,
    *,
    path: str = "<string>",
    module: str | None = None,
    rules: list[str] | None = None,
) -> tuple[list[Finding], list[SuppressedFinding]]:
    """Analyze one module's source; returns (active, inline-suppressed)."""
    load_builtin_rules()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        bad = Finding(
            file=path,
            line=exc.lineno or 1,
            rule_id="SYNTAX",
            severity=Severity.ERROR,
            message=f"could not parse: {exc.msg}",
        )
        return [bad], []
    ctx = ModuleContext(
        path=path, module=module if module is not None else module_name_for(Path(path)),
        source=source, tree=tree,
    )
    findings: list[Finding] = []
    selected = rules if rules is not None else list(RULES)
    for rule_id in selected:
        findings.extend(RULES[rule_id].check(ctx))
    findings.sort()
    return _apply_suppressions(findings, parse_suppressions(source))


def _apply_suppressions(
    findings: list[Finding], suppressions: dict[int, Suppression]
) -> tuple[list[Finding], list[SuppressedFinding]]:
    active: list[Finding] = []
    waived: list[SuppressedFinding] = []
    for f in findings:
        sup = suppressions.get(f.line)
        if sup is not None and sup.covers(f.rule_id):
            waived.append(SuppressedFinding(finding=f, reason=sup.reason))
        else:
            active.append(f)
    return active, waived


def analyze_paths(
    paths: list[Path],
    *,
    baseline: Baseline | None = None,
    rules: list[str] | None = None,
) -> AnalysisResult:
    """Analyze every ``.py`` file under ``paths`` and apply the baseline."""
    result = AnalysisResult()
    all_active: list[Finding] = []
    sources: dict[str, str] = {}
    for file in iter_python_files(paths):
        display = str(file)
        source = file.read_text()
        sources[display] = source
        active, waived = analyze_source(
            source, path=display, module=module_name_for(file), rules=rules
        )
        all_active.extend(active)
        result.suppressed.extend(waived)
        result.files_checked += 1
    all_active.sort()
    if baseline is None:
        baseline = Baseline()
    result.findings, result.baselined = baseline.partition(all_active, sources)
    return result
