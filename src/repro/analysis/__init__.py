"""repro.analysis — AST-based determinism & resource-hygiene linter.

DESIGN §5 promises "deterministic under a seed; no wall-clock, no
network", and the cost pipeline promises every metering span and quota
reservation is paired with a terminal path.  This package machine-checks
those contracts over the Python ``ast``:

* **DET001** wall-clock / entropy calls outside :mod:`repro.common.clock`
* **DET002** unseeded or legacy global-state NumPy randomness
* **DET003** iteration over sets without an enclosing ``sorted(...)``
* **ERR001** broad ``except`` handlers that silently discard the error
* **ERR002** unbounded retry loops
* **RES001** ``UsageMeter.open_span`` without a terminal path in scope
* **RES002** quota ``reserve`` without a matching ``release`` in scope
* **RES003** non-atomic writes of recovery-state files
* **PAR001** process-pool primitives outside :mod:`repro.parallel`

and, under ``--whole-program``, the flow pack built on the module index
/ call graph / CFG / taint layer in :mod:`repro.analysis.flow`
(DESIGN §10):

* **PUR001** impure operation reachable from shard execution
* **SEED001** Generator seeded from a literal/module constant
* **RES004** ``open_span`` not closed on every control-flow path
* **DET004** unordered iteration flowing into journaled/digested output

Run it with ``python -m repro.analysis src benchmarks examples
--whole-program``.  Findings can be suppressed inline
(``# repro: noqa RULE (reason)`` — the reason is mandatory) or carried
in a committed baseline file for incremental adoption; ``--cache`` makes
repeat runs incremental and ``--graph`` dumps reachability for
debugging.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.cache import AnalysisCache
from repro.analysis.engine import (
    AnalysisResult,
    analyze_paths,
    analyze_program,
    analyze_source,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import (
    RULES,
    WHOLE_PROGRAM_RULES,
    Rule,
    WholeProgramRule,
    rule,
    whole_program_rule,
)

__all__ = [
    "AnalysisCache",
    "AnalysisResult",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "RULES",
    "Rule",
    "Severity",
    "WHOLE_PROGRAM_RULES",
    "WholeProgramRule",
    "analyze_paths",
    "analyze_program",
    "analyze_source",
    "rule",
    "whole_program_rule",
]
