"""repro.analysis — AST-based determinism & resource-hygiene linter.

DESIGN §5 promises "deterministic under a seed; no wall-clock, no
network", and the cost pipeline promises every metering span and quota
reservation is paired with a terminal path.  This package machine-checks
those contracts over the Python ``ast``:

* **DET001** wall-clock / entropy calls outside :mod:`repro.common.clock`
* **DET002** unseeded or legacy global-state NumPy randomness
* **DET003** iteration over sets without an enclosing ``sorted(...)``
* **ERR001** broad ``except`` handlers that silently discard the error
* **RES001** ``UsageMeter.open_span`` without a terminal path in scope
* **RES002** quota ``reserve`` without a matching ``release`` in scope

Run it with ``python -m repro.analysis src benchmarks examples``.
Findings can be suppressed inline (``# repro: noqa RULE (reason)`` — the
reason is mandatory) or carried in a committed baseline file for
incremental adoption.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline
from repro.analysis.engine import AnalysisResult, analyze_paths, analyze_source
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import RULES, Rule, rule

__all__ = [
    "AnalysisResult",
    "Baseline",
    "Finding",
    "RULES",
    "Rule",
    "Severity",
    "analyze_paths",
    "analyze_source",
    "rule",
]
