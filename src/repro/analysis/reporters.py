"""Text and JSON reporters over an :class:`AnalysisResult`."""

from __future__ import annotations

import json

from repro.analysis.engine import AnalysisResult
from repro.analysis.registry import RULES


def render_text(result: AnalysisResult, *, stats: bool = False) -> str:
    lines: list[str] = []
    for f in result.findings:
        lines.append(f.render())
    if stats:
        lines.extend(_render_stats(result))
    n, s, b = len(result.findings), len(result.suppressed), len(result.baselined)
    lines.append(
        f"{result.files_checked} files checked: {n} new finding{'s' if n != 1 else ''}, "
        f"{s} suppressed inline, {b} baselined"
    )
    return "\n".join(lines)


def _render_stats(result: AnalysisResult) -> list[str]:
    per_rule = result.stats()
    lines = ["", "per-rule counts (new / suppressed / baselined):"]
    for rule_id in sorted(set(per_rule) | set(RULES)):
        counts = per_rule.get(rule_id, {"new": 0, "suppressed": 0, "baselined": 0})
        desc = RULES[rule_id].description if rule_id in RULES else ""
        lines.append(
            f"  {rule_id:<8} {counts['new']:>4} / {counts['suppressed']:>4} / "
            f"{counts['baselined']:>4}  {desc}"
        )
    lines.append("")
    return lines


def render_json(result: AnalysisResult, *, stats: bool = False) -> str:
    payload: dict = {
        "files_checked": result.files_checked,
        "findings": [
            {
                "file": f.file,
                "line": f.line,
                "rule_id": f.rule_id,
                "severity": f.severity.value,
                "message": f.message,
            }
            for f in result.findings
        ],
        "suppressed": [
            {
                "file": s.finding.file,
                "line": s.finding.line,
                "rule_id": s.finding.rule_id,
                "reason": s.reason,
            }
            for s in result.suppressed
        ],
        "baselined": [
            {"file": f.file, "line": f.line, "rule_id": f.rule_id} for f in result.baselined
        ],
    }
    if stats:
        payload["stats"] = result.stats()
    return json.dumps(payload, indent=2)
