"""Text, JSON, and GitHub Actions reporters over an :class:`AnalysisResult`."""

from __future__ import annotations

import json

from repro.analysis.engine import AnalysisResult
from repro.analysis.registry import RULES, WHOLE_PROGRAM_RULES, rule_description


def render_text(result: AnalysisResult, *, stats: bool = False) -> str:
    lines: list[str] = []
    for f in result.findings:
        lines.append(f.render())
    for f in result.advisory:
        lines.append(f"{f.render()} (advisory)")
    if stats:
        lines.extend(_render_stats(result))
    n, s, b = len(result.findings), len(result.suppressed), len(result.baselined)
    summary = (
        f"{result.files_checked} files checked: {n} new finding{'s' if n != 1 else ''}, "
        f"{s} suppressed inline, {b} baselined"
    )
    if result.advisory:
        summary += f", {len(result.advisory)} advisory"
    if result.files_reanalyzed < result.files_checked:
        summary += (
            f" ({result.files_checked - result.files_reanalyzed} unchanged, from cache)"
        )
    lines.append(summary)
    return "\n".join(lines)


def _render_stats(result: AnalysisResult) -> list[str]:
    per_rule = result.stats()
    lines = ["", "per-rule counts (new / suppressed / baselined):"]
    for rule_id in sorted(set(per_rule) | set(RULES) | set(WHOLE_PROGRAM_RULES)):
        counts = per_rule.get(rule_id, {"new": 0, "suppressed": 0, "baselined": 0})
        desc = rule_description(rule_id)
        lines.append(
            f"  {rule_id:<8} {counts['new']:>4} / {counts['suppressed']:>4} / "
            f"{counts['baselined']:>4}  {desc}"
        )
    lines.append("")
    return lines


def render_json(result: AnalysisResult, *, stats: bool = False) -> str:
    payload: dict = {
        "files_checked": result.files_checked,
        "files_reanalyzed": result.files_reanalyzed,
        "findings": [
            {
                "file": f.file,
                "line": f.line,
                "rule_id": f.rule_id,
                "severity": f.severity.value,
                "message": f.message,
            }
            for f in result.findings
        ],
        "advisory": [
            {
                "file": f.file,
                "line": f.line,
                "rule_id": f.rule_id,
                "severity": f.severity.value,
                "message": f.message,
            }
            for f in result.advisory
        ],
        "suppressed": [
            {
                "file": s.finding.file,
                "line": s.finding.line,
                "rule_id": s.finding.rule_id,
                "reason": s.reason,
            }
            for s in result.suppressed
        ],
        "baselined": [
            {"file": f.file, "line": f.line, "rule_id": f.rule_id} for f in result.baselined
        ],
        "stale_baseline": [
            {"file": e.file, "rule_id": e.rule_id, "snippet": e.snippet}
            for e in result.stale_baseline
        ],
    }
    if stats:
        payload["stats"] = result.stats()
    return json.dumps(payload, indent=2)


def _gh_escape(text: str) -> str:
    """GitHub Actions workflow-command escaping for message data."""
    return text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def render_github(result: AnalysisResult) -> str:
    """GitHub Actions ``::error``/``::warning`` annotations, one per finding.

    Gating findings annotate as errors regardless of rule severity (they
    fail the job); advisory findings annotate as warnings so they surface
    inline on the PR without failing it.
    """
    lines: list[str] = []
    for f in result.findings:
        lines.append(
            f"::error file={f.file},line={f.line},title={f.rule_id}::{_gh_escape(f.message)}"
        )
    for f in result.advisory:
        lines.append(
            f"::warning file={f.file},line={f.line},title={f.rule_id}::"
            f"{_gh_escape(f.message)} (advisory)"
        )
    n = len(result.findings)
    lines.append(
        f"{result.files_checked} files checked: {n} new finding{'s' if n != 1 else ''}, "
        f"{len(result.advisory)} advisory"
    )
    return "\n".join(lines)
