"""Determinism rules: the "no wall-clock, no entropy, no set-order" pack.

Every table and figure this repo regenerates is asserted bit-identical
across runs under the same seed, so simulated time must come from
:class:`repro.common.clock.SimClock`, randomness from an explicitly seeded
``np.random.Generator``, and anything iterated must have a total order.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ModuleContext
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import rule

#: Call targets that read the wall clock or the OS entropy pool.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "uuid.uuid1",
        "uuid.uuid4",
        "os.urandom",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
        "secrets.choice",
        "random.SystemRandom",
    }
)

#: The one module allowed to touch time primitives (it is the clock).
CLOCK_MODULE = "repro.common.clock"


@rule("DET001", "wall-clock/entropy call outside repro.common.clock")
def det001_wall_clock(ctx: ModuleContext) -> Iterator[Finding]:
    if ctx.module == CLOCK_MODULE:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        qname = ctx.qualified_name(node.func)
        if qname is None:
            continue
        banned = qname in WALL_CLOCK_CALLS or (
            # module-level random.* uses the hidden global Mersenne state
            qname.startswith("random.")
            and qname != "random.Random"
        )
        if banned:
            yield ctx.finding(
                node,
                "DET001",
                Severity.ERROR,
                f"call to {qname}() is nondeterministic; simulated time comes from "
                f"repro.common.clock.SimClock and randomness from a seeded Generator",
            )


#: numpy.random constructors that take explicit state and are fine to call.
_NP_CONSTRUCTORS = frozenset(
    {"Generator", "SeedSequence", "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937"}
)


@rule("DET002", "unseeded default_rng() or legacy numpy.random global-state API")
def det002_numpy_random(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        qname = ctx.qualified_name(node.func)
        if qname is None or not qname.startswith("numpy.random."):
            continue
        tail = qname.removeprefix("numpy.random.")
        if tail == "default_rng":
            unseeded = not node.args or (
                isinstance(node.args[0], ast.Constant) and node.args[0].value is None
            )
            if unseeded:
                yield ctx.finding(
                    node,
                    "DET002",
                    Severity.ERROR,
                    "np.random.default_rng() without a seed draws OS entropy; "
                    "pass an explicit seed",
                )
        elif tail not in _NP_CONSTRUCTORS:
            yield ctx.finding(
                node,
                "DET002",
                Severity.ERROR,
                f"np.random.{tail}() uses the legacy global RNG state; "
                f"use a seeded np.random.default_rng(seed) generator instead",
            )


def _is_set_expr(node: ast.expr) -> bool:
    """Syntactically-recognisable set-valued expressions."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        ):
            return _is_set_expr(node.func.value)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _iteration_sites(tree: ast.Module) -> Iterator[tuple[ast.AST, ast.expr]]:
    """(anchor node, iterable expression) for every iteration construct."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node, node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                yield node, gen.iter


@rule("DET003", "iteration over a set without an enclosing sorted(...)")
def det003_set_iteration(ctx: ModuleContext) -> Iterator[Finding]:
    for anchor, iterable in _iteration_sites(ctx.tree):
        if _is_set_expr(iterable):
            yield ctx.finding(
                iterable,
                "DET003",
                Severity.WARNING,
                "iterating a set: order is hash-dependent and varies across "
                "processes; wrap the set in sorted(...) at the source",
            )
