"""Whole-program flow rules: the statically-checked determinism contract.

These rules consume the :class:`~repro.analysis.flow.ProgramContext`
(module index + call graph) instead of a single module, so they can
prove properties the per-file pack can only spot-check:

* **PUR001** — purity of shard execution: no function *reachable* from a
  shard-execution entry point may construct RNG state, read the wall
  clock or entropy pool, or mutate a module global.  This is the static
  form of the ``records_digest`` serial/parallel equality tests.
* **SEED001** — seed provenance: a ``numpy`` ``Generator`` outside the
  plan-time modules must be seeded from a parameter, attribute, or
  spawned ``SeedSequence`` — never a literal or module constant, which
  would silently correlate streams across call sites.
* **RES004** — CFG-path-complete span pairing: when a function both
  opens and closes metering spans, *every* path from the open to the
  function exit — including exception edges — must pass a close.
* **DET004** — unordered dict/set iteration whose values flow into
  journaled, digested, or reported output (the flow-sensitive upgrade
  of DET003's syntactic warning).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.flow import ProgramContext, may_reach_exit_open
from repro.analysis.flow.cfg import build_cfg
from repro.analysis.flow.modindex import FunctionInfo
from repro.analysis.flow.taint import (
    direct_effects,
    seed_provenance_findings,
    unordered_flow,
)
from repro.analysis.registry import whole_program_rule

#: Functions whose transitive callees must be pure: the columnar record
#: kernel, the parallel engine's per-worker shard executor, the serial
#: shard executor it wraps, the loadgen simulation loop, and the
#: resilience sweep's per-point execute half (the digest-equality
#: contracts in CI).  The sweep's plan half (`_plan_point`) draws all
#: randomness before this boundary — registering `_simulate_point`
#: proves the split statically.
SHARD_ENTRY_POINTS = (
    "repro.columnar.kernels.emit_records",
    "repro.core.cohort.execute_shard",
    "repro.loadgen.sim.simulate_traffic",
    "repro.parallel.engine._execute_batch",
    "repro.resilience.sweep._simulate_point",
)

#: Modules whose whole purpose is resolving randomness at plan time; they
#: root the SeedSequence tree and may seed from config literals.
PLAN_TIME_MODULES = frozenset(
    {
        "repro.columnar.planner",
        "repro.core.cohort",
        "repro.faults.plan",
        "repro.loadgen.arrivals",
        "repro.resilience.clients",
    }
)

#: RES004 runs where the metering/span contract lives (same as RES001).
_SPAN_SCOPES = ("repro.cloud", "repro.spot")
_SPAN_OPENS = frozenset({"open_span"})
_SPAN_CLOSES = frozenset({"close_span", "_terminate"})


@whole_program_rule("PUR001", "impure operation reachable from shard execution")
def pur001_shard_purity(program: ProgramContext) -> Iterator[Finding]:
    entries = [e for e in SHARD_ENTRY_POINTS if e in program.index.functions]
    if not entries:
        return
    parents = program.graph.reachable_from(entries)
    for qname in sorted(parents):
        fi = program.index.functions.get(qname)
        if fi is None:
            continue
        for effect in direct_effects(fi):
            chain = " -> ".join(program.graph.witness_chain(parents, qname))
            yield fi.ctx.finding(
                effect.node,
                "PUR001",
                Severity.ERROR,
                f"{effect.detail} inside {qname}(), which shard execution reaches "
                f"via {chain}; shard execution must be RNG-free and side-effect-free "
                f"(all randomness is resolved at plan time)",
            )


@whole_program_rule("SEED001", "Generator seeded from a literal/module constant")
def seed001_provenance(program: ProgramContext) -> Iterator[Finding]:
    for module in sorted(program.index.modules):
        if not module.startswith("repro."):
            continue
        if module in PLAN_TIME_MODULES:
            continue
        ctx = program.index.modules[module]
        for hit in seed_provenance_findings(ctx):
            origin = "/".join(sorted(hit.tags))
            yield ctx.finding(
                hit.node,
                "SEED001",
                Severity.ERROR,
                f"Generator seeded from a {origin} value; outside the plan-time "
                f"modules every Generator must derive from a spawned SeedSequence "
                f"that flows in as a parameter (literal seeds silently correlate "
                f"streams across call sites)",
            )


def _in_span_scope(module: str) -> bool:
    return any(module == s or module.startswith(s + ".") for s in _SPAN_SCOPES)


def _span_call(call: ast.Call, names: frozenset[str]) -> bool:
    return isinstance(call.func, ast.Attribute) and call.func.attr in names


@whole_program_rule("RES004", "open_span not closed on every control-flow path")
def res004_path_complete_spans(program: ProgramContext) -> Iterator[Finding]:
    for qname in sorted(program.index.functions):
        fi: FunctionInfo = program.index.functions[qname]
        if not _in_span_scope(fi.module):
            continue
        has_open = False
        has_close = False
        for node in ast.walk(fi.node):
            if isinstance(node, ast.Call):
                if _span_call(node, _SPAN_OPENS):
                    has_open = True
                elif _span_call(node, _SPAN_CLOSES):
                    has_close = True
        if not (has_open and has_close):
            # open-without-any-close is RES001's scope-level finding; a
            # function that only closes (or neither) has no pairing to prove
            continue
        cfg = build_cfg(fi.node)
        leaked = may_reach_exit_open(
            cfg,
            lambda c: _span_call(c, _SPAN_OPENS),
            lambda c: _span_call(c, _SPAN_CLOSES),
        )
        for call in leaked:
            yield fi.ctx.finding(
                call,
                "RES004",
                Severity.ERROR,
                f"a path through {qname}() reaches the function exit (or an "
                f"uncaught-exception edge) without closing this span; close it "
                f"on every path — a try/finally or the class's _terminate path",
            )


@whole_program_rule("DET004", "unordered iteration flowing into stable output")
def det004_unordered_into_output(program: ProgramContext) -> Iterator[Finding]:
    for qname in sorted(program.index.functions):
        fi = program.index.functions[qname]
        for flow in unordered_flow(fi.node, fi.ctx):
            yield fi.ctx.finding(
                flow.site,
                "DET004",
                Severity.ERROR,
                f"{flow.kind} iteration order is hash-dependent and flows into "
                f"{flow.sink_desc} at line {flow.sink.lineno}; journaled/digested/"
                f"reported outputs must come from a total order — sort at the "
                f"iteration source",
            )
