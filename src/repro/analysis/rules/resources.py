"""Resource-pairing rules for the cloud substrate.

Every billable span (:meth:`UsageMeter.open_span`) and every quota charge
(:meth:`QuotaManager.reserve`) must have a terminal path in the same class
(or module, for free functions): ``close_span``/``release``, or the
class's unified ``_terminate`` path — the invariant PR 1 introduced after
a real double-close bug.  The check is intra-procedural and scope-paired:
it does not prove every control-flow path closes the span, but it catches
the class that opens spans and has *no* way to close them, which is how
the leak class actually shows up.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.engine import ModuleContext
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import rule

#: These rules are scoped to the cloud substrate (and its spot extension),
#: where the metering/quota contracts live.
_SCOPES = ("repro.cloud", "repro.spot")


def _in_scope(module: str) -> bool:
    return any(module == s or module.startswith(s + ".") for s in _SCOPES)


def _method_calls(root: ast.AST, attr_names: frozenset[str]) -> list[ast.Call]:
    out = []
    for node in ast.walk(root):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in attr_names
        ):
            out.append(node)
    return out


def _pairing_scopes(tree: ast.Module) -> Iterator[tuple[str, ast.AST]]:
    """Each class is a pairing scope; top-level code (minus classes) is one more."""
    rest = ast.Module(body=[], type_ignores=[])
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef):
            yield stmt.name, stmt
        else:
            rest.body.append(stmt)
    yield "<module>", rest


def _check_pairing(
    ctx: ModuleContext,
    rule_id: str,
    opens: frozenset[str],
    closes: frozenset[str],
    contract: str,
) -> Iterator[Finding]:
    if not _in_scope(ctx.module):
        return
    for scope_name, scope in _pairing_scopes(ctx.tree):
        open_calls = _method_calls(scope, opens)
        if not open_calls:
            continue
        # a definition of a terminal method counts: the scope owns the
        # terminal path even if this rule can't see every caller
        has_terminal = bool(_method_calls(scope, closes)) or any(
            isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)) and n.name in closes
            for n in ast.walk(scope)
        )
        if has_terminal:
            continue
        for call in open_calls:
            yield ctx.finding(
                call,
                rule_id,
                Severity.ERROR,
                f"{scope_name} calls {'/'.join(sorted(opens))} but has no "
                f"terminal path ({'/'.join(sorted(closes))}); {contract}",
            )


@rule("RES001", "UsageMeter.open_span without a terminal path in scope")
def res001_span_pairing(ctx: ModuleContext) -> Iterator[Finding]:
    yield from _check_pairing(
        ctx,
        "RES001",
        opens=frozenset({"open_span"}),
        closes=frozenset({"close_span", "_terminate"}),
        contract="every span must close exactly once or it meters forever",
    )


@rule("RES002", "quota reserve without a matching release in scope")
def res002_quota_pairing(ctx: ModuleContext) -> Iterator[Finding]:
    yield from _check_pairing(
        ctx,
        "RES002",
        opens=frozenset({"reserve"}),
        closes=frozenset({"release", "_terminate"}),
        contract="quota charged at create must be returned on the delete path",
    )


# -- RES003: non-atomic persistence writes -----------------------------------------

#: The one package whose whole purpose is crash-safe persistence; it owns
#: the temp-file + ``os.replace`` discipline the rule enforces elsewhere.
_RES003_EXEMPT = "repro.checkpoint"

#: An argument whose subtree mentions one of these is taken to name
#: durable recovery state.  ``wal`` matches only as a whole identifier
#: token so that e.g. ``os.walk``/``crawler`` stay quiet.
_PERSISTENCE_HINTS = ("journal", "manifest", "checkpoint", "segment", "snapshot")
_PERSISTENCE_TOKEN_HINTS = frozenset({"wal"})

#: Calls that, found anywhere in the same function scope, certify the
#: scope publishes atomically (temp file then rename into place).
_ATOMIC_ATTRS = frozenset({"replace", "rename"})
_ATOMIC_QUALIFIED = frozenset({"os.replace", "os.rename"})

_WRITE_MODES = frozenset("wxa")

_RES003_MESSAGE = (
    "non-atomic persistence write ({what}) on a recovery-state path: a crash "
    "mid-write leaves a torn file under the real name; write to a temp file "
    "and os.replace() it (see repro.checkpoint.atomic_write_bytes)"
)


def _res003_exempt(module: str) -> bool:
    return module == _RES003_EXEMPT or module.startswith(_RES003_EXEMPT + ".")


def _mentions_persistence(node: ast.AST) -> bool:
    texts: list[str] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            texts.append(sub.id)
        elif isinstance(sub, ast.Attribute):
            texts.append(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            texts.append(sub.value)
    for text in texts:
        low = text.lower()
        if any(hint in low for hint in _PERSISTENCE_HINTS):
            return True
        if _PERSISTENCE_TOKEN_HINTS & set(re.split(r"[^a-z0-9]+", low)):
            return True
    return False


def _open_write_mode(call: ast.Call) -> bool:
    mode: ast.expr | None = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if not (isinstance(mode, ast.Constant) and isinstance(mode.value, str)):
        return False
    return bool(_WRITE_MODES & set(mode.value))


def _classify_res003(ctx: ModuleContext, call: ast.Call) -> tuple[str, ast.expr] | None:
    """(description, path expression) when ``call`` is a bare persistence write."""
    func = call.func
    if isinstance(func, ast.Name) and func.id == "open" and call.args:
        if _open_write_mode(call):
            return "builtin open() in write mode", call.args[0]
        return None
    qualified = ctx.qualified_name(func)
    if qualified in ("os.remove", "os.unlink") and call.args:
        return f"{qualified}()", call.args[0]
    if isinstance(func, ast.Attribute) and func.attr == "unlink" and qualified is None:
        return ".unlink()", func.value
    return None


def _res003_scan(
    ctx: ModuleContext,
    node: ast.AST,
    writes: list[tuple[ast.Call, str]],
    atomic: list[bool],
    flagged: list[tuple[ast.Call, str]],
) -> None:
    """Collect hinted writes per innermost function scope.

    ``writes``/``atomic`` accumulate for the *current* scope; a nested
    function is settled on the spot — if its scope never renames into
    place, its writes land in ``flagged`` (a parent's discipline cannot
    save a helper that publishes torn files on its own).
    """
    if isinstance(node, ast.Call):
        func = node.func
        qualified = ctx.qualified_name(func)
        if qualified in _ATOMIC_QUALIFIED or (
            isinstance(func, ast.Attribute) and func.attr in _ATOMIC_ATTRS
        ):
            atomic[0] = True
        else:
            hit = _classify_res003(ctx, node)
            if hit is not None and _mentions_persistence(hit[1]):
                writes.append((node, hit[0]))
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner_writes: list[tuple[ast.Call, str]] = []
            inner_atomic = [False]
            for grand in ast.iter_child_nodes(child):
                _res003_scan(ctx, grand, inner_writes, inner_atomic, flagged)
            if not inner_atomic[0]:
                flagged.extend(inner_writes)
        else:
            _res003_scan(ctx, child, writes, atomic, flagged)


@rule("RES003", "non-atomic write/delete of recovery-state files")
def res003_atomic_persistence(ctx: ModuleContext) -> Iterator[Finding]:
    if _res003_exempt(ctx.module):
        return
    module_writes: list[tuple[ast.Call, str]] = []
    module_atomic = [False]
    flagged: list[tuple[ast.Call, str]] = []
    _res003_scan(ctx, ctx.tree, module_writes, module_atomic, flagged)
    if not module_atomic[0]:
        flagged.extend(module_writes)
    flagged.sort(key=lambda item: (item[0].lineno, item[0].col_offset))
    for call, what in flagged:
        yield ctx.finding(
            call, "RES003", Severity.ERROR, _RES003_MESSAGE.format(what=what)
        )
