"""Resource-pairing rules for the cloud substrate.

Every billable span (:meth:`UsageMeter.open_span`) and every quota charge
(:meth:`QuotaManager.reserve`) must have a terminal path in the same class
(or module, for free functions): ``close_span``/``release``, or the
class's unified ``_terminate`` path — the invariant PR 1 introduced after
a real double-close bug.  The check is intra-procedural and scope-paired:
it does not prove every control-flow path closes the span, but it catches
the class that opens spans and has *no* way to close them, which is how
the leak class actually shows up.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ModuleContext
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import rule

#: These rules are scoped to the cloud substrate (and its spot extension),
#: where the metering/quota contracts live.
_SCOPES = ("repro.cloud", "repro.spot")


def _in_scope(module: str) -> bool:
    return any(module == s or module.startswith(s + ".") for s in _SCOPES)


def _method_calls(root: ast.AST, attr_names: frozenset[str]) -> list[ast.Call]:
    out = []
    for node in ast.walk(root):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in attr_names
        ):
            out.append(node)
    return out


def _pairing_scopes(tree: ast.Module) -> Iterator[tuple[str, ast.AST]]:
    """Each class is a pairing scope; top-level code (minus classes) is one more."""
    rest = ast.Module(body=[], type_ignores=[])
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef):
            yield stmt.name, stmt
        else:
            rest.body.append(stmt)
    yield "<module>", rest


def _check_pairing(
    ctx: ModuleContext,
    rule_id: str,
    opens: frozenset[str],
    closes: frozenset[str],
    contract: str,
) -> Iterator[Finding]:
    if not _in_scope(ctx.module):
        return
    for scope_name, scope in _pairing_scopes(ctx.tree):
        open_calls = _method_calls(scope, opens)
        if not open_calls:
            continue
        # a definition of a terminal method counts: the scope owns the
        # terminal path even if this rule can't see every caller
        has_terminal = bool(_method_calls(scope, closes)) or any(
            isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)) and n.name in closes
            for n in ast.walk(scope)
        )
        if has_terminal:
            continue
        for call in open_calls:
            yield ctx.finding(
                call,
                rule_id,
                Severity.ERROR,
                f"{scope_name} calls {'/'.join(sorted(opens))} but has no "
                f"terminal path ({'/'.join(sorted(closes))}); {contract}",
            )


@rule("RES001", "UsageMeter.open_span without a terminal path in scope")
def res001_span_pairing(ctx: ModuleContext) -> Iterator[Finding]:
    yield from _check_pairing(
        ctx,
        "RES001",
        opens=frozenset({"open_span"}),
        closes=frozenset({"close_span", "_terminate"}),
        contract="every span must close exactly once or it meters forever",
    )


@rule("RES002", "quota reserve without a matching release in scope")
def res002_quota_pairing(ctx: ModuleContext) -> Iterator[Finding]:
    yield from _check_pairing(
        ctx,
        "RES002",
        opens=frozenset({"reserve"}),
        closes=frozenset({"release", "_terminate"}),
        contract="quota charged at create must be returned on the delete path",
    )
