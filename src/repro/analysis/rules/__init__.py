"""Built-in rule pack: determinism, error hygiene, resource pairing."""

from repro.analysis.rules import determinism, errors, resources  # noqa: F401
