"""Parallelism-hygiene rules.

``repro.parallel`` owes its headline guarantee — ``run_parallel`` is
digest-identical to the serial run — to a narrow discipline: all process
fan-out happens in one engine that executes *pre-planned, RNG-free*
shards and merges them under a canonical order.  Ad-hoc pools elsewhere
would reintroduce exactly the nondeterminism (scheduling-dependent
interleavings, per-process RNG state, unordered reduces) that engine
exists to contain, so PAR001 flags the primitives at the import site.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ModuleContext
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import rule

#: The only package allowed to touch process-pool primitives directly.
_ALLOWED_PREFIX = "repro.parallel"

#: Module roots whose import signals ad-hoc fan-out.
_BANNED_MODULES = ("multiprocessing", "concurrent.futures")

#: Direct process-creation calls caught by qualified name.
_BANNED_CALLS = {
    "os.fork": "os.fork() clones simulator state into an unmanaged process",
}

_MESSAGE = (
    "{what} outside repro.parallel; fan-out must go through "
    "repro.parallel.run_parallel so shards stay seed-split, RNG-free and "
    "canonically merged (digest-identical to the serial run)"
)


def _is_banned_module(name: str) -> bool:
    return any(name == root or name.startswith(root + ".") for root in _BANNED_MODULES)


def _allowed(module: str) -> bool:
    return module == _ALLOWED_PREFIX or module.startswith(_ALLOWED_PREFIX + ".")


@rule("PAR001", "process fan-out primitives used outside repro.parallel")
def par001_adhoc_fanout(ctx: ModuleContext) -> Iterator[Finding]:
    if _allowed(ctx.module):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if _is_banned_module(alias.name):
                    yield ctx.finding(
                        node,
                        "PAR001",
                        Severity.ERROR,
                        _MESSAGE.format(what=f"import of {alias.name}"),
                    )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            full = node.module
            names = {alias.name for alias in node.names}
            # `from concurrent import futures` is the same door
            if full == "concurrent" and "futures" in names:
                full = "concurrent.futures"
            if _is_banned_module(full):
                yield ctx.finding(
                    node,
                    "PAR001",
                    Severity.ERROR,
                    _MESSAGE.format(what=f"import from {full}"),
                )
        elif isinstance(node, ast.Call):
            qualified = ctx.qualified_name(node.func)
            if qualified is not None and qualified in _BANNED_CALLS:
                yield ctx.finding(
                    node,
                    "PAR001",
                    Severity.ERROR,
                    _MESSAGE.format(what=f"call to {qualified}(): {_BANNED_CALLS[qualified]}"),
                )
