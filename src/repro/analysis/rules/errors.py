"""Error-hygiene rules.

ERR001 hunts the failure mode PR 1's metering bug came from: a broad
``except`` that swallows the error, leaving the system in a half-mutated
state with no trace.  A broad handler is fine when it re-raises, when it
actually *uses* the caught exception (logging it, routing it to a
dead-letter queue, keeping it for a retry loop's final error), or when it
calls something that records the failure.

ERR002 hunts unbounded retry loops: ``while True`` wrapped around an
``except ... continue`` (or a trailing ``except: pass``) with no attempt
bound and no backoff.  Against a down service that loop spins forever —
the exact failure the shared :class:`~repro.common.retry.RetryPolicy`
exists to prevent, so that module is the one sanctioned home for retry
plumbing and is exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ModuleContext
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import rule

_BROAD = ("Exception", "BaseException")

#: Substrings of call names that count as "the error was recorded".
_RECORDING_HINTS = ("log", "warn", "error", "exception", "fail", "dead_letter", "dlq")


def _is_broad(handler: ast.ExceptHandler) -> bool:
    t = handler.type
    if t is None:  # bare `except:`
        return True
    exprs = t.elts if isinstance(t, ast.Tuple) else [t]
    for e in exprs:
        if isinstance(e, ast.Name) and e.id in _BROAD:
            return True
        if isinstance(e, ast.Attribute) and e.attr in _BROAD:
            return True
    return False


def _call_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _handles_error(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
        if isinstance(node, ast.Raise):
            return True
        if (
            handler.name is not None
            and isinstance(node, ast.Name)
            and node.id == handler.name
            and isinstance(node.ctx, ast.Load)
        ):
            return True
        if isinstance(node, ast.Call):
            name = _call_name(node.func).lower()
            if any(hint in name for hint in _RECORDING_HINTS):
                return True
    return False


@rule("ERR001", "broad except handler silently discards the error")
def err001_silent_broad_except(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if _is_broad(node) and not _handles_error(node):
            what = "bare except" if node.type is None else "except Exception"
            yield ctx.finding(
                node,
                "ERR001",
                Severity.WARNING,
                f"{what} swallows the error without re-raise, logging, or DLQ "
                f"routing; catch the specific error class, or record why it is "
                f"safe to drop",
            )


#: The one module allowed to implement raw retry loops (it is the policy).
RETRY_MODULE = "repro.common.retry"

#: Call-name substrings that signal the loop waits between attempts.
_BACKOFF_HINTS = ("backoff", "sleep", "wait", "schedule", "delay")


def _constant_true(test: ast.expr) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value)


def _handler_retries(handler: ast.ExceptHandler) -> bool:
    """True when the handler sends control back around the loop: it
    contains ``continue``, or its body is nothing but ``pass`` at the
    bottom of the iteration — and nothing escapes (raise/break/return)."""
    nodes = list(ast.walk(ast.Module(body=handler.body, type_ignores=[])))
    if any(isinstance(n, (ast.Raise, ast.Break, ast.Return)) for n in nodes):
        return False
    if any(isinstance(n, ast.Continue) for n in nodes):
        return True
    return all(isinstance(s, ast.Pass) for s in handler.body)


@rule("ERR002", "unbounded retry loop: while-True except-continue without bound or backoff")
def err002_unbounded_retry(ctx: ModuleContext) -> Iterator[Finding]:
    if ctx.module == RETRY_MODULE:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.While) or not _constant_true(node.test):
            continue
        subtree = list(ast.walk(node))
        if not any(
            isinstance(h, ast.ExceptHandler) and _handler_retries(h) for h in subtree
        ):
            continue
        waits = any(
            isinstance(n, ast.Call)
            and any(hint in _call_name(n.func).lower() for hint in _BACKOFF_HINTS)
            for n in subtree
        )
        if waits:
            continue
        yield ctx.finding(
            node,
            "ERR002",
            Severity.WARNING,
            "while True retries on exception with no attempt bound and no "
            "backoff — against a persistent failure this loop spins forever; "
            "drive it from repro.common.retry.RetryPolicy instead",
        )
