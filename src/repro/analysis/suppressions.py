"""Inline suppression comments.

A finding is suppressed by a trailing comment on its line::

    except Exception:  # repro: noqa ERR001 (swallowing is the DLQ contract)

The reason in parentheses is **mandatory** — a bare ``# repro: noqa RULE``
does not suppress anything, so every accepted hazard carries its
justification in the diff.  Several rules can share one comment:
``# repro: noqa DET001, DET003 (reason)``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_NOQA = re.compile(
    r"#\s*repro:\s*noqa\s+"
    r"(?P<rules>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)"
    r"\s*\((?P<reason>[^)]+)\)"
)


@dataclass(frozen=True)
class Suppression:
    """One ``# repro: noqa`` comment: which rules it waives, and why."""

    line: int
    rule_ids: frozenset[str]
    reason: str

    def covers(self, rule_id: str) -> bool:
        return rule_id in self.rule_ids


def parse_suppressions(source: str) -> dict[int, Suppression]:
    """Extract every well-formed suppression comment, keyed by line number."""
    out: dict[int, Suppression] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _NOQA.search(text)
        if m is None:
            continue
        rule_ids = frozenset(r.strip() for r in m.group("rules").split(","))
        out[lineno] = Suppression(
            line=lineno, rule_ids=rule_ids, reason=m.group("reason").strip()
        )
    return out
