"""The tracking backend store: experiments, runs, params, metrics, tags.

Semantics follow MLflow's: params are write-once per run, metrics are
append-only time series keyed by (step, timestamp), runs belong to
experiments and end in a terminal status.  ``search_runs`` supports the
comparison queries the lab's UI work performs ("compare experiment
results", paper §3.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable

from repro.common.clock import SimClock
from repro.common.errors import (
    ConflictError,
    InvalidStateError,
    NotFoundError,
    ValidationError,
)
from repro.common.ids import IdGenerator


class RunStatus(str, Enum):
    RUNNING = "RUNNING"
    FINISHED = "FINISHED"
    FAILED = "FAILED"
    KILLED = "KILLED"


@dataclass(frozen=True)
class MetricPoint:
    """One logged metric observation."""

    step: int
    timestamp: float
    value: float


@dataclass
class Run:
    id: str
    experiment_id: str
    name: str
    status: RunStatus = RunStatus.RUNNING
    start_time: float = 0.0
    end_time: float | None = None
    params: dict[str, str] = field(default_factory=dict)
    tags: dict[str, str] = field(default_factory=dict)
    metrics: dict[str, list[MetricPoint]] = field(default_factory=dict)

    def latest_metric(self, key: str) -> float:
        """Value of the most recent point for ``key``."""
        points = self.metrics.get(key)
        if not points:
            raise NotFoundError(f"run {self.id} has no metric {key!r}")
        return points[-1].value

    def best_metric(self, key: str, *, mode: str = "min") -> float:
        points = self.metrics.get(key)
        if not points:
            raise NotFoundError(f"run {self.id} has no metric {key!r}")
        values = [p.value for p in points]
        return min(values) if mode == "min" else max(values)


@dataclass
class Experiment:
    id: str
    name: str
    run_ids: list[str] = field(default_factory=list)


class TrackingStore:
    """In-memory MLflow-like backend store."""

    def __init__(self, clock: SimClock | None = None) -> None:
        self._clock = clock if clock is not None else SimClock()
        self._ids = IdGenerator()
        self.experiments: dict[str, Experiment] = {}
        self.runs: dict[str, Run] = {}
        self._experiment_names: dict[str, str] = {}

    # -- experiments ---------------------------------------------------------

    def create_experiment(self, name: str) -> Experiment:
        if name in self._experiment_names:
            raise ConflictError(f"experiment {name!r} already exists")
        exp = Experiment(id=self._ids.next("exp"), name=name)
        self.experiments[exp.id] = exp
        self._experiment_names[name] = exp.id
        return exp

    def get_experiment_by_name(self, name: str) -> Experiment:
        try:
            return self.experiments[self._experiment_names[name]]
        except KeyError:
            raise NotFoundError(f"experiment {name!r} not found") from None

    # -- runs ----------------------------------------------------------------

    def create_run(self, experiment_id: str, name: str = "") -> Run:
        exp = self._experiment(experiment_id)
        run = Run(
            id=self._ids.next("run"),
            experiment_id=exp.id,
            name=name or f"run-{len(exp.run_ids) + 1}",
            start_time=self._clock.now,
        )
        self.runs[run.id] = run
        exp.run_ids.append(run.id)
        return run

    def log_param(self, run_id: str, key: str, value: Any) -> None:
        run = self._active_run(run_id)
        text = str(value)
        if key in run.params and run.params[key] != text:
            raise ConflictError(
                f"param {key!r} already logged with a different value on run {run_id}"
            )
        run.params[key] = text

    def log_metric(self, run_id: str, key: str, value: float, *, step: int | None = None) -> None:
        run = self._active_run(run_id)
        if not isinstance(value, (int, float)):
            raise ValidationError(f"metric value must be numeric, got {value!r}")
        series = run.metrics.setdefault(key, [])
        step = step if step is not None else len(series)
        series.append(MetricPoint(step=step, timestamp=self._clock.now, value=float(value)))

    def set_tag(self, run_id: str, key: str, value: str) -> None:
        self._run(run_id).tags[key] = str(value)

    def finish_run(self, run_id: str, status: RunStatus = RunStatus.FINISHED) -> None:
        run = self._run(run_id)
        if run.status is not RunStatus.RUNNING:
            raise InvalidStateError(f"run {run_id} already terminal ({run.status.value})")
        if status is RunStatus.RUNNING:
            raise ValidationError("cannot finish a run into RUNNING")
        run.status = status
        run.end_time = self._clock.now

    # -- queries ----------------------------------------------------------------

    def search_runs(
        self,
        experiment_id: str,
        *,
        predicate: Callable[[Run], bool] | None = None,
        order_by_metric: str | None = None,
        ascending: bool = True,
        limit: int | None = None,
    ) -> list[Run]:
        exp = self._experiment(experiment_id)
        runs = [self.runs[r] for r in exp.run_ids]
        if predicate is not None:
            runs = [r for r in runs if predicate(r)]
        if order_by_metric is not None:
            runs = [r for r in runs if order_by_metric in r.metrics]
            runs.sort(key=lambda r: r.latest_metric(order_by_metric), reverse=not ascending)
        return runs[:limit] if limit is not None else runs

    def best_run(self, experiment_id: str, metric: str, *, mode: str = "min") -> Run:
        """The run whose latest ``metric`` is best (lab: compare results)."""
        runs = self.search_runs(
            experiment_id, order_by_metric=metric, ascending=(mode == "min"), limit=1
        )
        if not runs:
            raise NotFoundError(f"no runs with metric {metric!r}")
        return runs[0]

    # -- internals ------------------------------------------------------------

    def _experiment(self, experiment_id: str) -> Experiment:
        try:
            return self.experiments[experiment_id]
        except KeyError:
            raise NotFoundError(f"experiment {experiment_id!r} not found") from None

    def _run(self, run_id: str) -> Run:
        try:
            return self.runs[run_id]
        except KeyError:
            raise NotFoundError(f"run {run_id!r} not found") from None

    def _active_run(self, run_id: str) -> Run:
        run = self._run(run_id)
        if run.status is not RunStatus.RUNNING:
            raise InvalidStateError(f"run {run_id} is {run.status.value}, not RUNNING")
        return run
