"""The artifact store.

Artifacts (model weights, plots, eval reports) are stored per run under a
path hierarchy, content-addressed by SHA-256 so identical payloads dedupe —
and so tests can verify integrity end-to-end.  Optionally backed by the
simulated object store (the lab deploys MinIO for exactly this role).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.common.errors import NotFoundError, ValidationError
from repro.cloud.storage import ObjectStorageService


@dataclass(frozen=True)
class ArtifactInfo:
    run_id: str
    path: str
    size: int
    sha256: str


class ArtifactStore:
    """Per-run artifact storage with optional object-store backing."""

    def __init__(self, backend: ObjectStorageService | None = None, *, bucket: str = "mlflow-artifacts", project: str = "mlops") -> None:
        self._blobs: dict[str, bytes] = {}  # sha -> payload
        self._index: dict[tuple[str, str], ArtifactInfo] = {}
        self._backend = backend
        self._bucket = bucket
        if backend is not None and bucket not in backend.buckets:
            backend.create_bucket(project, bucket)

    def log_artifact(self, run_id: str, path: str, data: bytes) -> ArtifactInfo:
        if not path or path.startswith("/"):
            raise ValidationError(f"artifact path must be relative, got {path!r}")
        sha = hashlib.sha256(data).hexdigest()
        self._blobs.setdefault(sha, data)
        info = ArtifactInfo(run_id=run_id, path=path, size=len(data), sha256=sha)
        self._index[(run_id, path)] = info
        if self._backend is not None:
            self._backend.put_object(self._bucket, f"{run_id}/{path}", data)
        return info

    def get_artifact(self, run_id: str, path: str) -> bytes:
        info = self._info(run_id, path)
        return self._blobs[info.sha256]

    def list_artifacts(self, run_id: str, prefix: str = "") -> list[ArtifactInfo]:
        return sorted(
            (i for (rid, p), i in self._index.items() if rid == run_id and p.startswith(prefix)),
            key=lambda i: i.path,
        )

    def verify(self, run_id: str, path: str) -> bool:
        """Re-hash the stored payload against the recorded digest."""
        info = self._info(run_id, path)
        return hashlib.sha256(self._blobs[info.sha256]).hexdigest() == info.sha256

    def total_bytes(self) -> int:
        """Deduplicated storage footprint."""
        return sum(len(b) for b in self._blobs.values())

    def _info(self, run_id: str, path: str) -> ArtifactInfo:
        try:
            return self._index[(run_id, path)]
        except KeyError:
            raise NotFoundError(f"no artifact {path!r} for run {run_id!r}") from None
