"""The model registry: versions, stages, promotion.

Unit 3's pipeline simulates "model registration and promotion" (paper
§3.3); the GourmetGram retraining loop in :mod:`repro.mlops` registers a
new version on every retrain and promotes it through Staging → Production
after evaluation gates pass.  Stage semantics follow MLflow: at most one
version of a model holds Production at a time (the previous occupant is
archived on promotion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.common.errors import ConflictError, NotFoundError, ValidationError


class ModelStage(str, Enum):
    NONE = "None"
    STAGING = "Staging"
    PRODUCTION = "Production"
    ARCHIVED = "Archived"


_ALLOWED_TRANSITIONS: dict[ModelStage, set[ModelStage]] = {
    ModelStage.NONE: {ModelStage.STAGING, ModelStage.ARCHIVED, ModelStage.PRODUCTION},
    ModelStage.STAGING: {ModelStage.PRODUCTION, ModelStage.ARCHIVED, ModelStage.NONE},
    ModelStage.PRODUCTION: {ModelStage.ARCHIVED, ModelStage.STAGING},
    ModelStage.ARCHIVED: {ModelStage.STAGING, ModelStage.NONE},
}


@dataclass
class ModelVersion:
    name: str
    version: int
    run_id: str
    stage: ModelStage = ModelStage.NONE
    description: str = ""
    metrics: dict[str, float] = field(default_factory=dict)


class ModelRegistry:
    """Versioned model store with single-occupancy Production stage."""

    def __init__(self) -> None:
        self._models: dict[str, list[ModelVersion]] = {}

    def register(
        self,
        name: str,
        run_id: str,
        *,
        description: str = "",
        metrics: dict[str, float] | None = None,
    ) -> ModelVersion:
        """Register a new version of ``name`` (versions start at 1)."""
        versions = self._models.setdefault(name, [])
        mv = ModelVersion(
            name=name,
            version=len(versions) + 1,
            run_id=run_id,
            description=description,
            metrics=dict(metrics or {}),
        )
        versions.append(mv)
        return mv

    def get(self, name: str, version: int) -> ModelVersion:
        for mv in self._versions(name):
            if mv.version == version:
                return mv
        raise NotFoundError(f"model {name!r} has no version {version}")

    def versions(self, name: str) -> list[ModelVersion]:
        return list(self._versions(name))

    def latest(self, name: str, *, stage: ModelStage | None = None) -> ModelVersion:
        """Newest version (optionally restricted to a stage)."""
        candidates = [
            mv for mv in self._versions(name) if stage is None or mv.stage is stage
        ]
        if not candidates:
            raise NotFoundError(
                f"model {name!r} has no version"
                + (f" in stage {stage.value}" if stage else "")
            )
        return candidates[-1]

    def transition(self, name: str, version: int, stage: ModelStage) -> ModelVersion:
        """Move a version to ``stage``, archiving any Production occupant."""
        mv = self.get(name, version)
        if stage is mv.stage:
            raise ConflictError(f"{name} v{version} is already in {stage.value}")
        if stage not in _ALLOWED_TRANSITIONS[mv.stage]:
            raise ValidationError(
                f"illegal transition {mv.stage.value} -> {stage.value} for {name} v{version}"
            )
        if stage is ModelStage.PRODUCTION:
            for other in self._versions(name):
                if other.stage is ModelStage.PRODUCTION and other.version != version:
                    other.stage = ModelStage.ARCHIVED
        mv.stage = stage
        return mv

    def production(self, name: str) -> ModelVersion:
        """The unique Production version (404 if none)."""
        prods = [mv for mv in self._versions(name) if mv.stage is ModelStage.PRODUCTION]
        if not prods:
            raise NotFoundError(f"model {name!r} has no Production version")
        return prods[0]

    def model_names(self) -> list[str]:
        return sorted(self._models)

    def _versions(self, name: str) -> list[ModelVersion]:
        try:
            return self._models[name]
        except KeyError:
            raise NotFoundError(f"model {name!r} not registered") from None
