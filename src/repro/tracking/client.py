"""The user-facing tracking client.

Wraps the backend store, artifact store, and registry behind the API a
training script uses — the shape of the MLflow fluent API the lab's
"configure a training script to log experiment metadata" step exercises.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.common.errors import InvalidStateError, NotFoundError
from repro.tracking.artifacts import ArtifactStore
from repro.tracking.registry import ModelRegistry, ModelStage, ModelVersion
from repro.tracking.store import Run, RunStatus, TrackingStore


class TrackingClient:
    """One client session against a tracking server."""

    def __init__(
        self,
        store: TrackingStore | None = None,
        artifacts: ArtifactStore | None = None,
        registry: ModelRegistry | None = None,
    ) -> None:
        self.store = store if store is not None else TrackingStore()
        self.artifacts = artifacts if artifacts is not None else ArtifactStore()
        self.registry = registry if registry is not None else ModelRegistry()
        self._active: Run | None = None

    def set_experiment(self, name: str) -> str:
        """Create-or-get an experiment; returns its id."""
        try:
            return self.store.get_experiment_by_name(name).id
        except NotFoundError:
            return self.store.create_experiment(name).id

    @contextmanager
    def start_run(self, experiment: str, name: str = "") -> Iterator[Run]:
        """Context manager: the run finishes FINISHED, or FAILED on error."""
        if self._active is not None:
            raise InvalidStateError(f"run {self._active.id} is already active")
        exp_id = self.set_experiment(experiment)
        run = self.store.create_run(exp_id, name)
        self._active = run
        try:
            yield run
        except Exception:
            self.store.finish_run(run.id, RunStatus.FAILED)
            raise
        else:
            self.store.finish_run(run.id, RunStatus.FINISHED)
        finally:
            self._active = None

    # -- fluent logging (targets the active run) -----------------------------

    def log_param(self, key: str, value: Any) -> None:
        self.store.log_param(self._require_active().id, key, value)

    def log_params(self, params: dict[str, Any]) -> None:
        for k, v in params.items():
            self.log_param(k, v)

    def log_metric(self, key: str, value: float, *, step: int | None = None) -> None:
        self.store.log_metric(self._require_active().id, key, value, step=step)

    def log_metrics(self, metrics: dict[str, float], *, step: int | None = None) -> None:
        for k, v in metrics.items():
            self.log_metric(k, v, step=step)

    def set_tag(self, key: str, value: str) -> None:
        self.store.set_tag(self._require_active().id, key, value)

    def log_artifact(self, path: str, data: bytes) -> None:
        self.artifacts.log_artifact(self._require_active().id, path, data)

    def log_model(
        self,
        model_name: str,
        weights: bytes,
        *,
        metrics: dict[str, float] | None = None,
    ) -> ModelVersion:
        """Log weights as an artifact and register a new model version."""
        run = self._require_active()
        self.artifacts.log_artifact(run.id, f"models/{model_name}/weights.bin", weights)
        return self.registry.register(model_name, run.id, metrics=metrics)

    def promote(self, model_name: str, version: int, stage: ModelStage) -> ModelVersion:
        return self.registry.transition(model_name, version, stage)

    def _require_active(self) -> Run:
        if self._active is None:
            raise InvalidStateError("no active run; use start_run()")
        return self._active
