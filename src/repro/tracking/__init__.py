"""Experiment tracking, artifact storage, and a model registry.

Unit 5's lab deploys "an MLFlow tracking server, including all necessary
services (backend store, artifact store, UI)" and uses it to "identify
training bottlenecks, compare experiment results, and inspect model
artifacts" (paper §3.5).  Unit 3's pipeline exercises "model registration
and promotion".  The same three services live here:

* :mod:`repro.tracking.store` — experiments, runs, params, tags, and
  stepped/timestamped metrics with search.
* :mod:`repro.tracking.artifacts` — a content-addressed artifact store.
* :mod:`repro.tracking.registry` — model versions with stage transitions
  (None → Staging → Production → Archived).
* :mod:`repro.tracking.client` — the user-facing client tying them together.
"""

from repro.tracking.artifacts import ArtifactStore
from repro.tracking.client import TrackingClient
from repro.tracking.registry import ModelRegistry, ModelStage, ModelVersion
from repro.tracking.store import Experiment, MetricPoint, Run, RunStatus, TrackingStore

__all__ = [
    "TrackingStore",
    "Experiment",
    "Run",
    "RunStatus",
    "MetricPoint",
    "ArtifactStore",
    "ModelRegistry",
    "ModelStage",
    "ModelVersion",
    "TrackingClient",
]
