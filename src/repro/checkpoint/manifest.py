"""The run manifest: keys a journal to the exact inputs that produced it.

A journal is only as trustworthy as the guarantee that it was written by
*this* run's plan.  Resuming a stale journal — same directory, but the
course was rescaled, the seed changed, or a different fault plan was
swept in — would merge records from two different simulated semesters
into one digest-plausible but meaningless stream.  The manifest makes
that impossible: it pins (course digest, seed, cohort size, fault-plan
digest) plus the resolved plan's own fingerprint, is written atomically
next to the segments, and any mismatch on resume raises
:class:`StaleJournalError` naming the fields that moved.

The plan fingerprint subsumes the named keys (every activity's resolved
times are hashed), but the keys are kept as first-class fields so the
``--inspect`` report and the mismatch diagnostic speak in terms a person
can act on ("seed 42 != 7") rather than "two hashes differ".
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.checkpoint.journal import atomic_write_bytes
from repro.common.errors import ReproError, ValidationError

MANIFEST_NAME = "manifest.json"
FORMAT_VERSION = 1


class StaleJournalError(ReproError):
    """A journal's manifest does not match the run trying to resume it."""


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def course_fingerprint(course: object) -> str:
    """Digest of the full course definition (labs, project, enrollment).

    ``CourseDefinition`` is a frozen dataclass tree of scalars, so its
    ``repr`` is a stable canonical form.
    """
    return _sha(repr(course))


def fault_model_digest(faults: object | None) -> str:
    """Digest of the fault model a plan was swept with (``"-"`` = none).

    The canonical :class:`~repro.faults.plan.FaultSweep` carries its
    resolved calendar and retry policies — all frozen dataclasses — so
    hashing their reprs pins every window, hazard draw, and backoff knob.
    Other :class:`~repro.core.cohort.FaultModel` implementations fall
    back to their own repr.
    """
    if faults is None:
        return "-"
    calendar = getattr(faults, "calendar", None)
    if calendar is not None:
        body = repr(
            (calendar, getattr(faults, "relaunch", None), getattr(faults, "transient", None))
        )
    else:
        body = repr(faults)
    return _sha(body)


def plan_fingerprint(plan: object, *, include_project: bool = True) -> str:
    """Digest over every resolved shard of a :class:`~repro.core.cohort.CohortPlan`.

    Hash of the admitted activities (absolute starts, durations, flavors
    — everything execution consumes), so two plans collide only if they
    would execute identically.  Hashed over the pickled shard tuple
    rather than reprs: shards are frozen dataclasses of scalars, so the
    bytes are canonical either way, and pickling a full-scale plan is
    ~10x cheaper — this fingerprint is on the journaled hot path, inside
    the <=5% overhead budget of ``benchmarks/bench_checkpoint.py``.
    """
    h = hashlib.sha256()
    h.update(repr(getattr(plan, "semester_hours", None)).encode())
    h.update(repr(getattr(plan, "quota", None)).encode())
    shards = plan.shards(include_project=include_project)  # type: ignore[attr-defined]
    h.update(pickle.dumps(tuple(shards), protocol=5))
    return h.hexdigest()


@dataclass(frozen=True)
class RunManifest:
    """What a journal was written for; all fields participate in matching."""

    course_digest: str
    seed: int
    cohort_size: int
    fault_digest: str
    include_project: bool
    shard_count: int
    plan_digest: str
    format_version: int = FORMAT_VERSION

    # -- construction ------------------------------------------------------

    @classmethod
    def for_run(
        cls,
        plan: object,
        course: object,
        *,
        seed: int,
        faults: object | None = None,
        include_project: bool = True,
    ) -> "RunManifest":
        shards = plan.shards(include_project=include_project)  # type: ignore[attr-defined]
        return cls(
            course_digest=course_fingerprint(course),
            seed=seed,
            cohort_size=int(getattr(course, "enrollment", len(shards))),
            fault_digest=fault_model_digest(faults),
            include_project=include_project,
            shard_count=len(shards),
            plan_digest=plan_fingerprint(plan, include_project=include_project),
        )

    # -- persistence -------------------------------------------------------

    def save(self, journal_dir: str | os.PathLike[str]) -> Path:
        path = Path(journal_dir) / MANIFEST_NAME
        atomic_write_bytes(path, json.dumps(asdict(self), indent=2, sort_keys=True).encode())
        return path

    @classmethod
    def load(cls, journal_dir: str | os.PathLike[str]) -> "RunManifest | None":
        path = Path(journal_dir) / MANIFEST_NAME
        if not path.exists():
            return None
        try:
            raw = json.loads(path.read_text())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise StaleJournalError(
                f"unreadable manifest at {path}: {exc}; the journal cannot be "
                f"trusted — move it aside or delete the directory"
            ) from None
        known = {f: raw[f] for f in cls.__dataclass_fields__ if f in raw}
        missing = set(cls.__dataclass_fields__) - set(known)
        if missing:
            raise StaleJournalError(
                f"manifest at {path} is missing fields {sorted(missing)}; "
                f"written by an incompatible version?"
            )
        try:
            return cls(**known)
        except (TypeError, ValidationError) as exc:
            raise StaleJournalError(f"malformed manifest at {path}: {exc}") from None

    # -- matching ----------------------------------------------------------

    def mismatches(self, other: "RunManifest") -> list[str]:
        """Human-actionable list of fields where ``other`` disagrees."""
        out = []
        for name in self.__dataclass_fields__:
            mine, theirs = getattr(self, name), getattr(other, name)
            if mine != theirs:
                out.append(f"{name}: journal has {mine!r}, this run has {theirs!r}")
        return out

    def require_match(self, other: "RunManifest", *, journal_dir: object = "") -> None:
        """Raise :class:`StaleJournalError` unless ``other`` matches exactly."""
        diffs = self.mismatches(other)
        if diffs:
            raise StaleJournalError(
                f"journal at {journal_dir} was written for different inputs and "
                f"cannot be resumed ({'; '.join(diffs)}); point this run at a "
                f"fresh directory or delete the stale journal"
            )
