"""The crash-injection harness: prove resume == uninterrupted, by sweep.

Each :class:`KillCase` wounds one journaled ``run_parallel`` in a
specific, deterministic way and then demands the sha256 of the final
merged record stream equal the uninterrupted *serial* run's digest:

* ``worker-sigkill`` — a worker SIGKILLs its own PID right after
  finishing a chosen shard (a real shard-boundary kill: the whole pool
  breaks, every in-flight batch is lost).  The supervisor must self-heal
  within the same call.
* ``worker-exit`` — the worker raises ``SystemExit`` mid-task instead;
  the pool survives, the batch is lost.  Exercises the task-level branch
  of the :class:`~repro.common.errors.WorkerCrashError` mapping.
* ``halt-resume`` — the *driver* dies: the supervisor abandons the run
  after N journal segments (``SupervisorHalt``), and a fresh call over
  the same journal must finish the semester.
* ``halt-truncate`` — like ``halt-resume``, but the newest segment file
  is truncated mid-frame before resuming (the torn write ``os.replace``
  makes impossible in practice, simulated anyway).  The segment must be
  quarantined, its shards re-executed.
* ``corrupt-segment`` — a byte is flipped deep inside an *older*
  segment's payload: the sha256 check must catch it, quarantine the
  file, and recompute.

The sweep runs cases over seeds × workers ∈ {1, 2, 4} × kill points
(worker kills need a pool, so those rows use workers ≥ 2; driver-death
rows cover workers = 1).  ``python -m repro.checkpoint --verify`` runs
the full sweep; ``--quick`` is the CI smoke subset; ``tests/checkpoint``
drives the same harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.checkpoint.journal import ShardJournal
from repro.common.errors import ValidationError
from repro.core.cohort import CohortConfig, CohortSimulation, plan_cohort
from repro.core.course import CourseDefinition, scaled_course
from repro.core.report import records_digest
from repro.parallel.engine import (
    SupervisedRun,
    SupervisorHalt,
    SupervisorPolicy,
    run_parallel_supervised,
)

WORKER_MODES = ("worker-sigkill", "worker-exit")
HALT_MODES = ("halt-resume", "halt-truncate")
ALL_MODES = WORKER_MODES + HALT_MODES + ("corrupt-segment",)


@dataclass(frozen=True)
class KillCase:
    """One deterministic wound: (mode, seed, workers, kill point)."""

    mode: str
    seed: int
    workers: int
    kill_point: int

    def __post_init__(self) -> None:
        if self.mode not in ALL_MODES:
            raise ValidationError(f"unknown kill mode: {self.mode!r}")
        if self.mode in WORKER_MODES and self.workers < 2:
            raise ValidationError(f"{self.mode} needs a pool (workers >= 2)")

    @property
    def label(self) -> str:
        return f"{self.mode} seed={self.seed} workers={self.workers} k={self.kill_point}"


@dataclass(frozen=True)
class KillOutcome:
    """What one wounded run did, against the uninterrupted serial digest."""

    case: KillCase
    digest_ok: bool
    crashed: bool  # did the injected crash actually fire?
    shards_resumed: int
    shards_retried: int
    worker_crashes: int
    segments_quarantined: int

    @property
    def ok(self) -> bool:
        return self.digest_ok and self.crashed


def _kill_shard_id(course: CourseDefinition, seed: int, kill_point: int) -> str:
    """A deterministic shard boundary to die at, spread across the plan."""
    shards = plan_cohort(course, CohortConfig(seed=seed)).shards()
    return shards[(kill_point * 17 + 3) % len(shards)].shard_id


def _truncate(path: Path, *, keep_fraction: float) -> None:
    data = path.read_bytes()
    keep = max(1, int(len(data) * keep_fraction))
    with open(path, "r+b") as fh:
        fh.truncate(keep)


def _flip_byte(path: Path, offset_fraction: float = 0.7) -> None:
    data = bytearray(path.read_bytes())
    pos = min(len(data) - 1, int(len(data) * offset_fraction))
    data[pos] ^= 0xFF
    with open(path, "r+b") as fh:
        fh.seek(pos)
        fh.write(bytes([data[pos]]))


def run_case(
    case: KillCase,
    course: CourseDefinition,
    serial_digest: str,
    journal_dir: str | Path,
) -> KillOutcome:
    """Execute one case against a fresh journal directory."""
    config = CohortConfig(seed=case.seed)
    run: SupervisedRun
    crashed = False

    if case.mode in WORKER_MODES:
        policy = SupervisorPolicy(
            crash_after_shards=(_kill_shard_id(course, case.seed, case.kill_point),),
            crash_mode="sigkill" if case.mode == "worker-sigkill" else "exit",
        )
        records, run = run_parallel_supervised(
            course, config, workers=case.workers, journal_dir=journal_dir, policy=policy
        )
        crashed = run.telemetry.worker_crashes > 0
    else:
        halt = SupervisorPolicy(halt_after_segments=case.kill_point)
        try:
            run_parallel_supervised(
                course, config, workers=case.workers, journal_dir=journal_dir, policy=halt
            )
        except SupervisorHalt:
            crashed = True
        journal = ShardJournal(journal_dir)
        segments = journal.segment_paths()
        if case.mode == "halt-truncate" and segments:
            # odd kill points cut mid-payload, even ones mid-header — both
            # torn-write shapes the frame must catch
            _truncate(segments[-1], keep_fraction=0.6 if case.kill_point % 2 else 0.002)
        elif case.mode == "corrupt-segment" and segments:
            _flip_byte(segments[0])
        records, run = run_parallel_supervised(
            course, config, workers=case.workers, journal_dir=journal_dir
        )

    return KillOutcome(
        case=case,
        digest_ok=records_digest(records) == serial_digest,
        crashed=crashed,
        shards_resumed=run.telemetry.shards_resumed,
        shards_retried=run.telemetry.shards_retried,
        worker_crashes=run.telemetry.worker_crashes,
        segments_quarantined=run.telemetry.segments_quarantined,
    )


def sweep_cases(*, quick: bool = False, seeds: tuple[int, ...] | None = None) -> list[KillCase]:
    """The kill matrix: modes × seeds × workers ∈ {1, 2, 4} × kill points."""
    cases: list[KillCase] = []
    if quick:
        for seed in seeds or (42,):
            cases += [
                KillCase("worker-sigkill", seed, 2, 0),
                KillCase("worker-sigkill", seed, 4, 1),
                KillCase("worker-exit", seed, 2, 1),
                KillCase("halt-resume", seed, 1, 1),
                KillCase("halt-resume", seed, 2, 2),
                KillCase("halt-resume", seed, 4, 1),
                KillCase("halt-truncate", seed, 1, 1),  # mid-payload cut
                KillCase("halt-truncate", seed, 4, 2),  # mid-header cut
                KillCase("corrupt-segment", seed, 2, 2),
            ]
        return cases
    for seed in seeds or (42, 7):
        for mode in WORKER_MODES:
            for workers in (2, 4):
                for kill_point in (0, 1, 2):
                    cases.append(KillCase(mode, seed, workers, kill_point))
        for mode in HALT_MODES:
            for workers in (1, 2, 4):
                for kill_point in (1, 2, 3):
                    cases.append(KillCase(mode, seed, workers, kill_point))
        for workers in (1, 2):
            cases.append(KillCase("corrupt-segment", seed, workers, 2))
    return cases


def run_kill_matrix(
    journal_root: str | Path,
    *,
    quick: bool = False,
    scale: float = 0.25,
    seeds: tuple[int, ...] | None = None,
) -> list[KillOutcome]:
    """Run the sweep; one fresh journal dir per case under ``journal_root``."""
    course = scaled_course(scale)
    cases = sweep_cases(quick=quick, seeds=seeds)
    serial: dict[int, str] = {}
    outcomes: list[KillOutcome] = []
    root = Path(journal_root)
    for i, case in enumerate(cases):
        if case.seed not in serial:
            serial[case.seed] = records_digest(
                CohortSimulation(course, CohortConfig(seed=case.seed)).run()
            )
        journal_dir = root / f"case-{i:03d}"
        outcomes.append(run_case(case, course, serial[case.seed], journal_dir))
    return outcomes
