"""CLI: verify, inspect, and resume crash-safe cohort journals.

Examples
--------
Prove the crash-recovery contract (CI runs the ``--quick`` subset)::

    python -m repro.checkpoint --verify --quick

Health-check an existing journal directory::

    python -m repro.checkpoint --inspect --journal runs/seed42

Resume (or start) a journaled run and print recovery telemetry::

    python -m repro.checkpoint --resume --journal runs/seed42 --workers 4
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

from repro.checkpoint.journal import ShardJournal
from repro.checkpoint.killmatrix import run_kill_matrix
from repro.checkpoint.manifest import RunManifest
from repro.core.cohort import CohortConfig
from repro.core.course import COURSE, scaled_course
from repro.core.report import records_digest
from repro.parallel.engine import run_parallel_supervised


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.checkpoint",
        description="Crash-safe shard journals: kill-matrix verification, "
        "journal inspection, resumable runs.",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--verify", action="store_true",
        help="run the crash-injection kill matrix and require every resumed "
        "digest to equal the uninterrupted serial run (exit 1 otherwise)",
    )
    mode.add_argument(
        "--inspect", action="store_true",
        help="report journal health (segment integrity, manifest) without modifying it",
    )
    mode.add_argument(
        "--resume", action="store_true",
        help="resume (or start) a journaled run against --journal and report telemetry",
    )
    parser.add_argument(
        "--journal", metavar="DIR", default=None,
        help="journal directory (required for --inspect / --resume)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="--verify: CI smoke subset of the kill matrix"
    )
    parser.add_argument("--seed", type=int, default=42, help="cohort seed (default 42)")
    parser.add_argument(
        "--scale", type=float, default=0.25,
        help="cohort scale factor for --verify/--resume (default 0.25)",
    )
    parser.add_argument("--workers", type=int, default=2, help="--resume: worker processes")
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the report as JSON to PATH ('-' for stdout)",
    )
    return parser


def _emit(report: dict[str, object], json_target: str | None) -> None:
    if json_target == "-":
        json.dump(report, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return
    for key, value in report.items():
        if isinstance(value, list):
            print(f"{key}:")
            for item in value:
                print(f"    {item}")
        else:
            print(f"{key:>22}: {value}")
    if json_target:
        with open(json_target, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"{'json':>22}: {json_target}")


def _verify(args: argparse.Namespace) -> int:
    with tempfile.TemporaryDirectory(prefix="repro-killmatrix-") as root:
        outcomes = run_kill_matrix(root, quick=args.quick, scale=args.scale)
    failures = [o for o in outcomes if not o.ok]
    report: dict[str, object] = {
        "cases": len(outcomes),
        "digest_matches": sum(o.digest_ok for o in outcomes),
        "crashes_fired": sum(o.crashed for o in outcomes),
        "shards_resumed": sum(o.shards_resumed for o in outcomes),
        "shards_retried": sum(o.shards_retried for o in outcomes),
        "segments_quarantined": sum(o.segments_quarantined for o in outcomes),
        "failures": [o.case.label for o in failures],
        "rows": [
            {
                "case": o.case.label,
                "digest_ok": o.digest_ok,
                "crashed": o.crashed,
                "shards_resumed": o.shards_resumed,
                "shards_retried": o.shards_retried,
                "worker_crashes": o.worker_crashes,
                "segments_quarantined": o.segments_quarantined,
            }
            for o in outcomes
        ],
    }
    _emit(report, args.json)
    if failures:
        print(
            f"KILL MATRIX FAILED: {len(failures)}/{len(outcomes)} cases did not "
            f"recover to the serial digest",
            file=sys.stderr,
        )
        return 1
    print(f"kill matrix ok: {len(outcomes)} cases recovered to the serial digest")
    return 0


def _inspect(args: argparse.Namespace) -> int:
    journal = ShardJournal(args.journal)
    report = journal.health()
    manifest = RunManifest.load(args.journal)
    report["manifest"] = None if manifest is None else {
        "seed": manifest.seed,
        "cohort_size": manifest.cohort_size,
        "shard_count": manifest.shard_count,
        "include_project": manifest.include_project,
        "course_digest": manifest.course_digest[:16],
        "fault_digest": manifest.fault_digest[:16],
        "plan_digest": manifest.plan_digest[:16],
    }
    _emit(report, args.json)
    return 1 if report["segments_damaged"] else 0


def _resume(args: argparse.Namespace) -> int:
    course = COURSE if args.scale == 1.0 else scaled_course(args.scale)
    config = CohortConfig(seed=args.seed)
    records, run = run_parallel_supervised(
        course, config, workers=args.workers, journal_dir=args.journal
    )
    report: dict[str, object] = {
        "journal": args.journal,
        "seed": args.seed,
        "workers": args.workers,
        "records": len(records),
        "digest": records_digest(records),
    }
    report.update({k: int(v) for k, v in run.telemetry.as_dict().items()})
    _emit(report, args.json)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if (args.inspect or args.resume) and not args.journal:
        print("--inspect/--resume require --journal DIR", file=sys.stderr)
        return 2
    if args.verify:
        return _verify(args)
    if args.inspect:
        return _inspect(args)
    return _resume(args)


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # stdout closed early (e.g. piped into `head`): not an error here,
        # but Python would print a traceback during interpreter shutdown
        # unless the dangling descriptor is replaced before it is flushed.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        raise SystemExit(1)
