"""Crash-safe journaling and resumable cohort runs.

At production scale a cohort run is minutes of multi-process work, and
before PR 5 a single worker crash discarded all of it: ``run_parallel``
kept every :class:`~repro.parallel.engine.ShardResult` in memory and a
``BrokenProcessPool`` surfaced as an opaque loss of the whole run.  This
package is the crash-consistency layer of the simulator harness itself:

* :mod:`repro.checkpoint.journal` — a write-ahead shard journal of
  append-only segments, each published via temp-file + ``os.replace``
  and framed with a length header and content sha256, so torn writes and
  bit flips are *quarantined* with a diagnostic instead of silently
  loaded.
* :mod:`repro.checkpoint.manifest` — a :class:`RunManifest` keyed by
  (course digest, seed, cohort size, fault-plan digest) plus the
  resolved plan's fingerprint, so a stale journal can never be resumed
  against changed inputs.
* :mod:`repro.checkpoint.killmatrix` — the crash-injection harness that
  proves the headline property: ``run_parallel(..., journal_dir=...)``
  crashed at *any* point (worker SIGKILL at a shard boundary, driver
  death between segments, mid-segment truncation) and resumed merges to
  a record stream sha256-identical to an uninterrupted serial run.

The supervisor loop that writes the journal lives in
:mod:`repro.parallel.engine` (the one sanctioned process fan-out site);
this package holds the persistence layer and the proof harness.
``python -m repro.checkpoint`` exposes ``--verify`` (kill-matrix digest
check), ``--resume``, and ``--inspect`` (journal health report).
"""

from repro.checkpoint.journal import (
    JournalLoad,
    QuarantinedSegment,
    SegmentRecord,
    ShardJournal,
    atomic_write_bytes,
)
from repro.checkpoint.manifest import (
    RunManifest,
    StaleJournalError,
    course_fingerprint,
    fault_model_digest,
    plan_fingerprint,
)

__all__ = [
    "ShardJournal",
    "JournalLoad",
    "SegmentRecord",
    "QuarantinedSegment",
    "atomic_write_bytes",
    "RunManifest",
    "StaleJournalError",
    "course_fingerprint",
    "fault_model_digest",
    "plan_fingerprint",
]
