"""The write-ahead shard journal: crash-safe, self-verifying segments.

One journal = one directory of append-only segment files.  Each segment
holds the pickled payload of one arrival (a batch of
:class:`~repro.parallel.engine.ShardResult`\\ s), framed so that *any*
on-disk damage is detected at load time instead of silently becoming
wrong simulation output:

``RJRNL1\\n`` magic · 4-byte big-endian header length · JSON header
(``segment`` index, covered ``shards``, ``payload_len``,
``payload_sha256``) · payload bytes.

Two invariants make the journal crash-consistent:

* **Atomic visibility.**  A segment is written to a dot-prefixed temp
  file in the same directory, then published with ``os.replace`` (plus
  file and directory fsyncs when the journal is opened ``durable=True``,
  extending the guarantee from process death to power loss).  A crash at
  any instant leaves either no segment or a complete one — never a
  half-written file under the real name.  This temp-file + ``os.replace``
  discipline is what the analysis rule RES003 enforces on every *other*
  persistence writer in the repo.
* **Verified load.**  A segment whose magic, header, byte count, or
  payload sha256 does not check out — a torn write from a filesystem
  that lied about durability, a bit flip, a truncation — is *quarantined*
  (renamed with a ``.quarantined`` suffix, with the reason recorded),
  never loaded.  The supervisor simply re-executes the shards the bad
  segment claimed to cover, so corruption costs recomputation, not
  correctness.

The journal knows nothing about shard semantics: payloads are opaque
pickled objects, shard ids are header metadata.  Journals are local,
trusted state (same trust domain as the process writing them); they are
keyed to their inputs by :class:`repro.checkpoint.manifest.RunManifest`.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.common.errors import ValidationError

MAGIC = b"RJRNL1\n"
_HEADER_LEN_BYTES = 4
_SEGMENT_SUFFIX = ".seg"
_QUARANTINE_SUFFIX = ".quarantined"
#: Pinned so journals written by one interpreter load under another.
_PICKLE_PROTOCOL = 5


@dataclass(frozen=True)
class SegmentRecord:
    """One verified segment's metadata (the frame header, trusted after load)."""

    index: int
    path: str
    shard_ids: tuple[str, ...]
    payload_len: int


@dataclass(frozen=True)
class QuarantinedSegment:
    """One segment that failed verification and was set aside."""

    path: str
    reason: str


@dataclass(frozen=True)
class JournalLoad:
    """Everything a load pass found: good entries and quarantined files."""

    entries: tuple[tuple[SegmentRecord, object], ...]
    quarantined: tuple[QuarantinedSegment, ...]

    @property
    def shard_ids(self) -> tuple[str, ...]:
        out: list[str] = []
        for record, _ in self.entries:
            out.extend(record.shard_ids)
        return tuple(out)


def _frame(index: int, shard_ids: Sequence[str], payload: bytes) -> bytes:
    header = json.dumps(
        {
            "segment": index,
            "shards": list(shard_ids),
            "payload_len": len(payload),
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
        },
        sort_keys=True,
    ).encode()
    return b"".join(
        [MAGIC, len(header).to_bytes(_HEADER_LEN_BYTES, "big"), header, payload]
    )


def fsync_dir(path: Path) -> None:
    """Flush directory metadata so a just-replaced name survives power loss."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return  # platform without directory fds: best effort
    try:
        os.fsync(fd)
    except OSError:
        pass  # e.g. directories not fsyncable on this filesystem
    finally:
        os.close(fd)


def atomic_write_bytes(path: Path, data: bytes, *, durable: bool = True) -> None:
    """Temp-file + ``os.replace``: the one sanctioned publish path.

    ``os.replace`` alone is atomic against *process* death (the kernel's
    page cache survives a SIGKILL), which is the journal's crash model;
    ``durable=True`` adds fsyncs of the file and its directory so the
    publish also survives *power loss*.  Either way a reader can never
    observe a half-written file under the real name.
    """
    tmp = path.parent / f".{path.name}.tmp"
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        if durable:
            os.fsync(fh.fileno())
    os.replace(tmp, path)
    if durable:
        fsync_dir(path.parent)


class ShardJournal:
    """Append-only journal of verified segments under one directory.

    ``durable=False`` (the default) publishes segments with atomic
    ``os.replace`` but no fsync: safe against every process-death crash
    the kill matrix injects (and against torn writes, via the frame
    checks), and cheap enough to stay inside the engine's <=5% journaling
    overhead budget.  ``durable=True`` adds per-segment fsyncs for
    power-loss durability; a segment lost to an un-fsynced power cut
    costs re-execution of its shards, never a wrong merge.
    """

    def __init__(self, root: str | os.PathLike[str], *, durable: bool = False) -> None:
        self.root = Path(root)
        self.durable = durable
        self.root.mkdir(parents=True, exist_ok=True)
        self._next_index = self._scan_next_index()

    # -- naming ------------------------------------------------------------

    @staticmethod
    def _segment_name(index: int) -> str:
        return f"segment-{index:06d}{_SEGMENT_SUFFIX}"

    def _scan_next_index(self) -> int:
        highest = -1
        for path in self.root.iterdir():
            name = path.name
            if name.endswith(_QUARANTINE_SUFFIX):
                name = name[: -len(_QUARANTINE_SUFFIX)]
            if not (name.startswith("segment-") and name.endswith(_SEGMENT_SUFFIX)):
                continue
            digits = name[len("segment-") : -len(_SEGMENT_SUFFIX)]
            if digits.isdigit():
                highest = max(highest, int(digits))
        return highest + 1

    def segment_paths(self) -> list[Path]:
        return sorted(
            p
            for p in self.root.iterdir()
            if p.name.startswith("segment-") and p.name.endswith(_SEGMENT_SUFFIX)
        )

    def quarantined_paths(self) -> list[Path]:
        return sorted(p for p in self.root.iterdir() if p.name.endswith(_QUARANTINE_SUFFIX))

    # -- writing -----------------------------------------------------------

    def append(self, shard_ids: Iterable[str], payload_obj: object) -> SegmentRecord:
        """Durably publish one segment covering ``shard_ids``."""
        ids = tuple(shard_ids)
        if not ids:
            raise ValidationError("a journal segment must cover at least one shard")
        index = self._next_index
        payload = pickle.dumps(payload_obj, protocol=_PICKLE_PROTOCOL)
        path = self.root / self._segment_name(index)
        atomic_write_bytes(path, _frame(index, ids, payload), durable=self.durable)
        self._next_index = index + 1
        return SegmentRecord(
            index=index, path=str(path), shard_ids=ids, payload_len=len(payload)
        )

    # -- verified load -----------------------------------------------------

    @staticmethod
    def _verify_frame(data: bytes) -> tuple[dict[str, object], bytes]:
        """Parse one frame or raise ``ValidationError`` describing the damage."""
        if len(data) < len(MAGIC) + _HEADER_LEN_BYTES:
            raise ValidationError(f"segment shorter than the frame preamble ({len(data)} bytes)")
        if data[: len(MAGIC)] != MAGIC:
            raise ValidationError("bad magic: not a journal segment (or preamble corrupted)")
        offset = len(MAGIC)
        header_len = int.from_bytes(data[offset : offset + _HEADER_LEN_BYTES], "big")
        offset += _HEADER_LEN_BYTES
        if len(data) < offset + header_len:
            raise ValidationError(
                f"truncated inside the header: need {header_len} header bytes, "
                f"have {len(data) - offset}"
            )
        try:
            header = json.loads(data[offset : offset + header_len].decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValidationError(f"header is not valid JSON: {exc}") from None
        payload = data[offset + header_len :]
        declared = header.get("payload_len")
        if declared != len(payload):
            raise ValidationError(
                f"payload length mismatch: header declares {declared}, found {len(payload)}"
            )
        digest = hashlib.sha256(payload).hexdigest()
        if digest != header.get("payload_sha256"):
            raise ValidationError(
                f"payload sha256 mismatch: header declares "
                f"{header.get('payload_sha256')}, content hashes to {digest}"
            )
        return header, payload

    def _quarantine(self, path: Path, reason: str) -> QuarantinedSegment:
        target = path.parent / (path.name + _QUARANTINE_SUFFIX)
        os.replace(path, target)
        fsync_dir(path.parent)
        return QuarantinedSegment(path=str(target), reason=reason)

    def load(self) -> JournalLoad:
        """Load every verifiable segment; quarantine everything else."""
        entries: list[tuple[SegmentRecord, object]] = []
        quarantined: list[QuarantinedSegment] = []
        for path in self.segment_paths():
            data = path.read_bytes()
            try:
                header, payload = self._verify_frame(data)
                payload_obj = pickle.loads(payload)
            except ValidationError as exc:
                quarantined.append(self._quarantine(path, str(exc)))
                continue
            except Exception as exc:  # unpicklable payload despite a good sha
                quarantined.append(self._quarantine(path, f"payload unpickle failed: {exc!r}"))
                continue
            entries.append(
                (
                    SegmentRecord(
                        index=int(header["segment"]),  # type: ignore[arg-type]
                        path=str(path),
                        shard_ids=tuple(header["shards"]),  # type: ignore[arg-type]
                        payload_len=len(payload),
                    ),
                    payload_obj,
                )
            )
        # a quarantine pass may have freed low indices; never reuse them
        self._next_index = max(self._next_index, self._scan_next_index())
        return JournalLoad(entries=tuple(entries), quarantined=tuple(quarantined))

    # -- health ------------------------------------------------------------

    def health(self) -> dict[str, object]:
        """Non-destructive journal health report (verifies without quarantining)."""
        segments: list[dict[str, object]] = []
        damaged: list[dict[str, object]] = []
        shard_ids: list[str] = []
        total_bytes = 0
        for path in self.segment_paths():
            data = path.read_bytes()
            total_bytes += len(data)
            try:
                header, payload = self._verify_frame(data)
            except ValidationError as exc:
                damaged.append({"path": str(path), "reason": str(exc)})
                continue
            shard_ids.extend(header["shards"])  # type: ignore[arg-type]
            segments.append(
                {
                    "path": str(path),
                    "segment": header["segment"],
                    "shards": len(header["shards"]),  # type: ignore[arg-type]
                    "payload_len": len(payload),
                }
            )
        return {
            "root": str(self.root),
            "segments_ok": len(segments),
            "segments_damaged": len(damaged),
            "segments_quarantined": len(self.quarantined_paths()),
            "shards_covered": len(set(shard_ids)),
            "bytes": total_bytes,
            "segments": segments,
            "damaged": damaged,
            "quarantined": [str(p) for p in self.quarantined_paths()],
        }
