"""Budget guardrails over the usage-record stream.

The paper's Fig 2 long tail — students whose incurred cost is many times
the median, "in most cases due to compute instances that were left
running for days or weeks" — is an *operational* failure, so the fix is
operational too: meter continuously, warn at a threshold, stop at the
budget, and reap forgotten VMs.  :class:`BudgetGuard` implements exactly
that loop against a site's :class:`~repro.cloud.metering.UsageMeter` and
:class:`~repro.cloud.compute.ComputeService`, pricing usage with the same
commercial rates as the §5 analysis so "budget" means real dollars.

The guard is a pure consumer: it reads records (open spans included, so
a still-running VM counts at its current accrual) and acts only through
the public compute API.  Attached to the cohort simulation it compresses
the Fig-2 max/mean ratio; never started, it schedules no events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cloud.compute import ComputeService
from repro.cloud.metering import UsageMeter, UsageRecord
from repro.common.errors import ValidationError
from repro.common.events import EventLoop
from repro.core.costmodel import CostModel

RateFn = Callable[[UsageRecord], float]


def commercial_rate_fn(model: CostModel | None = None, provider: str = "aws") -> RateFn:
    """$/unit-hour for a usage record, priced like the §5 analysis.

    Lab instance records use the lab's cheapest matched instance rate,
    project records the per-resource-type project match; edge records
    (no commercial equivalent) and unknown types price at zero, like the
    paper's "NA" rows.
    """
    model = model if model is not None else CostModel()
    catalog = model.catalogs[provider] if provider in model.catalogs else None
    if catalog is None:
        raise ValidationError(f"unknown provider {provider!r}")
    cache: dict[tuple[str | None, str], float] = {}

    def rate(rec: UsageRecord) -> float:
        if rec.kind == "floating_ip":
            return catalog.ip_hourly_usd
        if rec.kind == "volume":
            return catalog.block_gb_month_usd / 730.0
        if rec.kind == "object_storage":
            return catalog.object_gb_month_usd / 730.0
        if rec.kind not in ("server", "baremetal", "edge"):
            return 0.0
        key = (rec.lab, rec.resource_type)
        if key not in cache:
            inst = None
            try:
                if rec.lab == "project" or rec.lab is None:
                    inst = model.project_equivalent(rec.resource_type, provider)
                else:
                    inst = model.lab_equivalent(rec.lab, provider)
            except ValidationError:
                inst = None  # no spec for this type -> not commercially priced
            cache[key] = 0.0 if inst is None else inst.hourly_usd
        return cache[key]

    return rate


@dataclass(frozen=True)
class BudgetPolicy:
    """What the guard enforces.

    Attributes
    ----------
    budget_usd: Hard ceiling per scope key (project or user).
    warn_fraction: Fraction of budget at which a warning is emitted.
    check_every_hours: Monitoring cadence.
    scope: ``"project"`` (one budget per project) or ``"user"``.
    stop: Terminate the scope's servers once the budget is exhausted.
    max_vm_age_hours: Auto-terminate any VM running longer than this
        (the forgotten-instance reaper); ``None`` disables it.
    """

    budget_usd: float
    warn_fraction: float = 0.8
    check_every_hours: float = 6.0
    scope: str = "project"
    stop: bool = True
    max_vm_age_hours: float | None = None

    def __post_init__(self) -> None:
        if self.budget_usd <= 0:
            raise ValidationError(f"budget must be positive: {self!r}")
        if not (0 < self.warn_fraction <= 1):
            raise ValidationError(f"warn_fraction must be in (0, 1]: {self!r}")
        if self.check_every_hours <= 0:
            raise ValidationError(f"check cadence must be positive: {self!r}")
        if self.scope not in ("project", "user"):
            raise ValidationError(f"scope must be 'project' or 'user': {self!r}")
        if self.max_vm_age_hours is not None and self.max_vm_age_hours <= 0:
            raise ValidationError(f"max_vm_age_hours must be positive: {self!r}")


@dataclass(frozen=True)
class GuardrailEvent:
    """One guard action: a warning, a budget stop, or an age reap."""

    time: float
    action: str  # "warn" | "stop" | "reap"
    scope_key: str
    spent_usd: float
    budget_usd: float
    detail: str = ""


@dataclass
class _ScopeState:
    warned: bool = False
    stopped: bool = False


class BudgetGuard:
    """Periodic budget monitor over one or more sites.

    Prices every usage record with ``rate_fn`` (defaults to AWS §5
    rates), aggregates by the policy scope, and acts: one warning as
    spend crosses ``warn_fraction * budget``, then — if ``policy.stop``
    — terminates the scope's servers every check while it remains over
    budget (repeatedly, because nothing stops a student from booting a
    new VM after the stop).  Independently reaps VMs older than
    ``max_vm_age_hours``.

    A scope's budget is testbed-wide: :meth:`watch` adds further
    ``(compute, meter)`` pairs whose spend aggregates into the same
    per-scope totals, so a student's KVM VMs and bare-metal leases
    draw down one budget.  The Fig-2 tail is dominated by the GPU
    bare-metal labs, so a guard watching only the KVM site barely
    moves the max/mean ratio.
    """

    def __init__(
        self,
        loop: EventLoop,
        compute: ComputeService,
        meter: UsageMeter,
        policy: BudgetPolicy,
        *,
        rate_fn: RateFn | None = None,
    ) -> None:
        self._loop = loop
        self._targets: list[tuple[ComputeService, UsageMeter]] = [(compute, meter)]
        self.policy = policy
        self.rate_fn = rate_fn if rate_fn is not None else commercial_rate_fn()
        self.events: list[GuardrailEvent] = []
        self._states: dict[str, _ScopeState] = {}
        self._active = False
        self._until: float | None = None

    def watch(self, compute: ComputeService, meter: UsageMeter) -> "BudgetGuard":
        """Add another site's spend to the same per-scope budgets."""
        if any(compute is c for c, _ in self._targets):
            raise ValidationError("compute service already watched by this guard")
        self._targets.append((compute, meter))
        return self

    def start(self, *, until: float | None = None) -> None:
        """Begin monitoring; checks run every ``check_every_hours``."""
        if self._active:
            return
        self._active = True
        self._until = until
        self._schedule_next()

    def stop(self) -> None:
        """Stop monitoring (pending check events become no-ops)."""
        self._active = False

    # -- queries -----------------------------------------------------------

    def spend(self) -> dict[str, float]:
        """Current $ spend per scope key across all watched meters
        (open spans included)."""
        out: dict[str, float] = {}
        for _, meter in self._targets:
            for rec in meter.records(include_open=True):
                key = self._scope_key(rec.project, rec.user)
                if key is None:
                    continue
                out[key] = out.get(key, 0.0) + self.rate_fn(rec) * rec.unit_hours
        return out

    def warned_keys(self) -> list[str]:
        return sorted(k for k, s in self._states.items() if s.warned)

    def stopped_keys(self) -> list[str]:
        return sorted(k for k, s in self._states.items() if s.stopped)

    # -- internals ---------------------------------------------------------

    def _scope_key(self, project: str, user: str | None) -> str | None:
        if self.policy.scope == "project":
            return project
        return user  # user scope: unattributed usage is nobody's budget

    def _schedule_next(self) -> None:
        next_at = self._loop.clock.now + self.policy.check_every_hours
        if self._until is not None and next_at > self._until:
            self._active = False
            return
        self._loop.schedule(next_at, self._check, priority=20, label="budget:check")

    def _check(self) -> None:
        if not self._active:
            return
        now = self._loop.clock.now
        spend = self.spend()
        policy = self.policy
        for key, spent in sorted(spend.items()):
            state = self._states.setdefault(key, _ScopeState())
            if not state.warned and spent >= policy.warn_fraction * policy.budget_usd:
                state.warned = True
                self.events.append(GuardrailEvent(
                    time=now, action="warn", scope_key=key,
                    spent_usd=spent, budget_usd=policy.budget_usd,
                    detail=f"spend crossed {policy.warn_fraction:.0%} of budget",
                ))
            if policy.stop and spent >= policy.budget_usd:
                killed = self._kill_scope(key)
                if killed or not state.stopped:
                    state.stopped = True
                    self.events.append(GuardrailEvent(
                        time=now, action="stop", scope_key=key,
                        spent_usd=spent, budget_usd=policy.budget_usd,
                        detail=f"terminated {killed} servers",
                    ))
        if policy.max_vm_age_hours is not None:
            self._reap(now, policy.max_vm_age_hours)
        self._schedule_next()

    def _kill_scope(self, key: str) -> int:
        killed = 0
        for compute, _ in self._targets:
            for server in list(compute.servers.values()):
                if self._scope_key(server.project, server.user) == key:
                    compute.delete_server(server.id)
                    killed += 1
        return killed

    def _reap(self, now: float, max_age: float) -> None:
        for compute, _ in self._targets:
            for server in list(compute.servers.values()):
                age = now - server.created_at
                if age > max_age:
                    compute.delete_server(server.id)
                    key = self._scope_key(server.project, server.user) or server.project
                    self.events.append(GuardrailEvent(
                        time=now, action="reap", scope_key=key,
                        spent_usd=0.0, budget_usd=self.policy.budget_usd,
                        detail=f"reaped {server.name} after {age:.1f} h",
                    ))
