"""repro.spot — preemptible-capacity market, budget guardrails, advice.

The §5 cost levers the paper stops at (advance reservation, auto-
termination) extended with the standard industry one: transient
capacity.  Four pieces:

* :mod:`~repro.spot.market` — seeded spot price process + capacity reclaim
* :mod:`~repro.spot.instances` — interruptible fleets and a preemptible
  cluster scheduler
* :mod:`~repro.spot.guardrails` — budget monitor attacking the Fig-2 tail
* :mod:`~repro.spot.advisor` — Young/Daly checkpoint + cost advice

Nothing here runs unless explicitly attached: the default reproduction
pipeline is bit-identical with the package unused.
"""

from repro.spot.advisor import (
    PreemptibleTrainingReport,
    SpotAdvice,
    SpotAdvisor,
    expected_completion_hours,
    expected_time_inflation,
    simulate_preemptible_training,
    young_daly_interval,
)
from repro.spot.guardrails import (
    BudgetGuard,
    BudgetPolicy,
    GuardrailEvent,
    commercial_rate_fn,
)
from repro.spot.instances import (
    PreemptibleScheduler,
    SpotFleet,
    SpotScheduleResult,
)
from repro.spot.market import (
    PreemptionNotice,
    SpotMarket,
    SpotTypeSpec,
    simulated_price_path,
)

__all__ = [
    "BudgetGuard",
    "BudgetPolicy",
    "GuardrailEvent",
    "PreemptibleScheduler",
    "PreemptibleTrainingReport",
    "PreemptionNotice",
    "SpotAdvice",
    "SpotAdvisor",
    "SpotFleet",
    "SpotMarket",
    "SpotScheduleResult",
    "SpotTypeSpec",
    "commercial_rate_fn",
    "expected_completion_hours",
    "expected_time_inflation",
    "simulate_preemptible_training",
    "simulated_price_path",
    "young_daly_interval",
]
