"""A preemptible-capacity ("spot") market for the testbed.

The paper's §5 cost levers stop at advance reservation and
auto-termination; the standard industry lever it leaves on the table is
transient capacity — instances sold at a deep discount that the provider
may reclaim on short notice (Scavenger, PAPERS.md).  This module models
that market mechanistically, in the spirit of MLSYSIM's first-principles
infrastructure modelling:

* **Price process** — per instance type, the spot price (as a fraction of
  the on-demand rate) follows a seeded mean-reverting log random walk with
  occasional demand spikes.  Mean reversion keeps the long-run discount at
  the calibrated level while spikes create the correlated reclaim bursts
  real spot users see.
* **Capacity reclaim** — every interruptible instance faces a preemption
  hazard that rises with the current price (price is the market's capacity
  signal: scarce capacity → higher price → more reclaims).  Reclaims are
  delivered through the shared discrete-event loop as preemption notices
  on :class:`~repro.cloud.compute.ComputeService`, so the usual metering /
  quota lifecycle applies.

Everything is seeded and driven by the simulation clock; a market that is
never attached (or never tracks an instance) schedules no events, so the
default reproduction pipeline is bit-identical with or without it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.compute import ComputeService, Server
from repro.common.errors import InvalidStateError, ValidationError
from repro.common.events import EventLoop


@dataclass(frozen=True)
class SpotTypeSpec:
    """Market parameters for one instance type.

    Attributes
    ----------
    mean_discount: Long-run spot price as a fraction of on-demand.
    volatility: Per-tick shock sigma of the log price.
    reversion: Mean-reversion pull per tick (0 = random walk, 1 = snap).
    spike_prob: Per-tick probability of a demand spike.
    spike_mult: Multiplicative price jump of a spike.
    preempt_rate_per_hour: Preemption hazard when price sits at the mean.
    price_elasticity: Hazard exponent in (price / mean_discount).
    """

    mean_discount: float = 0.32
    volatility: float = 0.12
    reversion: float = 0.2
    spike_prob: float = 0.015
    spike_mult: float = 2.2
    preempt_rate_per_hour: float = 0.05
    price_elasticity: float = 2.0

    def __post_init__(self) -> None:
        if not (0 < self.mean_discount <= 1):
            raise ValidationError(f"mean_discount must be in (0, 1]: {self!r}")
        if self.volatility < 0 or not (0 <= self.reversion <= 1):
            raise ValidationError(f"invalid price dynamics: {self!r}")
        if not (0 <= self.spike_prob <= 1) or self.spike_mult < 1:
            raise ValidationError(f"invalid spike model: {self!r}")
        if self.preempt_rate_per_hour < 0 or self.price_elasticity < 0:
            raise ValidationError(f"invalid hazard model: {self!r}")


@dataclass(frozen=True)
class PreemptionNotice:
    """The market's record of one capacity reclaim."""

    server_id: str
    resource_type: str
    time: float
    price: float  # fraction of on-demand at reclaim time


def _step_price(spec: SpotTypeSpec, price: float, rng: np.random.Generator,
                floor: float, cap: float) -> float:
    """One tick of the mean-reverting-with-spikes log price process."""
    x = np.log(price)
    mu = np.log(spec.mean_discount)
    x += spec.reversion * (mu - x) + spec.volatility * float(rng.normal())
    if float(rng.random()) < spec.spike_prob:
        x += np.log(spec.spike_mult)
    return float(np.clip(np.exp(x), floor, cap))


def simulated_price_path(
    spec: SpotTypeSpec,
    hours: float,
    *,
    seed: int = 0,
    tick_hours: float = 1.0,
    price_floor: float = 0.05,
    price_cap: float = 1.0,
) -> np.ndarray:
    """A standalone seeded price path (fractions of on-demand), one entry
    per tick — used by the advisor and benches to study the process
    without driving an event loop."""
    if hours <= 0 or tick_hours <= 0:
        raise ValidationError("path needs positive hours and tick")
    rng = np.random.default_rng(seed)
    n = max(1, int(round(hours / tick_hours)))
    out = np.empty(n)
    price = spec.mean_discount
    for i in range(n):
        price = _step_price(spec, price, rng, price_floor, price_cap)
        out[i] = price
    return out


class SpotMarket:
    """The per-site spot market: price paths plus capacity reclaim.

    Attach to a site's compute service with :meth:`attach`; every VM
    created with ``interruptible=True`` is then tracked and subject to
    preemption.  The market only schedules events while it tracks at
    least one instance, so an attached-but-unused market leaves the
    simulation's event sequence untouched.
    """

    def __init__(
        self,
        loop: EventLoop,
        *,
        seed: int = 0,
        specs: dict[str, SpotTypeSpec] | None = None,
        default_spec: SpotTypeSpec | None = None,
        tick_hours: float = 1.0,
        price_floor: float = 0.05,
        price_cap: float = 1.0,
    ) -> None:
        if tick_hours <= 0:
            raise ValidationError(f"tick_hours must be positive: {tick_hours!r}")
        if not (0 < price_floor < price_cap):
            raise ValidationError("need 0 < price_floor < price_cap")
        self._loop = loop
        self._rng = np.random.default_rng(seed)
        self._specs = dict(specs or {})
        self._default = default_spec if default_spec is not None else SpotTypeSpec()
        self.tick_hours = tick_hours
        self.price_floor = price_floor
        self.price_cap = price_cap
        self._prices: dict[str, float] = {}
        self._history: dict[str, list[tuple[float, float]]] = {}
        self._tracked: dict[str, str] = {}  # server_id -> resource_type
        self._compute: ComputeService | None = None
        self._ticking = False
        self.notices: list[PreemptionNotice] = []

    # -- wiring ------------------------------------------------------------

    def attach(self, compute: ComputeService) -> None:
        """Bind to a compute service; interruptible VMs are auto-tracked."""
        if self._compute is not None:
            raise InvalidStateError("market already attached to a compute service")
        self._compute = compute
        compute.on_interruptible_create(self.track)

    def track(self, server: Server) -> None:
        """Start tracking an interruptible server for reclaim."""
        if not server.interruptible:
            raise InvalidStateError(f"server {server.id} is not interruptible")
        self._tracked[server.id] = server.resource_type
        self._ensure_price(server.resource_type)
        if not self._ticking:
            self._ticking = True
            self._loop.schedule_in(self.tick_hours, self._tick, label="spot:tick")

    # -- queries -----------------------------------------------------------

    def spec(self, resource_type: str) -> SpotTypeSpec:
        return self._specs.get(resource_type, self._default)

    def price(self, resource_type: str) -> float:
        """Current spot price as a fraction of the on-demand rate."""
        self._ensure_price(resource_type)
        return self._prices[resource_type]

    def price_history(self, resource_type: str) -> list[tuple[float, float]]:
        """(time, price) samples recorded at each market tick."""
        return list(self._history.get(resource_type, []))

    def expected_discount(self, resource_type: str) -> float:
        """The long-run fraction-of-on-demand for this type."""
        return self.spec(resource_type).mean_discount

    @property
    def tracked_count(self) -> int:
        return len(self._tracked)

    # -- internals ---------------------------------------------------------

    def _ensure_price(self, resource_type: str) -> None:
        if resource_type not in self._prices:
            self._prices[resource_type] = self.spec(resource_type).mean_discount
            self._history[resource_type] = [
                (self._loop.clock.now, self._prices[resource_type])
            ]

    def _tick(self) -> None:
        now = self._loop.clock.now
        for rtype in self._prices:
            self._prices[rtype] = _step_price(
                self.spec(rtype), self._prices[rtype], self._rng,
                self.price_floor, self.price_cap,
            )
            self._history[rtype].append((now, self._prices[rtype]))
        compute = self._compute
        for sid, rtype in list(self._tracked.items()):
            if compute is None or sid not in compute.servers:
                del self._tracked[sid]  # terminated through another path
                continue
            spec = self.spec(rtype)
            price = self._prices[rtype]
            hazard = spec.preempt_rate_per_hour * (
                (price / spec.mean_discount) ** spec.price_elasticity
            )
            p_reclaim = 1.0 - float(np.exp(-hazard * self.tick_hours))
            if float(self._rng.random()) < p_reclaim:
                del self._tracked[sid]
                self.notices.append(
                    PreemptionNotice(server_id=sid, resource_type=rtype, time=now, price=price)
                )
                compute.preempt_server(sid)
        if self._tracked:
            self._loop.schedule_in(self.tick_hours, self._tick, label="spot:tick")
        else:
            self._ticking = False  # go quiet; next track() restarts the clock
