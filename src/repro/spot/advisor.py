"""Checkpoint-aware cost / completion-time advice for preemptible capacity.

Whether spot capacity is worth its discount depends on how much work each
preemption destroys, which is a checkpointing question.  This module
answers it two ways:

* **Analytically** — the classic Young/Daly model: with preemptions
  arriving at rate λ and work checkpointed every τ hours (overhead C per
  checkpoint, restart R), the expected wall-clock for a segment is
  ``(1/λ + R)(e^{λ(τ+C)} − 1)`` and the optimum interval is
  ``τ* = sqrt(2C/λ)``.  The ratio of expected wall-clock to useful work is
  the *time inflation* the cost model multiplies into spot what-ifs.
* **Empirically** — :func:`simulate_preemptible_training` drives the Unit-5
  :class:`~repro.training.trainer.TrainingSimulator` through seeded
  preemption draws, resuming from its last checkpoint each time exactly as
  ``run_with_recovery`` does for a single fault.  The measured re-work
  converges on the analytic model, which is the advisor's validation story.

:class:`SpotAdvisor` packages both into a recommendation: the checkpoint
interval to use, the expected completion time, and whether the discount
survives the re-work for a given workload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ValidationError
from repro.spot.market import SpotMarket, SpotTypeSpec
from repro.training.trainer import TrainingSimulator

#: Default checkpoint write overhead (30 simulated seconds).
DEFAULT_CHECKPOINT_OVERHEAD_HOURS = 30.0 / 3600.0
#: Default restart overhead (3 simulated minutes: reschedule + reload).
DEFAULT_RESTART_OVERHEAD_HOURS = 3.0 / 60.0


def young_daly_interval(
    checkpoint_overhead_hours: float, preempt_rate_per_hour: float
) -> float:
    """The Young/Daly optimum τ* = sqrt(2C/λ) (inf when λ = 0)."""
    if checkpoint_overhead_hours <= 0:
        raise ValidationError("checkpoint overhead must be positive")
    if preempt_rate_per_hour < 0:
        raise ValidationError("preemption rate cannot be negative")
    if preempt_rate_per_hour == 0:
        return math.inf
    return math.sqrt(2.0 * checkpoint_overhead_hours / preempt_rate_per_hour)


def expected_completion_hours(
    work_hours: float,
    *,
    preempt_rate_per_hour: float,
    checkpoint_interval_hours: float,
    checkpoint_overhead_hours: float = DEFAULT_CHECKPOINT_OVERHEAD_HOURS,
    restart_overhead_hours: float = DEFAULT_RESTART_OVERHEAD_HOURS,
) -> float:
    """Expected wall-clock to finish ``work_hours`` of useful work.

    The work is split into segments of ``checkpoint_interval_hours``; each
    segment (plus its checkpoint write) must complete between preemptions.
    With exponential inter-preemption times the expected time to get a
    window of length ``t`` is ``(1/λ + R)(e^{λt} − 1)`` (Daly's first-order
    model); summed over the ``W/τ`` segments.  λ = 0 degenerates to work
    plus checkpoint overheads.
    """
    if work_hours <= 0:
        raise ValidationError("work_hours must be positive")
    if checkpoint_interval_hours <= 0:
        raise ValidationError("checkpoint interval must be positive")
    if checkpoint_overhead_hours < 0 or restart_overhead_hours < 0:
        raise ValidationError("overheads cannot be negative")
    if preempt_rate_per_hour < 0:
        raise ValidationError("preemption rate cannot be negative")
    tau = min(checkpoint_interval_hours, work_hours)
    n_segments = work_hours / tau
    lam = preempt_rate_per_hour
    window = tau + checkpoint_overhead_hours
    if lam == 0:
        return n_segments * window
    per_segment = (1.0 / lam + restart_overhead_hours) * math.expm1(lam * window)
    return n_segments * per_segment


def expected_time_inflation(
    preempt_rate_per_hour: float,
    *,
    checkpoint_interval_hours: float | None = None,
    checkpoint_overhead_hours: float = DEFAULT_CHECKPOINT_OVERHEAD_HOURS,
    restart_overhead_hours: float = DEFAULT_RESTART_OVERHEAD_HOURS,
) -> float:
    """Expected wall-clock per hour of useful work (≥ 1).

    With ``checkpoint_interval_hours=None`` the Young/Daly optimum is
    assumed — the inflation a well-run preemptible workload pays.
    """
    if preempt_rate_per_hour == 0 and checkpoint_interval_hours is None:
        return 1.0
    tau = (
        checkpoint_interval_hours
        if checkpoint_interval_hours is not None
        else young_daly_interval(checkpoint_overhead_hours, preempt_rate_per_hour)
    )
    # inflation is per-hour-of-work, so evaluate at unit work ≥ one segment
    work = max(1.0, tau)
    return expected_completion_hours(
        work,
        preempt_rate_per_hour=preempt_rate_per_hour,
        checkpoint_interval_hours=tau,
        checkpoint_overhead_hours=checkpoint_overhead_hours,
        restart_overhead_hours=restart_overhead_hours,
    ) / work


@dataclass(frozen=True)
class PreemptibleTrainingReport:
    """One simulated preemptible training campaign."""

    target_steps: int
    steps_executed: int
    wasted_steps: int
    n_preemptions: int
    wall_time_s: float
    useful_time_s: float
    completed: bool

    @property
    def time_inflation(self) -> float:
        return self.wall_time_s / self.useful_time_s if self.useful_time_s else math.inf


def simulate_preemptible_training(
    trainer: TrainingSimulator,
    *,
    steps: int,
    lr: float = 3e-4,
    global_batch: int = 8,
    preempt_rate_per_hour: float = 0.05,
    restart_overhead_s: float = DEFAULT_RESTART_OVERHEAD_HOURS * 3600.0,
    seed: int = 0,
    max_attempts: int = 500,
) -> PreemptibleTrainingReport:
    """Train to ``steps`` under seeded exponential preemptions.

    Each attempt runs until a preemption draw (or completion), then
    resumes from the latest checkpoint with ``restart_overhead_s`` added
    to the wall clock — the loop generalisation of
    :meth:`TrainingSimulator.run_with_recovery`.  Work since the last
    checkpoint is re-executed, which is exactly the waste the Young/Daly
    model prices.
    """
    if steps <= 0:
        raise ValidationError("steps must be positive")
    if preempt_rate_per_hour < 0 or restart_overhead_s < 0:
        raise ValidationError("invalid preemption parameters")
    rng = np.random.default_rng(seed)
    step_time_s = (
        trainer.sim.step_time(global_batch).total_s if trainer.sim is not None else 1.0
    )
    resume = None
    executed = 0
    preemptions = 0
    wall = 0.0
    completed = False
    for _attempt in range(max_attempts):
        start = resume.step + 1 if resume is not None else 0
        fail_at: int | None = None
        if preempt_rate_per_hour > 0:
            draw_h = float(rng.exponential(1.0 / preempt_rate_per_hour))
            draw_steps = max(1, int(draw_h * 3600.0 / step_time_s))
            if start + draw_steps < steps:
                fail_at = start + draw_steps
        run = trainer.run(
            steps=steps, lr=lr, global_batch=global_batch,
            fail_at_step=fail_at, resume_from=resume,
        )
        executed += len(run.steps)
        wall += run.wall_time_s
        if run.completed:
            completed = True
            break
        preemptions += 1
        wall += restart_overhead_s
        resume = run.checkpoints[-1] if run.checkpoints else None
    return PreemptibleTrainingReport(
        target_steps=steps,
        steps_executed=executed,
        wasted_steps=max(0, executed - steps),
        n_preemptions=preemptions,
        wall_time_s=wall,
        useful_time_s=steps * step_time_s,
        completed=completed,
    )


@dataclass(frozen=True)
class SpotAdvice:
    """The advisor's verdict for one workload."""

    work_hours: float
    preempt_rate_per_hour: float
    checkpoint_interval_hours: float
    expected_completion_hours: float
    time_inflation: float
    on_demand_cost_usd: float
    spot_cost_usd: float
    savings_usd: float
    use_spot: bool


class SpotAdvisor:
    """Couples the market's hazard model to the checkpoint analytics.

    Given a workload (hours of useful work at an on-demand rate) and the
    market's spec for its instance type, recommends the Young/Daly
    checkpoint interval and decides whether the discounted rate beats
    on-demand once re-work inflation is priced in.
    """

    def __init__(self, market: SpotMarket | None = None) -> None:
        self.market = market

    def spec_for(self, resource_type: str) -> SpotTypeSpec:
        return self.market.spec(resource_type) if self.market is not None else SpotTypeSpec()

    def advise(
        self,
        *,
        work_hours: float,
        on_demand_hourly_usd: float,
        resource_type: str = "",
        spot_fraction: float | None = None,
        preempt_rate_per_hour: float | None = None,
        checkpoint_interval_hours: float | None = None,
        checkpoint_overhead_hours: float = DEFAULT_CHECKPOINT_OVERHEAD_HOURS,
        restart_overhead_hours: float = DEFAULT_RESTART_OVERHEAD_HOURS,
    ) -> SpotAdvice:
        if work_hours <= 0 or on_demand_hourly_usd <= 0:
            raise ValidationError("work_hours and rate must be positive")
        spec = self.spec_for(resource_type)
        lam = (
            preempt_rate_per_hour
            if preempt_rate_per_hour is not None
            else spec.preempt_rate_per_hour
        )
        frac = spot_fraction if spot_fraction is not None else spec.mean_discount
        if not (0 < frac <= 1):
            raise ValidationError(f"spot fraction must be in (0, 1]: {frac!r}")
        tau = (
            checkpoint_interval_hours
            if checkpoint_interval_hours is not None
            else young_daly_interval(checkpoint_overhead_hours, lam)
        )
        tau = min(tau, work_hours)
        expected = expected_completion_hours(
            work_hours,
            preempt_rate_per_hour=lam,
            checkpoint_interval_hours=tau,
            checkpoint_overhead_hours=checkpoint_overhead_hours,
            restart_overhead_hours=restart_overhead_hours,
        )
        on_demand = work_hours * on_demand_hourly_usd
        spot = expected * on_demand_hourly_usd * frac
        return SpotAdvice(
            work_hours=work_hours,
            preempt_rate_per_hour=lam,
            checkpoint_interval_hours=tau,
            expected_completion_hours=expected,
            time_inflation=expected / work_hours,
            on_demand_cost_usd=on_demand,
            spot_cost_usd=spot,
            savings_usd=on_demand - spot,
            use_spot=spot < on_demand,
        )
