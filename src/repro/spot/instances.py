"""Interruptible-instance execution: fleets that relaunch after reclaim,
and a cluster scheduler whose running jobs can be preempted and re-queued.

Two consumers of the market's preemption events:

* :class:`SpotFleet` — the Scavenger-style recovery loop for long-lived
  services: launch interruptible VMs, listen for preemption notices, and
  relaunch a replacement after the reclaim (checkpoint/restore is the
  workload's job; the fleet restores *capacity*).
* :class:`PreemptibleScheduler` — the Unit-5 scheduling simulation under
  transient capacity: running jobs face a Poisson preemption hazard, lose
  the work since their last checkpoint, and re-queue with the remaining
  work plus a restart overhead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.cloud.compute import ComputeService, Server
from repro.common.errors import ValidationError
from repro.common.events import EventLoop
from repro.scheduling.cluster import SchedCluster
from repro.scheduling.jobs import Job, JobState
from repro.scheduling.policies import FairSharePolicy, SchedulingPolicy
from repro.spot.market import SpotMarket


@dataclass
class FleetEntry:
    """One logical slot of a fleet: the chain of servers that carried it."""

    name: str
    flavor: str
    server_ids: list[str] = field(default_factory=list)
    preemptions: int = 0
    active_server_id: str | None = None


class SpotFleet:
    """Keep N interruptible VMs alive across preemptions.

    The fleet launches ``interruptible=True`` servers through the site's
    compute service, subscribes to preemption notices, and relaunches a
    replacement ``relaunch_delay_hours`` after each reclaim (until
    :meth:`stop` or the optional ``until`` horizon).  Metering spans close
    at each preemption and reopen at each relaunch, so the usage record
    stream stays consistent with what a real spot consumer would be
    billed.
    """

    def __init__(
        self,
        loop: EventLoop,
        compute: ComputeService,
        market: SpotMarket,
        *,
        project: str,
        relaunch_delay_hours: float = 0.1,
        until: float | None = None,
    ) -> None:
        if relaunch_delay_hours < 0:
            raise ValidationError("relaunch delay cannot be negative")
        self._loop = loop
        self._compute = compute
        self.market = market
        self.project = project
        self.relaunch_delay_hours = relaunch_delay_hours
        self.until = until
        self.entries: dict[str, FleetEntry] = {}  # name -> entry
        self._by_server: dict[str, str] = {}  # server_id -> name
        self._stopped = False
        compute.on_preemption_notice(self._on_notice)

    def launch(self, name: str, flavor: str, *, user: str | None = None,
               lab: str | None = None) -> Server:
        """Launch (or relaunch) one interruptible VM under this fleet."""
        entry = self.entries.setdefault(name, FleetEntry(name=name, flavor=flavor))
        server = self._compute.create_server(
            self.project, name, flavor, user=user, lab=lab, interruptible=True
        )
        entry.server_ids.append(server.id)
        entry.active_server_id = server.id
        self._by_server[server.id] = name
        return server

    def stop(self) -> None:
        """Stop relaunching; currently-running servers are left to their fate."""
        self._stopped = True

    @property
    def preemption_count(self) -> int:
        return sum(e.preemptions for e in self.entries.values())

    def _on_notice(self, server: Server) -> None:
        name = self._by_server.get(server.id)
        if name is None:
            return  # another fleet's (or an unmanaged) instance
        entry = self.entries[name]
        entry.preemptions += 1
        entry.active_server_id = None
        if self._stopped:
            return
        relaunch_at = (
            self._loop.clock.now
            + ComputeService.PREEMPTION_NOTICE_HOURS
            + self.relaunch_delay_hours
        )
        if self.until is not None and relaunch_at >= self.until:
            return
        self._loop.schedule(
            relaunch_at,
            lambda: self._relaunch(name, server.user, server.lab),
            priority=5,  # after the reclaim event frees quota
            label=f"fleet:{name}:relaunch",
        )

    def _relaunch(self, name: str, user: str | None, lab: str | None) -> None:
        if self._stopped:
            return
        entry = self.entries[name]
        if entry.active_server_id is not None:
            return  # already running again
        self.launch(name, entry.flavor, user=user, lab=lab)


@dataclass(frozen=True)
class SpotScheduleResult:
    """Statistics of one preemptible-capacity schedule."""

    policy: str
    jobs: tuple[Job, ...]
    n_preemptions: int
    wasted_gpu_hours: float
    makespan_hours: float
    mean_wait_hours: float
    mean_turnaround_hours: float
    gpu_utilization: float


class PreemptibleScheduler:
    """Run a job trace on transient capacity: jobs may be preempted.

    While a job runs, preemptions arrive as a Poisson process with rate
    ``preempt_rate_per_hour``.  A preempted job keeps the work completed
    up to its last checkpoint (every ``checkpoint_interval_hours``), pays
    ``restart_overhead_hours``, and re-queues; the policy decides when it
    runs again.  With ``preempt_rate_per_hour == 0`` this reduces to the
    deterministic :class:`~repro.scheduling.scheduler.Scheduler` semantics.
    """

    MAX_PREEMPTIONS_PER_JOB = 200  # progress backstop under absurd rates

    def __init__(
        self,
        cluster: SchedCluster,
        policy: SchedulingPolicy,
        *,
        preempt_rate_per_hour: float = 0.05,
        checkpoint_interval_hours: float = 0.5,
        restart_overhead_hours: float = 2.0 / 60.0,
        seed: int = 0,
    ) -> None:
        if preempt_rate_per_hour < 0:
            raise ValidationError("preemption rate cannot be negative")
        if checkpoint_interval_hours <= 0 or restart_overhead_hours < 0:
            raise ValidationError("invalid checkpoint/restart parameters")
        self.cluster = cluster
        self.policy = policy
        self.preempt_rate = preempt_rate_per_hour
        self.checkpoint_interval = checkpoint_interval_hours
        self.restart_overhead = restart_overhead_hours
        self._rng = np.random.default_rng(seed)
        self.queue: list[Job] = []

    def run(self, jobs: list[Job]) -> SpotScheduleResult:
        if not jobs:
            raise ValidationError("empty trace")
        loop = EventLoop()
        jobs = sorted(jobs, key=lambda j: (j.submit_time, j.id))
        remaining = {j.id: j.actual_end for j in jobs}
        preempt_counts = {j.id: 0 for j in jobs}
        first_start: dict[str, float] = {}
        n_preemptions = 0
        wasted_gpu_hours = 0.0
        busy_gpu_hours = 0.0

        def submit(job: Job) -> None:
            self.queue.append(job)
            job.state = JobState.QUEUED
            dispatch()

        def finish(job: Job, elapsed: float, preempted: bool) -> None:
            nonlocal n_preemptions, wasted_gpu_hours, busy_gpu_hours
            now = loop.clock.now
            self.cluster.release(job)
            busy_gpu_hours += job.total_gpus * elapsed
            if isinstance(self.policy, FairSharePolicy):
                self.policy.record_usage(job.user, job.total_gpus * elapsed)
            if preempted:
                n_preemptions += 1
                preempt_counts[job.id] += 1
                # work since the last checkpoint is lost
                retained = math.floor(elapsed / self.checkpoint_interval) * self.checkpoint_interval
                wasted_gpu_hours += job.total_gpus * (elapsed - retained)
                remaining[job.id] = remaining[job.id] - retained + self.restart_overhead
                submit(job)
            else:
                remaining[job.id] = 0.0
                job.state = JobState.DONE
                job.end_time = now
                dispatch()

        def dispatch() -> None:
            now = loop.clock.now
            for job in self.policy.select(now, list(self.queue), self.cluster):
                placement = self.cluster.find_placement(job)
                if placement is None:
                    continue
                self.cluster.allocate(job, placement)
                self.queue.remove(job)
                job.state = JobState.RUNNING
                if job.id not in first_start:
                    first_start[job.id] = now
                job.start_time = first_start[job.id]  # wait = time to FIRST start
                run_for = remaining[job.id]
                preempted = False
                if (
                    self.preempt_rate > 0
                    and preempt_counts[job.id] < self.MAX_PREEMPTIONS_PER_JOB
                ):
                    ttp = float(self._rng.exponential(1.0 / self.preempt_rate))
                    if ttp < run_for:
                        run_for, preempted = ttp, True
                loop.schedule(
                    now + run_for,
                    lambda j=job, e=run_for, p=preempted: finish(j, e, p),
                    label=f"{job.id}:{'preempt' if preempted else 'done'}",
                )
            self.cluster.check_invariants()

        for job in jobs:
            loop.schedule(job.submit_time, lambda j=job: submit(j), label=f"{job.id}:submit")
        loop.run()

        unfinished = [j for j in jobs if j.state is not JobState.DONE]
        if unfinished:
            raise ValidationError(
                f"{len(unfinished)} jobs never finished (first: {unfinished[0].id})"
            )
        waits = np.array([first_start[j.id] - j.submit_time for j in jobs])
        turnarounds = np.array([j.end_time - j.submit_time for j in jobs])
        makespan = max(j.end_time for j in jobs) - min(j.submit_time for j in jobs)
        capacity = self.cluster.total_gpus * makespan
        return SpotScheduleResult(
            policy=getattr(self.policy, "name", type(self.policy).__name__),
            jobs=tuple(jobs),
            n_preemptions=n_preemptions,
            wasted_gpu_hours=float(wasted_gpu_hours),
            makespan_hours=float(makespan),
            mean_wait_hours=float(waits.mean()),
            mean_turnaround_hours=float(turnarounds.mean()),
            gpu_utilization=float(busy_gpu_hours / capacity) if capacity > 0 else 0.0,
        )
