"""The scheduler's node pool and placement logic.

Placement enforces the gang constraint: a job's tasks are placed
one-task-per-slot across nodes (a node can host several tasks if it has
the GPUs/CPUs), and either every task fits simultaneously or the job does
not start.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConflictError, ValidationError
from repro.scheduling.jobs import Job


@dataclass
class SchedNode:
    """One node: total and free GPU/CPU capacity."""

    index: int
    gpus: int
    cpus: int
    free_gpus: int = field(default=-1)
    free_cpus: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.gpus < 0 or self.cpus <= 0:
            raise ValidationError(f"invalid node capacity: {self!r}")
        if self.free_gpus < 0:
            self.free_gpus = self.gpus
        if self.free_cpus < 0:
            self.free_cpus = self.cpus


class SchedCluster:
    """A homogeneous (or mixed) pool of :class:`SchedNode`."""

    def __init__(self, nodes: list[SchedNode]) -> None:
        if not nodes:
            raise ValidationError("cluster needs at least one node")
        self.nodes = list(nodes)
        self._running: dict[str, Job] = {}

    @classmethod
    def homogeneous(cls, n_nodes: int, *, gpus_per_node: int = 4, cpus_per_node: int = 32) -> "SchedCluster":
        return cls([SchedNode(i, gpus_per_node, cpus_per_node) for i in range(n_nodes)])

    @property
    def total_gpus(self) -> int:
        return sum(n.gpus for n in self.nodes)

    @property
    def free_gpus(self) -> int:
        return sum(n.free_gpus for n in self.nodes)

    def find_placement(self, job: Job) -> tuple[int, ...] | None:
        """Node index per task, or None if the gang does not fit now."""
        free = [(n.free_gpus, n.free_cpus) for n in self.nodes]
        placement: list[int] = []
        for _task in range(job.tasks):
            placed = False
            for idx, (fg, fc) in enumerate(free):
                if fg >= job.gpus_per_task and fc >= job.cpus_per_task:
                    free[idx] = (fg - job.gpus_per_task, fc - job.cpus_per_task)
                    placement.append(idx)
                    placed = True
                    break
            if not placed:
                return None
        return tuple(placement)

    def allocate(self, job: Job, placement: tuple[int, ...]) -> None:
        if job.id in self._running:
            raise ConflictError(f"job {job.id} already allocated")
        if len(placement) != job.tasks:
            raise ValidationError(f"placement size {len(placement)} != tasks {job.tasks}")
        # verify then commit (all-or-nothing)
        trial = {i: (self.nodes[i].free_gpus, self.nodes[i].free_cpus) for i in sorted(set(placement))}
        for idx in placement:
            fg, fc = trial[idx]
            if fg < job.gpus_per_task or fc < job.cpus_per_task:
                raise ConflictError(f"placement over-subscribes node {idx} for job {job.id}")
            trial[idx] = (fg - job.gpus_per_task, fc - job.cpus_per_task)
        for idx in placement:
            self.nodes[idx].free_gpus -= job.gpus_per_task
            self.nodes[idx].free_cpus -= job.cpus_per_task
        self._running[job.id] = job
        job.placement = placement

    def release(self, job: Job) -> None:
        if job.id not in self._running:
            raise ValidationError(f"job {job.id} is not allocated")
        for idx in job.placement:
            self.nodes[idx].free_gpus += job.gpus_per_task
            self.nodes[idx].free_cpus += job.cpus_per_task
        del self._running[job.id]

    def running_jobs(self) -> list[Job]:
        return list(self._running.values())

    def check_invariants(self) -> None:
        """Free counts must stay within [0, capacity] on every node."""
        for n in self.nodes:
            if not (0 <= n.free_gpus <= n.gpus and 0 <= n.free_cpus <= n.cpus):
                raise ConflictError(f"node {n.index} accounting corrupt: {n!r}")
