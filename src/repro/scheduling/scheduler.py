"""The event-driven scheduling simulation.

Feeds a job trace through a policy on a cluster and reports the statistics
the Unit 5 lecture compares policies on: mean/p95 wait, mean turnaround,
makespan, and GPU utilisation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ValidationError
from repro.common.events import EventLoop
from repro.scheduling.cluster import SchedCluster
from repro.scheduling.jobs import Job, JobState
from repro.scheduling.policies import FairSharePolicy, SchedulingPolicy


@dataclass(frozen=True)
class ScheduleResult:
    """Aggregate statistics of one simulated schedule."""

    policy: str
    jobs: tuple[Job, ...]
    makespan_hours: float
    mean_wait_hours: float
    p95_wait_hours: float
    mean_turnaround_hours: float
    gpu_utilization: float

    def waits(self) -> np.ndarray:
        return np.array([j.wait_hours for j in self.jobs])


class Scheduler:
    """Run a trace to completion under one policy."""

    def __init__(self, cluster: SchedCluster, policy: SchedulingPolicy) -> None:
        self.cluster = cluster
        self.policy = policy
        self.queue: list[Job] = []

    def run(self, jobs: list[Job]) -> ScheduleResult:
        if not jobs:
            raise ValidationError("empty trace")
        loop = EventLoop()
        jobs = sorted(jobs, key=lambda j: (j.submit_time, j.id))

        def submit(job: Job) -> None:
            self.queue.append(job)
            dispatch()

        def complete(job: Job) -> None:
            job.state = JobState.DONE
            job.end_time = loop.clock.now
            self.cluster.release(job)
            if isinstance(self.policy, FairSharePolicy):
                self.policy.record_usage(
                    job.user, job.total_gpus * (job.end_time - job.start_time)
                )
            dispatch()

        def dispatch() -> None:
            now = loop.clock.now
            for job in self.policy.select(now, list(self.queue), self.cluster):
                placement = self.cluster.find_placement(job)
                if placement is None:
                    continue  # policy raced against itself; skip safely
                self.cluster.allocate(job, placement)
                self.queue.remove(job)
                job.state = JobState.RUNNING
                job.start_time = now
                loop.schedule(
                    now + job.actual_end, lambda j=job: complete(j), label=f"{job.id}:done"
                )
            self.cluster.check_invariants()

        for job in jobs:
            loop.schedule(job.submit_time, lambda j=job: submit(j), label=f"{job.id}:submit")
        loop.run()

        unfinished = [j for j in jobs if j.state is not JobState.DONE]
        if unfinished:
            raise ValidationError(
                f"{len(unfinished)} jobs never ran (first: {unfinished[0].id}); "
                "the cluster cannot fit them"
            )

        waits = np.array([j.wait_hours for j in jobs])
        turnarounds = np.array([j.turnaround_hours for j in jobs])
        makespan = max(j.end_time for j in jobs) - min(j.submit_time for j in jobs)
        busy_gpu_hours = sum(j.total_gpus * (j.end_time - j.start_time) for j in jobs)
        capacity = self.cluster.total_gpus * makespan
        return ScheduleResult(
            policy=getattr(self.policy, "name", type(self.policy).__name__),
            jobs=tuple(jobs),
            makespan_hours=float(makespan),
            mean_wait_hours=float(waits.mean()),
            p95_wait_hours=float(np.percentile(waits, 95)),
            mean_turnaround_hours=float(turnarounds.mean()),
            gpu_utilization=float(busy_gpu_hours / capacity) if capacity > 0 else 0.0,
        )
