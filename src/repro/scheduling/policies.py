"""Scheduling policies: FIFO, EASY backfill, weighted fair share.

A policy answers one question at each scheduling point: *given the queue,
the cluster, and the clock, which queued jobs start now?*  The scheduler
invokes it on every submission and completion event.

* **FIFO** starts jobs strictly in queue order and blocks on the first job
  that does not fit — exhibiting the convoy effect (a wide gang job at the
  head idles the whole cluster).
* **EASY backfill** gives the head job a reservation at the earliest time
  running jobs' *estimates* free enough resources, then lets later jobs
  jump ahead if (by their estimates) they finish before that reservation —
  the classic utilisation win the lecture covers.
* **Weighted fair share** orders the queue by each user's consumed
  GPU-hours divided by share weight, so heavy users yield to light ones.
"""

from __future__ import annotations

from typing import Protocol

from repro.scheduling.cluster import SchedCluster, SchedNode
from repro.scheduling.jobs import Job


class SchedulingPolicy(Protocol):
    """Strategy interface used by the :class:`~repro.scheduling.scheduler.Scheduler`."""

    name: str

    def select(self, now: float, queue: list[Job], cluster: SchedCluster) -> list[Job]:
        """Jobs (in order) to start now.  Must not mutate queue or cluster."""
        ...


class FifoPolicy:
    """Strict arrival order; head-of-line blocking."""

    name = "fifo"

    def select(self, now: float, queue: list[Job], cluster: SchedCluster) -> list[Job]:
        started: list[Job] = []
        shadow = _ShadowCluster(cluster)
        for job in queue:
            placement = shadow.find_placement(job)
            if placement is None:
                break  # FIFO never skips the head
            shadow.commit(job, placement)
            started.append(job)
        return started


class BackfillPolicy:
    """EASY backfilling: reserve for the head, backfill behind it."""

    name = "backfill"

    def select(self, now: float, queue: list[Job], cluster: SchedCluster) -> list[Job]:
        if not queue:
            return []
        started: list[Job] = []
        shadow = _ShadowCluster(cluster)

        # start in order while jobs fit
        remaining = list(queue)
        while remaining:
            placement = shadow.find_placement(remaining[0])
            if placement is None:
                break
            job = remaining.pop(0)
            shadow.commit(job, placement)
            started.append(job)
        if not remaining:
            return started

        head = remaining.pop(0)
        reservation = self._earliest_start(now, head, shadow, cluster)

        # backfill: later jobs may start if they'd finish by the reservation,
        # or if they don't touch resources the head needs (conservatively: the
        # finish-by-reservation test only).
        for job in remaining:
            if now + job.estimate_hours > reservation + 1e-9:
                continue
            placement = shadow.find_placement(job)
            if placement is None:
                continue
            shadow.commit(job, placement)
            started.append(job)
        return started

    @staticmethod
    def _earliest_start(
        now: float, head: Job, shadow: "_ShadowCluster", cluster: SchedCluster
    ) -> float:
        """Earliest time the head fits, assuming running jobs end at estimates."""
        releases = sorted(
            (j.start_time + j.estimate_hours, j)
            for j in cluster.running_jobs()
            if j.start_time is not None
        )
        probe = shadow.clone()
        t = now
        for release_time, job in releases:
            if probe.find_placement(head) is not None:
                return t
            probe.free(job)
            t = max(t, release_time)
        return t if probe.find_placement(head) is not None else t


class FairSharePolicy:
    """Order the queue by usage/share, then schedule greedily like backfill.

    ``shares`` maps user -> weight (default 1.0); ``usage`` is maintained by
    the scheduler (consumed GPU-hours).
    """

    name = "fair_share"

    def __init__(self, shares: dict[str, float] | None = None) -> None:
        self.shares = dict(shares or {})
        self.usage: dict[str, float] = {}

    def record_usage(self, user: str, gpu_hours: float) -> None:
        self.usage[user] = self.usage.get(user, 0.0) + gpu_hours

    def _priority(self, job: Job) -> float:
        share = self.shares.get(job.user, 1.0)
        return self.usage.get(job.user, 0.0) / max(share, 1e-9)

    def select(self, now: float, queue: list[Job], cluster: SchedCluster) -> list[Job]:
        ordered = sorted(queue, key=lambda j: (self._priority(j), j.submit_time, j.id))
        started: list[Job] = []
        shadow = _ShadowCluster(cluster)
        for job in ordered:
            placement = shadow.find_placement(job)
            if placement is None:
                continue  # fair share skips (no head-of-line blocking)
            shadow.commit(job, placement)
            started.append(job)
        return started


class _ShadowCluster:
    """A copy-on-write view of free resources for what-if placement."""

    def __init__(self, cluster: SchedCluster) -> None:
        self._nodes = [
            SchedNode(n.index, n.gpus, n.cpus, free_gpus=n.free_gpus, free_cpus=n.free_cpus)
            for n in cluster.nodes
        ]

    def clone(self) -> "_ShadowCluster":
        twin = object.__new__(_ShadowCluster)
        twin._nodes = [
            SchedNode(n.index, n.gpus, n.cpus, free_gpus=n.free_gpus, free_cpus=n.free_cpus)
            for n in self._nodes
        ]
        return twin

    def find_placement(self, job: Job) -> tuple[int, ...] | None:
        free = [(n.free_gpus, n.free_cpus) for n in self._nodes]
        placement: list[int] = []
        for _ in range(job.tasks):
            for idx, (fg, fc) in enumerate(free):
                if fg >= job.gpus_per_task and fc >= job.cpus_per_task:
                    free[idx] = (fg - job.gpus_per_task, fc - job.cpus_per_task)
                    placement.append(idx)
                    break
            else:
                return None
        return tuple(placement)

    def commit(self, job: Job, placement: tuple[int, ...]) -> None:
        for idx in placement:
            self._nodes[idx].free_gpus -= job.gpus_per_task
            self._nodes[idx].free_cpus -= job.cpus_per_task

    def free(self, job: Job) -> None:
        for idx in job.placement:
            self._nodes[idx].free_gpus += job.gpus_per_task
            self._nodes[idx].free_cpus += job.cpus_per_task
