"""Cluster scheduling for ML training jobs.

Unit 5's lecture introduces "job scheduling and placement concepts from
HPC, e.g., backfilling, gang scheduling, and fair sharing, specifically for
ML training jobs" (paper §3.5), and the lab deploys a Ray cluster with
resource-aware jobs and hyperparameter search.

* :mod:`repro.scheduling.jobs` — job specs (tasks × GPUs/CPUs, gang
  semantics, runtime estimates) and a seeded ML-workload generator.
* :mod:`repro.scheduling.cluster` — the node pool with placement.
* :mod:`repro.scheduling.policies` — FIFO, EASY backfill, weighted fair
  share.
* :mod:`repro.scheduling.scheduler` — the event-driven scheduling
  simulation producing wait/turnaround/utilisation statistics.
* :mod:`repro.scheduling.raysim` — Ray-like task pool and a hyperparameter
  tuner (grid/random + ASHA-style successive halving).
"""

from repro.scheduling.cluster import SchedCluster, SchedNode
from repro.scheduling.jobs import Job, JobState, ml_workload
from repro.scheduling.policies import (
    BackfillPolicy,
    FairSharePolicy,
    FifoPolicy,
    SchedulingPolicy,
)
from repro.scheduling.raysim import RayCluster, RayTask, TuneResult, Tuner
from repro.scheduling.scheduler import ScheduleResult, Scheduler

__all__ = [
    "Job",
    "JobState",
    "ml_workload",
    "SchedNode",
    "SchedCluster",
    "SchedulingPolicy",
    "FifoPolicy",
    "BackfillPolicy",
    "FairSharePolicy",
    "Scheduler",
    "ScheduleResult",
    "RayCluster",
    "RayTask",
    "Tuner",
    "TuneResult",
]
