"""Ray-like task execution and hyperparameter tuning.

The Unit 5 lab integrates "Ray Train for distributed execution and fault
tolerance, and Ray Tune for hyperparameter search" (paper §3.5).  Here:

* :class:`RayCluster` executes resource-annotated tasks with a simple
  earliest-free-slot simulation, reporting wall-clock under the cluster's
  GPU/CPU limits.
* :class:`Tuner` searches a hyperparameter space with grid or random
  sampling and ASHA-style successive halving: trials train in rungs, and
  only the top 1/eta advance — so total steps spent is far below
  train-everything-to-completion.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.common.errors import ValidationError
from repro.training.trainer import TrainingSimulator


@dataclass(frozen=True)
class RayTask:
    """A remote task: a callable plus its resource request."""

    name: str
    fn: Callable[[], Any]
    num_cpus: float = 1.0
    num_gpus: float = 0.0
    duration_hours: float = 0.1


@dataclass(frozen=True)
class TaskRecord:
    name: str
    start: float
    end: float
    result: Any


class RayCluster:
    """Greedy list scheduling of tasks under CPU/GPU capacity."""

    def __init__(self, *, num_cpus: float = 8, num_gpus: float = 2) -> None:
        if num_cpus <= 0 or num_gpus < 0:
            raise ValidationError("invalid cluster resources")
        self.num_cpus = num_cpus
        self.num_gpus = num_gpus

    def run(self, tasks: Sequence[RayTask]) -> list[TaskRecord]:
        """Execute all tasks; returns records with simulated start/end."""
        for t in tasks:
            if t.num_cpus > self.num_cpus or t.num_gpus > self.num_gpus:
                raise ValidationError(f"task {t.name!r} can never fit on this cluster")
        pending = list(tasks)
        running: list[tuple[float, RayTask, Any]] = []  # (end, task, result)
        records: list[TaskRecord] = []
        now = 0.0
        free_cpus, free_gpus = self.num_cpus, self.num_gpus
        while pending or running:
            # launch whatever fits now (FIFO)
            i = 0
            while i < len(pending):
                t = pending[i]
                if t.num_cpus <= free_cpus + 1e-9 and t.num_gpus <= free_gpus + 1e-9:
                    free_cpus -= t.num_cpus
                    free_gpus -= t.num_gpus
                    running.append((now + t.duration_hours, t, t.fn()))
                    records.append(TaskRecord(t.name, now, now + t.duration_hours, None))
                    pending.pop(i)
                else:
                    i += 1
            if not running:
                raise ValidationError("deadlock: nothing running, nothing fits")
            # advance to earliest completion
            running.sort(key=lambda r: r[0])
            end, task, result = running.pop(0)
            now = end
            free_cpus += task.num_cpus
            free_gpus += task.num_gpus
            for j, rec in enumerate(records):
                if rec.name == task.name and rec.result is None and rec.end == end:
                    records[j] = TaskRecord(rec.name, rec.start, rec.end, result)
                    break
        return records

    def makespan(self, tasks: Sequence[RayTask]) -> float:
        records = self.run(tasks)
        return max(r.end for r in records) if records else 0.0


@dataclass(frozen=True)
class Trial:
    id: int
    config: dict[str, Any]
    steps_trained: int
    final_loss: float
    stopped_early: bool


@dataclass(frozen=True)
class TuneResult:
    trials: tuple[Trial, ...]
    best: Trial
    total_steps: int

    @property
    def n_trials(self) -> int:
        return len(self.trials)


class Tuner:
    """Grid / random search with optional ASHA successive halving."""

    def __init__(
        self,
        simulator: TrainingSimulator,
        *,
        max_steps: int = 200,
        seed: int = 0,
    ) -> None:
        if max_steps <= 0:
            raise ValidationError("max_steps must be positive")
        self.simulator = simulator
        self.max_steps = max_steps
        self._rng = np.random.default_rng(seed)

    # -- search space sampling --------------------------------------------------

    @staticmethod
    def grid(space: dict[str, Sequence[Any]]) -> list[dict[str, Any]]:
        keys = sorted(space)
        return [dict(zip(keys, combo)) for combo in itertools.product(*(space[k] for k in keys))]

    def random(self, space: dict[str, tuple[float, float]], n: int, *, log: bool = True) -> list[dict[str, Any]]:
        """Sample ``n`` configs uniformly (log-uniformly by default)."""
        configs = []
        for _ in range(n):
            cfg = {}
            for key, (lo, hi) in sorted(space.items()):
                if log:
                    if lo <= 0:
                        raise ValidationError("log sampling needs positive bounds")
                    cfg[key] = float(10 ** self._rng.uniform(math.log10(lo), math.log10(hi)))
                else:
                    cfg[key] = float(self._rng.uniform(lo, hi))
            configs.append(cfg)
        return configs

    # -- execution -----------------------------------------------------------------

    def _loss_after(self, config: dict[str, Any], steps: int) -> float:
        return self.simulator.loss_at(steps, config.get("lr", 3e-4))

    def fit(self, configs: list[dict[str, Any]]) -> TuneResult:
        """Train every config to max_steps (no early stopping)."""
        if not configs:
            raise ValidationError("no configs to tune")
        trials = [
            Trial(i, cfg, self.max_steps, self._loss_after(cfg, self.max_steps), False)
            for i, cfg in enumerate(configs)
        ]
        best = min(trials, key=lambda t: t.final_loss)
        return TuneResult(tuple(trials), best, total_steps=self.max_steps * len(trials))

    def fit_asha(
        self, configs: list[dict[str, Any]], *, reduction_factor: int = 3, min_steps: int = 10
    ) -> TuneResult:
        """ASHA-style synchronous successive halving."""
        if not configs:
            raise ValidationError("no configs to tune")
        if reduction_factor < 2:
            raise ValidationError("reduction factor must be >= 2")
        alive = list(range(len(configs)))
        steps_done = {i: 0 for i in alive}
        losses = {i: float("inf") for i in alive}
        total = 0
        rung = min_steps
        while rung < self.max_steps and len(alive) > 1:
            for i in alive:
                total += rung - steps_done[i]
                steps_done[i] = rung
                losses[i] = self._loss_after(configs[i], rung)
            keep = max(1, len(alive) // reduction_factor)
            alive = sorted(alive, key=lambda i: losses[i])[:keep]
            rung *= reduction_factor
        for i in alive:
            total += self.max_steps - steps_done[i]
            steps_done[i] = self.max_steps
            losses[i] = self._loss_after(configs[i], self.max_steps)
        trials = tuple(
            Trial(i, configs[i], steps_done[i], losses[i], steps_done[i] < self.max_steps)
            for i in range(len(configs))
        )
        best = min((t for t in trials if not t.stopped_early), key=lambda t: t.final_loss)
        return TuneResult(trials, best, total_steps=total)
