"""Job specifications and a seeded ML-workload generator.

A job requests ``tasks`` parallel workers, each needing ``gpus_per_task``
GPUs and ``cpus_per_task`` CPUs.  Jobs with ``tasks > 1`` are **gang
scheduled**: every task starts simultaneously or none do (the distributed
training semantics Unit 5 teaches — a 4-way DDP job cannot run 3-way).

``ml_workload`` synthesises a trace shaped like published MLaaS cluster
traces (the paper's lecture uses Alibaba's MLaaS analysis [34]): a heavy
majority of short small jobs and a long tail of large long-running ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.common.errors import ValidationError


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"


@dataclass
class Job:
    """One batch job.

    ``estimate_hours`` is the user-supplied walltime request; backfill
    relies on it and jobs are killed at their estimate if they exceed it
    (the HPC contract).  ``runtime_hours`` is the true duration.
    """

    id: str
    user: str
    submit_time: float
    runtime_hours: float
    estimate_hours: float
    tasks: int = 1
    gpus_per_task: int = 1
    cpus_per_task: int = 4
    state: JobState = JobState.QUEUED
    start_time: float | None = None
    end_time: float | None = None
    placement: tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.runtime_hours <= 0 or self.estimate_hours <= 0:
            raise ValidationError(f"job durations must be positive: {self.id}")
        if self.tasks <= 0 or self.gpus_per_task < 0 or self.cpus_per_task <= 0:
            raise ValidationError(f"invalid resource shape: {self.id}")
        if self.submit_time < 0:
            raise ValidationError(f"negative submit time: {self.id}")

    @property
    def gang(self) -> bool:
        return self.tasks > 1

    @property
    def total_gpus(self) -> int:
        return self.tasks * self.gpus_per_task

    @property
    def actual_end(self) -> float:
        """End time honouring the walltime kill at the estimate."""
        return min(self.runtime_hours, self.estimate_hours)

    @property
    def wait_hours(self) -> float:
        if self.start_time is None:
            raise ValidationError(f"job {self.id} has not started")
        return self.start_time - self.submit_time

    @property
    def turnaround_hours(self) -> float:
        if self.end_time is None:
            raise ValidationError(f"job {self.id} has not finished")
        return self.end_time - self.submit_time


def ml_workload(
    n_jobs: int,
    *,
    seed: int = 0,
    users: int = 8,
    arrival_rate_per_hour: float = 4.0,
    large_fraction: float = 0.15,
) -> list[Job]:
    """Generate a seeded ML-cluster job trace.

    ~85 % of jobs are small (1 task × 1 GPU, minutes-to-an-hour debug and
    fine-tuning runs); the rest are gang-scheduled distributed training
    jobs (2–4 tasks × 1–2 GPUs, hours long).  Estimates overshoot true
    runtimes by a lognormal factor, as user estimates do.
    """
    if n_jobs <= 0:
        raise ValidationError(f"need at least one job, got {n_jobs!r}")
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate_per_hour, size=n_jobs))
    jobs: list[Job] = []
    for i in range(n_jobs):
        large = rng.random() < large_fraction
        if large:
            tasks = int(rng.choice([2, 2, 4]))
            gpus = int(rng.choice([1, 2]))
            runtime = float(rng.lognormal(mean=1.2, sigma=0.6))  # ~3-4 h median
        else:
            tasks, gpus = 1, 1
            runtime = float(rng.lognormal(mean=-1.0, sigma=0.8))  # ~0.4 h median
        runtime = max(0.05, runtime)
        estimate = runtime * float(rng.lognormal(mean=0.35, sigma=0.3))
        estimate = max(runtime, estimate)  # good-faith estimates don't undershoot
        jobs.append(
            Job(
                id=f"job-{i:04d}",
                user=f"user{int(rng.integers(users))}",
                submit_time=float(arrivals[i]),
                runtime_hours=runtime,
                estimate_hours=estimate,
                tasks=tasks,
                gpus_per_task=gpus,
            )
        )
    return jobs
