"""Cheapest-equivalent instance matching.

The paper's definition (§5): "an 'equivalent' resource was defined as the
most cost-effective cloud instance that met the specific needs of each
assignment."  :func:`cheapest_match` implements exactly that: filter the
provider catalog by the assignment's :class:`RequirementSpec`, take the
cheapest survivor.  The requirement travels with the *assignment*, not the
Chameleon node type — which is why Table 1 maps two different Chameleon
GPU nodes in the same assignment to the same cloud instance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import SchedulingError, ValidationError
from repro.core.catalog import CloudInstance, PricingCatalog


@dataclass(frozen=True)
class RequirementSpec:
    """What an assignment actually needs from an instance.

    All bounds are minimums; ``needs_bf16`` requires NVIDIA compute
    capability >= 8.0 (paper §3.4); ``dedicated_cores`` excludes
    shared-core/burstable shapes (the Kubernetes cluster labs).
    """

    vcpus: int = 1
    ram_gib: float = 1.0
    gpus: int = 0
    gpu_mem_gib: float = 0.0
    needs_bf16: bool = False
    min_compute_capability: float | None = None
    dedicated_cores: bool = False

    def __post_init__(self) -> None:
        if self.vcpus < 1 or self.ram_gib <= 0 or self.gpus < 0 or self.gpu_mem_gib < 0:
            raise ValidationError(f"invalid requirement: {self!r}")

    def satisfied_by(self, inst: CloudInstance) -> bool:
        if inst.vcpus < self.vcpus or inst.ram_gib < self.ram_gib:
            return False
        if self.dedicated_cores and inst.shared_core:
            return False
        if inst.gpus < self.gpus:
            return False
        if self.gpus > 0:
            if inst.gpu_mem_gib < self.gpu_mem_gib:
                return False
            cc = inst.compute_capability
            if self.needs_bf16 and (cc is None or cc < 8.0):
                return False
            if self.min_compute_capability is not None and (
                cc is None or cc < self.min_compute_capability
            ):
                return False
        return True


def matches(spec: RequirementSpec, catalog: PricingCatalog) -> list[CloudInstance]:
    """Every instance satisfying the spec, cheapest first."""
    return [inst for inst in catalog if spec.satisfied_by(inst)]


def cheapest_match(spec: RequirementSpec, catalog: PricingCatalog) -> CloudInstance:
    """The paper's equivalence function; raises if nothing qualifies."""
    candidates = matches(spec, catalog)
    if not candidates:
        raise SchedulingError(
            f"no {catalog.provider} instance satisfies {spec!r}"
        )
    return candidates[0]  # catalog is price-sorted
