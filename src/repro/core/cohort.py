"""The student-cohort behaviour simulation.

Drives the :mod:`repro.cloud` testbed with 191 simulated students over a
14-week semester, reproducing the *mechanisms* behind the paper's §5
observations:

* **VM labs** (Units 1-3, 7, 8): students provision on-demand instances
  that persist until explicitly deleted.  Persistence is drawn from a
  heavy-tailed lognormal whose mean is calibrated from Table 1 —
  "sometimes intentionally (to avoid repeating lengthy setup), other
  times due to neglect" (§5).  Durations are capped at semester end
  (staff clean-up).
* **Reserved labs** (Units 4-6): students book 2-3-hour slots on
  bare-metal/edge nodes through the lease system; auto-termination makes
  actual usage equal booked usage (Fig 1(b)).  Re-run counts are Poisson
  with Table-1-calibrated means.
* **Projects**: groups of 3-4 run long-lived service VMs, GPU training
  slots, big-data bare-metal jobs, edge deployments, and storage for the
  final ~6.5 weeks (§5's project usage).

Architecture: **plan → execute → merge.**  All randomness and all
cross-student coupling (the stratified duration pools, the shared slot
calendar, quota admission) are resolved up front by :func:`plan_cohort`
into per-student / per-group :class:`ShardPlan`\\ s whose activities carry
fully resolved absolute times.  Seeds derive from one
``numpy.random.SeedSequence`` tree (cohort stream, one stream per
student, one per group), so any subset of shards can be planned and
executed independently of the rest.  Executing a shard
(:func:`execute_shard`) is RNG-free and touches only its own activities,
which is what lets :func:`repro.parallel.run_parallel` fan shards out to
worker processes and still merge back a record stream digest-identical
to the serial :meth:`CohortSimulation.run` (see
:func:`repro.core.usage.canonicalize_records`).

Everything is seeded; totals land within a few percent of Table 1
(asserted in tests with tolerant bands), while the *distribution* of
per-student cost (Fig 2) emerges from the behaviour model.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from typing import Protocol

import numpy as np
from scipy import stats

from repro.cloud.inventory import CHAMELEON_FLAVORS, CHAMELEON_NODE_TYPES, EDGE_DEVICE_TYPES
from repro.cloud.metering import UsageRecord
from repro.cloud.quota import Quota
from repro.cloud.site import Site
from repro.cloud.testbed import Testbed, chameleon
from repro.common.errors import ConflictError, QuotaExceededError, ValidationError
from repro.common.retry import RetryPolicy
from repro.core.course import COURSE, CourseDefinition, LabAssignment, LabKind
from repro.core.usage import canonicalize_records

KVM_SITE = "kvm@tacc"
METAL_SITE = "chi@tacc"
EDGE_SITE = "chi@edge"

#: The enrollment the paper's KVM quota increase (§4) was granted for;
#: larger cohorts get the quota scaled up proportionally.
QUOTA_BASELINE_ENROLLMENT = 191


@dataclass(frozen=True)
class CohortConfig:
    """Knobs of the behaviour model."""

    seed: int = 42
    participation: float = 1.0  # fraction of students attempting each lab
    # how a student reacts to quota exhaustion: check again every 6 hours,
    # give up after 60 retries (the historical reactive behaviour, now one
    # policy object shared with the fault layer's relaunch logic)
    quota_retry: RetryPolicy = RetryPolicy.quota_default()
    vm_reaper: bool = False  # ablation: auto-terminate VM labs at expected+grace
    vm_reaper_grace: float = 2.0  # hours beyond expected before the reaper fires
    # per-student "negligence propensity": one lognormal factor applied to a
    # student's behaviour in EVERY lab (VM persistence, re-run counts), so
    # the long tail of Fig 2 is a few students who are costly everywhere.
    propensity_sigma: float = 0.5

    def __post_init__(self) -> None:
        if not (0 < self.participation <= 1):
            raise ValidationError(f"participation must be in (0,1]: {self.participation!r}")
        if self.propensity_sigma < 0:
            raise ValidationError("propensity sigma cannot be negative")


def stratified_lognormal(mean: float, sigma: float, n: int, rng: np.random.Generator) -> np.ndarray:
    """``n`` lognormal draws with the exact target mean, heavy tail intact.

    Uses stratified inverse-CDF sampling (one jittered quantile per stratum,
    then a random permutation).  The sample mean is within a fraction of a
    percent of ``mean`` even for n=191 and sigma>1 — which is what lets the
    cohort's Table-1 row totals land on the calibration targets without
    giving up the lognormal's tail (the variance-reduction idiom of the
    HPC guides: restructure the sampling, don't inflate the sample).
    """
    if mean <= 0 or sigma < 0 or n <= 0:
        raise ValidationError("invalid stratified-lognormal parameters")
    mu = np.log(mean) - sigma**2 / 2.0
    quantiles = (np.arange(n) + rng.uniform(0.02, 0.98, size=n)) / n
    draws = np.exp(mu + sigma * stats.norm.ppf(quantiles))
    rng.shuffle(draws)
    return draws


def capped_mean_compensation(target_mean: float, sigma: float, cap: float) -> float:
    """Raw lognormal mean whose cap-at-``cap`` expectation equals the target.

    E[min(X, c)] for X ~ LN(mu, sigma) is
    ``e^{mu+s^2/2} Phi((ln c - mu - s^2)/s) + c (1 - Phi((ln c - mu)/s))``;
    we bisect on the raw mean.  Compensates for the semester-end staff
    clean-up truncating the persistence distribution.
    """
    if cap <= target_mean:
        raise ValidationError(f"cap {cap} must exceed the target mean {target_mean}")

    def capped_mean(raw_mean: float) -> float:
        mu = np.log(raw_mean) - sigma**2 / 2.0
        z1 = (np.log(cap) - mu - sigma**2) / sigma
        z2 = (np.log(cap) - mu) / sigma
        return float(raw_mean * stats.norm.cdf(z1) + cap * stats.norm.sf(z2))

    lo, hi = target_mean, target_mean * 10.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if capped_mean(mid) < target_mean:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-9 * target_mean:
            break
    return 0.5 * (lo + hi)


# -- shardable plan units ---------------------------------------------------------
#
# Every activity carries fully resolved absolute times and scalar Python
# values (no numpy scalars), so shards pickle cheaply and execute without
# any RNG or cross-shard state.


@dataclass(frozen=True)
class VmLabActivity:
    """One student's on-demand VM set for one lab."""

    lab_id: str
    user: str
    start: float
    duration: float
    flavor: str
    vm_count: int
    block_gb: int = 0
    object_gb: float = 0.0


@dataclass(frozen=True)
class SlotActivity:
    """One booked reservation slot (bare-metal or edge lab)."""

    lab_id: str
    user: str
    site: str
    node_type: str
    start: float
    slot_hours: float
    edge: bool


@dataclass(frozen=True)
class ProjectVmActivity:
    """One long-lived project service VM."""

    user: str
    flavor: str
    start: float
    hours: float
    with_fip: bool


@dataclass(frozen=True)
class ProjectLeaseActivity:
    """One project lease (GPU training slot, big-data job, edge deploy)."""

    user: str
    site: str
    node_type: str
    start: float
    hours: float
    edge_session: bool


@dataclass(frozen=True)
class ProjectStorageActivity:
    """One group's block volume + object-store footprint."""

    user: str
    start: float
    block_gb: int
    object_gb: float
    hours: float


@dataclass(frozen=True)
class ShardPlan:
    """All activities of one independent execution unit (student or group).

    ``spawn_key`` records the shard's position in the SeedSequence spawn
    tree (provenance; execution itself is RNG-free).
    """

    shard_id: str
    spawn_key: tuple[int, ...]
    vm_labs: tuple[VmLabActivity, ...] = ()
    slots: tuple[SlotActivity, ...] = ()
    project_vms: tuple[ProjectVmActivity, ...] = ()
    project_leases: tuple[ProjectLeaseActivity, ...] = ()
    project_storage: tuple[ProjectStorageActivity, ...] = ()

    @property
    def activity_count(self) -> int:
        return (
            len(self.vm_labs)
            + len(self.slots)
            + len(self.project_vms)
            + len(self.project_leases)
            + len(self.project_storage)
        )


@dataclass(frozen=True)
class CohortPlan:
    """The fully resolved semester: every shard, ready to execute anywhere."""

    seed: int
    semester_hours: float
    quota: Quota
    student_shards: tuple[ShardPlan, ...]
    group_shards: tuple[ShardPlan, ...]

    def shards(self, *, include_project: bool = True) -> tuple[ShardPlan, ...]:
        if include_project:
            return self.student_shards + self.group_shards
        return self.student_shards

    @property
    def activity_count(self) -> int:
        return sum(s.activity_count for s in self.shards())


class FaultModel(Protocol):
    """Anything that may rewrite *raw* shard plans before admission.

    The canonical implementation is
    :class:`repro.faults.plan.FaultSweep`, which resolves a seeded
    :class:`~repro.faults.plan.FaultCalendar` into killed / relaunched /
    delayed activities.  The planner only sees this protocol, so
    :mod:`repro.core` never imports :mod:`repro.faults` (the dependency
    points one way) and a ``None`` fault model leaves the plan
    byte-identical to the fault-free planner.
    """

    def apply(
        self,
        student_shards: tuple[ShardPlan, ...],
        group_shards: tuple[ShardPlan, ...],
        *,
        semester_hours: float,
    ) -> tuple[tuple[ShardPlan, ...], tuple[ShardPlan, ...]]: ...


def quota_for(course: CourseDefinition) -> Quota:
    """The KVM@TACC quota for ``course``: the paper's grant, scaled up
    proportionally for cohorts larger than the 191 it was sized for."""
    scale = course.enrollment / QUOTA_BASELINE_ENROLLMENT
    base = Quota.course_quota()
    if scale <= 1.0:
        return base
    return base.scaled(scale)


# -- planning ----------------------------------------------------------------------


# The seed hierarchy is ``SeedSequence(seed).spawn(3)`` → (cohort stream,
# student root, group root), then one child per student / group.  numpy
# spawn keys are positional, so a child is reconstructible *directly*
# from (seed, spawn_key) without walking the tree: the cohort stream is
# spawn_key (0,), student ``i`` is (1, i), group ``g`` is (2, g).  The
# helpers below are that reconstruction — they let any worker rebuild an
# arbitrary student range's streams from two integers instead of
# shipping a million pickled SeedSequences (``repro.columnar`` fans its
# whole-cohort draw loop out this way), and a regression test pins them
# to the spawn tree bit-for-bit.


def cohort_seed_sequence(seed: int) -> np.random.SeedSequence:
    """The cohort-level stream (propensity + duration pools)."""
    return np.random.SeedSequence(seed, spawn_key=(0,))


def student_seed_sequence(seed: int, index: int) -> np.random.SeedSequence:
    """Student ``index``'s private stream, identical to the spawned child."""
    return np.random.SeedSequence(seed, spawn_key=(1, index))


def group_seed_sequence(seed: int, index: int) -> np.random.SeedSequence:
    """Project group ``index``'s private stream."""
    return np.random.SeedSequence(seed, spawn_key=(2, index))


@dataclass
class _StudentDraws:
    """Raw per-student randomness, drawn from the student's own stream."""

    participates: dict[str, bool] = field(default_factory=dict)  # VM lab -> bool
    start_jitter: dict[str, float] = field(default_factory=dict)  # VM lab -> U(0,96)
    score_jitter: dict[str, float] = field(default_factory=dict)  # VM lab -> LN(0,0.5)
    slot_types: dict[str, list[str]] = field(default_factory=dict)  # reserved lab -> types


def draw_cohort_level(
    course: CourseDefinition, config: CohortConfig, rng: np.random.Generator
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Propensity + per-VM-lab stratified duration pools (cohort stream).

    Consumes the cohort stream in a fixed order: one propensity vector,
    then one sorted duration pool per VM lab in ``course.labs`` order.
    """
    n = course.enrollment
    propensity = stratified_lognormal(1.0, config.propensity_sigma, n, rng)
    pools: dict[str, np.ndarray] = {}
    semester_end = course.semester_hours
    for lab in course.labs:
        if lab.kind is not LabKind.VM:
            continue
        # calibrated mean, corrected for participation and semester-end capping
        target = (lab.mean_actual_hours or 1.0) / config.participation
        cap = semester_end - (lab.week * 168.0 + 48.0)
        raw_mean = capped_mean_compensation(target, lab.sigma, cap)
        pools[lab.id] = np.sort(stratified_lognormal(raw_mean, lab.sigma, n, rng))
    return propensity, pools


def draw_student(
    course: CourseDefinition,
    config: CohortConfig,
    rng: np.random.Generator,
    propensity: float,
) -> _StudentDraws:
    """All of one student's randomness, in a fixed per-lab order.

    The draw order over ``course.labs`` — (participation, start jitter,
    score jitter) per VM lab; (slot count, one type per slot) per
    reserved lab — is the stream contract both engines share: the
    columnar planner replays exactly these calls against exactly this
    stream, so the plans agree draw-for-draw.
    """
    draws = _StudentDraws()
    for lab in course.labs:
        if lab.kind is LabKind.VM:
            draws.participates[lab.id] = bool(rng.random() < config.participation)
            draws.start_jitter[lab.id] = float(rng.uniform(0.0, 96.0))
            draws.score_jitter[lab.id] = float(rng.lognormal(0.0, 0.5))
        else:
            count = int(rng.poisson(lab.mean_slots * propensity))
            names = [o.node_type for o in lab.options]
            weights = np.array([o.weight for o in lab.options])
            draws.slot_types[lab.id] = [str(rng.choice(names, p=weights)) for _ in range(count)]
    return draws


class SlotCalendar:
    """The serial, conflict-free reservation cursor per node type.

    One cursor walk hands out slot start times in a canonical global
    order (lab-major / student-minor during labs, then the project
    phase) — the walk itself is the shared-resource resolution, so both
    planners must advance one identical calendar instance through the
    identical visit order.
    """

    def __init__(self) -> None:
        self.cursors: dict[str, int] = {}  # node_type -> next slot index
        self.capacity: dict[str, int] = {
            **{n.name: n.count_available for n in CHAMELEON_NODE_TYPES.values()},
            **{d.name: d.count_available for d in EDGE_DEVICE_TYPES.values()},
        }

    def next_start(self, node_type: str, week_start: float, slot_hours: float) -> float:
        """Book the next free slot; round ``k`` starts ``k`` slots in."""
        capacity = self.capacity[node_type]
        cursor = self.cursors.get(node_type, 0)
        self.cursors[node_type] = cursor + 1
        round_idx = cursor // capacity
        return week_start + round_idx * slot_hours


class _CohortPlanner:
    """Resolves the whole semester deterministically from the seed tree.

    The seed hierarchy is ``SeedSequence(seed).spawn(3)`` →
    (cohort stream, student root, group root); the student/group roots
    spawn one child stream per student/group.  Cohort-level coupling
    (negligence propensity, the stratified per-lab duration pools whose
    *sample mean* is exact across the cohort) comes from the cohort
    stream; everything a single student/group does alone comes from its
    own stream.  Shared resources are then resolved serially in one
    canonical order — the slot calendar cursor walk and the conservative
    quota/lease admission sweeps — so shard execution never needs to
    observe another shard.
    """

    def __init__(
        self, course: CourseDefinition, config: CohortConfig, *, faults: "FaultModel | None" = None
    ) -> None:
        self.course = course
        self.config = config
        self.faults = faults
        root = np.random.SeedSequence(config.seed)
        cohort_ss, student_root, group_root = root.spawn(3)
        self._cohort_rng = np.random.default_rng(cohort_ss)
        self._student_seqs = student_root.spawn(course.enrollment)
        self._group_seqs = group_root.spawn(course.project.groups)
        self._calendar = SlotCalendar()
        self._slot_capacity = self._calendar.capacity

    def plan(self) -> CohortPlan:
        course, config = self.course, self.config
        n = course.enrollment
        propensity, pools = draw_cohort_level(course, config, self._cohort_rng)
        draws = [
            draw_student(
                course, config, np.random.default_rng(self._student_seqs[i]), float(propensity[i])
            )
            for i in range(n)
        ]

        # assign the longest durations in each lab's pool to the most
        # negligence-prone students, so the per-student tail of Fig 2 is
        # correlated across labs
        durations: dict[str, np.ndarray] = {}
        for lab in course.labs:
            if lab.kind is not LabKind.VM:
                continue
            scores = propensity * np.array([d.score_jitter[lab.id] for d in draws])
            assigned = np.empty(n)
            assigned[np.argsort(scores)] = pools[lab.id]
            dur = np.maximum(assigned, lab.expected_hours * 0.5)  # nobody quits instantly
            if config.vm_reaper:
                dur = np.minimum(dur, lab.expected_hours + config.vm_reaper_grace)
            durations[lab.id] = dur

        vm_labs: list[list[VmLabActivity]] = [[] for _ in range(n)]
        slots: list[list[SlotActivity]] = [[] for _ in range(n)]
        for lab in course.labs:
            if lab.kind is LabKind.VM:
                for i in range(n):
                    if not draws[i].participates[lab.id]:
                        continue
                    vm_labs[i].append(
                        VmLabActivity(
                            lab_id=lab.id,
                            user=f"student{i:03d}",
                            start=lab.week * 168.0 + draws[i].start_jitter[lab.id],
                            duration=float(durations[lab.id][i]),
                            flavor=lab.flavor or "",
                            vm_count=lab.vm_count,
                            block_gb=lab.block_gb,
                            object_gb=lab.object_gb,
                        )
                    )
            else:
                site = EDGE_SITE if lab.kind is LabKind.EDGE else METAL_SITE
                week_start = lab.week * 168.0
                # the calendar cursor walks lab-major / student-minor — the
                # same canonical order for every worker count
                for i in range(n):
                    for node_type in draws[i].slot_types[lab.id]:
                        slots[i].append(
                            SlotActivity(
                                lab_id=lab.id,
                                user=f"student{i:03d}",
                                site=site,
                                node_type=node_type,
                                start=self._calendar.next_start(
                                    node_type, week_start, lab.slot_hours
                                ),
                                slot_hours=lab.slot_hours,
                                edge=lab.kind is LabKind.EDGE,
                            )
                        )

        group_shards = self._plan_project()
        student_shards = tuple(
            ShardPlan(
                shard_id=f"student{i:03d}",
                spawn_key=(1, i),
                vm_labs=tuple(vm_labs[i]),
                slots=tuple(slots[i]),
            )
            for i in range(n)
        )

        if self.faults is not None:
            # the fault sweep rewrites activities (kills, relaunches,
            # delayed starts) BEFORE admission, so the sweeps below
            # re-validate the faulted plan and runtime execution stays
            # exception-free and RNG-free under any fault plan
            student_shards, group_shards = self.faults.apply(
                student_shards, group_shards, semester_hours=course.semester_hours
            )

        student_shards, group_shards = _admission_sweeps(
            student_shards,
            group_shards,
            quota=quota_for(course),
            slot_capacity=self._slot_capacity,
            semester_hours=course.semester_hours,
            config=config,
        )
        return CohortPlan(
            seed=config.seed,
            semester_hours=course.semester_hours,
            quota=quota_for(course),
            student_shards=student_shards,
            group_shards=group_shards,
        )

    def _plan_project(self) -> tuple[ShardPlan, ...]:
        return tuple(
            plan_group(
                self.course,
                group,
                np.random.default_rng(self._group_seqs[group]),
                self._calendar,
            )
            for group in range(self.course.project.groups)
        )


def plan_group(
    course: CourseDefinition,
    group: int,
    rng: np.random.Generator,
    calendar: SlotCalendar,
) -> ShardPlan:
    """One project group's raw shard: VMs, leases, storage.

    Shared between the object planner and ``repro.columnar`` so the two
    engines consume the group stream and advance the slot calendar
    identically.  ``calendar`` must arrive positioned exactly where the
    lab-slot cursor walk left it, and groups must be planned in index
    order — the walk *is* the shared-resource resolution.
    """
    project = course.project
    start = (course.semester_weeks - project.weeks) * 168.0
    duration = project.weeks * 168.0
    g = project.groups

    user = f"group{group:02d}"
    jitter = float(rng.uniform(0.0, 48.0))
    g_start = start + jitter

    # long-lived service VMs per flavor; one floating IP per group
    vms: list[ProjectVmActivity] = []
    for idx, (flavor, share) in enumerate(project.vm_flavor_shares):
        hours = project.vm_hours_total * share / g
        hours *= float(rng.lognormal(-0.02, 0.2))  # mild group-to-group spread
        hours = min(hours, duration - jitter)
        vms.append(
            ProjectVmActivity(
                user=user, flavor=flavor, start=g_start, hours=hours,
                with_fip=(idx == 0),
            )
        )

    leases: list[ProjectLeaseActivity] = []
    # GPU training slots (4-hour blocks); shared slot calendar base
    for node_type, share in project.gpu_type_shares:
        hours = project.gpu_hours_total * share / g
        n_slots = max(1, int(round(hours / 4.0)))
        for _ in range(n_slots):
            s = calendar.next_start(node_type, start, 4.0)
            leases.append(
                ProjectLeaseActivity(
                    user=user, site=METAL_SITE, node_type=node_type,
                    start=s, hours=4.0, edge_session=False,
                )
            )
    # big-data bare-metal (CPU) job
    bm_hours = project.baremetal_cpu_hours / g
    s = calendar.next_start(project.baremetal_cpu_type, start, bm_hours)
    leases.append(
        ProjectLeaseActivity(
            user=user, site=METAL_SITE, node_type=project.baremetal_cpu_type,
            start=s, hours=bm_hours, edge_session=False,
        )
    )
    # edge deployment slots
    edge_hours = project.edge_hours / g
    s = calendar.next_start(project.edge_type, start, edge_hours)
    leases.append(
        ProjectLeaseActivity(
            user=user, site=EDGE_SITE, node_type=project.edge_type,
            start=s, hours=edge_hours, edge_session=True,
        )
    )

    storage = ProjectStorageActivity(
        user=user,
        start=g_start,
        block_gb=int(round(project.block_storage_gb / g)),
        object_gb=project.object_storage_gb / g,
        hours=duration - jitter,
    )
    return ShardPlan(
        shard_id=user,
        spawn_key=(2, group),
        project_vms=tuple(vms),
        project_leases=tuple(leases),
        project_storage=(storage,),
    )


def plan_cohort(
    course: CourseDefinition = COURSE,
    config: CohortConfig | None = None,
    *,
    faults: FaultModel | None = None,
) -> CohortPlan:
    """Resolve one semester into independently executable shards.

    ``faults`` (see :class:`FaultModel`) interposes a plan-time fault
    sweep between raw planning and the admission sweeps; ``None`` (or a
    sweep over an empty calendar) yields a plan byte-identical to the
    fault-free planner.
    """
    return _CohortPlanner(
        course, config if config is not None else CohortConfig(), faults=faults
    ).plan()


# -- plan-time admission sweeps ----------------------------------------------------
#
# The serial simulation resolved quota exhaustion and lease-calendar
# conflicts *reactively* (retry events, next-slot fallbacks).  For shards
# to be order-independent those outcomes must be fixed at plan time, so
# two conservative chronological sweeps pre-admit every activity:
#
# * KVM quota: a bundle (FIP + instances + cores + RAM + volume) is
#   admitted at time t only if it fits alongside every admitted bundle
#   whose hold interval contains t — where releases happening *exactly*
#   at t are NOT yet counted as free.  That strictness makes admission a
#   pure prefix-sum test, independent of same-instant event ordering, so
#   a plan-admitted bundle can never hit QuotaExceededError at runtime
#   (the runtime holds a subset of what the sweep assumed held).
#   Rejected bundles retry after the same backoff the reactive path used.
# * Lease calendars: leases are half-open intervals [start, start+len);
#   the sweep replays create_lease's capacity check in event order and
#   bumps conflicting bookings to the next slot, exactly as the runtime
#   ConflictError handler would.  (The cursor calendar is designed to be
#   conflict-free, so bumps are a determinism backstop, not a hot path.)


@dataclass
class _Arrival:
    shard: int  # index into the combined shard list
    slot: int  # index into the shard's activity tuple
    time: float
    retries: int = 0


def _vm_bundle(act: VmLabActivity) -> dict[str, float]:
    flavor = CHAMELEON_FLAVORS[act.flavor]
    bundle = {
        "floating_ips": 1.0,
        "instances": float(act.vm_count),
        "cores": float(act.vm_count * flavor.vcpus),
        "ram_gib": float(act.vm_count * flavor.ram_gib),
    }
    if act.block_gb:
        bundle["volumes"] = 1.0
        bundle["volume_storage_gb"] = float(act.block_gb)
    return bundle


def _project_vm_bundle(act: ProjectVmActivity) -> dict[str, float]:
    flavor = CHAMELEON_FLAVORS[act.flavor]
    bundle = {
        "instances": 1.0,
        "cores": float(flavor.vcpus),
        "ram_gib": float(flavor.ram_gib),
    }
    if act.with_fip:
        bundle["floating_ips"] = 1.0
    return bundle


def _storage_bundle(act: ProjectStorageActivity) -> dict[str, float]:
    return {"volumes": 1.0, "volume_storage_gb": float(max(1, act.block_gb))}


def _admission_sweeps(
    student_shards: tuple[ShardPlan, ...],
    group_shards: tuple[ShardPlan, ...],
    *,
    quota: Quota,
    slot_capacity: dict[str, int],
    semester_hours: float,
    config: CohortConfig,
) -> tuple[tuple[ShardPlan, ...], tuple[ShardPlan, ...]]:
    """Run both sweeps; returns shards with admitted start times baked in."""
    shards = list(student_shards) + list(group_shards)
    shards = _sweep_kvm_quota(shards, quota, semester_hours, config)
    shards = _sweep_lease_calendar(shards, slot_capacity, semester_hours)
    n = len(student_shards)
    return tuple(shards[:n]), tuple(shards[n:])


def _sweep_kvm_quota(
    shards: list[ShardPlan], quota: Quota, semester_hours: float, config: CohortConfig
) -> list[ShardPlan]:
    limits = {
        dim: getattr(quota, dim)
        for dim in ("instances", "cores", "ram_gib", "floating_ips", "volumes", "volume_storage_gb")
    }
    in_use = dict.fromkeys(limits, 0.0)
    releases: list[tuple[float, int, dict[str, float]]] = []  # (time, tiebreak, bundle)

    # arrivals in serial event-scheduling order: shard-major, stored order
    heap: list[tuple[float, int, str, _Arrival]] = []
    rank = 0
    for si, shard in enumerate(shards):
        for ai, act in enumerate(shard.vm_labs):
            heapq.heappush(heap, (act.start, rank, "vm_labs", _Arrival(si, ai, act.start)))
            rank += 1
        for ai, act in enumerate(shard.project_vms):
            heapq.heappush(heap, (act.start, rank, "project_vms", _Arrival(si, ai, act.start)))
            rank += 1
        for ai, act in enumerate(shard.project_storage):
            heapq.heappush(heap, (act.start, rank, "project_storage", _Arrival(si, ai, act.start)))
            rank += 1

    admitted: dict[tuple[int, str, int], float | None] = {}  # -> start (None = dropped)
    release_seq = 0

    def _free_until(t: float) -> None:
        # releases strictly before t only — see the conservatism note above
        while releases and releases[0][0] < t:
            _, _, bundle = heapq.heappop(releases)
            for dim, amount in bundle.items():
                in_use[dim] -= amount

    def _fits(bundle: dict[str, float]) -> bool:
        return all(in_use[dim] + amount <= limits[dim] for dim, amount in bundle.items())

    def _hold(bundle: dict[str, float], end: float) -> None:
        nonlocal release_seq
        for dim, amount in bundle.items():
            in_use[dim] += amount
        release_seq += 1
        heapq.heappush(releases, (end, release_seq, bundle))

    while heap:
        t, arrival_rank, field_name, arr = heapq.heappop(heap)
        _free_until(t)
        shard = shards[arr.shard]
        act = getattr(shard, field_name)[arr.slot]
        key = (arr.shard, field_name, arr.slot)
        if field_name == "vm_labs":
            end = min(t + act.duration, semester_hours - 1e-6)
            if end <= t:
                admitted[key] = None  # starts after staff clean-up: never runs
                continue
            bundle = _vm_bundle(act)
            policy = config.quota_retry
            if _fits(bundle):
                _hold(bundle, end)
                admitted[key] = t
            elif (
                not policy.allows_retry(arr.retries, elapsed_hours=t - arr.time)
                or t + policy.backoff_hours(arr.retries + 1) > semester_hours
            ):
                admitted[key] = None  # the student gives up this week
            else:
                rank += 1
                arr.retries += 1
                heapq.heappush(
                    heap, (t + policy.backoff_hours(arr.retries), rank, field_name, arr)
                )
        elif field_name == "project_vms":
            end = min(t + act.hours, semester_hours - 1e-6)
            bundle = _project_vm_bundle(act)
            if end > t and _fits(bundle):
                _hold(bundle, end)
                admitted[key] = t
            elif t + 12.0 > semester_hours or end <= t:
                admitted[key] = None
            else:
                rank += 1
                heapq.heappush(heap, (t + 12.0, rank, field_name, arr))
        else:  # project_storage: created unconditionally at runtime; count the hold
            end = min(t + act.hours, semester_hours - 1e-6)
            _hold(_storage_bundle(act), max(end, t))
            admitted[key] = t

    return _apply_admissions(shards, admitted, ("vm_labs", "project_vms", "project_storage"))


def _sweep_lease_calendar(
    shards: list[ShardPlan], slot_capacity: dict[str, int], semester_hours: float
) -> list[ShardPlan]:
    # active[(site, node_type)] -> list of [start, end) intervals still live
    active: dict[tuple[str, str], list[tuple[float, float]]] = {}

    heap: list[tuple[float, int, str, _Arrival]] = []
    rank = 0
    for si, shard in enumerate(shards):
        for ai, act in enumerate(shard.slots):
            heapq.heappush(heap, (act.start, rank, "slots", _Arrival(si, ai, act.start)))
            rank += 1
        for ai, act in enumerate(shard.project_leases):
            heapq.heappush(heap, (act.start, rank, "project_leases", _Arrival(si, ai, act.start)))
            rank += 1

    admitted: dict[tuple[int, str, int], float | None] = {}
    while heap:
        t, arrival_rank, field_name, arr = heapq.heappop(heap)
        shard = shards[arr.shard]
        act = getattr(shard, field_name)[arr.slot]
        key = (arr.shard, field_name, arr.slot)
        if field_name == "slots":
            end = t + act.slot_hours
            step = act.slot_hours
            max_retries = None  # _book_slot re-books indefinitely
        else:
            end = min(t + act.hours, semester_hours - 1e-6)
            step = act.hours
            max_retries = 200
            if end <= t:
                admitted[key] = None
                continue
        cal_key = (act.site, act.node_type)
        live = [iv for iv in active.get(cal_key, ()) if iv[1] > t]
        if len(live) + 1 <= slot_capacity[act.node_type]:
            live.append((t, end))
            active[cal_key] = live
            admitted[key] = t
        elif (max_retries is not None and arr.retries >= max_retries) or t + step > semester_hours:
            active[cal_key] = live
            admitted[key] = None
        else:
            active[cal_key] = live
            rank += 1
            arr.retries += 1
            heapq.heappush(heap, (t + step, rank, field_name, arr))

    return _apply_admissions(shards, admitted, ("slots", "project_leases"))


def _apply_admissions(
    shards: list[ShardPlan],
    admitted: dict[tuple[int, str, int], float | None],
    fields_swept: tuple[str, ...],
) -> list[ShardPlan]:
    out: list[ShardPlan] = []
    for si, shard in enumerate(shards):
        updates: dict[str, tuple] = {}
        for field_name in fields_swept:
            acts = getattr(shard, field_name)
            new_acts = []
            changed = False
            for ai, act in enumerate(acts):
                start = admitted.get((si, field_name, ai), act.start)
                if start is None:
                    changed = True
                    continue  # dropped: quota never freed up / calendar full
                if start != act.start:
                    act = replace(act, start=start)
                    changed = True
                new_acts.append(act)
            if changed:
                updates[field_name] = tuple(new_acts)
        out.append(replace(shard, **updates) if updates else shard)
    return out


# -- execution ---------------------------------------------------------------------
#
# Executing a shard schedules its activities onto whatever testbed it is
# handed: the serial path hands every shard the one shared testbed, the
# parallel path hands each worker a fresh one.  The callbacks below are
# the same provisioning flows the reactive simulator used; the retry /
# conflict branches are kept as a defensive mirror but are dead code for
# plan-admitted activities (see the sweep notes above).


def execute_shard(
    shard: ShardPlan, testbed: Testbed, *, semester_hours: float, config: CohortConfig
) -> None:
    """Schedule every activity of ``shard`` onto ``testbed``."""
    for act in shard.vm_labs:
        _schedule_vm_set(testbed, act, semester_hours, config)
    for slot_act in shard.slots:
        _schedule_slot(testbed, slot_act)
    for vm_act in shard.project_vms:
        _schedule_project_vm(testbed, vm_act, semester_hours)
    for lease_act in shard.project_leases:
        _schedule_project_lease(testbed, lease_act, semester_hours)
    for storage_act in shard.project_storage:
        _schedule_project_storage(testbed, storage_act, semester_hours)


def _schedule_vm_set(
    testbed: Testbed, act: VmLabActivity, semester_hours: float, config: CohortConfig
) -> None:
    site = testbed.site(KVM_SITE)
    testbed.loop.schedule(
        act.start,
        lambda: _provision_vm_set(testbed, site, act, semester_hours, config, retries=0),
        label=f"{act.lab_id}:{act.user}:provision",
    )


def _provision_vm_set(
    testbed: Testbed,
    site: Site,
    act: VmLabActivity,
    semester_hours: float,
    config: CohortConfig,
    *,
    retries: int,
) -> None:
    now = testbed.clock.now
    end = min(now + act.duration, semester_hours - 1e-6)
    if end <= now:
        return
    try:
        fip = site.network.allocate_floating_ip("course", lab=act.lab_id, user=act.user)
        servers = []
        try:
            for k in range(act.vm_count):
                servers.append(
                    site.compute.create_server(
                        "course", f"{act.user}-{act.lab_id}-node{k}", act.flavor,
                        user=act.user, lab=act.lab_id,
                    )
                )
        except QuotaExceededError:
            for s in servers:
                site.compute.delete_server(s.id)
            site.network.release_floating_ip(fip.id)
            raise
    except QuotaExceededError:
        if not config.quota_retry.allows_retry(retries, elapsed_hours=now - act.start):
            return  # the student gives up this week
        testbed.loop.schedule(
            now + config.quota_retry.backoff_hours(retries + 1),
            lambda: _provision_vm_set(
                testbed, site, act, semester_hours, config, retries=retries + 1
            ),
            label=f"{act.lab_id}:{act.user}:retry",
        )
        return

    site.compute.associate_floating_ip(servers[0].id, fip.id)
    volume = None
    if act.block_gb:
        volume = site.block_storage.create_volume(
            "course", f"{act.user}-{act.lab_id}-vol", act.block_gb, user=act.user, lab=act.lab_id
        )
        site.block_storage.attach(volume.id, servers[0].id)

    def teardown(servers=servers, fip=fip, volume=volume) -> None:
        for s in servers:
            if s.id in site.compute.servers:
                site.compute.delete_server(s.id)
        if fip.id in site.network.floating_ips:
            site.network.release_floating_ip(fip.id)
        if volume is not None and volume.id in site.block_storage.volumes:
            site.block_storage.detach(volume.id)
            site.block_storage.delete_volume(volume.id)

    testbed.loop.schedule(max(now, end), teardown, label=f"{act.lab_id}:{act.user}:teardown")
    if act.object_gb:
        # object data persists as long as the lab instance
        span_hours = max(0.0, end - now)
        testbed.loop.schedule(
            max(now, end),
            lambda: site.object_storage.record_external_usage(
                "course", gb=act.object_gb, hours=span_hours, user=act.user, lab=act.lab_id
            ),
            label=f"{act.lab_id}:{act.user}:objspan",
        )


def _schedule_slot(testbed: Testbed, act: SlotActivity) -> None:
    site = testbed.site(act.site)

    def provision() -> None:
        now = testbed.clock.now
        try:
            lease = site.leases.create_lease(
                "course", act.node_type,
                start=now, end=now + act.slot_hours,
                user=act.user, lab=act.lab_id,
            )
        except ConflictError:
            # calendar contention: take the next slot
            _schedule_slot(testbed, replace(act, start=now + act.slot_hours))
            return
        fip = site.network.allocate_floating_ip("course", lab=act.lab_id, user=act.user)
        if act.edge:
            site.compute.create_edge_session(
                "course", f"{act.user}-{act.lab_id}", act.node_type, lease.id,
                user=act.user, lab=act.lab_id,
            )
        else:
            site.compute.create_baremetal(
                "course", f"{act.user}-{act.lab_id}", act.node_type, lease.id,
                user=act.user, lab=act.lab_id,
            )
        # the floating IP is released when the lease auto-terminates
        testbed.loop.schedule(
            lease.end,
            lambda: site.network.release_floating_ip(fip.id)
            if fip.id in site.network.floating_ips
            else None,
            priority=10,  # after the lease-expiry event
            label=f"{act.lab_id}:{act.user}:fip-release",
        )

    testbed.loop.schedule(act.start, provision, label=f"{act.lab_id}:{act.user}:slot")


def _schedule_project_vm(testbed: Testbed, act: ProjectVmActivity, semester_hours: float) -> None:
    site = testbed.site(KVM_SITE)

    def provision() -> None:
        fip = None
        try:
            server = site.compute.create_server(
                "course", f"{act.user}-{act.flavor}", act.flavor, user=act.user, lab="project"
            )
            if act.with_fip:
                fip = site.network.allocate_floating_ip("course", lab="project", user=act.user)
                site.compute.associate_floating_ip(server.id, fip.id)
        except QuotaExceededError:
            testbed.loop.schedule_in(12.0, provision, label=f"project:{act.user}:retry")
            return
        end = min(testbed.clock.now + act.hours, semester_hours - 1e-6)

        def teardown() -> None:
            if server.id in site.compute.servers:
                site.compute.delete_server(server.id)
            if fip is not None and fip.id in site.network.floating_ips:
                site.network.release_floating_ip(fip.id)

        testbed.loop.schedule(end, teardown, label=f"project:{act.user}:teardown")

    testbed.loop.schedule(act.start, provision, label=f"project:{act.user}:{act.flavor}")


def _schedule_project_lease(
    testbed: Testbed, act: ProjectLeaseActivity, semester_hours: float, *, retries: int = 0
) -> None:
    site = testbed.site(act.site)

    def provision() -> None:
        now = testbed.clock.now
        end = min(now + act.hours, semester_hours - 1e-6)
        if end <= now:
            return
        try:
            lease = site.leases.create_lease(
                "course", act.node_type, start=now, end=end, user=act.user, lab="project"
            )
        except ConflictError:
            if retries < 200:  # calendar contention: try the next slot
                _schedule_project_lease(
                    testbed, replace(act, start=now + act.hours), semester_hours,
                    retries=retries + 1,
                )
            return
        if act.edge_session:
            site.compute.create_edge_session(
                "course", f"{act.user}-{act.node_type}", act.node_type, lease.id,
                user=act.user, lab="project",
            )
        else:
            site.compute.create_baremetal(
                "course", f"{act.user}-{act.node_type}", act.node_type, lease.id,
                user=act.user, lab="project",
            )

    testbed.loop.schedule(act.start, provision, label=f"project:{act.user}:{act.node_type}")


def _schedule_project_storage(
    testbed: Testbed, act: ProjectStorageActivity, semester_hours: float
) -> None:
    site = testbed.site(KVM_SITE)

    def provision() -> None:
        vol = site.block_storage.create_volume(
            "course", f"{act.user}-data", max(1, act.block_gb), user=act.user, lab="project"
        )
        end = min(testbed.clock.now + act.hours, semester_hours - 1e-6)
        testbed.loop.schedule(
            end,
            lambda: site.block_storage.delete_volume(vol.id)
            if vol.id in site.block_storage.volumes
            else None,
            label=f"project:{act.user}:vol-delete",
        )
        testbed.loop.schedule(
            end,
            lambda: site.object_storage.record_external_usage(
                "course", gb=act.object_gb, hours=act.hours, user=act.user, lab="project"
            ),
            label=f"project:{act.user}:obj",
        )

    testbed.loop.schedule(act.start, provision, label=f"project:{act.user}:storage")


def cleanup_leftovers(testbed: Testbed) -> None:
    """Staff teardown at semester end: close any still-open spans."""
    for site in testbed.sites.values():
        for server_id in list(site.compute.servers):
            site.compute.delete_server(server_id)
        for fip_id in list(site.network.floating_ips):
            site.network.release_floating_ip(fip_id)
        for vol_id in list(site.block_storage.volumes):
            vol = site.block_storage.volumes[vol_id]
            if vol.attached_to is not None:
                site.block_storage.detach(vol_id)
            site.block_storage.delete_volume(vol_id)


# -- the serial front-end ----------------------------------------------------------


class CohortSimulation:
    """One semester of simulated usage on a Chameleon-shaped testbed.

    ``run()`` is the serial reference execution: it plans the cohort,
    schedules every shard onto the one shared testbed, and returns the
    canonicalized record stream.  ``repro.parallel.run_parallel`` executes
    the same plan across worker processes and merges to the identical
    stream.
    """

    def __init__(
        self,
        course: CourseDefinition = COURSE,
        config: CohortConfig | None = None,
        *,
        faults: FaultModel | None = None,
        plan: CohortPlan | None = None,
    ) -> None:
        self.course = course
        self.config = config if config is not None else CohortConfig()
        self.faults = faults
        self.testbed: Testbed = chameleon(quota=quota_for(course))
        self._ran = False
        # an injected plan (e.g. one already fault-swept) is reused as-is,
        # so serial and parallel runs of the same plan share its bytes
        self._plan: CohortPlan | None = plan

    def plan(self) -> CohortPlan:
        """The resolved semester plan (computed once, cached)."""
        if self._plan is None:
            self._plan = plan_cohort(self.course, self.config, faults=self.faults)
        return self._plan

    def run(self, *, include_project: bool = True) -> list[UsageRecord]:
        """Simulate the semester and return all usage records."""
        if self._ran:
            raise ValidationError("simulation already ran; build a fresh CohortSimulation")
        self._ran = True
        plan = self.plan()
        for shard in plan.shards(include_project=include_project):
            execute_shard(shard, self.testbed, semester_hours=plan.semester_hours, config=self.config)
        self.testbed.run_until(plan.semester_hours)
        cleanup_leftovers(self.testbed)
        return canonicalize_records([self.testbed.usage_records()])
