"""The student-cohort behaviour simulation.

Drives the :mod:`repro.cloud` testbed with 191 simulated students over a
14-week semester, reproducing the *mechanisms* behind the paper's §5
observations:

* **VM labs** (Units 1-3, 7, 8): students provision on-demand instances
  that persist until explicitly deleted.  Persistence is drawn from a
  heavy-tailed lognormal whose mean is calibrated from Table 1 —
  "sometimes intentionally (to avoid repeating lengthy setup), other
  times due to neglect" (§5).  Durations are capped at semester end
  (staff clean-up), and provisioning retries later when the shared
  project quota is momentarily exhausted.
* **Reserved labs** (Units 4-6): students book 2-3-hour slots on
  bare-metal/edge nodes through the lease system; auto-termination makes
  actual usage equal booked usage (Fig 1(b)).  Re-run counts are Poisson
  with Table-1-calibrated means.
* **Projects**: groups of 3-4 run long-lived service VMs, GPU training
  slots, big-data bare-metal jobs, edge deployments, and storage for the
  final ~6.5 weeks (§5's project usage).

Everything is seeded; totals land within a few percent of Table 1
(asserted in tests with tolerant bands), while the *distribution* of
per-student cost (Fig 2) emerges from the behaviour model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.cloud.metering import UsageRecord
from repro.cloud.site import Site
from repro.cloud.testbed import Testbed, chameleon
from repro.common.errors import QuotaExceededError, ValidationError
from repro.core.course import COURSE, CourseDefinition, LabAssignment, LabKind


@dataclass(frozen=True)
class CohortConfig:
    """Knobs of the behaviour model."""

    seed: int = 42
    participation: float = 1.0  # fraction of students attempting each lab
    quota_retry_hours: float = 6.0
    max_quota_retries: int = 60
    vm_reaper: bool = False  # ablation: auto-terminate VM labs at expected+grace
    vm_reaper_grace: float = 2.0  # hours beyond expected before the reaper fires
    # per-student "negligence propensity": one lognormal factor applied to a
    # student's behaviour in EVERY lab (VM persistence, re-run counts), so
    # the long tail of Fig 2 is a few students who are costly everywhere.
    propensity_sigma: float = 0.5

    def __post_init__(self) -> None:
        if not (0 < self.participation <= 1):
            raise ValidationError(f"participation must be in (0,1]: {self.participation!r}")
        if self.propensity_sigma < 0:
            raise ValidationError("propensity sigma cannot be negative")


def stratified_lognormal(mean: float, sigma: float, n: int, rng: np.random.Generator) -> np.ndarray:
    """``n`` lognormal draws with the exact target mean, heavy tail intact.

    Uses stratified inverse-CDF sampling (one jittered quantile per stratum,
    then a random permutation).  The sample mean is within a fraction of a
    percent of ``mean`` even for n=191 and sigma>1 — which is what lets the
    cohort's Table-1 row totals land on the calibration targets without
    giving up the lognormal's tail (the variance-reduction idiom of the
    HPC guides: restructure the sampling, don't inflate the sample).
    """
    if mean <= 0 or sigma < 0 or n <= 0:
        raise ValidationError("invalid stratified-lognormal parameters")
    mu = np.log(mean) - sigma**2 / 2.0
    quantiles = (np.arange(n) + rng.uniform(0.02, 0.98, size=n)) / n
    draws = np.exp(mu + sigma * stats.norm.ppf(quantiles))
    rng.shuffle(draws)
    return draws


def capped_mean_compensation(target_mean: float, sigma: float, cap: float) -> float:
    """Raw lognormal mean whose cap-at-``cap`` expectation equals the target.

    E[min(X, c)] for X ~ LN(mu, sigma) is
    ``e^{mu+s^2/2} Phi((ln c - mu - s^2)/s) + c (1 - Phi((ln c - mu)/s))``;
    we bisect on the raw mean.  Compensates for the semester-end staff
    clean-up truncating the persistence distribution.
    """
    if cap <= target_mean:
        raise ValidationError(f"cap {cap} must exceed the target mean {target_mean}")

    def capped_mean(raw_mean: float) -> float:
        mu = np.log(raw_mean) - sigma**2 / 2.0
        z1 = (np.log(cap) - mu - sigma**2) / sigma
        z2 = (np.log(cap) - mu) / sigma
        return float(raw_mean * stats.norm.cdf(z1) + cap * stats.norm.sf(z2))

    lo, hi = target_mean, target_mean * 10.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if capped_mean(mid) < target_mean:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-9 * target_mean:
            break
    return 0.5 * (lo + hi)


class CohortSimulation:
    """One semester of simulated usage on a Chameleon-shaped testbed."""

    def __init__(self, course: CourseDefinition = COURSE, config: CohortConfig | None = None) -> None:
        self.course = course
        self.config = config if config is not None else CohortConfig()
        self.testbed: Testbed = chameleon()
        self._rng = np.random.default_rng(self.config.seed)
        self._slot_cursors: dict[str, int] = {}  # node_type -> next slot index
        self._ran = False
        # one negligence factor per student, shared across all labs
        self._propensity = stratified_lognormal(
            1.0, self.config.propensity_sigma, self.course.enrollment, self._rng
        )

    # -- public API --------------------------------------------------------------

    def run(self, *, include_project: bool = True) -> list[UsageRecord]:
        """Simulate the semester and return all usage records."""
        if self._ran:
            raise ValidationError("simulation already ran; build a fresh CohortSimulation")
        self._ran = True
        for lab in self.course.labs:
            if lab.kind is LabKind.VM:
                self._schedule_vm_lab(lab)
            else:
                self._schedule_reserved_lab(lab)
        if include_project:
            self._schedule_project()
        self.testbed.run_until(self.course.semester_hours)
        self._cleanup_leftovers()
        return self.testbed.usage_records()

    # -- VM labs -------------------------------------------------------------------

    def _schedule_vm_lab(self, lab: LabAssignment) -> None:
        kvm = self.testbed.site("kvm@tacc")
        semester_end = self.course.semester_hours
        n = self.course.enrollment
        doing = self._rng.random(n) < self.config.participation
        starts = lab.week * 168.0 + self._rng.uniform(0.0, 96.0, size=n)
        # calibrated mean, corrected for participation and semester-end capping
        target = (lab.mean_actual_hours or 1.0) / self.config.participation
        cap = semester_end - (lab.week * 168.0 + 48.0)
        raw_mean = capped_mean_compensation(target, lab.sigma, cap)
        # stratified draw (exact mean), then assign the longest durations to
        # the most negligence-prone students so the per-student tail of
        # Fig 2 is correlated across labs
        durations = np.sort(stratified_lognormal(raw_mean, lab.sigma, n, self._rng))
        scores = self._propensity * self._rng.lognormal(0.0, 0.5, size=n)
        assigned = np.empty(n)
        assigned[np.argsort(scores)] = durations
        durations = np.maximum(assigned, lab.expected_hours * 0.5)  # nobody quits instantly
        if self.config.vm_reaper:
            durations = np.minimum(durations, lab.expected_hours + self.config.vm_reaper_grace)
        for i in range(n):
            if not doing[i]:
                continue
            start = float(starts[i])
            duration = float(durations[i])
            self.testbed.loop.schedule(
                start,
                lambda lab=lab, user=f"student{i:03d}", duration=duration, site=kvm: (
                    self._provision_vm_set(site, lab, user, duration, retries=0)
                ),
                label=f"{lab.id}:{i}:provision",
            )

    def _provision_vm_set(
        self, site: Site, lab: LabAssignment, user: str, duration: float, *, retries: int
    ) -> None:
        now = self.testbed.clock.now
        end = min(now + duration, self.course.semester_hours - 1e-6)
        if end <= now:
            return
        try:
            fip = site.network.allocate_floating_ip("course", lab=lab.id, user=user)
            servers = []
            try:
                for k in range(lab.vm_count):
                    servers.append(
                        site.compute.create_server(
                            "course", f"{user}-{lab.id}-node{k}", lab.flavor,
                            user=user, lab=lab.id,
                        )
                    )
            except QuotaExceededError:
                for s in servers:
                    site.compute.delete_server(s.id)
                site.network.release_floating_ip(fip.id)
                raise
        except QuotaExceededError:
            if retries >= self.config.max_quota_retries:
                return  # the student gives up this week
            self.testbed.loop.schedule(
                now + self.config.quota_retry_hours,
                lambda: self._provision_vm_set(site, lab, user, duration, retries=retries + 1),
                label=f"{lab.id}:{user}:retry",
            )
            return

        site.compute.associate_floating_ip(servers[0].id, fip.id)
        volume = None
        if lab.block_gb:
            volume = site.block_storage.create_volume(
                "course", f"{user}-{lab.id}-vol", lab.block_gb, user=user, lab=lab.id
            )
            site.block_storage.attach(volume.id, servers[0].id)
        def teardown(servers=servers, fip=fip, volume=volume) -> None:
            for s in servers:
                if s.id in site.compute.servers:
                    site.compute.delete_server(s.id)
            if fip.id in site.network.floating_ips:
                site.network.release_floating_ip(fip.id)
            if volume is not None and volume.id in site.block_storage.volumes:
                site.block_storage.detach(volume.id)
                site.block_storage.delete_volume(volume.id)

        self.testbed.loop.schedule(max(now, end), teardown, label=f"{lab.id}:{user}:teardown")
        if lab.object_gb:
            # object data persists as long as the lab instance
            duration = max(0.0, end - now)
            self.testbed.loop.schedule(
                max(now, end),
                lambda: site.object_storage.record_external_usage(
                    "course", gb=lab.object_gb, hours=duration, user=user, lab=lab.id
                ),
                label=f"{lab.id}:{user}:objspan",
            )

    # -- reserved labs --------------------------------------------------------------

    def _schedule_reserved_lab(self, lab: LabAssignment) -> None:
        n = self.course.enrollment
        site_name = "chi@edge" if lab.kind is LabKind.EDGE else "chi@tacc"
        site = self.testbed.site(site_name)
        # re-run counts scale with the shared negligence propensity (students
        # who forget VMs also redo GPU labs more), giving the Fig-2 tail its
        # GPU component while preserving the calibrated mean
        slot_counts = self._rng.poisson(lab.mean_slots * self._propensity, size=n)
        option_names = [o.node_type for o in lab.options]
        option_weights = np.array([o.weight for o in lab.options])
        week_start = lab.week * 168.0
        for i in range(n):
            for _slot in range(int(slot_counts[i])):
                node_type = str(self._rng.choice(option_names, p=option_weights))
                start = self._next_slot_start(site, node_type, week_start, lab.slot_hours)
                self._book_slot(site, lab, node_type, f"student{i:03d}", start)

    def _next_slot_start(
        self, site: Site, node_type: str, week_start: float, slot_hours: float
    ) -> float:
        """Serial, conflict-free slot calendar per node type."""
        capacity = site.leases.capacity(node_type)
        cursor = self._slot_cursors.get(node_type, 0)
        self._slot_cursors[node_type] = cursor + 1
        round_idx = cursor // capacity
        return week_start + round_idx * slot_hours

    def _book_slot(
        self, site: Site, lab: LabAssignment, node_type: str, user: str, start: float
    ) -> None:
        def provision() -> None:
            from repro.common.errors import ConflictError

            try:
                lease = site.leases.create_lease(
                    "course", node_type,
                    start=self.testbed.clock.now,
                    end=self.testbed.clock.now + lab.slot_hours,
                    user=user, lab=lab.id,
                )
            except ConflictError:
                # calendar contention: take the next slot
                self._book_slot(site, lab, node_type, user,
                                self.testbed.clock.now + lab.slot_hours)
                return
            fip = site.network.allocate_floating_ip("course", lab=lab.id, user=user)
            if lab.kind is LabKind.EDGE:
                site.compute.create_edge_session(
                    "course", f"{user}-{lab.id}", node_type, lease.id, user=user, lab=lab.id
                )
            else:
                site.compute.create_baremetal(
                    "course", f"{user}-{lab.id}", node_type, lease.id, user=user, lab=lab.id
                )
            # the floating IP is released when the lease auto-terminates
            self.testbed.loop.schedule(
                lease.end,
                lambda: site.network.release_floating_ip(fip.id)
                if fip.id in site.network.floating_ips
                else None,
                priority=10,  # after the lease-expiry event
                label=f"{lab.id}:{user}:fip-release",
            )

        self.testbed.loop.schedule(start, provision, label=f"{lab.id}:{user}:slot")

    # -- project phase -----------------------------------------------------------------

    def _schedule_project(self) -> None:
        project = self.course.project
        start = (self.course.semester_weeks - project.weeks) * 168.0
        duration = project.weeks * 168.0
        kvm = self.testbed.site("kvm@tacc")
        metal = self.testbed.site("chi@tacc")
        edge = self.testbed.site("chi@edge")
        g = project.groups

        for group in range(g):
            user = f"group{group:02d}"
            jitter = float(self._rng.uniform(0.0, 48.0))
            g_start = start + jitter

            # long-lived service VMs per flavor; one floating IP per group
            for idx, (flavor, share) in enumerate(project.vm_flavor_shares):
                hours = project.vm_hours_total * share / g
                hours *= float(self._rng.lognormal(-0.02, 0.2))  # mild group-to-group spread
                hours = min(hours, duration - jitter)
                self._project_vm(kvm, user, flavor, g_start, hours, with_fip=(idx == 0))

            # GPU training slots (4-hour blocks); shared slot calendar base
            for node_type, share in project.gpu_type_shares:
                hours = project.gpu_hours_total * share / g
                n_slots = max(1, int(round(hours / 4.0)))
                for _ in range(n_slots):
                    s = self._next_slot_start(metal, node_type, start, 4.0)
                    self._project_lease(metal, user, node_type, s, 4.0)

            # big-data bare-metal (CPU) job
            bm_hours = project.baremetal_cpu_hours / g
            s = self._next_slot_start(metal, project.baremetal_cpu_type, start, bm_hours)
            self._project_lease(metal, user, project.baremetal_cpu_type, s, bm_hours)

            # edge deployment slots
            edge_hours = project.edge_hours / g
            s = self._next_slot_start(edge, project.edge_type, start, edge_hours)
            self._project_lease(edge, user, project.edge_type, s, edge_hours, edge_session=True)

            # storage for the whole project window
            block_gb = int(round(project.block_storage_gb / g))
            object_gb = project.object_storage_gb / g
            self.testbed.loop.schedule(
                g_start,
                lambda u=user, bg=block_gb, og=object_gb, d=duration - jitter: (
                    self._project_storage(kvm, u, bg, og, d)
                ),
                label=f"project:{user}:storage",
            )

    def _project_vm(
        self, site: Site, user: str, flavor: str, start: float, hours: float, *, with_fip: bool
    ) -> None:
        def provision() -> None:
            fip = None
            try:
                server = site.compute.create_server(
                    "course", f"{user}-{flavor}", flavor, user=user, lab="project"
                )
                if with_fip:
                    fip = site.network.allocate_floating_ip("course", lab="project", user=user)
                    site.compute.associate_floating_ip(server.id, fip.id)
            except QuotaExceededError:
                self.testbed.loop.schedule_in(12.0, provision, label=f"project:{user}:retry")
                return
            end = min(self.testbed.clock.now + hours, self.course.semester_hours - 1e-6)

            def teardown() -> None:
                if server.id in site.compute.servers:
                    site.compute.delete_server(server.id)
                if fip is not None and fip.id in site.network.floating_ips:
                    site.network.release_floating_ip(fip.id)

            self.testbed.loop.schedule(end, teardown, label=f"project:{user}:teardown")

        self.testbed.loop.schedule(start, provision, label=f"project:{user}:{flavor}")

    def _project_lease(
        self, site: Site, user: str, node_type: str, start: float, hours: float,
        *, edge_session: bool = False, retries: int = 0,
    ) -> None:
        def provision() -> None:
            from repro.common.errors import ConflictError

            now = self.testbed.clock.now
            end = min(now + hours, self.course.semester_hours - 1e-6)
            if end <= now:
                return
            try:
                lease = site.leases.create_lease(
                    "course", node_type, start=now, end=end, user=user, lab="project"
                )
            except ConflictError:
                if retries < 200:  # calendar contention: try the next slot
                    self._project_lease(
                        site, user, node_type, now + hours, hours,
                        edge_session=edge_session, retries=retries + 1,
                    )
                return
            if edge_session:
                site.compute.create_edge_session(
                    "course", f"{user}-{node_type}", node_type, lease.id, user=user, lab="project"
                )
            else:
                site.compute.create_baremetal(
                    "course", f"{user}-{node_type}", node_type, lease.id, user=user, lab="project"
                )

        self.testbed.loop.schedule(start, provision, label=f"project:{user}:{node_type}")

    def _project_storage(self, site: Site, user: str, block_gb: int, object_gb: float, hours: float) -> None:
        vol = site.block_storage.create_volume(
            "course", f"{user}-data", max(1, block_gb), user=user, lab="project"
        )
        end = min(self.testbed.clock.now + hours, self.course.semester_hours - 1e-6)
        self.testbed.loop.schedule(
            end,
            lambda: site.block_storage.delete_volume(vol.id)
            if vol.id in site.block_storage.volumes
            else None,
            label=f"project:{user}:vol-delete",
        )
        self.testbed.loop.schedule(
            end,
            lambda d=hours: site.object_storage.record_external_usage(
                "course", gb=object_gb, hours=d, user=user, lab="project"
            ),
            label=f"project:{user}:obj",
        )

    # -- end of semester -------------------------------------------------------------

    def _cleanup_leftovers(self) -> None:
        """Staff teardown at semester end: close any still-open spans."""
        for site in self.testbed.sites.values():
            for server_id in list(site.compute.servers):
                site.compute.delete_server(server_id)
            for fip_id in list(site.network.floating_ips):
                site.network.release_floating_ip(fip_id)
            for vol_id in list(site.block_storage.volumes):
                vol = site.block_storage.volumes[vol_id]
                if vol.attached_to is not None:
                    site.block_storage.detach(vol_id)
                site.block_storage.delete_volume(vol_id)
