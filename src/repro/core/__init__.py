"""The paper's contribution: course usage analysis and cloud cost model.

This package regenerates §5 of the paper — Table 1 (usage and estimated
cost per lab assignment), Fig 1 (expected vs actual duration), Fig 2
(per-student cost distribution), Fig 3 (project usage by instance type)
— from a mechanistic simulation:

* :mod:`repro.core.course` — the course definition: every lab's
  infrastructure requirements and expected durations (paper §3).
* :mod:`repro.core.catalog` — an offline AWS/GCP pricing snapshot
  (July-2025-style on-demand rates).
* :mod:`repro.core.matching` — the paper's "most cost-effective cloud
  instance that met the specific needs of each assignment" algorithm.
* :mod:`repro.core.cohort` — the 191-student behaviour simulation that
  drives the :mod:`repro.cloud` testbed and produces usage records.
* :mod:`repro.core.usage` — aggregation of usage records into the
  per-assignment rows of Table 1.
* :mod:`repro.core.costmodel` — usage -> commercial-cloud dollars.
* :mod:`repro.core.report` — the table/figure generators.
"""

from repro.core.catalog import AWS_CATALOG, GCP_CATALOG, CloudInstance, PricingCatalog
from repro.core.cohort import (
    CohortConfig,
    CohortPlan,
    CohortSimulation,
    ShardPlan,
    execute_shard,
    plan_cohort,
)
from repro.core.costmodel import (
    CostModel,
    LabCostRow,
    OutageLabCostRow,
    OutageScenario,
    ServingCostRow,
    SpotLabCostRow,
    SpotScenario,
    serving_cost_row,
    serving_equivalent,
)
from repro.core.course import (
    COURSE,
    CourseDefinition,
    LabAssignment,
    LabKind,
    RequirementSpec,
    scaled_course,
)
from repro.core.matching import cheapest_match
from repro.core.report import (
    FaultReport,
    OutageWhatIf,
    fault_accounting,
    fig1_duration_data,
    fig2_cost_distribution,
    fig3_project_usage,
    outage_whatif,
    records_digest,
    spot_headline_summary,
    spot_whatif,
    table1,
)
from repro.core.usage import (
    AssignmentUsage,
    aggregate_by_assignment,
    canonical_sort_key,
    canonicalize_records,
)

__all__ = [
    "CloudInstance",
    "PricingCatalog",
    "AWS_CATALOG",
    "GCP_CATALOG",
    "RequirementSpec",
    "cheapest_match",
    "LabKind",
    "LabAssignment",
    "CourseDefinition",
    "COURSE",
    "scaled_course",
    "CohortConfig",
    "CohortSimulation",
    "CohortPlan",
    "ShardPlan",
    "plan_cohort",
    "execute_shard",
    "AssignmentUsage",
    "aggregate_by_assignment",
    "canonical_sort_key",
    "canonicalize_records",
    "records_digest",
    "CostModel",
    "LabCostRow",
    "SpotLabCostRow",
    "SpotScenario",
    "OutageLabCostRow",
    "OutageScenario",
    "OutageWhatIf",
    "ServingCostRow",
    "serving_cost_row",
    "serving_equivalent",
    "FaultReport",
    "table1",
    "fig1_duration_data",
    "fig2_cost_distribution",
    "fig3_project_usage",
    "spot_whatif",
    "spot_headline_summary",
    "outage_whatif",
    "fault_accounting",
]
