"""Aggregating usage records into the paper's accounting rows.

The paper "associated most individual compute instances with specific lab
assignments" (§5); the simulator attributes explicitly via each record's
``lab`` tag.  A Table-1 row is a (lab, Chameleon resource type) pair;
floating-IP hours, which the meter attributes to the lab but not to a node
type, are apportioned to rows in proportion to row instance hours (for VM
labs this reproduces the 1-FIP-per-3-VM ratio of rows 2-3 exactly; for
reserved labs FIP hours equal instance hours by construction).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from repro.cloud.metering import UsageRecord
from repro.common.numerics import stable_sum

_INSTANCE_KINDS = ("server", "baremetal", "edge")


# -- canonical ordering & shard merge ---------------------------------------------
#
# `repro.parallel` executes cohort shards on independent testbeds, so the
# raw record streams differ from the serial run in two sharding artifacts:
# ordering (per-shard event loops interleave differently) and resource ids
# (every shard's IdGenerator starts from 1).  Canonicalization erases both:
# records are sorted under a total key over every *content* field, then ids
# are re-minted per (site, prefix) in first-appearance order of the sorted
# stream.  Two streams that agree record-by-record on content therefore
# canonicalize to the same list — regardless of how they were sharded or
# in which order the shards arrive.  (Records that tie on the full key are
# content-identical and thus interchangeable, so ties cannot break this.)


def canonical_sort_key(rec: UsageRecord) -> tuple:
    """Total order over record *content* — every field except resource_id."""
    return (
        rec.start,
        rec.end,
        rec.site,
        rec.kind,
        rec.resource_type,
        rec.project,
        rec.user or "",
        rec.lab or "",
        rec.quantity,
    )


def canonicalize_records(shard_lists: Iterable[Sequence[UsageRecord]]) -> list[UsageRecord]:
    """Merge per-shard record lists into one canonical stream.

    Sorts all records under :func:`canonical_sort_key` (order-insensitive
    to shard boundaries and shard order), then rewrites ``resource_id``
    with fresh per-(site, prefix) counters in first-appearance order, so
    ids look exactly like one shared IdGenerator minted them.  Records
    that share an id within one shard (one resource, several spans) keep
    sharing the re-minted id.
    """
    tagged: list[tuple[int, UsageRecord]] = []
    for shard_idx, records in enumerate(shard_lists):
        for rec in records:
            tagged.append((shard_idx, rec))
    tagged.sort(key=lambda t: canonical_sort_key(t[1]))

    counters: dict[tuple[str, str], int] = {}
    minted: dict[tuple[int, str, str], str] = {}  # (shard, site, old id) -> new id
    out: list[UsageRecord] = []
    for shard_idx, rec in tagged:
        identity = (shard_idx, rec.site, rec.resource_id)
        new_id = minted.get(identity)
        if new_id is None:
            prefix = rec.resource_id.rsplit("-", 1)[0]
            counter_key = (rec.site, prefix)
            serial = counters.get(counter_key, 0) + 1
            counters[counter_key] = serial
            new_id = f"{prefix}-{serial:06d}"
            minted[identity] = new_id
        out.append(rec if rec.resource_id == new_id else replace(rec, resource_id=new_id))
    return out


@dataclass
class AssignmentUsage:
    """One Table-1 row's usage."""

    lab_id: str
    resource_type: str
    instance_hours: float = 0.0
    floating_ip_hours: float = 0.0
    per_user_hours: dict[str, float] = field(default_factory=dict)


@dataclass
class StorageUsage:
    """Block/object GB-hours attributed to one lab (or the project)."""

    lab_id: str
    block_gb_hours: float = 0.0
    object_gb_hours: float = 0.0
    peak_block_gb: float = 0.0
    peak_object_gb: float = 0.0


def aggregate_by_assignment(records: list[UsageRecord]) -> dict[tuple[str, str], AssignmentUsage]:
    """Group instance records into (lab, resource_type) rows with FIP hours.

    Every hours total is a :func:`~repro.common.numerics.stable_sum` over
    the contributing records, so the rows are invariant to record order
    and to whether the stream arrived serially or from columnar chunks
    (the summation contract of DESIGN §11).
    """
    rows: dict[tuple[str, str], AssignmentUsage] = {}
    row_hours: dict[tuple[str, str], list[float]] = defaultdict(list)
    user_hours: dict[tuple[str, str], dict[str, list[float]]] = defaultdict(dict)
    fip_hours_by_lab: dict[str, list[float]] = defaultdict(list)

    for rec in records:
        if rec.lab is None:
            continue
        if rec.kind in _INSTANCE_KINDS:
            key = (rec.lab, rec.resource_type)
            if key not in rows:
                rows[key] = AssignmentUsage(lab_id=rec.lab, resource_type=rec.resource_type)
            row_hours[key].append(rec.unit_hours)
            if rec.user is not None:
                user_hours[key].setdefault(rec.user, []).append(rec.unit_hours)
        elif rec.kind == "floating_ip":
            fip_hours_by_lab[rec.lab].append(rec.unit_hours)

    for key, row in rows.items():
        row.instance_hours = stable_sum(row_hours[key])
        row.per_user_hours = {
            user: stable_sum(vals) for user, vals in user_hours[key].items()
        }

    # apportion per-lab FIP hours across the lab's rows by instance share
    lab_row_hours: dict[str, list[float]] = defaultdict(list)
    for row in rows.values():
        lab_row_hours[row.lab_id].append(row.instance_hours)
    lab_totals = {lab: stable_sum(vals) for lab, vals in lab_row_hours.items()}
    fip_totals = {lab: stable_sum(vals) for lab, vals in fip_hours_by_lab.items()}
    for row in rows.values():
        total = lab_totals[row.lab_id]
        if total > 0:
            row.floating_ip_hours = fip_totals.get(row.lab_id, 0.0) * row.instance_hours / total
    return rows


def aggregate_storage(records: list[UsageRecord]) -> dict[str, StorageUsage]:
    """Per-lab block/object storage usage (order-invariant totals)."""
    out: dict[str, StorageUsage] = {}
    block: dict[str, list[float]] = defaultdict(list)
    obj: dict[str, list[float]] = defaultdict(list)
    for rec in records:
        if rec.lab is None or rec.kind not in ("volume", "object_storage"):
            continue
        su = out.setdefault(rec.lab, StorageUsage(lab_id=rec.lab))
        if rec.kind == "volume":
            block[rec.lab].append(rec.unit_hours)
            su.peak_block_gb = max(su.peak_block_gb, rec.quantity)
        else:
            obj[rec.lab].append(rec.unit_hours)
            su.peak_object_gb = max(su.peak_object_gb, rec.quantity)
    for lab, su in out.items():
        su.block_gb_hours = stable_sum(block[lab])
        su.object_gb_hours = stable_sum(obj[lab])
    return out


def per_user_instance_hours(
    records: list[UsageRecord], *, labs: set[str] | None = None
) -> dict[str, dict[tuple[str, str], float]]:
    """user -> {(lab, resource_type): instance hours} (Fig 2 input)."""
    acc: dict[str, dict[tuple[str, str], list[float]]] = defaultdict(dict)
    for rec in records:
        if rec.kind not in _INSTANCE_KINDS or rec.lab is None or rec.user is None:
            continue
        if labs is not None and rec.lab not in labs:
            continue
        key = (rec.lab, rec.resource_type)
        acc[rec.user].setdefault(key, []).append(rec.unit_hours)
    return {
        user: {key: stable_sum(vals) for key, vals in per_key.items()}
        for user, per_key in acc.items()
    }


def per_user_fip_hours(
    records: list[UsageRecord], *, labs: set[str] | None = None
) -> dict[str, float]:
    """user -> floating-IP hours (Fig 2 input; FIP spans carry no user for
    reserved labs booked per slot, so those are counted via the lab share
    by the cost model instead)."""
    acc: dict[str, list[float]] = defaultdict(list)
    for rec in records:
        if rec.kind != "floating_ip" or rec.lab is None:
            continue
        if labs is not None and rec.lab not in labs:
            continue
        if rec.user is not None:
            acc[rec.user].append(rec.unit_hours)
    return {user: stable_sum(vals) for user, vals in acc.items()}
