"""Aggregating usage records into the paper's accounting rows.

The paper "associated most individual compute instances with specific lab
assignments" (§5); the simulator attributes explicitly via each record's
``lab`` tag.  A Table-1 row is a (lab, Chameleon resource type) pair;
floating-IP hours, which the meter attributes to the lab but not to a node
type, are apportioned to rows in proportion to row instance hours (for VM
labs this reproduces the 1-FIP-per-3-VM ratio of rows 2-3 exactly; for
reserved labs FIP hours equal instance hours by construction).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.cloud.metering import UsageRecord

_INSTANCE_KINDS = ("server", "baremetal", "edge")


@dataclass
class AssignmentUsage:
    """One Table-1 row's usage."""

    lab_id: str
    resource_type: str
    instance_hours: float = 0.0
    floating_ip_hours: float = 0.0
    per_user_hours: dict[str, float] = field(default_factory=dict)


@dataclass
class StorageUsage:
    """Block/object GB-hours attributed to one lab (or the project)."""

    lab_id: str
    block_gb_hours: float = 0.0
    object_gb_hours: float = 0.0
    peak_block_gb: float = 0.0
    peak_object_gb: float = 0.0


def aggregate_by_assignment(records: list[UsageRecord]) -> dict[tuple[str, str], AssignmentUsage]:
    """Group instance records into (lab, resource_type) rows with FIP hours."""
    rows: dict[tuple[str, str], AssignmentUsage] = {}
    fip_hours_by_lab: dict[str, float] = defaultdict(float)

    for rec in records:
        if rec.lab is None:
            continue
        if rec.kind in _INSTANCE_KINDS:
            key = (rec.lab, rec.resource_type)
            row = rows.get(key)
            if row is None:
                row = rows[key] = AssignmentUsage(lab_id=rec.lab, resource_type=rec.resource_type)
            row.instance_hours += rec.unit_hours
            if rec.user is not None:
                row.per_user_hours[rec.user] = row.per_user_hours.get(rec.user, 0.0) + rec.unit_hours
        elif rec.kind == "floating_ip":
            fip_hours_by_lab[rec.lab] += rec.unit_hours

    # apportion per-lab FIP hours across the lab's rows by instance share
    lab_instance_totals: dict[str, float] = defaultdict(float)
    for row in rows.values():
        lab_instance_totals[row.lab_id] += row.instance_hours
    for row in rows.values():
        total = lab_instance_totals[row.lab_id]
        if total > 0:
            row.floating_ip_hours = fip_hours_by_lab[row.lab_id] * row.instance_hours / total
    return rows


def aggregate_storage(records: list[UsageRecord]) -> dict[str, StorageUsage]:
    """Per-lab block/object storage usage."""
    out: dict[str, StorageUsage] = {}
    for rec in records:
        if rec.lab is None or rec.kind not in ("volume", "object_storage"):
            continue
        su = out.setdefault(rec.lab, StorageUsage(lab_id=rec.lab))
        if rec.kind == "volume":
            su.block_gb_hours += rec.unit_hours
            su.peak_block_gb = max(su.peak_block_gb, rec.quantity)
        else:
            su.object_gb_hours += rec.unit_hours
            su.peak_object_gb = max(su.peak_object_gb, rec.quantity)
    return out


def per_user_instance_hours(
    records: list[UsageRecord], *, labs: set[str] | None = None
) -> dict[str, dict[tuple[str, str], float]]:
    """user -> {(lab, resource_type): instance hours} (Fig 2 input)."""
    out: dict[str, dict[tuple[str, str], float]] = defaultdict(dict)
    for rec in records:
        if rec.kind not in _INSTANCE_KINDS or rec.lab is None or rec.user is None:
            continue
        if labs is not None and rec.lab not in labs:
            continue
        key = (rec.lab, rec.resource_type)
        out[rec.user][key] = out[rec.user].get(key, 0.0) + rec.unit_hours
    return dict(out)


def per_user_fip_hours(
    records: list[UsageRecord], *, labs: set[str] | None = None
) -> dict[str, float]:
    """user -> floating-IP hours (Fig 2 input; FIP spans carry no user for
    reserved labs booked per slot, so those are counted via the lab share
    by the cost model instead)."""
    out: dict[str, float] = defaultdict(float)
    for rec in records:
        if rec.kind != "floating_ip" or rec.lab is None:
            continue
        if labs is not None and rec.lab not in labs:
            continue
        if rec.user is not None:
            out[rec.user] += rec.unit_hours
    return dict(out)
