"""Report generators for the paper's tables and figures.

Each function takes the simulated usage records (plus the course and cost
model) and returns both structured data and a printable text rendering, so
the benchmark harness can show paper-style output and tests can assert on
numbers.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from dataclasses import astuple, dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.cloud.metering import UsageRecord
from repro.common.tables import format_table
from repro.core.costmodel import (
    CostModel,
    LabCostRow,
    OutageLabCostRow,
    OutageScenario,
    SpotLabCostRow,
    SpotScenario,
    distribution_stats,
)
from repro.core.course import COURSE, CourseDefinition, LabKind
from repro.core.usage import aggregate_by_assignment

if TYPE_CHECKING:  # imported lazily: repro.faults imports repro.core
    from repro.faults.plan import FaultLedger


def records_digest(records: Iterable[UsageRecord]) -> str:
    """SHA-256 over the exact field tuples of a record stream.

    The equivalence contract of `repro.parallel`: serial and parallel
    executions of the same plan must agree on this digest (records are
    compared *in order*, so canonicalization is part of the contract).
    """
    h = hashlib.sha256()
    for rec in records:
        h.update(repr(astuple(rec)).encode())
    return h.hexdigest()


# -- Table 1 ---------------------------------------------------------------------


@dataclass(frozen=True)
class Table1:
    rows: list[LabCostRow]
    totals: dict[str, float]
    enrollment: int

    def render(self) -> str:
        body = []
        for r in self.rows:
            body.append([
                r.title,
                r.resource_type,
                round(r.instance_hours),
                round(r.floating_ip_hours),
                None if r.aws_cost is None else
                f"${r.aws_cost:,.0f} (${r.aws_cost / self.enrollment:,.2f})",
                None if r.gcp_cost is None else
                f"${r.gcp_cost:,.0f} (${r.gcp_cost / self.enrollment:,.2f})",
            ])
        t = self.totals
        body.append([
            "Total", "",
            round(t["instance_hours"]),
            round(t["floating_ip_hours"]),
            f"${t['aws_cost']:,.0f} (${t['aws_cost'] / self.enrollment:,.2f})",
            f"${t['gcp_cost']:,.0f} (${t['gcp_cost'] / self.enrollment:,.2f})",
        ])
        return format_table(
            ["Assignment", "Instance Type", "Instance Hours", "Floating IP Hours",
             "AWS Cost", "GCP Cost"],
            body,
            title="Table 1: Usage and estimated cost overall (and per student) "
                  "by lab assignment and Chameleon node type or VM flavor.",
        )


def table1(
    records: list[UsageRecord],
    *,
    course: CourseDefinition = COURSE,
    model: CostModel | None = None,
) -> Table1:
    model = model if model is not None else CostModel(course)
    rows = model.lab_rows(records)
    return Table1(rows=rows, totals=model.lab_totals(rows), enrollment=course.enrollment)


# -- Figure 1 ----------------------------------------------------------------------


@dataclass(frozen=True)
class Fig1Row:
    lab_id: str
    title: str
    kind: str  # "vm" | "reserved" | "edge"
    expected_hours_per_student: float
    actual_hours_per_student: float

    @property
    def overshoot(self) -> float:
        return self.actual_hours_per_student / self.expected_hours_per_student


@dataclass(frozen=True)
class Fig1:
    vm_rows: list[Fig1Row]
    reserved_rows: list[Fig1Row]

    def render(self) -> str:
        def table(rows: list[Fig1Row], name: str) -> str:
            return format_table(
                ["Lab", "Expected h/student", "Actual h/student", "Actual/Expected"],
                [[r.title, r.expected_hours_per_student, r.actual_hours_per_student,
                  r.overshoot] for r in rows],
                title=name,
                float_fmt=",.1f",
            )

        return (
            table(self.vm_rows, "Fig 1(a): VM instances (no reservation, no auto-termination)")
            + "\n\n"
            + table(self.reserved_rows,
                    "Fig 1(b): bare metal and edge (advance reservation, auto-terminated)")
        )


def fig1_duration_data(
    records: list[UsageRecord], *, course: CourseDefinition = COURSE
) -> Fig1:
    """Expected vs actual per-student instance-hours, per assignment."""
    usage = aggregate_by_assignment(records)
    per_lab_hours: dict[str, float] = defaultdict(float)
    for (lab_id, _rtype), row in usage.items():
        per_lab_hours[lab_id] += row.instance_hours

    vm_rows, reserved_rows = [], []
    for lab in course.labs:
        actual = per_lab_hours.get(lab.id, 0.0) / course.enrollment
        row = Fig1Row(
            lab_id=lab.id,
            title=lab.title,
            kind=lab.kind.value,
            expected_hours_per_student=lab.expected_instance_hours,
            actual_hours_per_student=actual,
        )
        (vm_rows if lab.kind is LabKind.VM else reserved_rows).append(row)
    return Fig1(vm_rows=vm_rows, reserved_rows=reserved_rows)


# -- Figure 2 -------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig2:
    aws: dict[str, float]
    gcp: dict[str, float]
    aws_stats: dict[str, float]
    gcp_stats: dict[str, float]

    def histogram(self, provider: str, *, bins: int = 20) -> tuple[np.ndarray, np.ndarray]:
        costs = np.array(sorted((self.aws if provider == "aws" else self.gcp).values()))
        return np.histogram(costs, bins=bins)

    def render(self) -> str:
        body = []
        for name, stats in (("AWS", self.aws_stats), ("GCP", self.gcp_stats)):
            body.append([
                name, stats["mean"], stats["median"], stats["p95"], stats["max"],
                stats["expected"], stats["pct_exceeding_expected"],
            ])
        return format_table(
            ["Provider", "Mean $", "Median $", "p95 $", "Max $",
             "Expected $", "% exceeding expected"],
            body,
            title="Fig 2: Distribution of estimated per-student lab cost on commercial clouds.",
        )


def fig2_cost_distribution(
    records: list[UsageRecord],
    *,
    course: CourseDefinition = COURSE,
    model: CostModel | None = None,
) -> Fig2:
    model = model if model is not None else CostModel(course)
    aws = model.per_student_costs(records, "aws")
    gcp = model.per_student_costs(records, "gcp")
    return Fig2(
        aws=aws,
        gcp=gcp,
        aws_stats=distribution_stats(aws, model.expected_cost_per_student("aws")),
        gcp_stats=distribution_stats(gcp, model.expected_cost_per_student("gcp")),
    )


# -- Figure 3 + §5 project numbers -------------------------------------------------------


@dataclass(frozen=True)
class Fig3:
    vm_hours_by_flavor: dict[str, float]
    gpu_hours_by_type: dict[str, float]
    baremetal_cpu_hours: float
    edge_hours: float
    block_storage_gb_peak: float
    object_storage_gb_peak: float
    aws_total_usd: float
    gcp_total_usd: float
    enrollment: int

    @property
    def vm_hours_total(self) -> float:
        return sum(self.vm_hours_by_flavor.values())

    @property
    def gpu_hours_total(self) -> float:
        return sum(self.gpu_hours_by_type.values())

    def render(self) -> str:
        rows = [["VM (non-GPU): " + f, "", h] for f, h in sorted(self.vm_hours_by_flavor.items())]
        rows += [["GPU: " + t, "", h] for t, h in sorted(self.gpu_hours_by_type.items())]
        rows += [
            ["Bare metal (non-GPU)", "", self.baremetal_cpu_hours],
            ["Edge devices", "", self.edge_hours],
            ["Block storage (peak GB)", "", self.block_storage_gb_peak],
            ["Object storage (peak GB)", "", self.object_storage_gb_peak],
            ["AWS cost", f"(${self.aws_total_usd / self.enrollment:,.0f}/student)", self.aws_total_usd],
            ["GCP cost", f"(${self.gcp_total_usd / self.enrollment:,.0f}/student)", self.gcp_total_usd],
        ]
        return format_table(
            ["Project usage", "", "Hours / GB / $"],
            rows,
            title="Fig 3 + §5: project usage by instance type, storage, and cost.",
            float_fmt=",.0f",
        )


def fig3_project_usage(
    records: list[UsageRecord],
    *,
    course: CourseDefinition = COURSE,
    model: CostModel | None = None,
) -> Fig3:
    model = model if model is not None else CostModel(course)
    vm: dict[str, float] = defaultdict(float)
    gpu: dict[str, float] = defaultdict(float)
    bm_cpu = 0.0
    edge = 0.0
    block_gb = 0.0
    object_gb = 0.0
    gpu_types = {"compute_gigaio", "compute_liqid", "compute_liqid_2", "gpu_mi100",
                 "gpu_p100", "gpu_a100_pcie", "gpu_v100"}
    for rec in records:
        if rec.lab != "project":
            continue
        if rec.kind == "server":
            vm[rec.resource_type] += rec.unit_hours
        elif rec.kind == "baremetal":
            if rec.resource_type in gpu_types:
                gpu[rec.resource_type] += rec.unit_hours
            else:
                bm_cpu += rec.unit_hours
        elif rec.kind == "edge":
            edge += rec.unit_hours
        elif rec.kind == "volume":
            block_gb += rec.quantity
        elif rec.kind == "object_storage":
            object_gb += rec.quantity
    return Fig3(
        vm_hours_by_flavor=dict(vm),
        gpu_hours_by_type=dict(gpu),
        baremetal_cpu_hours=bm_cpu,
        edge_hours=edge,
        block_storage_gb_peak=block_gb,
        object_storage_gb_peak=object_gb,
        aws_total_usd=model.project_cost(records, "aws").total_usd,
        gcp_total_usd=model.project_cost(records, "gcp").total_usd,
        enrollment=course.enrollment,
    )


# -- Spot what-if (§5 extension) ---------------------------------------------------------


@dataclass(frozen=True)
class SpotWhatIf:
    """Table 1 re-priced under "VM labs on preemptible capacity".

    ``rows``/``totals`` are the spot what-if numbers; ``on_demand_totals``
    are the matching Table-1 totals so the rendering can show the saving
    directly.  Edge rows stay NA, exactly as in Table 1.
    """

    rows: list[SpotLabCostRow]
    totals: dict[str, float]
    on_demand_totals: dict[str, float]
    scenario: SpotScenario
    enrollment: int

    def savings(self, provider: str) -> float:
        """$ saved vs on-demand over the whole course's labs."""
        key = f"{provider}_cost"
        return self.on_demand_totals[key] - self.totals[key]

    def render(self) -> str:
        body = []
        for r in self.rows:
            body.append([
                r.title,
                r.resource_type,
                round(r.instance_hours),
                round(r.billed_instance_hours),
                None if r.aws_spot_cost is None else
                f"${r.aws_spot_cost:,.0f} (${r.aws_spot_cost / self.enrollment:,.2f})",
                None if r.gcp_spot_cost is None else
                f"${r.gcp_spot_cost:,.0f} (${r.gcp_spot_cost / self.enrollment:,.2f})",
            ])
        t = self.totals
        body.append([
            "Total", "",
            round(t["instance_hours"]),
            round(t["billed_instance_hours"]),
            f"${t['aws_cost']:,.0f} (${t['aws_cost'] / self.enrollment:,.2f})",
            f"${t['gcp_cost']:,.0f} (${t['gcp_cost'] / self.enrollment:,.2f})",
        ])
        inflation = self.scenario.time_inflation
        return format_table(
            ["Assignment", "Instance Type", "Metered Hours", "Billed Hours (spot)",
             "AWS Spot Cost", "GCP Spot Cost"],
            body,
            title=(
                "Spot what-if: lab costs on preemptible capacity "
                f"(preemption rate {self.scenario.preempt_rate_per_hour:.3g}/h, "
                f"time inflation ×{inflation:.3f}; "
                f"saves ${self.savings('aws'):,.0f} AWS / "
                f"${self.savings('gcp'):,.0f} GCP vs Table 1)."
            ),
        )


def spot_whatif(
    records: list[UsageRecord],
    *,
    course: CourseDefinition = COURSE,
    model: CostModel | None = None,
    scenario: SpotScenario | None = None,
) -> SpotWhatIf:
    """The "VM labs on spot + guardrails" §5 extension table."""
    model = model if model is not None else CostModel(course)
    scenario = scenario if scenario is not None else SpotScenario()
    rows = model.spot_lab_rows(records, scenario)
    on_demand = model.lab_rows(records)
    return SpotWhatIf(
        rows=rows,
        totals=model.spot_lab_totals(rows),
        on_demand_totals=model.lab_totals(on_demand),
        scenario=scenario,
        enrollment=course.enrollment,
    )


def spot_headline_summary(
    records: list[UsageRecord],
    *,
    course: CourseDefinition = COURSE,
    scenario: SpotScenario | None = None,
) -> dict[str, float]:
    """§5 totals recomputed with VM labs on spot, projects on-demand.

    Projects stay on-demand: they include bare-metal GPU nodes and
    long-lived serving endpoints that a semester-long course cannot
    reasonably run preemptibly.
    """
    scenario = scenario if scenario is not None else SpotScenario()
    model = CostModel(course)
    what_if = spot_whatif(records, course=course, model=model, scenario=scenario)
    f3 = fig3_project_usage(records, course=course, model=model)
    n = course.enrollment
    base = headline_summary(records, course=course)
    return {
        "aws_lab_per_student": what_if.totals["aws_cost"] / n,
        "gcp_lab_per_student": what_if.totals["gcp_cost"] / n,
        "aws_total_per_student": (what_if.totals["aws_cost"] + f3.aws_total_usd) / n,
        "gcp_total_per_student": (what_if.totals["gcp_cost"] + f3.gcp_total_usd) / n,
        "aws_course_total": what_if.totals["aws_cost"] + f3.aws_total_usd,
        "gcp_course_total": what_if.totals["gcp_cost"] + f3.gcp_total_usd,
        "aws_lab_savings": what_if.savings("aws"),
        "gcp_lab_savings": what_if.savings("gcp"),
        "aws_course_savings": base["aws_course_total"]
        - (what_if.totals["aws_cost"] + f3.aws_total_usd),
        "gcp_course_savings": base["gcp_course_total"]
        - (what_if.totals["gcp_cost"] + f3.gcp_total_usd),
        "time_inflation": scenario.time_inflation,
    }


# -- Outage what-if (robustness extension) -----------------------------------------------


@dataclass(frozen=True)
class OutageWhatIf:
    """Table 1 re-priced under "the testbed is unreliable".

    The mirror image of :class:`SpotWhatIf`: spot trades interruptions
    for a discount, outages add the same interruption re-work at full
    on-demand rates, so the delta vs Table 1 is the pure cost of
    infrastructure unreliability.
    """

    rows: list[OutageLabCostRow]
    totals: dict[str, float]
    on_demand_totals: dict[str, float]
    scenario: OutageScenario
    enrollment: int

    def overhead(self, provider: str) -> float:
        """$ added vs the reliable-testbed Table 1."""
        key = f"{provider}_cost"
        return self.totals[key] - self.on_demand_totals[key]

    def render(self) -> str:
        body = []
        for r in self.rows:
            body.append([
                r.title,
                r.resource_type,
                round(r.instance_hours),
                round(r.billed_instance_hours),
                None if r.aws_cost is None else
                f"${r.aws_cost:,.0f} (${r.aws_cost / self.enrollment:,.2f})",
                None if r.gcp_cost is None else
                f"${r.gcp_cost:,.0f} (${r.gcp_cost / self.enrollment:,.2f})",
            ])
        t = self.totals
        body.append([
            "Total", "",
            round(t["instance_hours"]),
            round(t["billed_instance_hours"]),
            f"${t['aws_cost']:,.0f} (${t['aws_cost'] / self.enrollment:,.2f})",
            f"${t['gcp_cost']:,.0f} (${t['gcp_cost'] / self.enrollment:,.2f})",
        ])
        return format_table(
            ["Assignment", "Instance Type", "Metered Hours", "Billed Hours (w/ redo)",
             "AWS Cost", "GCP Cost"],
            body,
            title=(
                "Outage what-if: lab costs under infrastructure interruptions "
                f"(rate {self.scenario.interruption_rate_per_hour:.3g}/h, "
                f"time inflation ×{self.scenario.time_inflation:.3f}; "
                f"adds ${self.overhead('aws'):,.0f} AWS / "
                f"${self.overhead('gcp'):,.0f} GCP vs Table 1)."
            ),
        )


def outage_whatif(
    records: list[UsageRecord],
    *,
    course: CourseDefinition = COURSE,
    model: CostModel | None = None,
    scenario: OutageScenario | None = None,
) -> OutageWhatIf:
    """The "unreliable testbed" what-if table."""
    model = model if model is not None else CostModel(course)
    scenario = scenario if scenario is not None else OutageScenario()
    rows = model.outage_lab_rows(records, scenario)
    on_demand = model.lab_rows(records)
    return OutageWhatIf(
        rows=rows,
        totals=model.outage_lab_totals(rows),
        on_demand_totals=model.lab_totals(on_demand),
        scenario=scenario,
        enrollment=course.enrollment,
    )


# -- Failure accounting (fault-plan ledger -> dollars) -----------------------------------


@dataclass(frozen=True)
class FaultReport:
    """What a fault plan actually cost the cohort.

    Priced from a :class:`~repro.faults.plan.FaultLedger`: redo hours are
    re-billed work (they appear in the metered records and in Table 1),
    lost hours are work that never ran (abandoned labs — an educational
    cost, not a billed one), delay hours shift work without billing it.
    """

    enrollment: int
    events: int
    hardware_kills: int
    outage_kills: int
    delayed_starts: int
    abandoned: int
    lost_instance_hours: float
    redo_instance_hours: float
    delay_hours: float
    aws_redo_usd: float
    gcp_redo_usd: float
    aws_redo_by_user: dict[str, float]
    gcp_redo_by_user: dict[str, float]

    @property
    def aws_redo_per_student(self) -> float:
        return self.aws_redo_usd / self.enrollment

    @property
    def gcp_redo_per_student(self) -> float:
        return self.gcp_redo_usd / self.enrollment

    def worst_user_redo(self, provider: str) -> float:
        by_user = self.aws_redo_by_user if provider == "aws" else self.gcp_redo_by_user
        return max(by_user.values(), default=0.0)

    def render(self) -> str:
        body = [
            ["Hardware kills (MTBF)", self.hardware_kills],
            ["Outage kills", self.outage_kills],
            ["Delayed starts", self.delayed_starts],
            ["Abandoned activities", self.abandoned],
            ["Redo instance-hours (re-billed)", round(self.redo_instance_hours)],
            ["Lost instance-hours (never ran)", round(self.lost_instance_hours)],
            ["Cumulative start delay (hours)", round(self.delay_hours)],
            ["AWS redo cost", f"${self.aws_redo_usd:,.0f} "
                              f"(${self.aws_redo_per_student:,.2f}/student, "
                              f"worst ${self.worst_user_redo('aws'):,.2f})"],
            ["GCP redo cost", f"${self.gcp_redo_usd:,.0f} "
                              f"(${self.gcp_redo_per_student:,.2f}/student, "
                              f"worst ${self.worst_user_redo('gcp'):,.2f})"],
        ]
        return format_table(
            ["Failure accounting", "Value"],
            body,
            title="Failure accounting: what the fault plan cost the cohort.",
        )


def fault_accounting(
    ledger: "FaultLedger",
    *,
    course: CourseDefinition = COURSE,
    model: CostModel | None = None,
) -> FaultReport:
    """Price a fault ledger's redo hours at commercial rates.

    Lab events are priced at the lab's matched-instance rate, project
    events at the project spec for their resource type; events with no
    commercial equivalent (edge devices) count hours but no dollars.
    """
    model = model if model is not None else CostModel(course)
    redo_usd = {"aws": 0.0, "gcp": 0.0}
    by_user: dict[str, dict[str, float]] = {"aws": {}, "gcp": {}}
    rate_cache: dict[tuple[str, str, str], float | None] = {}
    for event in ledger.events:
        if not event.redo_hours:
            continue
        for provider in ("aws", "gcp"):
            key = (provider, event.lab, event.resource_type)
            if key not in rate_cache:
                if event.lab == "project":
                    inst = model.project_equivalent(event.resource_type, provider)
                    rate_cache[key] = None if inst is None else inst.hourly_usd
                else:
                    rate_cache[key] = model.hourly_rate(event.lab, provider)
            rate = rate_cache[key]
            if rate is None:
                continue
            cost = event.redo_hours * rate
            redo_usd[provider] += cost
            by_user[provider][event.user] = by_user[provider].get(event.user, 0.0) + cost
    return FaultReport(
        enrollment=course.enrollment,
        events=len(ledger.events),
        hardware_kills=ledger.hardware_kills,
        outage_kills=ledger.outage_kills,
        delayed_starts=ledger.delayed_starts,
        abandoned=ledger.abandoned,
        lost_instance_hours=ledger.lost_instance_hours,
        redo_instance_hours=ledger.redo_instance_hours,
        delay_hours=ledger.delay_hours,
        aws_redo_usd=redo_usd["aws"],
        gcp_redo_usd=redo_usd["gcp"],
        aws_redo_by_user=by_user["aws"],
        gcp_redo_by_user=by_user["gcp"],
    )


# -- §5/§6 headline numbers --------------------------------------------------------------


def headline_summary(records: list[UsageRecord], *, course: CourseDefinition = COURSE) -> dict[str, float]:
    """The paper's headline statistics (abstract + §6)."""
    model = CostModel(course)
    t1 = table1(records, course=course, model=model)
    f3 = fig3_project_usage(records, course=course, model=model)
    lab_hours = t1.totals["instance_hours"]
    project_hours = (
        f3.vm_hours_total + f3.gpu_hours_total + f3.baremetal_cpu_hours + f3.edge_hours
    )
    n = course.enrollment
    return {
        "lab_instance_hours": lab_hours,
        "project_instance_hours": project_hours,
        "total_instance_hours": lab_hours + project_hours,
        "aws_lab_per_student": t1.totals["aws_cost"] / n,
        "gcp_lab_per_student": t1.totals["gcp_cost"] / n,
        "aws_project_per_student": f3.aws_total_usd / n,
        "gcp_project_per_student": f3.gcp_total_usd / n,
        "aws_total_per_student": (t1.totals["aws_cost"] + f3.aws_total_usd) / n,
        "gcp_total_per_student": (t1.totals["gcp_cost"] + f3.gcp_total_usd) / n,
        "aws_course_total": t1.totals["aws_cost"] + f3.aws_total_usd,
        "gcp_course_total": t1.totals["gcp_cost"] + f3.gcp_total_usd,
    }
