"""Translating testbed usage into commercial-cloud dollars.

Implements the paper's §5 cost model: each assignment's requirement is
matched to the cheapest satisfying instance per provider
(:func:`~repro.core.matching.cheapest_match`); cost = instance-hours ×
rate + floating-IP-hours × address rate.  Lab storage is excluded ("we do
not include storage costs, which are negligible"), project storage is
included.  The "Serving from the Edge" rows have no commercial equivalent
and cost ``None`` (the paper's "NA").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.metering import UsageRecord
from repro.common.errors import ValidationError
from repro.core.catalog import AWS_CATALOG, GCP_CATALOG, CloudInstance, PricingCatalog
from repro.core.course import COURSE, CourseDefinition, LabKind, TABLE1_ROWS
from repro.core.matching import RequirementSpec, cheapest_match
from repro.core.usage import (
    AssignmentUsage,
    aggregate_by_assignment,
    per_user_fip_hours,
    per_user_instance_hours,
)

HOURS_PER_MONTH = 730.0

#: Requirement specs for project usage, keyed by Chameleon resource type.
#: Projects are heterogeneous, so the paper's "conservative assumptions"
#: are modelled as one representative requirement per resource class.
PROJECT_SPECS: dict[str, RequirementSpec | None] = {
    "m1.small": RequirementSpec(vcpus=1, ram_gib=2),
    # project services run continuously -> dedicated cores, unlike lab 7's VM
    "m1.medium": RequirementSpec(vcpus=2, ram_gib=4, dedicated_cores=True),
    "m1.large": RequirementSpec(vcpus=2, ram_gib=8, dedicated_cores=True),
    "m1.xlarge": RequirementSpec(vcpus=8, ram_gib=16),
    # project training is mostly single-GPU fine-tuning on mid-range parts
    "compute_gigaio": RequirementSpec(vcpus=4, ram_gib=16, gpus=1, gpu_mem_gib=24,
                                      min_compute_capability=7.0),
    "compute_liqid": RequirementSpec(vcpus=4, ram_gib=16, gpus=1, gpu_mem_gib=24,
                                     min_compute_capability=7.0),
    "compute_liqid_2": RequirementSpec(vcpus=8, ram_gib=32, gpus=2, gpu_mem_gib=24),
    "gpu_mi100": RequirementSpec(vcpus=8, ram_gib=32, gpus=2, gpu_mem_gib=16),
    "gpu_p100": RequirementSpec(vcpus=8, ram_gib=32, gpus=2, gpu_mem_gib=16,
                                min_compute_capability=6.0),
    "gpu_a100_pcie": RequirementSpec(vcpus=8, ram_gib=64, gpus=4, gpu_mem_gib=40, needs_bf16=True),
    "gpu_v100": RequirementSpec(vcpus=8, ram_gib=32, gpus=4, gpu_mem_gib=16,
                                min_compute_capability=7.0),
    "compute_cascadelake": RequirementSpec(vcpus=30, ram_gib=96),
    "raspberrypi5": None,  # no commercial equivalent
    "jetson-nano": None,
}


@dataclass(frozen=True)
class LabCostRow:
    """One Table-1 row with both providers' costs (None = NA)."""

    lab_id: str
    title: str
    resource_type: str
    instance_hours: float
    floating_ip_hours: float
    aws_instance: str | None
    aws_cost: float | None
    gcp_instance: str | None
    gcp_cost: float | None


@dataclass(frozen=True)
class SpotScenario:
    """Assumptions for the "VM labs on spot" what-if (§5 extension).

    Preemptions arrive at ``preempt_rate_per_hour``; workloads checkpoint
    every ``checkpoint_interval_hours`` (None = the Young/Daly optimum)
    at ``checkpoint_overhead_hours`` per write and pay
    ``restart_overhead_hours`` per preemption.  The re-work this implies
    inflates billable hours via
    :func:`repro.spot.advisor.expected_time_inflation`.
    ``default_spot_fraction`` prices instances whose catalog entry has no
    spot rate.
    """

    preempt_rate_per_hour: float = 0.05
    checkpoint_interval_hours: float | None = None
    checkpoint_overhead_hours: float = 30.0 / 3600.0
    restart_overhead_hours: float = 3.0 / 60.0
    default_spot_fraction: float = 0.32

    def __post_init__(self) -> None:
        if self.preempt_rate_per_hour < 0:
            raise ValidationError(f"negative preemption rate: {self!r}")
        if self.checkpoint_interval_hours is not None and self.checkpoint_interval_hours <= 0:
            raise ValidationError(f"checkpoint interval must be positive: {self!r}")
        if self.checkpoint_overhead_hours <= 0 or self.restart_overhead_hours < 0:
            raise ValidationError(f"invalid overheads: {self!r}")
        if not (0 < self.default_spot_fraction <= 1):
            raise ValidationError(f"invalid default spot fraction: {self!r}")

    @property
    def time_inflation(self) -> float:
        """Expected wall-clock per useful hour under these assumptions."""
        from repro.spot.advisor import expected_time_inflation

        return expected_time_inflation(
            self.preempt_rate_per_hour,
            checkpoint_interval_hours=self.checkpoint_interval_hours,
            checkpoint_overhead_hours=self.checkpoint_overhead_hours,
            restart_overhead_hours=self.restart_overhead_hours,
        )


@dataclass(frozen=True)
class OutageScenario:
    """Assumptions for the "unreliable testbed" what-if.

    Infrastructure interruptions (site outages taking the host down,
    per-instance hardware failures) arrive at
    ``interruption_rate_per_hour``; workloads checkpoint every
    ``checkpoint_interval_hours`` (None = the Young/Daly optimum) and pay
    ``restart_overhead_hours`` per interruption — by default slower than
    a spot restart, since infrastructure failures come with no notice
    window to drain into.  The implied re-work inflates billable hours
    via :func:`repro.spot.advisor.expected_time_inflation`, exactly like
    :class:`SpotScenario` — but at *on-demand* rates: unreliability is
    pure overhead, never a discount.
    """

    interruption_rate_per_hour: float = 0.01
    checkpoint_interval_hours: float | None = None
    checkpoint_overhead_hours: float = 30.0 / 3600.0
    restart_overhead_hours: float = 10.0 / 60.0

    def __post_init__(self) -> None:
        if self.interruption_rate_per_hour < 0:
            raise ValidationError(f"negative interruption rate: {self!r}")
        if self.checkpoint_interval_hours is not None and self.checkpoint_interval_hours <= 0:
            raise ValidationError(f"checkpoint interval must be positive: {self!r}")
        if self.checkpoint_overhead_hours <= 0 or self.restart_overhead_hours < 0:
            raise ValidationError(f"invalid overheads: {self!r}")

    @classmethod
    def from_fault_plan(
        cls,
        *,
        outage_rate_per_week: float,
        hazard_rate_per_khour: float,
        restart_overhead_hours: float = 10.0 / 60.0,
    ) -> "OutageScenario":
        """Derive the per-instance interruption rate from fault-plan knobs
        (an instance sees its site's outages plus its own hazard)."""
        return cls(
            interruption_rate_per_hour=(
                outage_rate_per_week / 168.0 + hazard_rate_per_khour / 1000.0
            ),
            restart_overhead_hours=restart_overhead_hours,
        )

    @property
    def time_inflation(self) -> float:
        """Expected wall-clock per useful hour under these assumptions."""
        from repro.spot.advisor import expected_time_inflation

        return expected_time_inflation(
            self.interruption_rate_per_hour,
            checkpoint_interval_hours=self.checkpoint_interval_hours,
            checkpoint_overhead_hours=self.checkpoint_overhead_hours,
            restart_overhead_hours=self.restart_overhead_hours,
        )


@dataclass(frozen=True)
class OutageLabCostRow:
    """A Table-1 row re-priced under infrastructure interruptions (None = NA)."""

    lab_id: str
    title: str
    resource_type: str
    instance_hours: float
    billed_instance_hours: float  # instance_hours × scenario inflation
    floating_ip_hours: float
    aws_cost: float | None
    gcp_cost: float | None


@dataclass(frozen=True)
class SpotLabCostRow:
    """A Table-1 row re-priced on preemptible capacity (None = NA)."""

    lab_id: str
    title: str
    resource_type: str
    instance_hours: float
    billed_instance_hours: float  # instance_hours × scenario inflation
    floating_ip_hours: float
    aws_spot_cost: float | None
    gcp_spot_cost: float | None


@dataclass(frozen=True)
class ProjectCost:
    provider: str
    instance_usd: float
    floating_ip_usd: float
    block_storage_usd: float
    object_storage_usd: float

    @property
    def total_usd(self) -> float:
        return (
            self.instance_usd
            + self.floating_ip_usd
            + self.block_storage_usd
            + self.object_storage_usd
        )


class CostModel:
    """The §5 cost analysis over a set of usage records."""

    def __init__(
        self,
        course: CourseDefinition = COURSE,
        *,
        aws: PricingCatalog = AWS_CATALOG,
        gcp: PricingCatalog = GCP_CATALOG,
    ) -> None:
        self.course = course
        self.catalogs = {"aws": aws, "gcp": gcp}

    # -- matching helpers --------------------------------------------------------

    def lab_equivalent(self, lab_id: str, provider: str) -> CloudInstance | None:
        """The cheapest instance for a lab's requirement (None for edge)."""
        spec = self.course.lab(lab_id).requirement
        if spec is None:
            return None
        return cheapest_match(spec, self._catalog(provider))

    def project_equivalent(self, resource_type: str, provider: str) -> CloudInstance | None:
        try:
            spec = PROJECT_SPECS[resource_type]
        except KeyError:
            raise ValidationError(f"no project spec for {resource_type!r}") from None
        if spec is None:
            return None
        return cheapest_match(spec, self._catalog(provider))

    def hourly_rate(self, lab_id: str, provider: str) -> float | None:
        inst = self.lab_equivalent(lab_id, provider)
        return None if inst is None else inst.hourly_usd

    # -- Table 1 --------------------------------------------------------------------

    def lab_rows(self, records: list[UsageRecord]) -> list[LabCostRow]:
        """Compute every Table-1 row (in the paper's order) from records."""
        usage = aggregate_by_assignment(records)
        rows: list[LabCostRow] = []
        ordered_keys = [k for k in TABLE1_ROWS if k in usage]
        extra = sorted(k for k in usage if k not in TABLE1_ROWS and k[0] != "project")
        for lab_id, rtype in ordered_keys + extra:
            row = usage[(lab_id, rtype)]
            rows.append(self._cost_row(row))
        return rows

    def _cost_row(self, usage: AssignmentUsage) -> LabCostRow:
        lab = self.course.lab(usage.lab_id)
        out = {}
        for provider in ("aws", "gcp"):
            inst = self.lab_equivalent(usage.lab_id, provider)
            if inst is None:
                out[provider] = (None, None)
                continue
            catalog = self._catalog(provider)
            # the matched instance replaces the whole per-student VM set of
            # one Chameleon instance, so instance-hours translate 1:1
            cost = usage.instance_hours * inst.hourly_usd + (
                usage.floating_ip_hours * catalog.ip_hourly_usd
            )
            out[provider] = (inst.name, cost)
        return LabCostRow(
            lab_id=usage.lab_id,
            title=lab.title,
            resource_type=usage.resource_type,
            instance_hours=usage.instance_hours,
            floating_ip_hours=usage.floating_ip_hours,
            aws_instance=out["aws"][0],
            aws_cost=out["aws"][1],
            gcp_instance=out["gcp"][0],
            gcp_cost=out["gcp"][1],
        )

    # -- spot what-if (§5 extension) ---------------------------------------------------

    def spot_hourly_rate(
        self, lab_id: str, provider: str, scenario: SpotScenario | None = None
    ) -> float | None:
        """The matched instance's spot rate (None for edge labs)."""
        scenario = scenario if scenario is not None else SpotScenario()
        inst = self.lab_equivalent(lab_id, provider)
        if inst is None:
            return None
        if inst.spot_hourly_usd is not None:
            return inst.spot_hourly_usd
        return inst.hourly_usd * scenario.default_spot_fraction

    def spot_lab_rows(
        self, records: list[UsageRecord], scenario: SpotScenario | None = None
    ) -> list[SpotLabCostRow]:
        """Table 1 re-priced as if every VM lab ran on spot capacity.

        Billable hours are the metered hours times the scenario's expected
        time inflation (preemption re-work, checkpoint writes); floating-IP
        hours inflate identically because the address is held for the whole
        — longer — run.
        """
        scenario = scenario if scenario is not None else SpotScenario()
        inflation = scenario.time_inflation
        out: list[SpotLabCostRow] = []
        for row in self.lab_rows(records):
            billed = row.instance_hours * inflation
            billed_fip = row.floating_ip_hours * inflation
            costs: dict[str, float | None] = {}
            for provider in ("aws", "gcp"):
                rate = self.spot_hourly_rate(row.lab_id, provider, scenario)
                if rate is None:
                    costs[provider] = None
                    continue
                catalog = self._catalog(provider)
                costs[provider] = billed * rate + billed_fip * catalog.ip_hourly_usd
            out.append(SpotLabCostRow(
                lab_id=row.lab_id,
                title=row.title,
                resource_type=row.resource_type,
                instance_hours=row.instance_hours,
                billed_instance_hours=billed,
                floating_ip_hours=row.floating_ip_hours,
                aws_spot_cost=costs["aws"],
                gcp_spot_cost=costs["gcp"],
            ))
        return out

    def spot_lab_totals(self, rows: list[SpotLabCostRow]) -> dict[str, float]:
        """Totals of the spot what-if table."""
        return {
            "instance_hours": sum(r.instance_hours for r in rows),
            "billed_instance_hours": sum(r.billed_instance_hours for r in rows),
            "floating_ip_hours": sum(r.floating_ip_hours for r in rows),
            "aws_cost": sum(r.aws_spot_cost or 0.0 for r in rows),
            "gcp_cost": sum(r.gcp_spot_cost or 0.0 for r in rows),
        }

    # -- outage what-if ----------------------------------------------------------------

    def outage_lab_rows(
        self, records: list[UsageRecord], scenario: OutageScenario | None = None
    ) -> list[OutageLabCostRow]:
        """Table 1 re-priced as if the testbed suffered the scenario's
        interruptions: the same on-demand rates, but every metered hour
        inflates by the expected re-work (redo after kills, checkpoint
        writes, restart overheads).  Floating-IP hours inflate identically
        — the address is held for the whole, longer, run.
        """
        scenario = scenario if scenario is not None else OutageScenario()
        inflation = scenario.time_inflation
        out: list[OutageLabCostRow] = []
        for row in self.lab_rows(records):
            billed = row.instance_hours * inflation
            billed_fip = row.floating_ip_hours * inflation
            costs: dict[str, float | None] = {}
            for provider in ("aws", "gcp"):
                rate = self.hourly_rate(row.lab_id, provider)
                if rate is None:
                    costs[provider] = None
                    continue
                catalog = self._catalog(provider)
                costs[provider] = billed * rate + billed_fip * catalog.ip_hourly_usd
            out.append(OutageLabCostRow(
                lab_id=row.lab_id,
                title=row.title,
                resource_type=row.resource_type,
                instance_hours=row.instance_hours,
                billed_instance_hours=billed,
                floating_ip_hours=row.floating_ip_hours,
                aws_cost=costs["aws"],
                gcp_cost=costs["gcp"],
            ))
        return out

    def outage_lab_totals(self, rows: list[OutageLabCostRow]) -> dict[str, float]:
        """Totals of the outage what-if table."""
        return {
            "instance_hours": sum(r.instance_hours for r in rows),
            "billed_instance_hours": sum(r.billed_instance_hours for r in rows),
            "floating_ip_hours": sum(r.floating_ip_hours for r in rows),
            "aws_cost": sum(r.aws_cost or 0.0 for r in rows),
            "gcp_cost": sum(r.gcp_cost or 0.0 for r in rows),
        }

    # -- per-student distribution (Fig 2) --------------------------------------------

    def per_student_costs(self, records: list[UsageRecord], provider: str) -> dict[str, float]:
        """Lab cost per student (edge rows excluded, like the paper)."""
        catalog = self._catalog(provider)
        lab_ids = {lab.id for lab in self.course.labs}
        inst_hours = per_user_instance_hours(records, labs=lab_ids)
        fip_hours = per_user_fip_hours(records, labs=lab_ids)
        costs: dict[str, float] = {}
        for user, by_row in inst_hours.items():
            total = 0.0
            for (lab_id, _rtype), hours in by_row.items():
                rate = self.hourly_rate(lab_id, provider)
                if rate is None:
                    continue  # edge lab: excluded from the commercial estimate
                total += hours * rate
            total += fip_hours.get(user, 0.0) * catalog.ip_hourly_usd
            costs[user] = total
        return costs

    def expected_cost_per_student(self, provider: str) -> float:
        """The §3-durations cost (the paper's $79.80 AWS / $58.85 GCP)."""
        catalog = self._catalog(provider)
        total = 0.0
        for lab in self.course.labs:
            rate = self.hourly_rate(lab.id, provider)
            if rate is None:
                continue
            if lab.kind is LabKind.VM:
                inst_hours = lab.expected_hours * lab.vm_count
                fip_hours = lab.expected_hours
            else:
                inst_hours = lab.expected_hours
                fip_hours = lab.expected_hours
            total += inst_hours * rate + fip_hours * catalog.ip_hourly_usd
        return total

    # -- project costs (§5) -------------------------------------------------------------

    def project_cost(self, records: list[UsageRecord], provider: str) -> ProjectCost:
        catalog = self._catalog(provider)
        instance_usd = 0.0
        fip_usd = 0.0
        block_usd = 0.0
        object_usd = 0.0
        for rec in records:
            if rec.lab != "project":
                continue
            if rec.kind in ("server", "baremetal", "edge"):
                inst = self.project_equivalent(rec.resource_type, provider)
                if inst is not None:
                    instance_usd += rec.unit_hours * inst.hourly_usd
            elif rec.kind == "floating_ip":
                fip_usd += rec.unit_hours * catalog.ip_hourly_usd
            elif rec.kind == "volume":
                block_usd += rec.unit_hours / HOURS_PER_MONTH * catalog.block_gb_month_usd
            elif rec.kind == "object_storage":
                object_usd += rec.unit_hours / HOURS_PER_MONTH * catalog.object_gb_month_usd
        return ProjectCost(
            provider=provider,
            instance_usd=instance_usd,
            floating_ip_usd=fip_usd,
            block_storage_usd=block_usd,
            object_storage_usd=object_usd,
        )

    # -- summary -----------------------------------------------------------------------

    def lab_totals(self, rows: list[LabCostRow]) -> dict[str, float]:
        """Totals row of Table 1."""
        return {
            "instance_hours": sum(r.instance_hours for r in rows),
            "floating_ip_hours": sum(r.floating_ip_hours for r in rows),
            "aws_cost": sum(r.aws_cost or 0.0 for r in rows),
            "gcp_cost": sum(r.gcp_cost or 0.0 for r in rows),
        }

    def _catalog(self, provider: str) -> PricingCatalog:
        try:
            return self.catalogs[provider]
        except KeyError:
            raise ValidationError(f"unknown provider {provider!r}") from None


def distribution_stats(costs: dict[str, float], expected: float) -> dict[str, float]:
    """The Fig-2 statistics over a per-student cost mapping.

    An empty cohort (nobody incurred cost — e.g. a filtered sub-cohort or
    an all-edge course) yields all-zero statistics rather than an error,
    and a zero/negative ``expected`` is rejected up front so the
    "% exceeding expected" column can never silently divide a bad
    baseline.
    """
    if expected <= 0:
        raise ValidationError(f"expected cost must be positive: {expected!r}")
    if not costs:
        return {
            "n": 0.0,
            "mean": 0.0,
            "median": 0.0,
            "p75": 0.0,
            "p95": 0.0,
            "max": 0.0,
            "expected": float(expected),
            "pct_exceeding_expected": 0.0,
        }
    arr = np.array(sorted(costs.values()))
    return {
        "n": float(arr.size),
        "mean": float(arr.mean()),
        "median": float(np.percentile(arr, 50)),
        "p75": float(np.percentile(arr, 75)),
        "p95": float(np.percentile(arr, 95)),
        "max": float(arr.max()),
        "expected": float(expected),
        "pct_exceeding_expected": float((arr > expected).mean() * 100.0),
    }


# -- serving replica pricing (Table-1 methodology applied to inference) ------------


#: Serving device name -> catalog ``gpu_model`` string.  Devices without a
#: commercial GPU row (edge boards, datacenter parts absent from the
#: July-2025 snapshot) map to None and price as "NA", like Table 1's edge
#: rows.
#: Catalog ``gpu_model`` string per serving device; ``None`` marks a
#: device with no commercial equivalent (the paper's "NA" rows: retired
#: GPUs and the CHI@Edge boards).  Devices absent from this mapping are
#: priced by the generic CPU path.
SERVING_GPU_MODELS: dict[str, str | None] = {
    "a100": "A100-40",
    "t4": "T4",
    "a30": None,   # no A30 shape in either July-2025 catalog
    "p100": None,  # P100 retired from both on-demand catalogs
    "raspberrypi5": None,
    "jetson-nano": None,
}

#: Dedicated vCPUs a CPU serving replica occupies (the `server-cpu-16c`
#: device profile).
SERVING_CPU_VCPUS = 16


@dataclass(frozen=True)
class ServingCostRow:
    """One provider's pricing of a replica fleet, in replica-hours.

    ``hourly_usd`` is the per-replica rate: a matched GPU instance's rate
    divided by its GPU count (one replica = one device, per the serving
    lab's instance-group model), or the full rate of the cheapest
    dedicated-core CPU shape that fits.  ``None`` costs mean the device
    has no commercial equivalent — the paper's "NA".
    """

    device: str
    provider: str
    instance: str | None
    replica_hours: float
    hourly_usd: float | None

    @property
    def cost_usd(self) -> float | None:
        if self.hourly_usd is None:
            return None
        return self.replica_hours * self.hourly_usd

    def cost_per_million(self, served_requests: int) -> float | None:
        """Dollars per one million served requests (None = NA / no traffic)."""
        cost = self.cost_usd
        if cost is None or served_requests <= 0:
            return None
        return cost / served_requests * 1e6


def serving_equivalent(
    device_name: str, provider: str, *, is_gpu: bool = True
) -> CloudInstance | None:
    """The cheapest commercial instance that can host one serving replica.

    GPU devices match on the catalog's ``gpu_model`` string and are
    priced per GPU (multi-GPU shapes host one replica per device, exactly
    the instance-group model of the Triton lab).  CPU devices take the
    cheapest dedicated-core shape with at least
    :data:`SERVING_CPU_VCPUS` vCPUs.  Returns None when no shape
    qualifies.
    """
    catalog = {"aws": AWS_CATALOG, "gcp": GCP_CATALOG}.get(provider)
    if catalog is None:
        raise ValidationError(f"unknown provider {provider!r}")
    if device_name in SERVING_GPU_MODELS and SERVING_GPU_MODELS[device_name] is None:
        return None  # NA row: retired GPU or edge board, on either path
    if is_gpu:
        model = SERVING_GPU_MODELS.get(device_name)
        if model is None:
            return None
        candidates = [i for i in catalog if i.gpus > 0 and i.gpu_model == model]
        return min(candidates, key=lambda i: (i.hourly_usd / i.gpus, i.name), default=None)
    candidates = [
        i for i in catalog
        if i.gpus == 0 and not i.shared_core and i.vcpus >= SERVING_CPU_VCPUS
    ]
    return min(candidates, key=lambda i: (i.hourly_usd, i.name), default=None)


def serving_cost_row(
    device_name: str, provider: str, replica_hours: float, *, is_gpu: bool = True
) -> ServingCostRow:
    """Price a fleet's replica-hours on one provider (Table-1 style)."""
    if replica_hours < 0:
        raise ValidationError(f"replica hours cannot be negative: {replica_hours!r}")
    inst = serving_equivalent(device_name, provider, is_gpu=is_gpu)
    if inst is None:
        return ServingCostRow(
            device=device_name, provider=provider, instance=None,
            replica_hours=replica_hours, hourly_usd=None,
        )
    rate = inst.hourly_usd / inst.gpus if (is_gpu and inst.gpus) else inst.hourly_usd
    return ServingCostRow(
        device=device_name, provider=provider, instance=inst.name,
        replica_hours=replica_hours, hourly_usd=rate,
    )


def quality_adjusted_served(
    served_full: int, served_brownout: int, quality_discount: float
) -> float:
    """Effective full-quality request count of a brownout-mode run.

    The resilience layer's brownout defense serves degraded responses
    (smaller model, truncated inputs) when the queue is deep; pretending
    a degraded answer equals a full one would make brownout look free.
    Each brownout-served request counts as ``1 - quality_discount`` of a
    full response, so cost-per-million stays comparable across the
    policy ladder.
    """
    if served_full < 0 or served_brownout < 0:
        raise ValidationError(
            f"served counts cannot be negative: {served_full!r}, {served_brownout!r}"
        )
    if not (0.0 <= quality_discount < 1.0):
        raise ValidationError(
            f"quality_discount must be in [0, 1): {quality_discount!r}"
        )
    return served_full + served_brownout * (1.0 - quality_discount)
