"""Commercial-cloud pricing catalogs (offline July-2025-style snapshot).

The paper's method (§5): "All prices are derived from the on-demand,
per-hour rates listed in the official public pricing calculators for AWS
and GCP as of July 2025 for a single region (us-central1 for GCP and
us-east-1 for AWS)", plus per-hour charges for public IPv4 addresses.

The entries below are a curated subset sufficient to cover every lab
requirement; several CPU rates are exactly recoverable from the paper's
Table 1 (t3.micro $0.0104, t3.medium $0.0416, t3.xlarge $0.1664 with the
$0.005/h AWS public-IPv4 charge; a2-highgpu-4g $14.69, g2-standard-24
$1.998, g2-standard-4 $0.705 with GCP's $0.004/h address charge), so the
reproduction's CPU rows land on the paper's numbers almost exactly.
GPU-row deviations are catalogued in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ValidationError


@dataclass(frozen=True)
class CloudInstance:
    """One purchasable instance shape.

    ``shared_core`` marks burstable/shared-core shapes (GCP e2-micro/
    small/medium) that cannot satisfy a dedicated-cores requirement.
    ``compute_capability`` is None for non-NVIDIA or CPU-only shapes.
    ``spot_hourly_usd`` is the preemptible (spot) rate snapshot, or None
    where the shape has no spot offering; it never affects matching,
    which stays strictly on-demand like the paper's §5.
    """

    name: str
    provider: str  # "aws" | "gcp"
    vcpus: int
    ram_gib: float
    hourly_usd: float
    gpus: int = 0
    gpu_model: str = ""
    gpu_mem_gib: float = 0.0
    compute_capability: float | None = None
    shared_core: bool = False
    spot_hourly_usd: float | None = None

    def __post_init__(self) -> None:
        if self.vcpus <= 0 or self.ram_gib <= 0 or self.hourly_usd <= 0:
            raise ValidationError(f"invalid instance: {self!r}")
        if self.gpus < 0 or (self.gpus > 0 and self.gpu_mem_gib <= 0):
            raise ValidationError(f"invalid GPU spec: {self!r}")
        if self.spot_hourly_usd is not None and not (
            0 < self.spot_hourly_usd < self.hourly_usd
        ):
            raise ValidationError(f"spot rate must be in (0, on-demand): {self!r}")

    @property
    def spot_fraction(self) -> float | None:
        """Spot rate as a fraction of on-demand (None without a spot rate)."""
        if self.spot_hourly_usd is None:
            return None
        return self.spot_hourly_usd / self.hourly_usd


class PricingCatalog:
    """One provider's instance list plus network/storage rates.

    Storage rates are per GB-month (the billing unit both providers use);
    the cost model converts metered GB-hours at 730 h/month.
    """

    def __init__(
        self,
        provider: str,
        instances: list[CloudInstance],
        *,
        ip_hourly_usd: float,
        block_gb_month_usd: float = 0.0,
        object_gb_month_usd: float = 0.0,
    ) -> None:
        if ip_hourly_usd < 0 or block_gb_month_usd < 0 or object_gb_month_usd < 0:
            raise ValidationError("prices cannot be negative")
        for inst in instances:
            if inst.provider != provider:
                raise ValidationError(f"{inst.name} is not a {provider} instance")
        self.provider = provider
        self.instances = sorted(instances, key=lambda i: i.hourly_usd)
        self.ip_hourly_usd = ip_hourly_usd
        self.block_gb_month_usd = block_gb_month_usd
        self.object_gb_month_usd = object_gb_month_usd

    def __iter__(self):
        return iter(self.instances)

    def __len__(self) -> int:
        return len(self.instances)


AWS_CATALOG = PricingCatalog(
    "aws",
    [
        # -- CPU (us-east-1 on-demand; t3 rates recoverable from Table 1) --
        CloudInstance("t3.micro", "aws", 2, 1, 0.0104, shared_core=False,
                      spot_hourly_usd=0.0031),
        CloudInstance("t3.medium", "aws", 2, 4, 0.0416, spot_hourly_usd=0.0125),
        CloudInstance("t3.xlarge", "aws", 4, 16, 0.1664, spot_hourly_usd=0.0499),
        CloudInstance("m5.2xlarge", "aws", 8, 32, 0.384, spot_hourly_usd=0.1152),
        CloudInstance("c5.12xlarge", "aws", 48, 96, 2.04, spot_hourly_usd=0.6528),
        # -- GPU ------------------------------------------------------------
        CloudInstance("g4dn.xlarge", "aws", 4, 16, 0.526, gpus=1, gpu_model="T4",
                      gpu_mem_gib=16, compute_capability=7.5, spot_hourly_usd=0.1578),
        CloudInstance("g4dn.2xlarge", "aws", 8, 32, 0.752, gpus=1, gpu_model="T4",
                      gpu_mem_gib=16, compute_capability=7.5, spot_hourly_usd=0.2256),
        CloudInstance("g4dn.4xlarge", "aws", 16, 64, 1.204, gpus=1, gpu_model="T4",
                      gpu_mem_gib=16, compute_capability=7.5, spot_hourly_usd=0.3612),
        CloudInstance("g5.xlarge", "aws", 4, 16, 1.006, gpus=1, gpu_model="A10G",
                      gpu_mem_gib=24, compute_capability=8.6, spot_hourly_usd=0.3521),
        CloudInstance("g5.2xlarge", "aws", 8, 32, 1.212, gpus=1, gpu_model="A10G",
                      gpu_mem_gib=24, compute_capability=8.6, spot_hourly_usd=0.4242),
        CloudInstance("g5.12xlarge", "aws", 48, 192, 5.672, gpus=4, gpu_model="A10G",
                      gpu_mem_gib=24, compute_capability=8.6, spot_hourly_usd=1.9852),
        CloudInstance("g6e.2xlarge", "aws", 8, 64, 2.242, gpus=1, gpu_model="L40S",
                      gpu_mem_gib=48, compute_capability=8.9, spot_hourly_usd=0.7847),
        CloudInstance("g6e.12xlarge", "aws", 48, 384, 10.493, gpus=4, gpu_model="L40S",
                      gpu_mem_gib=48, compute_capability=8.9, spot_hourly_usd=3.6726),
        CloudInstance("p3.8xlarge", "aws", 32, 244, 12.24, gpus=4, gpu_model="V100",
                      gpu_mem_gib=16, compute_capability=7.0, spot_hourly_usd=3.672),
        CloudInstance("p4d.24xlarge", "aws", 96, 1152, 32.77, gpus=8, gpu_model="A100-40",
                      gpu_mem_gib=40, compute_capability=8.0, spot_hourly_usd=11.4695),
        CloudInstance("p4de.24xlarge", "aws", 96, 1152, 40.97, gpus=8, gpu_model="A100-80",
                      gpu_mem_gib=80, compute_capability=8.0, spot_hourly_usd=14.3395),
    ],
    ip_hourly_usd=0.005,  # public IPv4 charge (recovered from Table 1 rows 2/3/7)
    block_gb_month_usd=0.08,  # EBS gp3
    object_gb_month_usd=0.023,  # S3 standard
)

GCP_CATALOG = PricingCatalog(
    "gcp",
    [
        # -- CPU (us-central1; e2/n2 rates consistent with Table 1 rows) ----
        CloudInstance("e2-small", "gcp", 2, 2, 0.01675, shared_core=True,
                      spot_hourly_usd=0.00503),
        CloudInstance("e2-medium", "gcp", 2, 4, 0.03351, shared_core=True,
                      spot_hourly_usd=0.01005),
        # E2 machines run on shared CPU platforms with dynamic resource
        # management, so they cannot satisfy a dedicated-cores requirement
        # (this reproduces Table 1's choice of n2 for the Kubernetes labs
        # but e2 for the single-VM labs).
        CloudInstance("e2-standard-2", "gcp", 2, 8, 0.06701, shared_core=True,
                      spot_hourly_usd=0.02010),
        CloudInstance("n2-standard-2", "gcp", 2, 8, 0.0971, spot_hourly_usd=0.02913),
        CloudInstance("n2-standard-8", "gcp", 8, 32, 0.3885, spot_hourly_usd=0.11655),
        CloudInstance("c2-standard-30", "gcp", 30, 120, 1.5668, spot_hourly_usd=0.47),
        # -- GPU -------------------------------------------------------------
        CloudInstance("g2-standard-4", "gcp", 4, 16, 0.705, gpus=1, gpu_model="L4",
                      gpu_mem_gib=24, compute_capability=8.9, spot_hourly_usd=0.2326),
        CloudInstance("g2-standard-16", "gcp", 16, 64, 1.119, gpus=1, gpu_model="L4",
                      gpu_mem_gib=24, compute_capability=8.9, spot_hourly_usd=0.3693),
        CloudInstance("g2-standard-24", "gcp", 24, 96, 1.998, gpus=2, gpu_model="L4",
                      gpu_mem_gib=24, compute_capability=8.9, spot_hourly_usd=0.6593),
        CloudInstance("n1-standard-8-t4", "gcp", 8, 30, 0.730, gpus=1, gpu_model="T4",
                      gpu_mem_gib=16, compute_capability=7.5, spot_hourly_usd=0.219),
        CloudInstance("n1-standard-8-4xv100", "gcp", 8, 30, 10.31, gpus=4, gpu_model="V100",
                      gpu_mem_gib=16, compute_capability=7.0, spot_hourly_usd=3.093),
        CloudInstance("a2-highgpu-1g", "gcp", 12, 85, 3.673, gpus=1, gpu_model="A100-40",
                      gpu_mem_gib=40, compute_capability=8.0, spot_hourly_usd=1.1019),
        CloudInstance("a2-highgpu-4g", "gcp", 48, 340, 14.694, gpus=4, gpu_model="A100-40",
                      gpu_mem_gib=40, compute_capability=8.0, spot_hourly_usd=4.4082),
        CloudInstance("a2-ultragpu-1g", "gcp", 12, 170, 5.069, gpus=1, gpu_model="A100-80",
                      gpu_mem_gib=80, compute_capability=8.0, spot_hourly_usd=1.5207),
    ],
    ip_hourly_usd=0.004,  # external IPv4 address in use
    block_gb_month_usd=0.04,  # pd-standard
    object_gb_month_usd=0.020,  # GCS standard
)
